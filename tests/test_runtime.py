"""Tests for the runtime subsystem: executor, cache, and registry."""

import dataclasses
import json

import pytest

from repro.experiments.report import full_report
from repro.model import UnfusedModel, fusemax
from repro.runtime import (
    EvalTask,
    FaultPlan,
    FaultSpec,
    ResultCache,
    RetryPolicy,
    RunRegistry,
    attention_grid,
    cache_key,
    decode_result,
    encode_result,
    evaluate_task,
    execute_tasks,
    pareto_grid,
    resolve_cache,
    result_digest,
    run_tasks,
    scenario_grid,
    serving_grid,
    sweep_attention,
    sweep_inference,
    sweep_pareto,
    sweep_scenarios,
    sweep_serving,
)
from repro.serving import Arrival, ServingSpec, poisson_arrivals
from repro.workloads import BERT, MODELS, SEQUENCE_LENGTHS, T5
from repro.workloads.scenario import Phase, Scenario, attention_scenario


def serving_spec(**overrides):
    defaults = dict(
        name="serve-test",
        arrivals=poisson_arrivals(0.5, 8192, seed=1, chunks=2, decode_tokens=1),
        array_dim=64,
        rate=0.5,
    )
    defaults.update(overrides)
    return ServingSpec(**defaults)

SHORT = (1024, 65536)


class TestParallelEqualsSerial:
    def test_attention_full_grid(self):
        serial = sweep_attention(cache=False)
        parallel = sweep_attention(cache=False, jobs=4)
        assert list(serial) == list(parallel)  # same keys, same order
        assert serial == parallel  # same values, bit-identical fields

    def test_inference_full_grid(self):
        assert sweep_inference(cache=False) == sweep_inference(cache=False, jobs=4)

    def test_pareto_full_grid(self):
        assert sweep_pareto(cache=False) == sweep_pareto(cache=False, jobs=4)

    def test_full_report_byte_identical(self):
        assert full_report(jobs=1) == full_report(jobs=4)

    def test_run_tasks_preserves_order(self):
        tasks = attention_grid((BERT, T5), SHORT)
        serial = run_tasks(tasks, cache=False)
        parallel = run_tasks(tasks, jobs=3, cache=False)
        assert serial == parallel
        assert [r.config for r in serial] == [t.config.name for t in tasks]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_tasks(attention_grid((BERT,), SHORT), jobs=0)


class TestGrids:
    def test_attention_grid_shape(self):
        assert len(attention_grid()) == 5 * len(MODELS) * len(SEQUENCE_LENGTHS)

    def test_pareto_grid_shape(self):
        assert len(pareto_grid()) == len(MODELS) * 6

    def test_unknown_kind_rejected(self):
        task = EvalTask("nope", UnfusedModel(), BERT, 1024)
        with pytest.raises(ValueError):
            evaluate_task(task)


class TestCacheKey:
    def test_stable_across_equal_inputs(self):
        a = EvalTask("attention", UnfusedModel(), BERT, 1024)
        b = EvalTask("attention", UnfusedModel(), BERT, 1024)
        assert cache_key(a.fingerprint()) == cache_key(b.fingerprint())

    def test_distinguishes_grid_points(self):
        base = EvalTask("attention", UnfusedModel(), BERT, 1024)
        others = [
            EvalTask("inference", UnfusedModel(), BERT, 1024),
            EvalTask("attention", fusemax(), BERT, 1024),
            EvalTask("attention", UnfusedModel(), T5, 1024),
            EvalTask("attention", UnfusedModel(), BERT, 4096),
            EvalTask("attention", UnfusedModel(), BERT, 1024, batch=1),
        ]
        keys = {cache_key(t.fingerprint()) for t in [base] + others}
        assert len(keys) == len(others) + 1

    def test_code_version_invalidates(self):
        task = EvalTask("attention", UnfusedModel(), BERT, 1024)
        assert cache_key(task.fingerprint(), version="a") != cache_key(
            task.fingerprint(), version="b"
        )


class TestScenarioCacheKey:
    """Cache-key completeness: every Scenario field is load-bearing."""

    BASE = Scenario(
        name="base",
        phases=(Phase("prefill", 4, 16), Phase("decode", 2, 8)),
        binding="interleaved",
        embedding=64,
        array_dim=256,
        pe_1d=None,
        slots=2,
        model=None,
    )

    @staticmethod
    def _key(scenario):
        (task,) = scenario_grid([scenario])
        return cache_key(task.fingerprint(), version="pinned")

    def _assert_changed(self, mutated):
        assert self._key(mutated) != self._key(self.BASE)

    def test_every_field_mutation_changes_key(self):
        """Walk the dataclass fields so a future field can't silently
        escape the fingerprint."""
        mutations = {
            "name": "other",
            "phases": (Phase("prefill", 4, 16),),
            "binding": "tile-serial",
            "embedding": 32,
            "array_dim": 128,
            "pe_1d": 128,
            "slots": 3,
            "model": "BERT",
            "dram_bw": 64.0,
            "buffer_bytes": 65536.0,
            "qos": "decode-first",
        }
        declared = {f.name for f in dataclasses.fields(Scenario)}
        assert set(mutations) == declared, "new Scenario field without a cache-key mutation test"
        for field, value in mutations.items():
            self._assert_changed(dataclasses.replace(self.BASE, **{field: value}))

    def test_phase_mix_changes_key(self):
        more_instances = dataclasses.replace(
            self.BASE,
            phases=(Phase("prefill", 5, 16), Phase("decode", 2, 8)),
        )
        longer = dataclasses.replace(
            self.BASE,
            phases=(Phase("prefill", 4, 32), Phase("decode", 2, 8)),
        )
        swapped_kind = dataclasses.replace(
            self.BASE,
            phases=(Phase("decode", 4, 16), Phase("prefill", 2, 8)),
        )
        # Per-phase mixed-model overrides are part of the identity too.
        wider_phase = dataclasses.replace(
            self.BASE,
            phases=(Phase("prefill", 4, 16, embedding=128), Phase("decode", 2, 8)),
        )
        modeled_phase = dataclasses.replace(
            self.BASE,
            phases=(Phase("prefill", 4, 16, model="XLM"), Phase("decode", 2, 8)),
        )
        # Per-phase DRAM priority is part of the identity: it reorders
        # emission, hence arbitration, hence the schedule.
        prioritized_phase = dataclasses.replace(
            self.BASE,
            phases=(Phase("prefill", 4, 16), Phase("decode", 2, 8, dram_priority=1)),
        )
        keys = {
            self._key(s)
            for s in (self.BASE, more_instances, longer, swapped_kind,
                      wider_phase, modeled_phase, prioritized_phase)
        }
        assert len(keys) == 7

    def test_equal_scenarios_share_key(self):
        twin = Scenario(
            name="base",
            phases=(Phase("prefill", 4, 16), Phase("decode", 2, 8)),
        )
        assert self._key(twin) == self._key(self.BASE)


class TestServingCacheKey:
    """Cache-key completeness for the serve kind: every ServingSpec
    field is load-bearing, and a rerun of the same spec is a hit."""

    BASE = ServingSpec(
        name="base",
        arrivals=(Arrival(0, 2, 1), Arrival(64, 2, 1)),
        array_dim=64,
    )

    @staticmethod
    def _key(spec):
        (task,) = serving_grid([spec])
        return cache_key(task.fingerprint(), version="pinned")

    def test_every_field_mutation_changes_key(self):
        mutations = {
            "name": "other",
            "arrivals": (Arrival(0, 2, 1),),
            "binding": "tile-serial",
            "embedding": 32,
            "array_dim": 128,
            "pe_1d": 128,
            "slots": 3,
            "max_inflight": 4,
            "deadline": 5000,
            "dram_bw": 64.0,
            "n_chips": 2,
            "link_bw": 128.0,
            "link_latency": 6,
            "rate": 0.5,
            "buffer_bytes": 65536.0,
            "qos": "decode-first",
        }
        declared = {f.name for f in dataclasses.fields(ServingSpec)}
        assert set(mutations) == declared, "new ServingSpec field without a cache-key mutation test"
        for field, value in mutations.items():
            mutated = dataclasses.replace(self.BASE, **{field: value})
            assert self._key(mutated) != self._key(self.BASE), field

    def test_arrival_payload_changes_key(self):
        shifted = dataclasses.replace(self.BASE, arrivals=(Arrival(0, 2, 1), Arrival(65, 2, 1)))
        heavier = dataclasses.replace(self.BASE, arrivals=(Arrival(0, 2, 1), Arrival(64, 4, 1)))
        chattier = dataclasses.replace(self.BASE, arrivals=(Arrival(0, 2, 1), Arrival(64, 2, 3)))
        keys = {self._key(s) for s in (self.BASE, shifted, heavier, chattier)}
        assert len(keys) == 4

    def test_serve_cache_hit_on_rerun(self, tmp_path):
        spec = serving_spec()
        cache = ResultCache(directory=tmp_path)
        first = sweep_serving([spec], cache=cache)
        assert cache.stats.misses == 1 and cache.stats.puts == 1
        again = sweep_serving([spec], cache=cache)
        assert cache.stats.memory_hits == 1
        assert again == first
        fresh = ResultCache(directory=tmp_path)  # cold memory, warm disk
        from_disk = sweep_serving([spec], cache=fresh)
        assert fresh.stats.disk_hits == 1 and fresh.stats.misses == 0
        assert from_disk == first


class TestEngineAgnosticIdentity:
    """The engine choice is an execution detail: bit-identical engines
    must share cache entries and registry digests, or switching cores
    would cold-start every cache and fork every provenance trail."""

    SCENARIO = attention_scenario(3, 4, array_dim=32, dram_bw=8.0)

    def test_engine_absent_from_fingerprint_and_cache_key(self):
        keys = set()
        for engine in ("event", "cycle", "vector"):
            (task,) = scenario_grid([self.SCENARIO], engine=engine)
            assert task.engine == engine
            keys.add(cache_key(task.fingerprint(), version="pinned"))
        assert len(keys) == 1

    def test_vector_run_warms_the_event_cache(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        vector = sweep_scenarios([self.SCENARIO], cache=cache, engine="vector")
        assert cache.stats.misses == 1 and cache.stats.puts == 1
        event = sweep_scenarios([self.SCENARIO], cache=cache, engine="event")
        assert cache.stats.memory_hits == 1  # cross-engine warm hit
        assert event == vector

    def test_registry_digests_identical_across_engines(self, tmp_path):
        digests = set()
        for engine in ("event", "vector"):
            registry = RunRegistry(tmp_path / engine)
            sweep_scenarios([self.SCENARIO], cache=False, registry=registry, engine=engine)
            digests.add(registry.latest().result_digest)
        assert len(digests) == 1

    def test_serving_engines_identical_and_share_cache(self, tmp_path):
        spec = serving_spec()
        cache = ResultCache(directory=tmp_path)
        vector = sweep_serving([spec], cache=cache, engine="vector")
        event_cached = sweep_serving([spec], cache=cache, engine="event")
        assert cache.stats.memory_hits == 1
        assert event_cached == vector
        assert vector == sweep_serving([spec], cache=False, engine="event")

    def test_fault_plan_composes_with_vector_engine(self):
        scenarios = [attention_scenario(2 + i, 3, array_dim=32) for i in range(3)]
        clean = execute_tasks(scenario_grid(scenarios, engine="event"), cache=False).results
        outcome = execute_tasks(
            scenario_grid(scenarios, engine="vector"),
            jobs=2,
            cache=False,
            retry=RetryPolicy(max_attempts=3),
            faults=FaultPlan(faults=(FaultSpec(index=1, attempt=1, kind="crash"),)),
        )
        assert outcome.results == clean
        assert outcome.recovered >= 1


class TestResultCache:
    def test_memory_hit_after_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        sweep_attention((BERT,), SHORT, cache=cache)
        stats = cache.stats.as_dict()
        assert stats == {
            "memory_hits": 0, "disk_hits": 0, "misses": 10, "puts": 10,
            "corrupt": 0,
        }
        again = sweep_attention((BERT,), SHORT, cache=cache)
        assert cache.stats.memory_hits == 10
        assert again == sweep_attention((BERT,), SHORT, cache=False)

    def test_disk_round_trip(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        first = sweep_attention((BERT,), SHORT, cache=cache)
        fresh = ResultCache(directory=tmp_path)  # cold memory, warm disk
        second = sweep_attention((BERT,), SHORT, cache=fresh)
        assert fresh.stats.disk_hits == 10 and fresh.stats.misses == 0
        assert first == second

    def test_memory_only_when_no_directory(self):
        cache = ResultCache()
        sweep_pareto((BERT,), dims=(16, 32), cache=cache)
        sweep_pareto((BERT,), dims=(16, 32), cache=cache)
        assert cache.stats.memory_hits == 2

    def test_invalidation_on_different_key(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = EvalTask("attention", UnfusedModel(), BERT, 1024)
        old_key = cache_key(task.fingerprint(), version="old-code")
        new_key = cache_key(task.fingerprint(), version="new-code")
        cache.put(old_key, evaluate_task(task))
        assert cache.get(old_key) is not None
        assert cache.get(new_key) is None  # code change == miss

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=4)
        sweep_attention((BERT,), SHORT, cache=cache)  # 10 puts through a 4-slot LRU
        assert len(cache) == 4

    def test_resolve_cache_contract(self):
        assert resolve_cache(False) is None
        assert resolve_cache(None) is None
        assert resolve_cache(True) is resolve_cache(True)  # shared default
        own = ResultCache()
        assert resolve_cache(own) is own
        with pytest.raises(TypeError):
            resolve_cache("yes")


class TestCodec:
    @pytest.mark.parametrize("kind,config", [
        ("attention", UnfusedModel()),
        ("inference", fusemax()),
        ("pareto", 64),
    ])
    def test_round_trip_exact(self, kind, config):
        result = evaluate_task(EvalTask(kind, config, BERT, 4096))
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_scenario_round_trip_exact(self):
        (task,) = scenario_grid([attention_scenario(2, 4, array_dim=64)])
        result = evaluate_task(task)
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_scenario_grid_round_trip_exact(self):
        from repro.runtime import scenario_grid_tasks
        from repro.simulator import ScenarioGridCell

        cell = ScenarioGridCell(
            scenario=attention_scenario(2, 4, array_dim=64),
            model="BERT",
            batch=2,
            heads=1,
            decode=0,
        )
        (task,) = scenario_grid_tasks([cell])
        result = evaluate_task(task)
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_serving_round_trip_exact(self):
        (task,) = serving_grid([serving_spec(deadline=4000, dram_bw=64.0)])
        result = evaluate_task(task)
        assert result.requests  # a non-trivial trace round-trips
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_capacity_scenario_round_trip_exact(self):
        (task,) = scenario_grid([attention_scenario(
            2, 4, array_dim=64, dram_bw=8.0, buffer_bytes=16384.0,
            qos="decode-first", decode_instances=1,
        )])
        result = evaluate_task(task)
        assert result.spill_bytes > 0  # a spilling row round-trips
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_qos_serving_round_trip_exact(self):
        (task,) = serving_grid([serving_spec(
            dram_bw=64.0, buffer_bytes=16384.0, qos="decode-first",
        )])
        result = evaluate_task(task)
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_pre_capacity_payloads_still_decode(self):
        """Cache entries written before the buffer/QoS fields existed
        decode to the explicit defaults (they never modeled either)."""
        (task,) = serving_grid([serving_spec(dram_bw=64.0)])
        result = evaluate_task(task)
        payload = json.loads(json.dumps(encode_result(result)))
        for legacy_field in ("buffer_bytes", "qos", "spill_bytes"):
            payload.pop(legacy_field)
        decoded = decode_result(payload)
        assert decoded == result
        assert decoded.buffer_bytes is None and decoded.qos == "uniform"

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_result({"__type__": "Mystery"})
        with pytest.raises(TypeError):
            encode_result(object())


class TestRegistry:
    def test_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path)
        results = sweep_attention((BERT,), SHORT, cache=False, registry=registry)
        record = registry.latest()
        assert record is not None
        loaded = registry.load(record.run_id)
        assert loaded == record
        assert loaded.kind == "attention"
        assert loaded.n_results == len(results) == 10
        assert loaded.jobs == 1
        assert loaded.grid["models"] == ["BERT"]
        assert loaded.result_digest == result_digest(list(results.values()))

    def test_runs_accumulate_and_match(self, tmp_path):
        registry = RunRegistry(tmp_path)
        sweep_attention((BERT,), SHORT, cache=False, registry=registry)
        sweep_attention((BERT,), SHORT, cache=False, jobs=2, registry=registry)
        first, second = (registry.load(r) for r in registry.list_runs())
        assert first.matches(second)  # parallel run drifts nowhere

    def test_cache_stats_recorded(self, tmp_path):
        registry = RunRegistry(tmp_path)
        cache = ResultCache()
        sweep_attention((BERT,), SHORT, cache=cache, registry=registry)
        sweep_attention((BERT,), SHORT, cache=cache, registry=registry)
        warm = registry.load(registry.list_runs()[-1])
        assert warm.cache_stats["memory_hits"] == 10
        assert warm.cache_stats["misses"] == 0


class TestCLI:
    def test_sweep_smoke(self, capsys, tmp_path):
        from repro.cli import main

        assert main([
            "sweep", "--kind", "attention", "--models", "BERT",
            "--seq-lens", "1024,4096", "--jobs", "2",
            "--registry", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "10 grid points" in out
        assert "recorded run" in out

    def test_sweep_unknown_model(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--models", "GPT"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_report_no_cache(self, capsys):
        from repro.cli import main

        assert main(["fig6", "--no-cache"]) == 0
        assert "util 1D" in capsys.readouterr().out


class TestFaultTolerance:
    """Worker-crash recovery and on-disk corruption, end to end."""

    def test_pool_worker_crash_recovers(self):
        tasks = attention_grid((BERT,), SHORT)
        clean = run_tasks(tasks, cache=False)
        outcome = execute_tasks(
            tasks,
            jobs=2,
            cache=False,
            retry=RetryPolicy(max_attempts=3),
            faults=FaultPlan(faults=(FaultSpec(index=3, attempt=1, kind="crash"),)),
        )
        assert outcome.results == clean
        assert outcome.respawns >= 1
        assert outcome.recovered >= 1
        assert outcome.attempts > len(tasks)

    def test_crash_recovery_recorded_in_registry(self, tmp_path):
        registry = RunRegistry(tmp_path)
        tasks = attention_grid((BERT,), SHORT)
        clean = sweep_attention((BERT,), SHORT, cache=False)
        crashed = sweep_attention(
            (BERT,),
            SHORT,
            cache=False,
            jobs=2,
            registry=registry,
            retry=RetryPolicy(max_attempts=3),
            faults=FaultPlan(faults=(FaultSpec(index=1, attempt=1, kind="crash"),)),
        )
        assert crashed == clean
        record = registry.latest()
        assert record.health is not None
        assert record.health["respawns"] >= 1
        assert record.health["recovered"] >= 1
        assert record.health["attempts"] > len(tasks)

    def test_truncated_disk_entry_recomputed(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        clean = sweep_attention((BERT,), SHORT, cache=cache)
        entry = sorted(tmp_path.glob("*/*.json"))[0]
        entry.write_bytes(entry.read_bytes()[:20])
        fresh = ResultCache(directory=tmp_path)
        again = sweep_attention((BERT,), SHORT, cache=fresh)
        assert again == clean
        assert fresh.stats.corrupt == 1
        assert fresh.stats.disk_hits == len(clean) - 1
        quarantined = list(tmp_path.glob("*/*.corrupt"))
        assert len(quarantined) == 1
        # The recompute rewrote a good entry in the quarantined slot.
        assert ResultCache(directory=tmp_path).get(entry.stem) is not None

    def test_registry_skips_malformed_records(self, tmp_path):
        registry = RunRegistry(tmp_path)
        sweep_attention((BERT,), SHORT, cache=False, registry=registry)
        (tmp_path / "run-zzz.json").write_text("{ torn write")
        (run_id,) = registry.list_runs()
        assert registry.load(run_id).kind == "attention"
        assert registry.latest().run_id == run_id
        assert not list(tmp_path.glob("*.tmp"))  # atomic record left no temp
