"""Tests for the PE-level systolic dataflow simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.dataflow import expected_compute_cycles, simulate_tile
from repro.simulator.systolic import bqk_tile_timing


class TestCorrectness:
    def test_matches_numpy_matmul(self, rng):
        a = rng.normal(size=(8, 4))  # E x R
        b = rng.normal(size=(8, 5))  # E x C
        result = simulate_tile(a, b)
        assert np.allclose(result.output, a.T @ b)

    def test_local_max_matches_column_max(self, rng):
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 3))
        result = simulate_tile(a, b)
        assert np.allclose(result.local_max, (a.T @ b).max(axis=0))

    def test_single_pe(self, rng):
        a = rng.normal(size=(5, 1))
        b = rng.normal(size=(5, 1))
        result = simulate_tile(a, b)
        assert np.isclose(result.output[0, 0], a[:, 0] @ b[:, 0])

    def test_depth_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="depths differ"):
            simulate_tile(rng.normal(size=(4, 2)), rng.normal(size=(5, 2)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.integers(0, 2**31),
    )
    def test_property_matches_numpy(self, rows, cols, depth, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(depth, rows))
        b = rng.normal(size=(depth, cols))
        result = simulate_tile(a, b)
        assert np.allclose(result.output, a.T @ b)
        assert np.allclose(result.local_max, (a.T @ b).max(axis=0))


class TestTiming:
    @pytest.mark.parametrize(
        "rows,cols,depth",
        [(1, 1, 1), (2, 2, 4), (4, 3, 8), (6, 6, 2)],
    )
    def test_compute_cycles_closed_form(self, rng, rows, cols, depth):
        a = rng.normal(size=(depth, rows))
        b = rng.normal(size=(depth, cols))
        result = simulate_tile(a, b)
        assert result.compute_cycles == expected_compute_cycles(depth, rows, cols)

    def test_drain_is_one_row_per_cycle(self, rng):
        result = simulate_tile(rng.normal(size=(2, 5)), rng.normal(size=(2, 3)))
        assert result.drain_cycles == 5

    def test_consistent_with_coarse_timing_model(self, rng):
        """The coarse TileTiming arithmetic (Sec. V) must agree with the
        PE-level simulation at the square-array shape it abstracts."""
        dim, depth = 6, 4
        a = rng.normal(size=(depth, dim))
        b = rng.normal(size=(depth, dim))
        fine = simulate_tile(a, b)
        coarse = bqk_tile_timing(array_dim=dim, embedding=depth)
        # fill (operand skew) + compute = dim-skew + depth; the coarse
        # model charges fill=dim, compute=depth.
        assert fine.compute_cycles == coarse.fill + coarse.compute + dim - 2
        assert fine.drain_cycles == dim

    def test_utilization_motivates_interleaving(self, rng):
        """E=4 on a 6x6 tile: most cycles are skew/drain, not MACCs —
        the quantitative argument for the Fig. 5 interleaving."""
        result = simulate_tile(rng.normal(size=(4, 6)), rng.normal(size=(4, 6)))
        useful = 4  # MACC cycles per PE
        assert useful / result.total_cycles < 0.4
