"""Tests for architecture specs, energy tables, and the area model."""

import pytest

from repro.arch import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergyTable,
    area_of,
    flat_arch,
    fusemax_arch,
    unfused_arch,
)
from repro.arch.spec import EXP_AS_MACCS


class TestArchitecture:
    def test_cloud_parameters_match_paper_fig2(self):
        arch = fusemax_arch()
        assert arch.array_dim == 256
        assert arch.pe_2d == 256 * 256
        assert arch.pe_1d == 256
        assert arch.global_buffer_bytes == 16 * 2**20
        assert arch.dram_gbps == 400.0
        assert arch.frequency_ghz == pytest.approx(0.94)

    def test_dram_bytes_per_cycle(self):
        arch = fusemax_arch()
        assert arch.dram_bytes_per_cycle == pytest.approx(400.0 / 0.94)

    def test_flat_has_dedicated_exp(self):
        assert flat_arch().exp_cycles_1d() == 1
        assert unfused_arch().exp_cycles_1d() == 1

    def test_fusemax_exp_is_six_maccs(self):
        assert fusemax_arch().exp_cycles_1d() == EXP_AS_MACCS
        assert not fusemax_arch().exp_unit_1d

    def test_fusemax_pe_capabilities(self):
        arch = fusemax_arch()
        assert arch.fused_2d_softmax
        assert arch.rf_entries_2d == 10

    def test_with_array_dim(self):
        scaled = fusemax_arch().with_array_dim(64)
        assert scaled.pe_2d == 4096
        assert scaled.pe_1d == 64
        assert "64x64" in scaled.name

    def test_seconds_conversion(self):
        arch = fusemax_arch()
        assert arch.seconds(0.94e9) == pytest.approx(1.0)


class TestEnergyTable:
    def test_hierarchy_ordering(self):
        """DRAM >> global buffer >> scratchpad >> compute — the relative
        ordering the paper's energy conclusions depend on."""
        t = DEFAULT_ENERGY
        assert t.dram_word > t.glb_word > t.spad_word
        assert t.dram_word > 10 * t.macc

    def test_exp_costs_six_maccs_without_unit(self):
        t = DEFAULT_ENERGY
        assert t.op_energy("exp") == pytest.approx(6 * t.macc)

    def test_compute_energy_with_dedicated_exp(self):
        t = EnergyTable()
        with_unit = t.compute_energy({"exp": 10}, dedicated_exp=True)
        without = t.compute_energy({"exp": 10}, dedicated_exp=False)
        assert with_unit == pytest.approx(10 * t.exp_unit)
        assert without == pytest.approx(60 * t.macc)
        assert with_unit < without

    def test_unknown_class_defaults_to_macc(self):
        assert DEFAULT_ENERGY.op_energy("other") == DEFAULT_ENERGY.macc


class TestEnergyBreakdown:
    def test_accumulation_and_fractions(self):
        b = EnergyBreakdown()
        b.add("dram", 75.0)
        b.add("compute_2d", 25.0)
        b.add("dram", 25.0)
        assert b.total == 125.0
        assert b.fraction("dram") == pytest.approx(0.8)
        assert b.fraction("missing") == 0.0

    def test_empty_fraction_is_zero(self):
        assert EnergyBreakdown().fraction("dram") == 0.0

    def test_merged(self):
        a = EnergyBreakdown({"dram": 1.0})
        b = EnergyBreakdown({"dram": 2.0, "compute_2d": 3.0})
        merged = a.merged(b)
        assert merged.pj == {"dram": 3.0, "compute_2d": 3.0}
        assert a.pj == {"dram": 1.0}  # merge does not mutate


class TestArea:
    def test_components_positive(self):
        breakdown = area_of(fusemax_arch())
        assert breakdown.pe_2d > 0
        assert breakdown.pe_1d > 0
        assert breakdown.global_buffer > 0
        assert breakdown.total > breakdown.pe_2d

    def test_iso_area_comparison(self):
        """The paper reports FuseMax's chip is slightly (6.4%) smaller than
        FLAT's; our model should land within a few percent of parity."""
        fm = area_of(fusemax_arch()).total
        fl = area_of(flat_arch()).total
        assert abs(fm - fl) / fl < 0.10

    def test_area_grows_with_array(self):
        small = area_of(fusemax_arch().with_array_dim(64)).total
        big = area_of(fusemax_arch().with_array_dim(512)).total
        assert big > small

    def test_total_cm2(self):
        breakdown = area_of(fusemax_arch())
        assert breakdown.total_cm2 == pytest.approx(breakdown.total / 100)
