"""Tests for the Section III pedagogical cascades (Cascades 1-3)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cascades import (
    cascade1_two_pass,
    cascade2_deferred,
    cascade3_iterative,
    iterative_prefix_sum,
)
from repro.cascades.pedagogical import filtered_prefix_sum
from repro.functional import evaluate, evaluate_output


def _expected_z(a, b):
    """Z = (Σ_k A_k B_k) × (Σ_k A_k) — what all three cascades compute."""
    return float((a * b).sum() * a.sum())


class TestCascadeEquivalence:
    def test_cascade1(self, rng):
        a, b = rng.normal(size=8), rng.normal(size=8)
        out = evaluate_output(cascade1_two_pass(), {"K": 8}, {"A": a, "B": b}, "Z")
        assert np.isclose(out, _expected_z(a, b))

    def test_cascade2(self, rng):
        a, b = rng.normal(size=8), rng.normal(size=8)
        out = evaluate_output(cascade2_deferred(), {"K": 8}, {"A": a, "B": b}, "Z")
        assert np.isclose(out, _expected_z(a, b))

    def test_cascade3_positive_inputs(self, rng):
        """Cascade 3's derivation divides by RY_i, so it requires the
        partial dot products to stay non-zero; positive inputs guarantee
        that (the paper presents it as a formal reassociation)."""
        a = np.abs(rng.normal(size=8)) + 0.1
        b = np.abs(rng.normal(size=8)) + 0.1
        out = evaluate_output(cascade3_iterative(), {"K": 8}, {"A": a, "B": b}, "Z")
        assert np.isclose(out, _expected_z(a, b))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(0, 2**31))
    def test_cascade1_equals_cascade2_for_any_size(self, k, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=k), rng.normal(size=k)
        z1 = evaluate_output(cascade1_two_pass(), {"K": k}, {"A": a, "B": b}, "Z")
        z2 = evaluate_output(cascade2_deferred(), {"K": k}, {"A": a, "B": b}, "Z")
        assert np.isclose(z1, z2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(0, 2**31))
    def test_cascade3_equals_cascade1_for_positive_inputs(self, k, seed):
        rng = np.random.default_rng(seed)
        a = np.abs(rng.normal(size=k)) + 0.1
        b = np.abs(rng.normal(size=k)) + 0.1
        z1 = evaluate_output(cascade1_two_pass(), {"K": k}, {"A": a, "B": b}, "Z")
        z3 = evaluate_output(cascade3_iterative(), {"K": k}, {"A": a, "B": b}, "Z")
        assert np.isclose(z1, z3)


class TestPrefixSums:
    def test_iterative_prefix_sum(self, rng):
        a = rng.normal(size=10)
        s = evaluate(iterative_prefix_sum(), {"K": 10}, {"A": a})["S"]
        assert np.allclose(s, np.concatenate([[0.0], np.cumsum(a)]))

    def test_filtered_prefix_sum_matches_iterative(self, rng):
        """Sec. II-C3 vs II-C4: both definitions produce the same tensor;
        the filtered form just recomputes each sum from scratch."""
        a = rng.normal(size=7)
        s_filtered = evaluate(filtered_prefix_sum(), {"K": 7}, {"A": a})["S"]
        s_iterative = evaluate(iterative_prefix_sum(), {"K": 7}, {"A": a})["S"]
        assert np.allclose(s_filtered, s_iterative)

    def test_empty_prefix_is_zero(self, rng):
        a = rng.normal(size=4)
        s = evaluate(iterative_prefix_sum(), {"K": 4}, {"A": a})["S"]
        assert s[0] == 0.0
