"""Tests for the fibertree abstraction (paper Sec. II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.functional.fibertree import (
    Fiber,
    FibertreeTensor,
    dot_via_intersection,
    max_via_union,
)


class TestFiber:
    def test_sorted_coordinates_enforced(self):
        with pytest.raises(ValueError, match="unsorted"):
            Fiber("k", [(2, 1.0), (1, 2.0)])

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Fiber("k", [(1, 1.0), (1, 2.0)])

    def test_payload_lookup(self):
        fiber = Fiber("k", [(0, 1.5), (3, 2.5)])
        assert fiber.payload(3) == 2.5
        assert fiber.payload(1) is None

    def test_intersection_keeps_common(self):
        a = Fiber("k", [(0, 1.0), (2, 2.0), (5, 3.0)])
        b = Fiber("k", [(2, 4.0), (4, 5.0), (5, 6.0)])
        assert a.intersect(b) == ((2, 2.0, 4.0), (5, 3.0, 6.0))

    def test_union_fills_empty(self):
        a = Fiber("k", [(0, 1.0)])
        b = Fiber("k", [(1, 2.0)])
        assert a.union(b) == ((0, 1.0, 0.0), (1, 0.0, 2.0))


class TestFibertreeTensor:
    def test_round_trip_dense(self, rng):
        dense = rng.normal(size=(3, 4))
        dense[0, 1] = 0.0
        tensor = FibertreeTensor.from_dense(dense, ["m", "k"])
        assert np.allclose(tensor.to_dense(), dense)

    def test_zeros_become_empty(self):
        dense = np.array([[0.0, 1.0], [0.0, 0.0]])
        tensor = FibertreeTensor.from_dense(dense, ["m", "k"])
        assert tensor.occupancy() == 1
        assert tensor.fiber_at(0).coords() == (1,)
        assert tensor.fiber_at(1) is None  # all-zero fiber is absent

    def test_rank_count_checked(self):
        with pytest.raises(ValueError, match="rank names"):
            FibertreeTensor.from_dense(np.ones((2, 2)), ["m"])

    def test_fiber_at_returns_m_fibers(self, rng):
        """The unit of the pass analysis: fiber_at(p) of QK[p, m]."""
        qk = rng.normal(size=(3, 5))
        tensor = FibertreeTensor.from_dense(qk, ["p", "m"])
        fiber = tensor.fiber_at(1)
        assert fiber.coords() == tuple(range(5))
        values = [payload for _, payload in fiber]
        assert np.allclose(values, qk[1])

    def test_swizzle_permutes_ranks(self, rng):
        dense = rng.normal(size=(2, 3, 4))
        tensor = FibertreeTensor.from_dense(dense, ["a", "b", "c"])
        swizzled = tensor.swizzle(["c", "a", "b"])
        assert swizzled.rank_names == ("c", "a", "b")
        assert np.allclose(swizzled.to_dense(), dense.transpose(2, 0, 1))

    def test_swizzle_requires_permutation(self, rng):
        tensor = FibertreeTensor.from_dense(rng.normal(size=(2, 2)), ["a", "b"])
        with pytest.raises(ValueError, match="permute"):
            tensor.swizzle(["a", "z"])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**31))
    def test_round_trip_property(self, m, k, seed):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(m, k)) * rng.integers(0, 2, size=(m, k))
        tensor = FibertreeTensor.from_dense(dense, ["m", "k"])
        assert np.allclose(tensor.to_dense(), dense)
        assert tensor.occupancy() == int(np.count_nonzero(dense))


class TestMergeComputations:
    def test_dot_via_intersection_matches_numpy(self, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=8)
        a[[1, 3]] = 0.0
        b[[3, 5]] = 0.0
        fa = FibertreeTensor.from_dense(a, ["k"]).root
        fb = FibertreeTensor.from_dense(b, ["k"]).root
        assert dot_via_intersection(fa, fb) == pytest.approx(float(a @ b))

    def test_intersection_culls_zero_operands(self):
        """The ∩ merge touches only points non-zero in BOTH operands —
        the data-space culling of Sec. II-C1."""
        fa = Fiber("k", [(0, 2.0), (1, 3.0)])
        fb = Fiber("k", [(1, 4.0), (2, 5.0)])
        assert dot_via_intersection(fa, fb) == 12.0

    def test_max_via_union_matches_numpy(self, rng):
        a = np.abs(rng.normal(size=6))
        b = np.abs(rng.normal(size=6))
        a[2] = 0.0
        b[4] = 0.0
        fa = FibertreeTensor.from_dense(a, ["m"]).root
        fb = FibertreeTensor.from_dense(b, ["m"]).root
        merged = max_via_union(fa, fb)
        dense = FibertreeTensor(("m",), merged, (6,)).to_dense()
        assert np.allclose(dense, np.maximum(a, b))
