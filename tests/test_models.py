"""Tests for the per-configuration accelerator models."""

import pytest

from repro.arch import flat_arch
from repro.model import (
    FLATModel,
    UnfusedModel,
    all_attention_models,
    fusemax,
    plus_architecture,
    plus_cascade,
    spill_decision,
)
from repro.workloads import BERT, XLM


class TestModelBasics:
    def test_five_configurations(self):
        names = [m.name for m in all_attention_models()]
        assert names == ["Unfused", "FLAT", "+Cascade", "+Architecture", "+Binding"]

    def test_invalid_stage_rejected(self):
        from repro.model.fusemax import FuseMaxModel

        with pytest.raises(ValueError):
            FuseMaxModel("bogus")

    @pytest.mark.parametrize("config", all_attention_models(),
                             ids=lambda m: m.name)
    def test_result_fields_sane(self, config):
        result = config.evaluate(BERT, 4096)
        assert result.latency_cycles > 0
        assert 0 < result.util_2d <= 1.0
        assert 0 < result.util_1d <= 1.0
        assert result.dram_bytes > 0
        assert result.energy_pj > 0

    @pytest.mark.parametrize("config", all_attention_models(),
                             ids=lambda m: m.name)
    def test_latency_scales_with_batch(self, config):
        half = config.evaluate(BERT, 4096, batch=32).latency_cycles
        full = config.evaluate(BERT, 4096, batch=64).latency_cycles
        assert full == pytest.approx(2 * half, rel=1e-6)


class TestUnfused:
    def test_softmax_phase_dominates(self):
        """The softmax on 256 1D PEs is the bottleneck phase."""
        result = UnfusedModel().evaluate(BERT, 16384)
        assert result.busy_1d_cycles > result.busy_2d_cycles

    def test_low_2d_utilization(self):
        result = UnfusedModel().evaluate(BERT, 16384)
        assert result.util_2d < 0.15

    def test_dram_traffic_includes_intermediates(self):
        unfused = UnfusedModel().evaluate(BERT, 4096)
        fused = FLATModel().evaluate(BERT, 4096)
        assert unfused.dram_bytes > fused.dram_bytes


class TestFLAT:
    def test_compute_bound_at_short_lengths(self):
        result = FLATModel().evaluate(BERT, 4096)
        assert result.util_1d == pytest.approx(1.0)

    def test_memory_bound_at_long_lengths(self):
        """Fig. 6a: FLAT's utilization drops for L >= 256K."""
        result = FLATModel().evaluate(BERT, 262144)
        assert result.util_1d < 0.9

    def test_spill_decision_resident_at_1k(self):
        assert spill_decision(flat_arch(), 64, 64, 1024, 1024).strategy == "resident"

    def test_spill_decision_retile_at_16k(self):
        decision = spill_decision(flat_arch(), 64, 64, 16384, 16384)
        assert decision.strategy == "retile"
        assert decision.extra_dram_words > 0

    def test_spill_decision_spill_at_256k(self):
        m = 262144
        decision = spill_decision(flat_arch(), 64, 64, m, m)
        assert decision.strategy == "spill"
        assert decision.extra_dram_words == 5.0 * m * m

    def test_spill_threshold_monotone(self):
        """Extra traffic never decreases with sequence length."""
        extras = [
            spill_decision(flat_arch(), 64, 64, m, m).extra_dram_words
            for m in (1024, 4096, 16384, 65536, 262144)
        ]
        assert extras == sorted(extras)

    def test_1d_array_is_the_bottleneck(self):
        result = FLATModel().evaluate(BERT, 4096)
        assert result.busy_1d_cycles > result.busy_2d_cycles


class TestFuseMaxConfigs:
    def test_cascade_uses_flat_architecture(self):
        assert plus_cascade().arch.exp_unit_1d
        assert not fusemax().arch.exp_unit_1d

    def test_cascade_slower_than_flat_at_short_lengths(self):
        """Fig. 6b/8: the 1-pass cascade alone costs extra compute."""
        flat = FLATModel().evaluate(BERT, 4096)
        cascade = plus_cascade().evaluate(BERT, 4096)
        assert cascade.latency_cycles > flat.latency_cycles

    def test_cascade_beats_flat_at_long_lengths(self):
        flat = FLATModel().evaluate(BERT, 2**20)
        cascade = plus_cascade().evaluate(BERT, 2**20)
        assert cascade.latency_cycles < flat.latency_cycles

    def test_cascade_utilization_length_invariant(self):
        utils = [
            plus_cascade().evaluate(BERT, L).util_1d
            for L in (4096, 65536, 2**20)
        ]
        assert max(utils) - min(utils) < 1e-6

    def test_architecture_stalls_both_arrays(self):
        """Fig. 6: without the binding, fills/drains serialize."""
        result = plus_architecture().evaluate(BERT, 16384)
        assert result.util_1d < 0.3
        assert result.util_2d < 0.3

    def test_binding_achieves_near_full_utilization(self):
        result = fusemax().evaluate(BERT, 65536)
        assert result.util_1d > 0.95
        assert result.util_2d > 0.9

    def test_binding_dram_independent_of_intermediates(self):
        """FuseMax traffic = inputs + output only: linear in L."""
        b4k = fusemax().evaluate(BERT, 4096).dram_bytes
        b16k = fusemax().evaluate(BERT, 16384).dram_bytes
        assert b16k == pytest.approx(4 * b4k, rel=1e-6)

    def test_binding_never_spills(self):
        fm = fusemax().evaluate(BERT, 2**20)
        fl = FLATModel().evaluate(BERT, 2**20)
        assert fm.dram_bytes < fl.dram_bytes

    def test_energy_dominated_by_2d_compute(self):
        """Sec. VI-B: >= 95% of FuseMax energy is 2D-array compute."""
        result = fusemax().evaluate(BERT, 65536)
        assert result.energy.fraction("compute_2d") >= 0.95

    def test_xlm_lower_speedup(self):
        """Fig. 8: XLM's larger E/F gives the baselines better 2D
        utilization, shrinking FuseMax's advantage."""
        def speedup(model):
            flat = FLATModel().evaluate(model, 16384).latency_cycles
            fm = fusemax().evaluate(model, 16384).latency_cycles
            return flat / fm

        assert speedup(XLM) < speedup(BERT)

    def test_per_einsum_cycles_cover_busy_time(self):
        result = fusemax().evaluate(BERT, 16384)
        assert sum(result.per_einsum_2d_cycles.values()) == pytest.approx(
            result.busy_2d_cycles
        )
