"""Deterministic fault injection: retries, timeouts, degradation.

Every failure path the runtime claims to survive is exercised here on
purpose, with seeded plans, and asserted byte-deterministic: a
recoverable fault may cost attempts but can never change a payload.
"""

import json
import signal

import pytest

from repro.api import Provenance, ScenarioGridRequest, Session
from repro.runtime import (
    EvalTask,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResultCache,
    RetryPolicy,
    RunRegistry,
    TaskError,
    TaskFailure,
    attention_grid,
    cache_key,
    corrupt_disk_entry,
    decode_result,
    encode_result,
    execute_tasks,
    run_tasks,
)
from repro.workloads import BERT

SHORT = (1024, 65536)

has_sigalrm = hasattr(signal, "SIGALRM")


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(50, seed=7, rate=0.3, corrupt_rate=0.2)
        b = FaultPlan.seeded(50, seed=7, rate=0.3, corrupt_rate=0.2)
        assert a == b
        assert a.faults  # a 30% rate over 50 tasks draws something
        assert a != FaultPlan.seeded(50, seed=8, rate=0.3, corrupt_rate=0.2)

    def test_directive_lookup(self):
        plan = FaultPlan(
            faults=(FaultSpec(2, 1, "raise"), FaultSpec(2, 2, "crash")),
            corrupt=(4,),
        )
        assert plan.directive(2, 1) == "raise"
        assert plan.directive(2, 2) == "crash"
        assert plan.directive(2, 3) is None
        assert plan.directive(0, 1) is None
        assert plan.corrupts(4) and not plan.corrupts(2)
        assert plan.fault_indices == (2,)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 1, "meltdown")
        with pytest.raises(ValueError):
            FaultPlan.seeded(4, kinds=("raise", "meltdown"))


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base_s=0.1,
            backoff_cap_s=0.3,
            jitter=0.5,
            seed=3,
        )
        assert policy.backoff_s(1, 2) == policy.backoff_s(1, 2)
        assert policy.backoff_s(1, 2) != policy.backoff_s(2, 2)
        # cap * (1 + jitter) bounds every delay; base doubles until cap
        for attempt in range(1, 6):
            assert 0.0 < policy.backoff_s(0, attempt) <= 0.3 * 1.5

    def test_zero_base_never_sleeps(self):
        assert RetryPolicy(max_attempts=3).backoff_s(0, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=0).validate()
        assert RetryPolicy(max_attempts=4, jitter=0.5).rule_violations() == []


class TestInlineRecovery:
    """The serial (jobs=1) path through every fault kind."""

    def test_transient_raise_recovers(self):
        tasks = attention_grid((BERT,), SHORT)
        clean = run_tasks(tasks, cache=False)
        outcome = execute_tasks(
            tasks,
            cache=False,
            retry=RetryPolicy(max_attempts=2),
            faults=FaultPlan(faults=(FaultSpec(0, 1, "raise"),)),
        )
        assert outcome.results == clean
        assert outcome.attempts == len(tasks) + 1
        assert outcome.recovered == 1
        assert outcome.failures == ()

    def test_inline_crash_recovers(self):
        tasks = attention_grid((BERT,), SHORT)
        clean = run_tasks(tasks, cache=False)
        outcome = execute_tasks(
            tasks,
            cache=False,
            retry=RetryPolicy(max_attempts=2),
            faults=FaultPlan(faults=(FaultSpec(1, 1, "crash"),)),
        )
        assert outcome.results == clean
        assert outcome.recovered == 1

    @pytest.mark.skipif(not has_sigalrm, reason="needs SIGALRM")
    def test_hang_times_out_and_recovers(self):
        tasks = attention_grid((BERT,), SHORT[:1])
        clean = run_tasks(tasks, cache=False)
        outcome = execute_tasks(
            tasks,
            cache=False,
            retry=RetryPolicy(max_attempts=2, task_timeout_s=0.2),
            faults=FaultPlan(faults=(FaultSpec(0, 1, "hang"),), hang_s=5.0),
        )
        assert outcome.results == clean
        assert outcome.recovered == 1

    def test_exhausted_retries_raise_task_error(self):
        tasks = attention_grid((BERT,), SHORT[:1])
        plan = FaultPlan(faults=(FaultSpec(0, 1, "raise"), FaultSpec(0, 2, "raise")))
        with pytest.raises(TaskError) as excinfo:
            execute_tasks(
                tasks, cache=False, retry=RetryPolicy(max_attempts=2), faults=plan
            )
        failure = excinfo.value.failure
        assert failure.index == 0
        assert failure.attempts == 2
        assert "InjectedFault" in failure.error

    def test_on_error_skip_degrades_to_failure_record(self):
        tasks = attention_grid((BERT,), SHORT)
        clean = run_tasks(tasks, cache=False)
        plan = FaultPlan(faults=(FaultSpec(0, 1, "raise"), FaultSpec(0, 2, "raise")))
        outcome = execute_tasks(
            tasks,
            cache=False,
            retry=RetryPolicy(max_attempts=2),
            on_error="skip",
            faults=plan,
        )
        assert isinstance(outcome.results[0], TaskFailure)
        assert outcome.results[0].kind == "attention"
        assert outcome.results[1:] == clean[1:]
        assert [f.index for f in outcome.failures] == [0]

    def test_no_retry_fails_fast_by_default(self):
        tasks = attention_grid((BERT,), SHORT[:1])
        with pytest.raises(TaskError):
            execute_tasks(
                tasks, cache=False, faults=FaultPlan(faults=(FaultSpec(0, 1),))
            )

    def test_rejects_bad_on_error(self):
        with pytest.raises(ValueError):
            execute_tasks([], on_error="ignore")

    def test_rejects_invalid_policy(self):
        with pytest.raises(ValueError):
            execute_tasks([], retry=RetryPolicy(max_attempts=0))


class TestFailureCodec:
    def test_task_failure_round_trips(self):
        failure = TaskFailure(index=3, kind="binding", error="boom", attempts=2)
        assert decode_result(encode_result(failure)) == failure


class TestCacheQuarantine:
    def _entry(self, cache, task):
        key = cache_key(task.fingerprint())
        return key, cache.entry_path(key)

    def test_truncated_entry_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = attention_grid((BERT,), SHORT[:1])[0]
        clean = run_tasks([task], cache=cache)
        key, path = self._entry(cache, task)
        path.write_bytes(path.read_bytes()[:10])
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert path.with_suffix(".corrupt").is_file()
        assert run_tasks([task], cache=fresh) == clean
        assert ResultCache(directory=tmp_path).get(key) is not None

    def test_invalid_json_and_wrong_schema_quarantined(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = attention_grid((BERT,), SHORT[:1])[0]
        run_tasks([task], cache=cache)
        key, path = self._entry(cache, task)
        for damage in ("not json at all", json.dumps({"no": "result"}),
                       json.dumps({"result": {"__type__": "Mystery"}})):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(damage)
            fresh = ResultCache(directory=tmp_path)
            assert fresh.get(key) is None
            assert fresh.stats.corrupt == 1

    def test_memory_only_cache_has_no_entry_path(self):
        assert ResultCache().entry_path("ab" * 32) is None
        assert corrupt_disk_entry(ResultCache(), "ab" * 32) is False

    def test_fault_plan_corruption_flows_through_executor(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        tasks = attention_grid((BERT,), SHORT)
        clean = run_tasks(tasks, cache=False)
        outcome = execute_tasks(
            tasks, cache=cache, faults=FaultPlan(corrupt=(0, 3))
        )
        assert outcome.results == clean  # corruption is post-put only
        fresh = ResultCache(directory=tmp_path)
        assert run_tasks(tasks, cache=fresh) == clean
        assert fresh.stats.corrupt == 2
        assert fresh.stats.disk_hits == len(tasks) - 2


class TestSessionFaultPolicy:
    def test_provenance_reports_recovery(self, tmp_path):
        request = ScenarioGridRequest(models=("BERT",), chunks=2)
        clean = Session(cache=False).run(request)
        session = Session(
            cache=False,
            registry=tmp_path,
            retry=RetryPolicy(max_attempts=3),
            faults=FaultPlan(faults=(FaultSpec(0, 1, "raise"),)),
        )
        result = session.run(request)
        assert result.payload == clean.payload
        assert result.provenance.recovered == 1
        assert result.provenance.failures == 0
        assert result.provenance.attempts == len(clean.payload) + 1
        assert session.registry.latest().health["recovered"] == 1

    def test_skip_mode_surfaces_failure_in_payload(self):
        request = ScenarioGridRequest(models=("BERT",), chunks=2)
        session = Session(
            cache=False,
            retry=RetryPolicy(max_attempts=1),
            on_error="skip",
            faults=FaultPlan(faults=(FaultSpec(0, 1, "raise"),)),
        )
        result = session.run(request)
        assert isinstance(result.payload[0], TaskFailure)
        assert result.provenance.failures == 1

    def test_session_validates_policy(self):
        with pytest.raises(ValueError):
            Session(on_error="ignore")
        with pytest.raises(ValueError):
            Session(retry=RetryPolicy(max_attempts=0))

    def test_provenance_repr_keeps_batched_field(self):
        # CI greps "batched=True" in the quickstart output; the fault
        # telemetry fields must not displace it.
        fields = [f for f in Provenance.__dataclass_fields__]
        assert fields.index("batched") < fields.index("attempts")


class TestCLIFaultFlags:
    def test_sweep_accepts_fault_flags(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--kind",
                    "attention",
                    "--models",
                    "BERT",
                    "--seq-lens",
                    "1024",
                    "--retries",
                    "2",
                    "--task-timeout",
                    "30",
                    "--on-error",
                    "skip",
                ]
            )
            == 0
        )
        assert "grid points" in capsys.readouterr().out

    def test_cycle_path_refuses_fault_flags(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "simulate",
                    "--scenario",
                    "--engine",
                    "cycle",
                    "--retries",
                    "1",
                ]
            )
            == 2
        )
        assert "--retries" in capsys.readouterr().err

    def test_rejects_bad_task_timeout(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--task-timeout", "0"])
        assert "must be > 0" in capsys.readouterr().err
