"""Cross-validation between independent layers of the reproduction.

The analytical models, the cycle-granular simulator, the traffic bounds,
and the footprint analysis were built separately; these tests check they
agree where their domains overlap.
"""

import pytest

from repro.analysis import count_passes, family
from repro.analysis.traffic import traffic_lower_bound
from repro.cascades import attention_1pass, attention_3pass
from repro.model import FLATModel, fusemax, plus_architecture
from repro.simulator import PipelineConfig, compare_bindings
from repro.workloads import BATCH_SIZE, BERT


class TestModelVsSimulator:
    """The analytical utilizations and the simulated ones must agree in
    ordering and rough magnitude."""

    @pytest.fixture(scope="class")
    def simulated(self):
        return compare_bindings(PipelineConfig(chunks=32))

    def test_binding_utilization(self, simulated):
        analytical = fusemax().evaluate(BERT, 65536)
        sim = simulated["interleaved"]
        assert abs(analytical.util_2d - sim.util_2d) < 0.15
        assert abs(analytical.util_1d - sim.util_1d) < 0.15

    def test_tile_serial_utilization(self, simulated):
        analytical = plus_architecture().evaluate(BERT, 65536)
        sim = simulated["tile-serial"]
        assert abs(analytical.util_2d - sim.util_2d) < 0.12
        assert abs(analytical.util_1d - sim.util_1d) < 0.12

    def test_speedup_ordering(self, simulated):
        """Both layers agree the interleaved binding is several-fold
        faster than tile-serial on identical hardware."""
        sim_ratio = (
            simulated["tile-serial"].makespan / simulated["interleaved"].makespan
        )
        a_serial = plus_architecture().evaluate(BERT, 65536).latency_cycles
        a_binding = fusemax().evaluate(BERT, 65536).latency_cycles
        model_ratio = a_serial / a_binding
        assert sim_ratio > 3 and model_ratio > 3
        assert 0.4 < sim_ratio / model_ratio < 2.5


class TestModelVsTrafficBounds:
    """The accelerator models must never claim less DRAM traffic than the
    cascade's algorithmic floor."""

    def test_fusemax_respects_floor(self):
        shapes = BERT.attention_shapes(65536, block=256)
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        floor = traffic_lower_bound(
            analysis, shapes, buffer_bytes=16 * 2**20
        ).total_bytes(2)
        modeled = fusemax().evaluate(BERT, 65536).dram_bytes
        per_instance = modeled / (BATCH_SIZE * BERT.n_heads)
        assert per_instance >= floor * 0.999

    def test_fusemax_achieves_floor(self):
        """FuseMax's modeled traffic IS the floor (inputs + output only)."""
        shapes = BERT.attention_shapes(65536, block=256)
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        floor = traffic_lower_bound(
            analysis, shapes, buffer_bytes=16 * 2**20
        ).total_bytes(2)
        modeled = fusemax().evaluate(BERT, 65536).dram_bytes
        per_instance = modeled / (BATCH_SIZE * BERT.n_heads)
        assert per_instance == pytest.approx(floor, rel=1e-6)

    def test_flat_spill_exceeds_unbuffered_floor_structure(self):
        """When FLAT spills, its traffic is the same order as the 3-pass
        cascade's small-buffer floor (both ∝ M·P intermediates)."""
        seq = 262144
        shapes = BERT.attention_shapes(seq, block=256)
        analysis = count_passes(attention_3pass(), family("m"))
        floor = traffic_lower_bound(
            analysis, shapes, buffer_bytes=16 * 2**20
        ).total_bytes(2)
        modeled = FLATModel().evaluate(BERT, seq).dram_bytes
        per_instance = modeled / (BATCH_SIZE * BERT.n_heads)
        assert 0.5 < per_instance / floor < 3.0
