"""Tests for the Einsum text parser."""

import math

import numpy as np
import pytest

from repro.einsum import (
    Affine,
    Cascade,
    Fixed,
    IterativeRank,
    MAX_REDUCE,
    Shifted,
    Var,
)
from repro.einsum.ops import MAX, SUB_THEN_EXP
from repro.einsum.parser import ParseError, parse_einsum
from repro.einsum.tensor import Literal, Map, Unary
from repro.functional import attention, evaluate_output


class TestTensorRefs:
    def test_gemm(self):
        e = parse_einsum("Z[m, n] = A[k, m] * B[k, n]")
        assert e.writes_tensor() == "Z"
        assert e.output.indices == (Var("m"), Var("n"))
        assert e.read_tensors() == frozenset({"A", "B"})
        assert e.reduced_vars() == ("k",)

    def test_scalar_tensor(self):
        e = parse_einsum("Y = A[k] * B[k]")
        assert e.output.indices == ()

    def test_shifted_index(self):
        e = parse_einsum("RM[m1+1, p] = max(RM[m1, p], LM[m1, p])")
        assert e.output.indices[0] == Shifted("m1", 1)
        assert isinstance(e.expr, Map) and e.expr.op is MAX

    def test_negative_shift(self):
        e = parse_einsum("Z[i-1] = A[i]")
        assert e.output.indices[0] == Shifted("i", -1)

    def test_fixed_numeric_index(self):
        e = parse_einsum("RD[0, p] = 0.0", init=True)
        assert e.output.indices[0] == Fixed(0)
        assert e.is_initialization

    def test_fixed_symbolic_index(self):
        e = parse_einsum("AV[f, p] = RNV[f, M1, p] / RD[M1, p]")
        rnv = list(e.expr.refs())[0]
        assert rnv.indices[1] == Fixed("M1")

    def test_affine_index(self):
        e = parse_einsum("BK[e, m1, m0] = K[e, m1*M0 + m0]", view=True)
        k_ref = list(e.expr.refs())[0]
        assert k_ref.indices[1] == Affine((("m1", "M0"), ("m0", 1)))
        assert e.is_view

    def test_filtered_index(self):
        e = parse_einsum("S[i+1] = A[k : k <= i]")
        a_ref = list(e.expr.refs())[0]
        assert len(a_ref.filters) == 1
        assert a_ref.filters[0].var == "k"
        assert a_ref.filters[0].op == "<="


class TestExpressions:
    def test_precedence(self):
        e = parse_einsum("Z[m] = A[m] + B[m] * C[m]")
        assert e.expr.op.name == "add"
        assert e.expr.rhs.op.name == "mul"

    def test_parentheses(self):
        e = parse_einsum("Z[m] = (A[m] + B[m]) * C[m]")
        assert e.expr.op.name == "mul"

    def test_division(self):
        e = parse_einsum("A[m, p] = SN[m, p] / SD[p]")
        assert e.expr.op.name == "div"

    def test_exp_of_subtraction_folds_to_sub_then_exp(self):
        e = parse_einsum("SN[m, p] = exp(QK[m, p] - GM[p])")
        assert isinstance(e.expr, Map)
        assert e.expr.op is SUB_THEN_EXP

    def test_plain_exp_stays_unary(self):
        e = parse_einsum("SN[m, p] = exp(QK[m, p])")
        assert isinstance(e.expr, Unary)
        assert e.expr.op.name == "exp"

    def test_sigmoid(self):
        e = parse_einsum("Z[m] = sigmoid(A[m])")
        assert isinstance(e.expr, Unary)

    def test_literals(self):
        assert parse_einsum("RM[0, p] = -inf").expr == Literal(-math.inf)
        assert parse_einsum("X = 2.5").expr == Literal(2.5)

    def test_reduction_override(self):
        e = parse_einsum("GM[p] = QK[m, p] :: max(m)")
        assert e.reduce_action("m") is MAX_REDUCE

    def test_triple_product(self):
        e = parse_einsum("Z[p] = A[m, p] * B[m] * C[p]")
        assert len(list(e.expr.refs())) == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "Z[m] =",
            "Z[m] = A[m] extra",
            "Z[m] = A[m :: max(m)",
            "= A[m]",
            "Z[m] = A[m] :: min(m)",
            "Z[m] = A[m",
            "Z[m] @ A[m]",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_einsum(bad)


class TestParsedCascadesExecute:
    def test_parsed_attention_matches_builder(self, rng):
        """A 3-pass attention cascade authored entirely as text."""
        einsums = [
            parse_einsum("QK[m, p] = Q[e, p] * K[e, m]"),
            parse_einsum("GM[p] = QK[m, p] :: max(m)"),
            parse_einsum("SN[m, p] = exp(QK[m, p] - GM[p])"),
            parse_einsum("SD[p] = SN[m, p]"),
            parse_einsum("A[m, p] = SN[m, p] / SD[p]"),
            parse_einsum("AV[f, p] = A[m, p] * V[f, m]"),
        ]
        cascade = Cascade.build(
            "parsed-attention",
            einsums,
            inputs=["Q", "K", "V"],
            rank_shapes={"e": "E", "f": "F", "m": "M", "p": "P"},
            outputs=["AV"],
        )
        shapes = {"E": 4, "F": 5, "M": 8, "P": 3}
        inputs = {
            "Q": rng.normal(size=(4, 3)),
            "K": rng.normal(size=(4, 8)),
            "V": rng.normal(size=(5, 8)),
        }
        out = evaluate_output(cascade, shapes, inputs)
        assert np.allclose(out, attention(inputs["Q"], inputs["K"], inputs["V"]))

    def test_parsed_iterative_cascade(self, rng):
        einsums = [
            parse_einsum("S[0] = 0.0", init=True),
            parse_einsum("S[i+1] = S[i] + A[i]"),
        ]
        cascade = Cascade.build(
            "parsed-prefix",
            einsums,
            inputs=["A"],
            rank_shapes={"i": "K"},
            iterative=[IterativeRank("i", "K")],
        )
        from repro.functional import evaluate

        a = rng.normal(size=6)
        s = evaluate(cascade, {"K": 6}, {"A": a})["S"]
        assert np.allclose(s, np.concatenate([[0.0], np.cumsum(a)]))

    def test_parsed_partition_view(self, rng):
        from repro.functional import evaluate

        cascade = Cascade.build(
            "parsed-view",
            [parse_einsum("BK[e, m1, m0] = K[e, m1*M0 + m0]", view=True)],
            inputs=["K"],
            rank_shapes={"e": "E", "m1": "M1", "m0": "M0"},
        )
        k = rng.normal(size=(2, 12))
        out = evaluate(cascade, {"E": 2, "M1": 3, "M0": 4}, {"K": k})["BK"]
        assert np.allclose(out, k.reshape(2, 3, 4))

    def test_parse_analysis_round_trip(self):
        """Pass analysis works identically on parsed cascades."""
        from repro.analysis import count_passes, family

        einsums = [
            parse_einsum("Y = A[k] * B[k]"),
            parse_einsum("Z = Y * A[k]"),
        ]
        cascade = Cascade.build(
            "parsed-cascade1", einsums, inputs=["A", "B"], rank_shapes={"k": "K"}
        )
        assert count_passes(cascade, family("k")).num_passes == 2
