"""Tests for CSV export and the register-file working-set check."""

import csv
import os

import pytest

from repro.arch import fusemax_arch
from repro.experiments.export import export_all
from repro.mapping import fusemax_binding, plus_cascade_binding
from repro.mapping.binding import rf_working_set


class TestRegisterFileWorkingSet:
    def test_fusemax_fits_ten_entries(self):
        """Fig. 3c: the FuseMax PE carries a 10-entry register file; the
        interleaved binding's working set must fit it."""
        need = rf_working_set(fusemax_binding())
        assert need <= fusemax_arch().rf_entries_2d

    def test_fusemax_needs_more_than_a_plain_macc_pe(self):
        """The working set exceeds the 1-2 registers of a plain TPU PE —
        the reason the architecture change is required at all."""
        assert rf_working_set(fusemax_binding()) > 2

    def test_uninterleaved_binding_needs_less(self):
        assert rf_working_set(plus_cascade_binding()) < rf_working_set(
            fusemax_binding()
        )


class TestExport:
    @pytest.fixture(scope="class")
    def outdir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("results")
        export_all(str(path))
        return str(path)

    def test_all_files_written(self, outdir):
        names = set(os.listdir(outdir))
        expected = {
            "fig1b.csv", "table1.csv", "fig6.csv", "fig7.csv", "fig8.csv",
            "fig9.csv", "fig10.csv", "fig11.csv", "fig12.csv",
            "ablation_divisions.csv",
        }
        assert expected <= names

    def test_fig6_grid_complete(self, outdir):
        with open(os.path.join(outdir, "fig6.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5 * 4 * 6
        assert {r["config"] for r in rows} == {
            "Unfused", "FLAT", "+Cascade", "+Architecture", "+Binding"
        }

    def test_fig8_numeric_round_trip(self, outdir):
        with open(os.path.join(outdir, "fig8.csv")) as handle:
            rows = list(csv.DictReader(handle))
        speedups = [float(r["speedup"]) for r in rows if r["config"] == "+Binding"]
        assert all(s > 1.0 for s in speedups)

    def test_table1_contents(self, outdir):
        with open(os.path.join(outdir, "table1.csv")) as handle:
            rows = {r["cascade"]: r for r in csv.DictReader(handle)}
        assert rows["attention-1pass"]["passes"] == "1"
