"""Scenario IR + analytical model layer: the multi-instance refactor.

The simulator-facing merged-graph behaviour lives in
``test_simulator_events.py``; this module covers the IR itself and the
Einsum-level analytical path (``FuseMaxModel.evaluate_scenario``) that
replaces the bare ``B × H`` latency scale factor with an explicit
perfect-overlap bound.
"""

import pytest

from repro.model import (
    STAGE_FOR_BINDING,
    analytical_scenario,
    fusemax,
    plus_architecture,
    scenario_model_for,
    scenario_work,
)
from repro.simulator import build_scenario_tasks
from repro.workloads import BATCH_SIZE, BERT, XLM
from repro.workloads.scenario import (
    BINDINGS,
    Phase,
    Scenario,
    attention_scenario,
    scenario_from_model,
)


class TestScenarioIR:
    def test_attention_scenario_defaults(self):
        s = attention_scenario(4, 16)
        assert s.instances == 4
        assert s.seq_len == 16 * 256
        assert s.binding == "interleaved"
        assert s.resolved_pe_1d == s.array_dim == 256
        assert s.phases == (Phase("prefill", 4, 16),)

    def test_decode_phase_appended(self):
        s = attention_scenario(4, 16, decode_instances=2, decode_chunks=32)
        assert s.instances == 6
        assert s.phases[1] == Phase("decode", 2, 32)
        assert s.name.endswith("+dec2")
        # Decode-only seq_len falls back to 0 prefill chunks.
        decode_only = Scenario(name="d", phases=(Phase("decode", 1, 8),))
        assert decode_only.seq_len == 0

    def test_from_model(self):
        s = scenario_from_model(BERT, 4096, batch=64, heads=16)
        assert s.instances == 64 * 16
        assert s.embedding == BERT.d_head
        assert s.model == "BERT"
        assert s.seq_len == 4096
        assert s.name == "BERT-B64xH16-L4096"
        default_heads = scenario_from_model(BERT, 1024, batch=2)
        assert default_heads.instances == 2 * BERT.n_heads

    def test_with_binding(self):
        s = attention_scenario(2, 8)
        flipped = s.with_binding("tile-serial")
        assert flipped.binding == "tile-serial"
        assert flipped.phases == s.phases and flipped.name == s.name

    def test_describe_mentions_everything(self):
        text = attention_scenario(3, 8, decode_instances=1).describe()
        assert "3xprefill" in text and "1xdecode" in text
        assert "interleaved" in text

    def test_tile_serial_normalizes_slots(self):
        """Serial issue means one task per resource: the slots field is
        inert under tile-serial, so requesting different widths must
        yield the *same* scenario (schedule, equality, cache key)."""
        wide = attention_scenario(2, 8, binding="tile-serial", slots=4)
        narrow = attention_scenario(2, 8, binding="tile-serial", slots=1)
        assert wide.slots == narrow.slots == 1
        assert wide == narrow
        interleaved = attention_scenario(2, 8, slots=4)
        assert interleaved.slots == 4  # meaningful there
        # Garbage slot counts are rejected before normalization masks them.
        with pytest.raises(ValueError, match="slots"):
            attention_scenario(2, 8, binding="tile-serial", slots=0)

    def test_validation(self):
        with pytest.raises(ValueError, match="instances"):
            Phase("prefill", 0, 4)
        with pytest.raises(ValueError, match="chunks"):
            Phase("prefill", 1, 0)
        with pytest.raises(ValueError, match="slots"):
            attention_scenario(1, 4, slots=0)
        with pytest.raises(ValueError, match="batch and heads"):
            scenario_from_model(BERT, 1024, batch=0)


class TestScenarioWork:
    def test_work_equals_merged_graph_durations(self):
        for binding in BINDINGS:
            s = attention_scenario(
                3, 8, binding=binding, decode_instances=2, decode_chunks=4
            )
            busy = scenario_work(s)
            tasks = build_scenario_tasks(s)
            for resource in ("2d", "1d", "io"):
                total = sum(
                    t.duration for t in tasks if t.resource == resource
                )
                assert busy[resource] == total, (binding, resource)

    def test_io_work_only_under_tile_serial(self):
        serial = scenario_work(attention_scenario(2, 8, binding="tile-serial"))
        inter = scenario_work(attention_scenario(2, 8))
        assert serial["io"] > 0
        assert inter["io"] == 0


class TestEinsumScenarioModel:
    def test_overlap_bound_replaces_instance_scaling(self):
        """N instances sharing the arrays beat N serially-scaled
        instances: the old ``× B·H`` path pays the pipeline warm-up per
        instance, the scenario path pays it once."""
        model = fusemax()
        scenario = scenario_from_model(BERT, 4096, batch=BATCH_SIZE)
        scaled = model.evaluate(BERT, 4096, batch=BATCH_SIZE)
        bound = model.evaluate_scenario(scenario)
        n = scenario.instances
        assert scaled.latency_cycles > bound.latency_cycles
        warmup_per_instance = 4 * model.arch.array_dim
        assert scaled.latency_cycles - bound.latency_cycles == (
            pytest.approx((n - 1) * warmup_per_instance)
        )
        # Busy cycles are the same work, so utilization can only rise.
        assert bound.busy_2d_cycles == pytest.approx(scaled.busy_2d_cycles)
        assert bound.util_2d >= scaled.util_2d

    def test_architecture_stage_serializes_lone_instance(self):
        model = plus_architecture()
        lone = Scenario(
            name="lone", phases=(Phase("prefill", 1, 16),),
            binding="tile-serial", model="BERT",
        )
        packed = Scenario(
            name="packed", phases=(Phase("prefill", 16, 16),),
            binding="tile-serial", model="BERT",
        )
        lone_result = model.evaluate_scenario(lone)
        packed_result = model.evaluate_scenario(packed)
        # Per-instance latency shrinks when instances hide the stalls.
        assert packed_result.latency_cycles < 16 * lone_result.latency_cycles
        assert packed_result.util_2d > lone_result.util_2d

    def test_binding_stage_mapping_enforced(self):
        assert STAGE_FOR_BINDING == {
            "interleaved": "binding", "tile-serial": "architecture"
        }
        with pytest.raises(ValueError, match="stage"):
            fusemax().evaluate_scenario(
                attention_scenario(2, 8, binding="tile-serial")
            )
        for binding in BINDINGS:
            model = scenario_model_for(binding)
            assert model.stage == STAGE_FOR_BINDING[binding]
            result = model.evaluate_scenario(
                attention_scenario(2, 8, binding=binding)
            )
            assert 0 < result.util_2d <= 1

    def test_decode_phases_rejected_at_einsum_level(self):
        with pytest.raises(ValueError, match="prefill"):
            fusemax().evaluate_scenario(
                attention_scenario(2, 8, decode_instances=1)
            )

    def test_heterogeneous_prefill_mix_rejected_at_einsum_level(self):
        mixed = Scenario(
            name="mixed",
            phases=(Phase("prefill", 2, 16), Phase("prefill", 2, 64)),
        )
        with pytest.raises(ValueError, match="one prefill length"):
            fusemax().evaluate_scenario(mixed)
        # The graph-level model handles the same mix fine.
        estimate = analytical_scenario(mixed)
        assert estimate.latency_cycles > 0

    def test_model_embedding_mismatch_rejected(self):
        # Rejected at construction, before any graph build — the
        # mismatch used to surface only deep in the model layer.
        assert XLM.d_head == 128
        with pytest.raises(ValueError, match="d_head"):
            Scenario(
                name="bad", phases=(Phase("prefill", 2, 8),),
                embedding=64, model="XLM",  # XLM heads are 128-wide
            )
        with pytest.raises(ValueError, match="unknown model"):
            fusemax().evaluate_scenario(
                Scenario(name="x", phases=(Phase("prefill", 1, 8),),
                         model="GPT")
            )

    def test_scenario_array_dim_respected(self):
        small = attention_scenario(2, 8, array_dim=128)
        result = fusemax().evaluate_scenario(small)
        assert result.seq_len == 8 * 128

    def test_synthetic_model_from_embedding(self):
        s = attention_scenario(2, 8, array_dim=128)
        result = scenario_model_for("interleaved").evaluate_scenario(s)
        assert result.model == s.name

    def test_graph_level_and_einsum_level_agree_on_utilization(self):
        """The two analytical accounts (task-graph work integration and
        Einsum op counting) describe the same machine: under the
        interleaved binding their 2D utilizations agree closely."""
        scenario = scenario_from_model(BERT, 4096, batch=8)
        graph = analytical_scenario(scenario)
        einsum = fusemax().evaluate_scenario(scenario)
        assert einsum.util_2d == pytest.approx(graph.util_2d, abs=0.05)
