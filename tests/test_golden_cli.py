"""Golden-output lock: the Session-backed CLI is byte-identical to the
pre-redesign front doors.

The files under ``tests/golden/`` were captured from the CLI *before*
the ``repro.api`` redesign (PR 4).  Every historical invocation — the
one-shot binding comparison, ``simulate --sweep``/``--scenario`` in all
formats, both engines, the evaluation sweep, fig6, and crosscheck —
must keep producing exactly those bytes through the new request/Session
path.  ``repro report`` is locked by hash (the full text is ~34 KB).

If an intentional output change lands, regenerate the goldens in the
same commit and say why in its message.
"""

import hashlib
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden"

CASES = [
    (["simulate", "--chunks", "4"], "simulate-oneshot.txt"),
    (["simulate", "--chunks", "8", "--engine", "cycle"],
     "simulate-oneshot-cycle.txt"),
    (["simulate", "--sweep", "--chunks-list", "16,32", "--arrays", "64",
      "--format", "csv"], "simulate-sweep.csv"),
    (["simulate", "--sweep", "--chunks-list", "16", "--arrays", "64",
      "--pe1d-list", "32,64", "--embeddings", "32", "--format", "json"],
     "simulate-sweep.json"),
    (["simulate", "--sweep", "--chunks-list", "16,32", "--arrays", "64"],
     "simulate-sweep.txt"),
    (["simulate", "--scenario", "--instances", "3", "--chunks", "8",
      "--array-dim", "64", "--format", "csv"], "simulate-scenario.csv"),
    (["simulate", "--scenario", "--instances", "2", "--chunks", "4",
      "--array-dim", "64", "--format", "json"], "simulate-scenario.json"),
    (["simulate", "--scenario", "--model", "BERT", "--batch", "2",
      "--heads", "2", "--chunks", "4", "--array-dim", "64",
      "--decode-instances", "2", "--decode-chunks", "8"],
     "simulate-scenario-model.txt"),
    (["simulate", "--scenario", "--instances", "2", "--chunks", "6",
      "--array-dim", "64", "--binding", "tile-serial", "--engine", "cycle"],
     "simulate-scenario-cycle.txt"),
    # Bandwidth-limited scenario (PR 5): the dram_bw/busy_dram/util_dram
    # columns appear, and the schedule rides the shared memory link.
    (["simulate", "--scenario", "--instances", "2", "--chunks", "4",
      "--array-dim", "64", "--decode-instances", "2", "--decode-chunks",
      "16", "--dram-bw", "32", "--format", "csv"],
     "simulate-scenario-dram.csv"),
    (["simulate", "--scenario", "--mixed-models", "BERT,XLM", "--chunks",
      "4", "--array-dim", "64", "--binding", "interleaved"],
     "simulate-scenario-mixed.txt"),
    (["sweep", "--kind", "attention", "--models", "BERT,T5",
      "--seq-lens", "1024,65536"], "sweep-attention.txt"),
    (["sweep", "--kind", "inference", "--models", "BERT",
      "--seq-lens", "1024"], "sweep-inference.txt"),
    (["crosscheck"], "crosscheck.txt"),
    (["fig6"], "fig6.txt"),
    # Open-loop serving (this PR): the seeded rate sweep, the default
    # table, and a trace-driven point are each locked byte-for-byte —
    # `repro serve --rate R --seed S` must replay identically forever.
    (["serve", "--rate", "0.2,0.4", "--duration", "16384", "--seed", "11",
      "--array-dim", "128", "--deadline", "8000", "--decode-tokens", "2",
      "--format", "csv"], "serve-rate-sweep.csv"),
    (["serve", "--rate", "0.5", "--duration", "8192", "--array-dim", "64",
      "--max-inflight", "4", "--decode-tokens", "1"], "serve-oneshot.txt"),
    (["serve", "--trace", str(GOLDEN / "serve-trace.in"), "--deadline",
      "2000", "--array-dim", "64", "--format", "json"], "serve-trace.json"),
    # Buffer capacity + DRAM QoS (this PR): a spilling decode-first
    # scenario (widened buffer_bytes/qos/spill_bytes columns) and a
    # capacity-swept grid whose estimates take the capacity-bound
    # roofline term — locked byte-for-byte.
    (["simulate", "--scenario", "--instances", "2", "--chunks", "4",
      "--array-dim", "64", "--decode-instances", "2", "--decode-chunks",
      "16", "--dram-bw", "32", "--buffer-bytes", "24576", "--qos",
      "decode-first", "--format", "csv", "--no-cache"],
     "simulate-scenario-capacity.csv"),
    (["sweep", "--grid", "--models", "BERT", "--batches", "1",
      "--heads-list", "2,4", "--chunks", "8", "--array-dim", "64",
      "--decode-list", "2", "--dram-bw", "32", "--buffer-bytes", "24576",
      "--format", "csv", "--no-cache"], "sweep-grid-capacity.csv"),
    # Multi-chip cluster sweeps (this PR): one unlinked chip sweep (the
    # narrow historical columns, no link gating) and one sharded sweep
    # over a priced interconnect (the widened link columns) — both
    # locked byte-for-byte through the pooled runtime.
    (["cluster", "--instances", "4", "--chunks", "8", "--array-dim", "64",
      "--chips", "1,2", "--link-bws", "none"], "cluster-unlinked.txt"),
    (["cluster", "--instances", "4", "--chunks", "8", "--array-dim", "64",
      "--chips", "2,4", "--shardings", "head,tensor", "--link-bws", "64",
      "--link-latency", "4", "--format", "csv"], "cluster-linked.csv"),
]


@pytest.mark.parametrize(
    "argv,golden", CASES, ids=[golden for _, golden in CASES]
)
def test_cli_output_is_byte_identical(capsys, argv, golden):
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    assert captured.out == (GOLDEN / golden).read_text()


def test_report_hash_is_byte_identical():
    from repro.api import ExperimentRequest, Session

    text = Session().run(ExperimentRequest(name="report")).payload
    digest = hashlib.sha256(text.encode()).hexdigest()
    assert digest == (GOLDEN / "report.sha256").read_text().strip()
