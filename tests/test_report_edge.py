"""Integration test for the full report and the edge-configuration preset."""

import pytest

from repro.arch import area_of, fusemax_arch, fusemax_edge_arch
from repro.experiments.report import full_report
from repro.model import fusemax
from repro.workloads import BERT


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report()

    def test_all_sections_present(self, report):
        for fragment in (
            "Figure 1b", "Table I", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10", "Figure 11", "Figure 12", "Ablations",
        ):
            assert fragment in report

    def test_headlines_present(self, report):
        assert "paper: 6.7x" in report
        assert "paper: 5.3x" in report
        assert "paper: 0.79" in report

    def test_taxonomy_rows_present(self, report):
        assert "attention-1pass" in report
        assert "FlashAttention-2" in report


class TestEdgeConfiguration:
    def test_parameters(self):
        arch = fusemax_edge_arch()
        assert arch.pe_2d == 128 * 128
        assert arch.global_buffer_bytes == 2 * 2**20
        assert arch.fused_2d_softmax

    def test_smaller_than_cloud(self):
        assert area_of(fusemax_edge_arch()).total < area_of(fusemax_arch()).total

    def test_fusemax_model_runs_on_edge(self):
        """The FuseMax model works at edge scale: still high 2D util
        (compute grows quadratically past the thinner DRAM pipe)."""
        model = fusemax(arch=fusemax_edge_arch())
        result = model.evaluate(BERT, 16384)
        assert result.util_2d > 0.9
        assert result.util_1d > 0.9

    def test_edge_slower_than_cloud(self):
        edge = fusemax(arch=fusemax_edge_arch()).evaluate(BERT, 16384)
        cloud = fusemax().evaluate(BERT, 16384)
        assert edge.latency_cycles > cloud.latency_cycles

    def test_overrides_respected(self):
        arch = fusemax_edge_arch(array_dim=64)
        assert arch.pe_2d == 4096
