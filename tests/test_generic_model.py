"""Tests for the generic fused-cascade evaluator and the FA1 cascade."""

import numpy as np
import pytest

from repro.analysis import count_passes, family, total_ops
from repro.arch import fusemax_arch
from repro.cascades import attention_1pass, attention_1pass_fa1
from repro.functional import attention, evaluate_output
from repro.mapping import Binding, fusemax_binding
from repro.model import fusemax
from repro.model.generic import evaluate_cascade
from repro.workloads import BATCH_SIZE, BERT


class TestFlashAttention1Cascade:
    """FA1 vs FA2: same 1-pass class, different division counts."""

    def test_numerics_match_reference(self, attention_inputs, attention_shapes):
        out = evaluate_output(
            attention_1pass_fa1(), attention_shapes, attention_inputs
        )
        expected = attention(
            attention_inputs["Q"], attention_inputs["K"], attention_inputs["V"]
        )
        assert np.allclose(out, expected)

    def test_one_pass_classification(self):
        analysis = count_passes(attention_1pass_fa1(), family("m1", "m0"))
        assert analysis.num_passes == 1

    def test_fa2_does_fewer_divisions(self):
        shapes = {"E": 64, "F": 64, "M": 65536, "P": 1024, "M0": 256, "M1": 256}
        fa1 = total_ops(attention_1pass_fa1(), shapes).get("divide")
        fa2 = total_ops(attention_1pass(), shapes).get("divide")
        assert fa1 == shapes["F"] * shapes["M1"] * shapes["P"]
        assert fa2 == shapes["F"] * shapes["P"]
        assert fa1 // fa2 == shapes["M1"]


class TestGenericEvaluator:
    def test_reproduces_fusemax_model(self):
        """+Binding is the generic engine on Cascade 5 + the fused binding
        (up to the bespoke model's pipeline-fill constant)."""
        shapes = BERT.attention_shapes(65536, block=256)
        generic = evaluate_cascade(
            attention_1pass(),
            fusemax_binding(),
            family("m1", "m0"),
            fusemax_arch(),
            shapes,
        )
        bespoke = fusemax().evaluate(BERT, 65536)
        per_instance = bespoke.latency_cycles / (BATCH_SIZE * BERT.n_heads)
        fill = 4 * fusemax_arch().array_dim
        assert generic.latency_cycles == pytest.approx(
            per_instance - fill, rel=1e-6
        )
        assert generic.busy_2d_cycles * BATCH_SIZE * BERT.n_heads == (
            pytest.approx(bespoke.busy_2d_cycles)
        )

    def test_buffered_flag(self):
        shapes = BERT.attention_shapes(65536, block=256)
        generic = evaluate_cascade(
            attention_1pass(),
            fusemax_binding(),
            family("m1", "m0"),
            fusemax_arch(),
            shapes,
        )
        assert generic.buffered  # the 1-pass cascade never spills

    def test_evaluates_fa1_with_custom_binding(self):
        """A new cascade needs only a binding — no bespoke model code."""
        binding = Binding(
            name="fa1",
            assignment={
                "BQK": "2d", "LM": "2d", "SLN": "2d", "SLD": "2d",
                "SLNV": "2d",
                "RM": "1d", "PRM": "1d", "SPD": "1d", "RD": "1d",
                "SPNV": "1d", "RO": "1d", "AV": "1d",
            },
        )
        shapes = BERT.attention_shapes(16384, block=256)
        fa1 = evaluate_cascade(
            attention_1pass_fa1(), binding, family("m1", "m0"),
            fusemax_arch(), shapes,
        )
        fa2 = evaluate_cascade(
            attention_1pass(), fusemax_binding(), family("m1", "m0"),
            fusemax_arch(), shapes,
        )
        # FA1's per-chunk divisions load the 1D array more.
        assert fa1.busy_1d_cycles > fa2.busy_1d_cycles
        assert fa1.latency_cycles >= fa2.latency_cycles

    def test_rejects_invalid_binding(self):
        from repro.mapping import BindingError

        bad = Binding(name="bad", assignment={"BQK": "2d"})
        with pytest.raises(BindingError):
            evaluate_cascade(
                attention_1pass(), bad, family("m1", "m0"), fusemax_arch(),
                BERT.attention_shapes(16384, block=256),
            )
