"""Tests for the shared perf helpers, the roofline characterization, and
the transformer linear-layer cascade."""

import pytest

from repro.analysis import count_passes, count_ops, family
from repro.arch import fusemax_arch
from repro.cascades import attention_3pass
from repro.cascades.transformer import encoder_layer_einsums, linear_layers
from repro.model import FLATModel, fusemax
from repro.model.perf import array_cycles, make_workload
from repro.model.roofline import machine_balance_point, roofline_point
from repro.workloads import BERT


class TestPerfHelpers:
    @pytest.fixture
    def workload(self):
        return make_workload(BERT, 4096, attention_3pass, block=256, batch=64)

    def test_heads_total(self, workload):
        assert workload.heads_total == 64 * 12

    def test_io_words(self, workload):
        e = f = 64
        m = p = 4096
        assert workload.io_words() == e * p + e * m + f * m + f * p

    def test_array_cycles_accounts_exp_latency(self, workload):
        one = array_cycles(workload.per_einsum, ("SN",), 256, exp_cycles=1)
        six = array_cycles(workload.per_einsum, ("SN",), 256, exp_cycles=6)
        assert six.busy_cycles == pytest.approx(6 * one.busy_cycles)

    def test_array_cycles_per_einsum_sums(self, workload):
        work = array_cycles(workload.per_einsum, ("QK", "AV"), 65536,
                            exp_cycles=6)
        assert sum(work.per_einsum_cycles.values()) == pytest.approx(
            work.busy_cycles
        )

    def test_array_cycles_op_totals(self, workload):
        work = array_cycles(workload.per_einsum, ("QK",), 65536, exp_cycles=6)
        assert work.op_counts["macc"] == 64 * 4096 * 4096


class TestRoofline:
    def test_balance_point(self):
        arch = fusemax_arch()
        expected = 65536 / (400.0 / 0.94)
        assert machine_balance_point(arch) == pytest.approx(expected)

    def test_fusemax_intensity_grows_with_length(self):
        fm = fusemax()
        short = roofline_point(fm.evaluate(BERT, 4096), fm.arch)
        long = roofline_point(fm.evaluate(BERT, 65536), fm.arch)
        assert long.ops_per_byte > 10 * short.ops_per_byte

    def test_fusemax_compute_bound_at_long_lengths(self):
        fm = fusemax()
        point = roofline_point(fm.evaluate(BERT, 65536), fm.arch)
        assert point.compute_bound
        assert point.headroom > 1.0

    def test_flat_intensity_collapses_when_spilling(self):
        flat = FLATModel()
        ok = roofline_point(flat.evaluate(BERT, 65536), flat.arch)
        spilled = roofline_point(flat.evaluate(BERT, 262144), flat.arch)
        assert spilled.ops_per_byte < ok.ops_per_byte


class TestTransformerCascade:
    def test_valid_cascade(self):
        cascade = encoder_layer_einsums()
        assert cascade.result_tensors() == ("F2",)
        assert set(cascade.inputs) >= {"X", "WQ", "W1", "AV"}

    def test_single_pass_over_sequence(self):
        """GEMM chains have no reduce-and-revisit structure over N."""
        assert count_passes(encoder_layer_einsums(), family("n")).num_passes == 1

    def test_op_counts_match_linear_layer_inventory(self):
        shapes = {"H": 12, "E": 64, "F": 64, "D": 768, "G": 3072, "N": 1}
        per = count_ops(encoder_layer_einsums(), shapes)
        total_macs = sum(counts.get("macc") for counts in per.values())
        inventory = sum(
            layer.macs_per_token for layer in linear_layers(768, 12, 64, 3072)
        )
        assert total_macs == inventory

    def test_inventory_scales_with_ffn(self):
        small = sum(layer.macs_per_token for layer in linear_layers(768, 12, 64, 1024))
        large = sum(layer.macs_per_token for layer in linear_layers(768, 12, 64, 4096))
        assert large > small
