"""Tests for the decode-phase model (footnote 1) and waterfall rendering."""

import pytest

from repro.model.decode import decode_attention, machine_balance
from repro.simulator import PipelineConfig, Simulator, build_tasks
from repro.simulator.waterfall import render_waterfall, waterfall_text
from repro.workloads import BERT, MODELS


class TestDecodePhase:
    def test_decode_is_memory_bound_at_any_context(self):
        """The paper's footnote-1 claim holds across all contexts/models."""
        for model in MODELS:
            for context in (1024, 65536, 2**20):
                step = decode_attention(model, context, batch=64)
                assert step.memory_bound, (model.name, context)

    def test_intensity_far_below_balance(self):
        step = decode_attention(BERT, 65536, batch=64)
        assert step.arithmetic_intensity < machine_balance() / 50

    def test_latency_tracks_kv_cache_size(self):
        short = decode_attention(BERT, 4096).latency_cycles
        long = decode_attention(BERT, 16384).latency_cycles
        assert long == pytest.approx(4 * short)

    def test_intensity_independent_of_context(self):
        """One MAC per cache element: intensity is constant in M."""
        a = decode_attention(BERT, 4096).arithmetic_intensity
        b = decode_attention(BERT, 2**20).arithmetic_intensity
        assert a == pytest.approx(b)

    def test_batch_does_not_help(self):
        """No KV-cache sharing across the batch (Sec. IV-B): intensity is
        flat in batch size too."""
        a = decode_attention(BERT, 4096, batch=1).arithmetic_intensity
        b = decode_attention(BERT, 4096, batch=64).arithmetic_intensity
        assert a == pytest.approx(b)


class TestWaterfall:
    @pytest.fixture
    def sim(self):
        tasks = build_tasks(PipelineConfig(chunks=4), serial=False)
        result = Simulator(tasks, mode="interleaved", slots=2).run()
        return tasks, result

    def test_one_lane_per_resource(self, sim):
        tasks, result = sim
        lanes = render_waterfall(tasks, result)
        assert [lane.resource for lane in lanes] == ["1d", "2d"]

    def test_lane_width_bounded(self, sim):
        tasks, result = sim
        lanes = render_waterfall(tasks, result, width=40)
        assert all(len(lane.text) <= 41 for lane in lanes)

    def test_text_mentions_makespan(self, sim):
        tasks, result = sim
        text = waterfall_text(tasks, result)
        assert str(result.makespan) in text

    def test_glyphs_from_task_names(self, sim):
        tasks, result = sim
        lanes = {lane.resource: lane.text for lane in render_waterfall(tasks, result)}
        assert "B" in lanes["2d"]  # BQK tiles
        assert "R" in lanes["1d"]  # RM / RD / RNV updates

    def test_custom_labeller(self, sim):
        tasks, result = sim
        lanes = render_waterfall(tasks, result, label_of=lambda name: "#")
        assert set(lanes[0].text) <= {"#", "."}
