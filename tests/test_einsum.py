"""Unit tests for the Einsum statement class."""

import pytest

from repro.einsum import (
    Einsum,
    MAX_REDUCE,
    MUL,
    Map,
    SUM_REDUCE,
    TensorRef,
    ref,
)


@pytest.fixture
def gemm():
    """Z[m, n] = A[k, m] × B[k, n]."""
    return Einsum(
        output=TensorRef.of("Z", "m", "n"),
        expr=Map(MUL, ref("A", "k", "m"), ref("B", "k", "n")),
        name="Z",
    )


class TestEinsumStructure:
    def test_output_vars(self, gemm):
        assert gemm.output_vars() == ("m", "n")

    def test_input_vars(self, gemm):
        assert gemm.input_vars() == ("k", "m", "n")

    def test_iteration_vars_lhs_first(self, gemm):
        assert gemm.iteration_vars() == ("m", "n", "k")

    def test_reduced_vars(self, gemm):
        assert gemm.reduced_vars() == ("k",)

    def test_default_reduction_is_sum(self, gemm):
        assert gemm.reduce_action("k") is SUM_REDUCE

    def test_explicit_reduction_override(self):
        gm = Einsum(
            output=TensorRef.of("GM", "p"),
            expr=ref("QK", "m", "p"),
            reductions={"m": MAX_REDUCE},
            name="GM",
        )
        assert gm.reduce_action("m") is MAX_REDUCE

    def test_reads_and_writes(self, gemm):
        assert gemm.read_tensors() == frozenset({"A", "B"})
        assert gemm.writes_tensor() == "Z"

    def test_reads_tensor_on(self, gemm):
        assert gemm.reads_tensor_on("A", "k")
        assert not gemm.reads_tensor_on("A", "n")
        assert not gemm.reads_tensor_on("Z", "m")

    def test_traverses(self, gemm):
        assert gemm.traverses("k")
        assert not gemm.traverses("q")

    def test_label_defaults_to_output(self):
        unnamed = Einsum(
            output=TensorRef.of("Y"),
            expr=Map(MUL, ref("A", "k"), ref("B", "k")),
        )
        assert unnamed.label == "Y"

    def test_str_shows_explicit_reduction(self):
        gm = Einsum(
            output=TensorRef.of("GM", "p"),
            expr=ref("QK", "m", "p"),
            reductions={"m": MAX_REDUCE},
        )
        assert "max" in str(gm)

    def test_str_hides_default_sum(self, gemm):
        assert "sum" not in str(gemm)

    def test_view_flag_default_false(self, gemm):
        assert not gemm.is_view
        assert not gemm.is_initialization
