"""Tests for batched multi-head attention (the B and H ranks of Sec. IV-B)."""

import numpy as np
import pytest

from repro.analysis import count_passes, family, live_footprints, total_ops
from repro.cascades import attention_batched
from repro.functional import attention, evaluate_output

SHAPES = {"B": 2, "H": 3, "E": 4, "F": 5, "M": 8, "P": 6}


@pytest.fixture
def batched_inputs(rng):
    b, h, e, f, m, p = (SHAPES[k] for k in "BHEFMP")
    return {
        "Q": rng.normal(size=(b, h, e, p)),
        "K": rng.normal(size=(b, h, e, m)),
        "V": rng.normal(size=(b, h, f, m)),
    }


class TestBatchedNumerics:
    def test_matches_per_head_reference(self, batched_inputs):
        out = evaluate_output(attention_batched(), SHAPES, batched_inputs)
        for b in range(SHAPES["B"]):
            for h in range(SHAPES["H"]):
                expected = attention(
                    batched_inputs["Q"][b, h],
                    batched_inputs["K"][b, h],
                    batched_inputs["V"][b, h],
                )
                assert np.allclose(out[b, h], expected)

    def test_heads_are_independent(self, batched_inputs):
        """Perturbing one head changes only that head's output — the
        'no data sharing between batch elements' property of Sec. IV-B."""
        base = evaluate_output(attention_batched(), SHAPES, batched_inputs)
        modified = {k: v.copy() for k, v in batched_inputs.items()}
        # Perturb V (a uniform K shift would fall in softmax's invariant
        # subspace and change nothing).
        modified["V"][1, 2] += 10.0
        out = evaluate_output(attention_batched(), SHAPES, modified)
        assert not np.allclose(out[1, 2], base[1, 2])
        mask = np.ones(out.shape, dtype=bool)
        mask[1, 2] = False
        assert np.allclose(out[mask], base[mask])


class TestBatchedAnalysis:
    def test_pass_count_unchanged_by_batching(self):
        """B and H add outer loops; the M-rank pass structure is intact
        (the batched builder uses the div-opt form: 2 passes)."""
        assert count_passes(attention_batched(), family("m")).num_passes == 2

    def test_ops_scale_linearly_with_batch_and_heads(self):
        ops1 = total_ops(attention_batched(), SHAPES).total
        ops2 = total_ops(attention_batched(), dict(SHAPES, B=4)).total
        assert ops2 == 2 * ops1
        ops3 = total_ops(attention_batched(), dict(SHAPES, H=6)).total
        assert ops3 == 2 * ops1

    def test_footprints_scale_with_batch(self):
        shapes = {**SHAPES, "M": 64, "P": 16}
        analysis = count_passes(attention_batched(), family("m"))
        report = live_footprints(analysis, shapes)
        assert report.entries["QK"].family_elems == 64
        # Total live includes the B and H ranks.
        assert report.entries["QK"].total_elems == 2 * 3 * 64 * 16
