"""Unit tests for tensor references and expression trees."""


from repro.einsum import (
    Affine,
    Filter,
    Fixed,
    Literal,
    MUL,
    Map,
    EXP,
    Shifted,
    TensorRef,
    Unary,
    Var,
    ref,
)


class TestTensorRef:
    def test_of_coerces_strings(self):
        tr = TensorRef.of("A", "k", "m")
        assert tr.indices == (Var("k"), Var("m"))

    def test_vars_deduplicated_in_order(self):
        tr = TensorRef.of("K", "e", Affine((("m1", "M0"), ("m0", 1))))
        assert tr.vars() == ("e", "m1", "m0")

    def test_vars_include_filter_bound(self):
        tr = TensorRef.of("A", "k", filters=[Filter("k", "<=", Var("i"))])
        assert tr.vars() == ("k", "i")

    def test_carries(self):
        tr = TensorRef.of("A", "k", "m")
        assert tr.carries("k")
        assert not tr.carries("z")

    def test_fixed_does_not_carry(self):
        tr = TensorRef.of("RNV", "f", Fixed("M1"), "p")
        assert not tr.carries("m1")
        assert tr.is_fixed_coordinate(1)
        assert not tr.is_fixed_coordinate(0)

    def test_iterative_offset(self):
        tr = TensorRef.of("RM", Shifted("m1", 1), "p")
        assert tr.iterative_offset("m1") == 1
        assert tr.iterative_offset("p") == 0

    def test_rank_count(self):
        assert TensorRef.of("A", "k", "m", "n").rank_count() == 3

    def test_str(self):
        assert str(TensorRef.of("A", "k", "m")) == "A[k, m]"


class TestExprTrees:
    def test_leaf_refs(self):
        leaf = ref("A", "k")
        assert [r.tensor for r in leaf.refs()] == ["A"]

    def test_literal_has_no_refs(self):
        assert list(Literal(1.0).refs()) == []

    def test_map_refs_left_to_right(self):
        expr = Map(MUL, ref("A", "k"), ref("B", "k"))
        assert [r.tensor for r in expr.refs()] == ["A", "B"]

    def test_nested_map_refs(self):
        expr = Map(MUL, Map(MUL, ref("A", "k"), ref("B", "k")), ref("C", "m"))
        assert [r.tensor for r in expr.refs()] == ["A", "B", "C"]

    def test_unary_refs(self):
        expr = Unary(EXP, ref("QK", "m", "p"))
        assert [r.tensor for r in expr.refs()] == ["QK"]

    def test_vars_union_in_order(self):
        expr = Map(MUL, ref("A", "k", "m"), ref("B", "k", "n"))
        assert expr.vars() == ("k", "m", "n")

    def test_str_round_trip_mentions_ops(self):
        expr = Map(MUL, ref("A", "k"), ref("B", "k"))
        assert "mul" in str(expr)
