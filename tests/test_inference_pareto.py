"""Tests for the end-to-end inference model and the Fig. 12 design sweep."""

import pytest

from repro.arch import fusemax_arch
from repro.model import (
    ARRAY_DIMS,
    FLATModel,
    PARETO_SEQ_LEN,
    evaluate_inference,
    evaluate_linear,
    fusemax,
    pareto_frontier,
    sweep,
)
from repro.model.pareto import DesignPoint
from repro.workloads import BERT, XLM


class TestLinearLayers:
    def test_compute_bound_gemms(self):
        """The weight GEMMs have high arithmetic intensity at batch 64:
        near-full 2D utilization."""
        phase = evaluate_linear(fusemax_arch(), BERT, 4096)
        assert phase.busy_2d_cycles / phase.latency_cycles > 0.8

    def test_latency_scales_with_sequence(self):
        short = evaluate_linear(fusemax_arch(), BERT, 1024).latency_cycles
        long = evaluate_linear(fusemax_arch(), BERT, 4096).latency_cycles
        assert long == pytest.approx(4 * short, rel=0.05)

    def test_same_for_all_architectures(self):
        """The paper uses identical linear-layer mappings everywhere."""
        a = evaluate_linear(fusemax_arch(), BERT, 4096).latency_cycles
        b = evaluate_linear(FLATModel().arch, BERT, 4096).latency_cycles
        assert a == pytest.approx(b)

    def test_bigger_model_more_work(self):
        bert = evaluate_linear(fusemax_arch(), BERT, 4096).latency_cycles
        xlm = evaluate_linear(fusemax_arch(), XLM, 4096).latency_cycles
        assert xlm > bert


class TestInference:
    def test_latency_is_sum_of_parts(self):
        result = evaluate_inference(fusemax(), BERT, 4096)
        assert result.latency_cycles == pytest.approx(
            result.attention.latency_cycles + result.linear_latency_cycles
        )

    def test_energy_is_sum_of_parts(self):
        result = evaluate_inference(fusemax(), BERT, 4096)
        assert result.energy_pj == pytest.approx(
            result.attention.energy_pj + result.linear_energy.total
        )

    def test_linear_dominates_short_attention_dominates_long(self):
        short = evaluate_inference(fusemax(), BERT, 1024)
        long = evaluate_inference(fusemax(), BERT, 2**20)
        assert short.linear_latency_cycles > short.attention.latency_cycles
        assert long.attention.latency_cycles > long.linear_latency_cycles

    def test_e2e_speedup_compressed_vs_attention_only(self):
        """Adding identical linear layers to both designs shrinks ratios."""
        flat, fm = FLATModel(), fusemax()
        attn_ratio = (
            flat.evaluate(BERT, 16384).latency_cycles
            / fm.evaluate(BERT, 16384).latency_cycles
        )
        e2e_ratio = (
            evaluate_inference(flat, BERT, 16384).latency_cycles
            / evaluate_inference(fm, BERT, 16384).latency_cycles
        )
        assert e2e_ratio < attn_ratio


class TestParetoSweep:
    def test_sweep_covers_all_dims(self):
        points = sweep(BERT, seq_len=PARETO_SEQ_LEN)
        assert [p.array_dim for p in points] == list(ARRAY_DIMS)

    def test_latency_decreases_with_array_size(self):
        points = sweep(BERT)
        latencies = [p.latency_seconds for p in points]
        assert latencies == sorted(latencies, reverse=True)

    def test_area_increases_with_array_size(self):
        points = sweep(BERT)
        areas = [p.area_cm2 for p in points]
        assert areas == sorted(areas)

    def test_area_range_matches_paper_axis(self):
        """Fig. 12's x-axis spans roughly 0.1 to 10 cm^2."""
        points = sweep(BERT)
        assert points[0].area_cm2 < 0.5
        assert points[-1].area_cm2 > 5.0

    def test_all_points_on_frontier_for_this_family(self):
        """Scaling a balanced design trades area for latency monotonically,
        so every swept point is Pareto-optimal."""
        points = sweep(BERT)
        assert pareto_frontier(points) == sorted(points, key=lambda p: p.area_cm2)

    def test_frontier_filters_dominated_points(self):
        pts = [
            DesignPoint("x", 1, area_cm2=1.0, latency_seconds=10.0),
            DesignPoint("x", 2, area_cm2=2.0, latency_seconds=12.0),  # dominated
            DesignPoint("x", 3, area_cm2=3.0, latency_seconds=5.0),
        ]
        frontier = pareto_frontier(pts)
        assert [p.array_dim for p in frontier] == [1, 3]

    def test_xlm_slowest_per_area(self):
        """XLM's larger embeddings mean more work at equal area."""
        bert = {p.array_dim: p.latency_seconds for p in sweep(BERT)}
        xlm = {p.array_dim: p.latency_seconds for p in sweep(XLM)}
        for dim in ARRAY_DIMS:
            assert xlm[dim] > bert[dim]
