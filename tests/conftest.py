"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def attention_inputs(rng):
    """Small attention instance: Q[e,p], K[e,m], V[f,m] with M=16, M0=4."""
    e, f, m, p = 4, 5, 16, 3
    return {
        "Q": rng.normal(size=(e, p)),
        "K": rng.normal(size=(e, m)),
        "V": rng.normal(size=(f, m)),
    }


@pytest.fixture
def attention_shapes():
    return {"E": 4, "F": 5, "M": 16, "P": 3, "M0": 4, "M1": 4}
