"""Shared fixtures for the test suite."""

import numpy as np
import pytest

#: Differential-fuzz seed ranges, one disjoint block per generator
#: family.  Every randomized engine-parity test draws its seeds here so
#: a new family cannot silently re-run (or shadow) another family's
#: draws — extend by appending a fresh block past the current maximum.
FUZZ_SEED_RANGES = {
    "graph-interleaved": range(0, 60),
    "graph-serial": range(60, 100),
    "graph-wide": range(100, 120),
    "scenario-merged": range(120, 150),
    "scenario-bandwidth": range(150, 174),
    "cluster": range(174, 198),
    "buffer-qos": range(198, 234),
}


def fuzz_seeds(family: str) -> range:
    """The registered seed block of one fuzz family."""
    return FUZZ_SEED_RANGES[family]


def _assert_disjoint(ranges) -> None:
    names = sorted(ranges)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            overlap = set(ranges[a]) & set(ranges[b])
            assert not overlap, (
                f"fuzz seed ranges {a!r} and {b!r} overlap on "
                f"{sorted(overlap)[:5]}"
            )


_assert_disjoint(FUZZ_SEED_RANGES)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def attention_inputs(rng):
    """Small attention instance: Q[e,p], K[e,m], V[f,m] with M=16, M0=4."""
    e, f, m, p = 4, 5, 16, 3
    return {
        "Q": rng.normal(size=(e, p)),
        "K": rng.normal(size=(e, m)),
        "V": rng.normal(size=(f, m)),
    }


@pytest.fixture
def attention_shapes():
    return {"E": 4, "F": 5, "M": 16, "P": 3, "M0": 4, "M1": 4}
