"""Tests for mappings, bindings, tiling legality, and the GEMM mapper."""

import pytest

from repro.analysis import count_passes, family
from repro.arch import flat_arch, fusemax_arch
from repro.cascades import attention_1pass, attention_3pass
from repro.mapping import (
    Binding,
    BindingError,
    GemmShape,
    buffer_requirement,
    flat_binding,
    fusemax_binding,
    fusemax_mapping,
    fusion_groups,
    gemm_latency_cycles,
    search_gemm_mapping,
    validate_binding,
    validated_bindings,
)


class TestLoopNest:
    def test_mapping1_structure(self):
        rnv, av = fusemax_mapping()
        assert rnv.parallel_ranks() == ("p0", "m0")
        assert rnv.sequential_ranks() == ("p2", "m1", "p1")
        assert "BQK" in rnv.body and "RNV" in rnv.body
        assert av.body == ("AV",)

    def test_spatial_size_matches_pe_count(self):
        rnv, _ = fusemax_mapping()
        shapes = {"P0": 256, "M0": 256, "P1": 2, "P2": 2, "M1": 16}
        assert rnv.spatial_size(shapes) == 256 * 256

    def test_trip_count(self):
        rnv, _ = fusemax_mapping()
        shapes = {"P0": 256, "M0": 256, "P1": 2, "P2": 2, "M1": 16}
        assert rnv.trip_count(shapes) == 2 * 16 * 2

    def test_render_shows_parallel_for(self):
        rnv, _ = fusemax_mapping()
        text = rnv.render()
        assert "parallel_for m0" in text
        assert text.count("for") >= 5


class TestBindings:
    def test_all_three_validate(self):
        flat, cascade, fused = validated_bindings(flat_arch(), fusemax_arch())
        assert flat.on_array("2d") == ("QK", "AV")
        assert "SLN" in fused.on_array("2d")
        assert "SLN" in cascade.on_array("1d")

    def test_fusemax_interleaves_match_fig4(self):
        fused = fusemax_binding()
        assert ("SLNV", "BQK") in fused.interleaved
        assert ("SPNV", "RNV") in fused.interleaved

    def test_softmax_on_plain_2d_rejected(self):
        """FLAT's 2D PEs lack max: binding GM there must fail."""
        bad = Binding(
            name="bad",
            assignment={**flat_binding().assignment, "GM": "2d"},
        )
        with pytest.raises(BindingError, match="max"):
            validate_binding(bad, attention_3pass(), flat_arch())

    def test_softmax_on_fusemax_2d_accepted(self):
        moved = Binding(
            name="moved",
            assignment={**flat_binding().assignment, "GM": "2d", "SN": "2d"},
        )
        validate_binding(moved, attention_3pass(), fusemax_arch())

    def test_division_never_on_2d(self):
        bad = Binding(
            name="bad",
            assignment={**fusemax_binding().assignment, "AV": "2d"},
        )
        with pytest.raises(BindingError, match="divide"):
            validate_binding(bad, attention_1pass(), fusemax_arch())

    def test_unbound_einsum_rejected(self):
        partial = Binding(name="partial", assignment={"QK": "2d"})
        with pytest.raises(BindingError, match="unbound"):
            validate_binding(partial, attention_3pass(), flat_arch())

    def test_unknown_array_rejected(self):
        bad = Binding(
            name="bad",
            assignment={**flat_binding().assignment, "QK": "3d"},
        )
        with pytest.raises(BindingError, match="unknown array"):
            validate_binding(bad, attention_3pass(), flat_arch())

    def test_cross_array_interleave_rejected(self):
        bad = Binding(
            name="bad",
            assignment=fusemax_binding().assignment,
            interleaved=(("BQK", "RM"),),
        )
        with pytest.raises(BindingError, match="spans arrays"):
            validate_binding(bad, attention_1pass(), fusemax_arch())


class TestFusionGroups:
    def test_3pass_groups(self):
        analysis = count_passes(attention_3pass(), family("m"))
        groups = fusion_groups(analysis)
        assert groups.can_fuse("QK", "GM")
        assert groups.can_fuse("SN", "SD")
        assert not groups.can_fuse("QK", "SN")
        assert not groups.can_fuse("SN", "A")

    def test_1pass_everything_fusable(self):
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        groups = fusion_groups(analysis)
        labels = groups.groups[1]
        assert "BQK" in labels and "SLNV" in labels
        assert groups.can_fuse("BQK", "SLNV")

    def test_unknown_label_raises(self):
        analysis = count_passes(attention_3pass(), family("m"))
        with pytest.raises(KeyError):
            fusion_groups(analysis).group_of("NOPE")


class TestBufferRequirement:
    def test_3pass_outgrows_buffer(self):
        shapes = {"E": 64, "F": 64, "M": 262144, "P": 1024}
        analysis = count_passes(attention_3pass(), family("m"))
        req = buffer_requirement(analysis, shapes, capacity_bytes=16 * 2**20)
        assert not req.fits
        assert req.crossing_bytes > req.capacity_bytes

    def test_1pass_always_fits(self):
        shapes = {"E": 64, "F": 64, "M": 2**20, "P": 1024,
                  "M0": 256, "M1": 2**20 // 256}
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        req = buffer_requirement(analysis, shapes, capacity_bytes=16 * 2**20)
        assert req.fits


class TestGemmMapper:
    def test_small_gemm_reads_inputs_once(self):
        shape = GemmShape(m=256, n=256, k=64)
        mapping = search_gemm_mapping(shape, fusemax_arch())
        # Everything fits: traffic = A + B + Z exactly once.
        expected = shape.k * shape.m + shape.k * shape.n + shape.m * shape.n
        assert mapping.dram_words == expected

    def test_large_gemm_traffic_exceeds_minimum(self):
        shape = GemmShape(m=65536, n=65536, k=64)
        mapping = search_gemm_mapping(shape, fusemax_arch())
        minimum = shape.k * shape.m + shape.k * shape.n + shape.m * shape.n
        assert mapping.dram_words > minimum

    def test_mapping_respects_buffer(self):
        arch = fusemax_arch()
        shape = GemmShape(m=65536, n=65536, k=64)
        mapping = search_gemm_mapping(shape, arch)
        assert mapping.buffer_words * arch.word_bytes <= arch.global_buffer_bytes

    def test_smaller_buffer_never_reduces_traffic(self):
        shape = GemmShape(m=16384, n=16384, k=64)
        full = search_gemm_mapping(shape, fusemax_arch(), buffer_fraction=1.0)
        tiny = search_gemm_mapping(shape, fusemax_arch(), buffer_fraction=0.01)
        assert tiny.dram_words >= full.dram_words

    def test_latency_roofline(self):
        arch = fusemax_arch()
        shape = GemmShape(m=4096, n=4096, k=64)
        mapping = search_gemm_mapping(shape, arch)
        latency = gemm_latency_cycles(shape, arch, mapping)
        assert latency >= shape.macs / arch.pe_2d

    def test_traffic_per_mac(self):
        shape = GemmShape(m=256, n=256, k=64)
        mapping = search_gemm_mapping(shape, fusemax_arch())
        assert mapping.traffic_per_mac(shape) == pytest.approx(
            mapping.dram_words / shape.macs
        )
