"""Property-based tests (hypothesis) for the attention cascades.

These check the paper's functional-equivalence claims over randomly drawn
shapes and values rather than a fixed instance.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cascades import attention_1pass, attention_2pass, attention_3pass
from repro.functional import attention, evaluate_output, flash_attention


@st.composite
def attention_instances(draw):
    """Random (shapes, inputs) for a partitioned attention instance."""
    e = draw(st.integers(min_value=1, max_value=5))
    f = draw(st.integers(min_value=1, max_value=5))
    m0 = draw(st.integers(min_value=1, max_value=4))
    m1 = draw(st.integers(min_value=1, max_value=4))
    p = draw(st.integers(min_value=1, max_value=4))
    m = m0 * m1
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    scale = draw(st.sampled_from([0.1, 1.0, 10.0]))
    rng = np.random.default_rng(seed)
    shapes = {"E": e, "F": f, "M": m, "P": p, "M0": m0, "M1": m1}
    inputs = {
        "Q": scale * rng.normal(size=(e, p)),
        "K": scale * rng.normal(size=(e, m)),
        "V": rng.normal(size=(f, m)),
    }
    return shapes, inputs


@settings(max_examples=40, deadline=None)
@given(attention_instances())
def test_1pass_equals_3pass(instance):
    shapes, inputs = instance
    out1 = evaluate_output(attention_1pass(), shapes, inputs)
    out3 = evaluate_output(attention_3pass(), shapes, inputs)
    assert np.allclose(out1, out3, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(attention_instances())
def test_2pass_equals_3pass(instance):
    shapes, inputs = instance
    out2 = evaluate_output(attention_2pass(), shapes, inputs)
    out3 = evaluate_output(attention_3pass(), shapes, inputs)
    assert np.allclose(out2, out3, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(attention_instances())
def test_div_opt_is_pure_reassociation(instance):
    """Sec. IV-D: deferring the division changes op counts, not values."""
    shapes, inputs = instance
    plain = evaluate_output(attention_3pass(div_opt=False), shapes, inputs)
    opt = evaluate_output(attention_3pass(div_opt=True), shapes, inputs)
    assert np.allclose(plain, opt, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(attention_instances())
def test_cascade_matches_reference(instance):
    shapes, inputs = instance
    out = evaluate_output(attention_3pass(), shapes, inputs)
    assert np.allclose(out, attention(inputs["Q"], inputs["K"], inputs["V"]),
                       atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(attention_instances())
def test_attention_output_is_convex_combination(instance):
    """Each AV column is a convex combination of V columns, so it lies
    inside V's per-row value range — a softmax invariant."""
    shapes, inputs = instance
    out = evaluate_output(attention_1pass(), shapes, inputs)
    v = inputs["V"]
    lo = v.min(axis=1, keepdims=True) - 1e-9
    hi = v.max(axis=1, keepdims=True) + 1e-9
    assert np.all(out >= lo)
    assert np.all(out <= hi)


@settings(max_examples=30, deadline=None)
@given(attention_instances(), st.floats(min_value=-50.0, max_value=50.0))
def test_softmax_shift_invariance(instance, shift):
    """Adding a constant to all scores leaves attention unchanged — the
    identity behind replacing the global max with a running max."""
    shapes, inputs = instance
    out = flash_attention(inputs["Q"], inputs["K"], inputs["V"], shapes["M0"])
    # Shift keys so QK shifts by a constant per query: scale Q by appending
    # is complex; instead shift scores directly through the reference.
    q, k, v = inputs["Q"], inputs["K"], inputs["V"]
    qk = k.T @ q + shift
    shifted = qk - qk.max(axis=0, keepdims=True)
    numer = np.exp(shifted)
    expected = v @ (numer / numer.sum(axis=0, keepdims=True))
    assert np.allclose(out, expected, atol=1e-9)
