"""Tests for the standalone softmax cascades and the result metrics."""

import numpy as np
import pytest

from repro.arch.energy import EnergyBreakdown
from repro.cascades import naive_softmax, stable_softmax
from repro.functional import evaluate_output, softmax
from repro.model.metrics import AttentionResult


class TestSoftmaxCascades:
    @pytest.fixture
    def qk(self, rng):
        return rng.normal(size=(8, 3))

    def test_naive_matches_reference(self, qk):
        out = evaluate_output(naive_softmax(), {"M": 8, "P": 3}, {"QK": qk})
        assert np.allclose(out, softmax(qk))

    def test_stable_matches_reference(self, qk):
        out = evaluate_output(stable_softmax(), {"M": 8, "P": 3}, {"QK": qk})
        assert np.allclose(out, softmax(qk))

    def test_stable_survives_large_inputs(self, rng):
        qk = 500.0 * rng.normal(size=(8, 3))
        out = evaluate_output(stable_softmax(), {"M": 8, "P": 3}, {"QK": qk})
        assert np.all(np.isfinite(out))
        assert np.allclose(out.sum(axis=0), 1.0)

    def test_naive_overflows_on_large_inputs(self, rng):
        qk = 500.0 * np.abs(rng.normal(size=(8, 3)))
        with np.errstate(over="ignore", invalid="ignore"):
            out = evaluate_output(naive_softmax(), {"M": 8, "P": 3}, {"QK": qk})
        assert not np.all(np.isfinite(out))

    def test_columns_are_distributions(self, qk):
        out = evaluate_output(stable_softmax(), {"M": 8, "P": 3}, {"QK": qk})
        assert np.all(out > 0)
        assert np.allclose(out.sum(axis=0), 1.0)


class TestAttentionResultMetrics:
    def _result(self, latency, busy2d, busy1d):
        return AttentionResult(
            config="test",
            model="BERT",
            seq_len=1024,
            latency_cycles=latency,
            busy_2d_cycles=busy2d,
            busy_1d_cycles=busy1d,
            dram_bytes=1000.0,
            glb_words=10.0,
            energy=EnergyBreakdown({"compute_2d": 50.0, "dram": 50.0}),
            per_einsum_2d_cycles={"QK": busy2d / 2, "AV": busy2d / 2},
        )

    def test_utilizations(self):
        result = self._result(100.0, 80.0, 40.0)
        assert result.util_2d == pytest.approx(0.8)
        assert result.util_1d == pytest.approx(0.4)

    def test_utilization_clamped_to_one(self):
        result = self._result(100.0, 120.0, 40.0)
        assert result.util_2d == 1.0

    def test_energy_total(self):
        assert self._result(100.0, 80.0, 40.0).energy_pj == 100.0

    def test_einsum_shares(self):
        result = self._result(100.0, 80.0, 40.0)
        shares = result.einsum_share_of_latency()
        assert shares["QK"] == pytest.approx(0.4)
        assert sum(shares.values()) == pytest.approx(result.util_2d)
