"""Unit tests for the cascade interpreter core mechanics."""

import numpy as np
import pytest

from repro.einsum import (
    ADD,
    Affine,
    Cascade,
    Einsum,
    Fixed,
    Filter,
    IterativeRank,
    Literal,
    MAX_REDUCE,
    MUL,
    Map,
    EXP,
    Shifted,
    TensorRef,
    Unary,
    Var,
    ref,
)
from repro.functional.interpreter import (
    Interpreter,
    InterpreterError,
    evaluate,
    evaluate_output,
)


def _single(name, einsums, inputs, ranks, **kwargs):
    return Cascade.build(name, einsums, inputs, ranks, **kwargs)


class TestBasicEinsums:
    def test_gemm(self, rng):
        gemm = Einsum(
            output=TensorRef.of("Z", "m", "n"),
            expr=Map(MUL, ref("A", "k", "m"), ref("B", "k", "n")),
            name="Z",
        )
        cascade = _single("gemm", [gemm], ["A", "B"], {"k": "K", "m": "M", "n": "N"})
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 5))
        out = evaluate_output(cascade, {"K": 3, "M": 4, "N": 5}, {"A": a, "B": b})
        assert np.allclose(out, a.T @ b)

    def test_elementwise_unary(self, rng):
        e = Einsum(
            output=TensorRef.of("Z", "m"), expr=Unary(EXP, ref("A", "m")), name="Z"
        )
        cascade = _single("exp", [e], ["A"], {"m": "M"})
        a = rng.normal(size=6)
        out = evaluate_output(cascade, {"M": 6}, {"A": a})
        assert np.allclose(out, np.exp(a))

    def test_max_reduction(self, rng):
        e = Einsum(
            output=TensorRef.of("Z", "n"),
            expr=ref("A", "m", "n"),
            reductions={"m": MAX_REDUCE},
            name="Z",
        )
        cascade = _single("rowmax", [e], ["A"], {"m": "M", "n": "N"})
        a = rng.normal(size=(4, 3))
        out = evaluate_output(cascade, {"M": 4, "N": 3}, {"A": a})
        assert np.allclose(out, a.max(axis=0))

    def test_scalar_output(self, rng):
        e = Einsum(
            output=TensorRef.of("Z"),
            expr=Map(MUL, ref("A", "k"), ref("B", "k")),
            name="Z",
        )
        cascade = _single("dot", [e], ["A", "B"], {"k": "K"})
        a, b = rng.normal(size=4), rng.normal(size=4)
        out = evaluate_output(cascade, {"K": 4}, {"A": a, "B": b})
        assert np.isclose(out, a @ b)

    def test_broadcast_literal_initialisation(self):
        init = Einsum(
            output=TensorRef.of("S", "p"),
            expr=Literal(7.0),
            name="S",
        )
        cascade = _single("fill", [init], [], {"p": "P"})
        out = evaluate(cascade, {"P": 3}, {})["S"]
        assert out.tolist() == [7.0, 7.0, 7.0]


class TestAffineIndexing:
    def test_partition_view(self, rng):
        split = Affine((("m1", "M0"), ("m0", 1)))
        bk = Einsum(
            output=TensorRef.of("BK", "e", "m1", "m0"),
            expr=ref("K", "e", split),
            name="BK",
        )
        cascade = _single(
            "split", [bk], ["K"], {"e": "E", "m1": "M1", "m0": "M0"}
        )
        k = rng.normal(size=(2, 12))
        out = evaluate(cascade, {"E": 2, "M1": 3, "M0": 4}, {"K": k})["BK"]
        assert out.shape == (2, 3, 4)
        assert np.allclose(out, k.reshape(2, 3, 4))

    def test_strided_gather(self, rng):
        stride2 = Affine((("j", 2),))
        e = Einsum(
            output=TensorRef.of("Z", "j"), expr=ref("A", stride2), name="Z"
        )
        cascade = _single("stride", [e], ["A"], {"j": "J"})
        a = rng.normal(size=8)
        out = evaluate_output(cascade, {"J": 4}, {"A": a})
        assert np.allclose(out, a[::2])


class TestFixedAndShifted:
    def test_fixed_read(self, rng):
        e = Einsum(
            output=TensorRef.of("Z", "n"), expr=ref("A", Fixed(2), "n"), name="Z"
        )
        cascade = _single("fixed", [e], ["A"], {"n": "N"})
        a = rng.normal(size=(4, 3))
        out = evaluate_output(cascade, {"N": 3}, {"A": a})
        assert np.allclose(out, a[2])

    def test_shifted_lhs_writes_offset_slice(self, rng):
        e = Einsum(
            output=TensorRef.of("S", Shifted("i", 1)),
            expr=ref("A", "i"),
            name="S",
        )
        cascade = _single("shift", [e], ["A"], {"i": "K"})
        a = rng.normal(size=5)
        out = evaluate(cascade, {"K": 5}, {"A": a})["S"]
        assert out.shape == (6,)
        assert out[0] == 0.0
        assert np.allclose(out[1:], a)


class TestFilters:
    def test_bound_filter_prefix(self, rng):
        """S[i+1] = A[k: k<=i] computes prefix sums (quadratic form)."""
        e = Einsum(
            output=TensorRef.of("S", Shifted("i", 1)),
            expr=ref("A", "k", filters=[Filter("k", "<=", Var("i"))]),
            name="S",
        )
        cascade = _single("prefix", [e], ["A"], {"i": "K", "k": "K"})
        a = rng.normal(size=5)
        out = evaluate(cascade, {"K": 5}, {"A": a})["S"]
        assert np.allclose(out[1:], np.cumsum(a))

    def test_strict_filter(self, rng):
        e = Einsum(
            output=TensorRef.of("S", Shifted("i", 1)),
            expr=ref("A", "k", filters=[Filter("k", "<", Var("i"))]),
            name="S",
        )
        cascade = _single("prefix-lt", [e], ["A"], {"i": "K", "k": "K"})
        a = rng.normal(size=4)
        out = evaluate(cascade, {"K": 4}, {"A": a})["S"]
        # k < i excludes element i: S[i+1] = sum(a[:i])
        assert np.allclose(out[1:], np.concatenate([[0], np.cumsum(a)[:-1]]))


class TestIterative:
    def test_running_sum_matches_cumsum(self, rng):
        init = Einsum(
            output=TensorRef.of("S", Fixed(0)),
            expr=Literal(0.0),
            is_initialization=True,
            name="S0",
        )
        step = Einsum(
            output=TensorRef.of("S", Shifted("i", 1)),
            expr=Map(ADD, ref("S", "i"), ref("A", "i")),
            name="S",
        )
        cascade = _single(
            "runsum",
            [init, step],
            ["A"],
            {"i": "K"},
            iterative=[IterativeRank("i", "K")],
        )
        a = rng.normal(size=6)
        out = evaluate(cascade, {"K": 6}, {"A": a})["S"]
        assert np.allclose(out, np.concatenate([[0.0], np.cumsum(a)]))

    def test_post_loop_einsum_reads_final_coordinate(self, rng):
        init = Einsum(
            output=TensorRef.of("S", Fixed(0)),
            expr=Literal(0.0),
            is_initialization=True,
            name="S0",
        )
        step = Einsum(
            output=TensorRef.of("S", Shifted("i", 1)),
            expr=Map(ADD, ref("S", "i"), ref("A", "i")),
            name="S",
        )
        final = Einsum(
            output=TensorRef.of("Z"), expr=ref("S", Fixed("K")), name="Z"
        )
        cascade = _single(
            "runsum-final",
            [init, step, final],
            ["A"],
            {"i": "K"},
            iterative=[IterativeRank("i", "K")],
            outputs=["Z"],
        )
        a = rng.normal(size=6)
        out = evaluate_output(cascade, {"K": 6}, {"A": a})
        assert np.isclose(out, a.sum())


class TestErrors:
    def test_missing_input_raises(self):
        cascade = _single(
            "dot",
            [
                Einsum(
                    output=TensorRef.of("Z"),
                    expr=Map(MUL, ref("A", "k"), ref("B", "k")),
                    name="Z",
                )
            ],
            ["A", "B"],
            {"k": "K"},
        )
        with pytest.raises(InterpreterError, match="missing input"):
            Interpreter(cascade, {"K": 4}, {"A": np.ones(4)})

    def test_multiple_outputs_need_explicit_name(self, rng):
        e1 = Einsum(output=TensorRef.of("Y"), expr=Map(MUL, ref("A", "k"), ref("B", "k")), name="Y")
        e2 = Einsum(output=TensorRef.of("X"), expr=ref("A", "k"), name="X")
        cascade = _single("two", [e1, e2], ["A", "B"], {"k": "K"})
        a, b = rng.normal(size=3), rng.normal(size=3)
        with pytest.raises(InterpreterError, match="outputs"):
            evaluate_output(cascade, {"K": 3}, {"A": a, "B": b})
        assert np.isclose(
            evaluate_output(cascade, {"K": 3}, {"A": a, "B": b}, "X"), a.sum()
        )
