"""Differential tests: event-driven scheduler vs the cycle-accurate oracle.

The event engine's contract is *bit-identical* ``SimResult`` values on
every task graph — same makespan, same per-resource busy cycles, same
per-task finish times.  These tests check it on randomized task graphs
(property style), on hand-built edge cases, on the Fig. 4/5 pipeline
graphs, and through the binding-sweep runtime path.
"""

import json
import random

import pytest

from repro.runtime import (
    ResultCache,
    RunRegistry,
    decode_result,
    encode_result,
    sweep_bindings,
)
from repro.simulator import (
    BindingPoint,
    BindingResult,
    PipelineConfig,
    Simulator,
    Task,
    binding_sim,
    compare_bindings,
    evaluate_binding_point,
    simulate_binding,
    sweep_csv,
    sweep_json,
    sweep_table,
)


def both(tasks, mode="interleaved", slots=2, max_cycles=10_000_000):
    """Run both engines; assert equality; return the shared result."""
    cycle = Simulator(tasks, mode=mode, slots=slots, engine="cycle").run(
        max_cycles=max_cycles
    )
    event = Simulator(tasks, mode=mode, slots=slots, engine="event").run(
        max_cycles=max_cycles
    )
    assert event == cycle
    assert dict(event.busy_cycles) == dict(cycle.busy_cycles)
    assert dict(event.finish_times) == dict(cycle.finish_times)
    return event


def random_graph(rng, max_tasks=40, allow_zero=True):
    """A random dependency DAG (deps point at earlier tasks only)."""
    n = rng.randint(1, max_tasks)
    resources = [f"r{i}" for i in range(rng.randint(1, 3))]
    tasks = []
    for i in range(n):
        duration = rng.randint(0, 6) if allow_zero else rng.randint(1, 6)
        n_deps = rng.randint(0, min(3, i))
        # Duplicates are deliberate: dep lists need not be unique.
        deps = tuple(f"t{rng.randint(0, i - 1)}" for _ in range(n_deps))
        tasks.append(Task(f"t{i}", rng.choice(resources), duration, deps))
    return tasks


class TestDifferentialRandom:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_graphs_interleaved(self, seed):
        rng = random.Random(seed)
        tasks = random_graph(rng, allow_zero=seed % 2 == 0)
        both(tasks, mode="interleaved", slots=rng.randint(1, 4))

    @pytest.mark.parametrize("seed", range(60, 100))
    def test_random_graphs_serial(self, seed):
        rng = random.Random(seed)
        tasks = random_graph(rng, allow_zero=seed % 2 == 0)
        both(tasks, mode="serial")

    @pytest.mark.parametrize("seed", range(100, 120))
    def test_wide_graphs_many_slots(self, seed):
        """More ready tasks than slots: the pending frontier is exercised."""
        rng = random.Random(seed)
        tasks = [
            Task(f"t{i}", "r0", rng.randint(1, 9)) for i in range(30)
        ]
        both(tasks, slots=rng.randint(2, 5))


class TestDifferentialEdgeCases:
    def test_empty_graph(self):
        result = both([])
        assert result.makespan == 0
        assert dict(result.busy_cycles) == {}

    def test_single_zero_duration_task(self):
        result = both([Task("a", "r", 0)])
        assert result.makespan == 0
        assert result.finish_times["a"] == 0

    def test_zero_duration_chain_feeds_dependents(self):
        tasks = [
            Task("a", "r", 0),
            Task("b", "r", 3, deps=("a",)),
            Task("c", "r", 0, deps=("b",)),
            Task("d", "r", 2, deps=("c",)),
        ]
        result = both(tasks)
        assert result.finish_times["a"] == 0
        # Zero-duration tasks complete at t=0 unconditionally (both
        # engines), so d never waits for b.
        assert result.finish_times["c"] == 0

    def test_single_resource_saturates(self):
        tasks = [Task(f"t{i}", "r", 5) for i in range(6)]
        result = both(tasks)
        assert result.makespan == 30
        assert result.utilization("r") == 1.0

    def test_duplicate_deps_tolerated(self):
        tasks = [Task("a", "r", 2), Task("b", "r", 2, deps=("a", "a", "a"))]
        assert both(tasks).makespan == 4

    def test_interleave_rotation_matches(self):
        """Unequal durations: the ceil/floor rotation split must agree."""
        tasks = [Task("a", "r", 7), Task("b", "r", 3), Task("c", "r", 5)]
        for slots in (1, 2, 3, 4):
            both(tasks, slots=slots)

    def test_cross_resource_pipeline(self):
        tasks = [Task("a", "x", 4), Task("b", "y", 4, deps=("a",)),
                 Task("c", "x", 4, deps=("a",)), Task("d", "y", 4, deps=("b", "c"))]
        both(tasks)

    def test_deadlock_raises_in_both_engines(self):
        tasks = [Task("a", "r", 1, deps=("b",)), Task("b", "r", 1, deps=("a",))]
        for engine in ("event", "cycle"):
            sim = Simulator(tasks, engine=engine)
            with pytest.raises(RuntimeError, match="max_cycles"):
                sim.run(max_cycles=100)

    def test_max_cycles_exceeded_raises_in_both_engines(self):
        tasks = [Task("a", "r", 50)]
        for engine in ("event", "cycle"):
            sim = Simulator([*tasks], engine=engine)
            with pytest.raises(RuntimeError, match="max_cycles"):
                sim.run(max_cycles=10)

    def test_makespan_exactly_at_max_cycles_succeeds(self):
        for engine in ("event", "cycle"):
            result = Simulator([Task("a", "r", 10)], engine=engine).run(
                max_cycles=10
            )
            assert result.makespan == 10

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Simulator([Task("a", "r", 1)], engine="quantum")

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            Simulator([Task("a", "r", 1)], slots=0)


class TestDifferentialPipeline:
    @pytest.mark.parametrize("chunks", (1, 2, 7, 32))
    @pytest.mark.parametrize("binding", ("tile-serial", "interleaved"))
    def test_fig45_graphs_identical(self, chunks, binding):
        config = PipelineConfig(chunks=chunks)
        event = simulate_binding(config, binding, engine="event")
        cycle = simulate_binding(config, binding, engine="cycle")
        assert event == cycle

    def test_small_array_identical(self):
        config = PipelineConfig(chunks=5, array_dim=32, pe_1d=32)
        for binding in ("tile-serial", "interleaved"):
            tasks, event = binding_sim(config, binding, engine="event")
            _, cycle = binding_sim(config, binding, engine="cycle")
            assert event == cycle
            assert len(event.finish_times) == len(tasks)

    def test_compare_bindings_engine_parity(self):
        config = PipelineConfig(chunks=12)
        assert compare_bindings(config, engine="event") == compare_bindings(
            config, engine="cycle"
        )

    def test_long_sequence_point_runs(self):
        """The regime the cycle engine cannot reach: 2048 chunks."""
        report = simulate_binding(PipelineConfig(chunks=2048), "interleaved")
        assert report.util_2d > 0.95
        assert report.util_1d > 0.95


class TestBindingSweep:
    GRID = dict(chunks=(16, 64), array_dims=(128,))

    def test_point_evaluation_matches_direct_simulation(self):
        point = BindingPoint("interleaved", 16, array_dim=128)
        result = evaluate_binding_point(point)
        report = simulate_binding(point.config(), "interleaved")
        assert result.makespan == report.makespan
        assert result.util_2d == report.util_2d
        assert result.seq_len == 16 * 128

    def test_invalid_point_rejected(self):
        with pytest.raises(ValueError, match="binding"):
            BindingPoint("magic", 16)
        with pytest.raises(ValueError, match="chunks"):
            BindingPoint("interleaved", 0)

    def test_sweep_keys_and_monotone_utilization(self):
        results = sweep_bindings(**self.GRID, cache=False)
        assert set(results) == {
            (binding, chunks, 128)
            for binding in ("tile-serial", "interleaved")
            for chunks in (16, 64)
        }
        # Steady state: interleaved utilization grows with length while
        # tile-serial stays pinned by per-tile fill/drain.
        inter = [results[("interleaved", n, 128)].util_2d for n in (16, 64)]
        serial = [results[("tile-serial", n, 128)].util_2d for n in (16, 64)]
        assert inter[1] > inter[0]
        assert abs(serial[1] - serial[0]) < 0.01

    def test_sweep_parallel_and_cached_identical(self, tmp_path):
        baseline = sweep_bindings(**self.GRID, cache=False)
        parallel = sweep_bindings(**self.GRID, jobs=2, cache=False)
        assert parallel == baseline
        disk = ResultCache(directory=tmp_path / "cache")
        populated = sweep_bindings(**self.GRID, cache=disk)
        fresh = ResultCache(directory=tmp_path / "cache")
        warm = sweep_bindings(**self.GRID, cache=fresh)
        assert populated == baseline and warm == baseline
        assert fresh.stats.disk_hits == len(baseline)

    def test_sweep_records_run(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        sweep_bindings(**self.GRID, cache=False, registry=registry)
        record = registry.last_recorded
        assert record.kind == "binding"
        assert record.n_results == 4
        assert "tile-serial@128" in record.grid["configs"]

    def test_binding_result_cache_codec_roundtrip(self):
        result = evaluate_binding_point(BindingPoint("tile-serial", 16))
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_emitters(self):
        results = sweep_bindings(**self.GRID, cache=False)
        csv_text = sweep_csv(results)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("binding,chunks,array_dim,seq_len")
        assert len(lines) == 1 + len(results)
        rows = json.loads(sweep_json(results))
        assert len(rows) == len(results)
        assert {row["binding"] for row in rows} == {
            "tile-serial", "interleaved"
        }
        table = sweep_table(results)
        assert "util_2d" in table.splitlines()[0]

    def test_binding_result_fields_consistent(self):
        result = evaluate_binding_point(BindingPoint("interleaved", 16))
        assert isinstance(result, BindingResult)
        assert result.util_2d == pytest.approx(
            result.busy_2d / result.makespan
        )


class TestSweepCLI:
    def test_simulate_engines_print_identical_output(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--chunks", "6", "--engine", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["simulate", "--chunks", "6", "--engine", "cycle"]) == 0
        assert capsys.readouterr().out == event_out

    def test_simulate_sweep_csv(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--sweep", "--chunks-list", "16,32",
            "--arrays", "128", "--format", "csv", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("binding,chunks,array_dim")
        assert len(out.strip().splitlines()) == 5

    def test_simulate_sweep_output_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "sweep.json"
        code = main([
            "simulate", "--sweep", "--chunks-list", "16",
            "--arrays", "128", "--format", "json",
            "--output", str(target), "--no-cache",
        ])
        assert code == 0
        assert "sweep.json" in capsys.readouterr().out
        rows = json.loads(target.read_text())
        assert len(rows) == 2

    def test_simulate_sweep_bad_chunks_list(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--sweep", "--chunks-list", "16,banana"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_simulate_sweep_bad_arrays(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--sweep", "--arrays", "x"]) == 2
        assert "--arrays" in capsys.readouterr().err

    def test_simulate_sweep_rejects_cycle_engine(self, capsys):
        from repro.cli import main

        code = main(["simulate", "--sweep", "--engine", "cycle",
                     "--chunks-list", "16"])
        assert code == 2
        assert "event-driven core" in capsys.readouterr().err
