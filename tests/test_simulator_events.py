"""Differential tests: event-driven scheduler vs the cycle-accurate oracle.

The event engine's contract is *bit-identical* ``SimResult`` values on
every task graph — same makespan, same per-resource busy cycles, same
per-task finish times.  These tests check it on randomized task graphs
(property style), on hand-built edge cases, on the Fig. 4/5 pipeline
graphs, and through the binding-sweep runtime path.
"""

import json
import random
from dataclasses import replace

import pytest
from conftest import fuzz_seeds

from repro.cluster import (
    ClusterSpec,
    build_cluster_tasks,
    cluster_link_cycles,
    cluster_sim,
)
from repro.model.scenario import analytical_scenario
from repro.runtime import (
    ResultCache,
    RunRegistry,
    decode_result,
    encode_result,
    sweep_bindings,
    sweep_scenarios,
)
from repro.simulator import (
    BindingPoint,
    BindingResult,
    PipelineConfig,
    ScenarioResult,
    Simulator,
    Task,
    binding_sim,
    build_decode_tasks,
    build_scenario_tasks,
    build_tasks,
    chunk_work,
    compare_bindings,
    evaluate_binding_point,
    evaluate_scenario_point,
    scenario_csv,
    scenario_json,
    scenario_sim,
    scenario_table,
    simulate_binding,
    sweep_csv,
    sweep_json,
    sweep_table,
)
from repro.workloads import BERT
from repro.workloads.scenario import (
    Phase,
    Scenario,
    attention_scenario,
    scenario_from_model,
)


def random_scenario(rng, dram_bw="maybe") -> Scenario:
    """A random multi-instance scenario for merged-graph fuzzing.

    Covers mixed-model graphs (independent per-phase embedding widths)
    and, with ``dram_bw`` left at ``"maybe"``, draws the bandwidth from
    {None, tight, ample}; pass an explicit value to pin it.
    """
    phases = [
        Phase(
            "prefill", rng.randint(1, 4), rng.randint(1, 5),
            embedding=rng.choice((None, 8, 16)),
        )
    ]
    if rng.random() < 0.5:
        phases.append(
            Phase(
                "decode", rng.randint(1, 3), rng.randint(1, 6),
                embedding=rng.choice((None, 8, 32)),
            )
        )
    array_dim = rng.choice((16, 32, 64))
    if dram_bw == "maybe":
        dram_bw = rng.choice((None, 8.0, 1e9))
    return Scenario(
        name=f"fuzz-{rng.randint(0, 10**6)}",
        phases=tuple(phases),
        binding=rng.choice(("tile-serial", "interleaved")),
        embedding=rng.choice((8, 16, 64)),
        array_dim=array_dim,
        pe_1d=rng.choice((None, array_dim // 2, 2 * array_dim)),
        slots=rng.randint(2, 4),
        dram_bw=dram_bw,
    )


def both(tasks, mode="interleaved", slots=2, max_cycles=10_000_000):
    """Run all three engines; assert equality; return the shared result."""
    cycle = Simulator(tasks, mode=mode, slots=slots, engine="cycle").run(
        max_cycles=max_cycles
    )
    for engine in ("event", "vector"):
        result = Simulator(tasks, mode=mode, slots=slots, engine=engine).run(
            max_cycles=max_cycles
        )
        assert result == cycle
        assert dict(result.busy_cycles) == dict(cycle.busy_cycles)
        assert dict(result.finish_times) == dict(cycle.finish_times)
    return cycle


def random_graph(rng, max_tasks=40, allow_zero=True):
    """A random dependency DAG (deps point at earlier tasks only)."""
    n = rng.randint(1, max_tasks)
    resources = [f"r{i}" for i in range(rng.randint(1, 3))]
    tasks = []
    for i in range(n):
        duration = rng.randint(0, 6) if allow_zero else rng.randint(1, 6)
        n_deps = rng.randint(0, min(3, i))
        # Duplicates are deliberate: dep lists need not be unique.
        deps = tuple(f"t{rng.randint(0, i - 1)}" for _ in range(n_deps))
        tasks.append(Task(f"t{i}", rng.choice(resources), duration, deps))
    return tasks


class TestDifferentialRandom:
    @pytest.mark.parametrize("seed", fuzz_seeds("graph-interleaved"))
    def test_random_graphs_interleaved(self, seed):
        rng = random.Random(seed)
        tasks = random_graph(rng, allow_zero=seed % 2 == 0)
        both(tasks, mode="interleaved", slots=rng.randint(1, 4))

    @pytest.mark.parametrize("seed", fuzz_seeds("graph-serial"))
    def test_random_graphs_serial(self, seed):
        rng = random.Random(seed)
        tasks = random_graph(rng, allow_zero=seed % 2 == 0)
        both(tasks, mode="serial")

    @pytest.mark.parametrize("seed", fuzz_seeds("graph-wide"))
    def test_wide_graphs_many_slots(self, seed):
        """More ready tasks than slots: the pending frontier is exercised."""
        rng = random.Random(seed)
        tasks = [
            Task(f"t{i}", "r0", rng.randint(1, 9)) for i in range(30)
        ]
        both(tasks, slots=rng.randint(2, 5))


class TestDifferentialEdgeCases:
    def test_empty_graph(self):
        result = both([])
        assert result.makespan == 0
        assert dict(result.busy_cycles) == {}

    def test_single_zero_duration_task(self):
        result = both([Task("a", "r", 0)])
        assert result.makespan == 0
        assert result.finish_times["a"] == 0

    def test_zero_duration_chain_feeds_dependents(self):
        tasks = [
            Task("a", "r", 0),
            Task("b", "r", 3, deps=("a",)),
            Task("c", "r", 0, deps=("b",)),
            Task("d", "r", 2, deps=("c",)),
        ]
        result = both(tasks)
        assert result.finish_times["a"] == 0
        # Zero-duration tasks complete at t=0 unconditionally (both
        # engines), so d never waits for b.
        assert result.finish_times["c"] == 0

    def test_single_resource_saturates(self):
        tasks = [Task(f"t{i}", "r", 5) for i in range(6)]
        result = both(tasks)
        assert result.makespan == 30
        assert result.utilization("r") == 1.0

    def test_duplicate_deps_tolerated(self):
        tasks = [Task("a", "r", 2), Task("b", "r", 2, deps=("a", "a", "a"))]
        assert both(tasks).makespan == 4

    def test_interleave_rotation_matches(self):
        """Unequal durations: the ceil/floor rotation split must agree."""
        tasks = [Task("a", "r", 7), Task("b", "r", 3), Task("c", "r", 5)]
        for slots in (1, 2, 3, 4):
            both(tasks, slots=slots)

    def test_cross_resource_pipeline(self):
        tasks = [Task("a", "x", 4), Task("b", "y", 4, deps=("a",)),
                 Task("c", "x", 4, deps=("a",)), Task("d", "y", 4, deps=("b", "c"))]
        both(tasks)

    def test_deadlock_raises_in_both_engines(self):
        tasks = [Task("a", "r", 1, deps=("b",)), Task("b", "r", 1, deps=("a",))]
        for engine in ("event", "cycle", "vector"):
            sim = Simulator(tasks, engine=engine)
            with pytest.raises(RuntimeError, match="max_cycles"):
                sim.run(max_cycles=100)

    def test_max_cycles_exceeded_raises_in_both_engines(self):
        tasks = [Task("a", "r", 50)]
        for engine in ("event", "cycle", "vector"):
            sim = Simulator([*tasks], engine=engine)
            with pytest.raises(RuntimeError, match="max_cycles"):
                sim.run(max_cycles=10)

    def test_makespan_exactly_at_max_cycles_succeeds(self):
        for engine in ("event", "cycle", "vector"):
            result = Simulator([Task("a", "r", 10)], engine=engine).run(
                max_cycles=10
            )
            assert result.makespan == 10

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Simulator([Task("a", "r", 1)], engine="quantum")

    def test_invalid_slots_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            Simulator([Task("a", "r", 1)], slots=0)


class TestDifferentialPipeline:
    @pytest.mark.parametrize("chunks", (1, 2, 7, 32))
    @pytest.mark.parametrize("binding", ("tile-serial", "interleaved"))
    def test_fig45_graphs_identical(self, chunks, binding):
        config = PipelineConfig(chunks=chunks)
        event = simulate_binding(config, binding, engine="event")
        cycle = simulate_binding(config, binding, engine="cycle")
        assert event == cycle

    def test_small_array_identical(self):
        config = PipelineConfig(chunks=5, array_dim=32, pe_1d=32)
        for binding in ("tile-serial", "interleaved"):
            tasks, event = binding_sim(config, binding, engine="event")
            _, cycle = binding_sim(config, binding, engine="cycle")
            assert event == cycle
            assert len(event.finish_times) == len(tasks)

    def test_compare_bindings_engine_parity(self):
        config = PipelineConfig(chunks=12)
        assert compare_bindings(config, engine="event") == compare_bindings(
            config, engine="cycle"
        )

    def test_long_sequence_point_runs(self):
        """The regime the cycle engine cannot reach: 2048 chunks."""
        report = simulate_binding(PipelineConfig(chunks=2048), "interleaved")
        assert report.util_2d > 0.95
        assert report.util_1d > 0.95


class TestBindingSweep:
    GRID = dict(chunks=(16, 64), array_dims=(128,))

    def test_point_evaluation_matches_direct_simulation(self):
        point = BindingPoint("interleaved", 16, array_dim=128)
        result = evaluate_binding_point(point)
        report = simulate_binding(point.config(), "interleaved")
        assert result.makespan == report.makespan
        assert result.util_2d == report.util_2d
        assert result.seq_len == 16 * 128

    def test_invalid_point_rejected(self):
        with pytest.raises(ValueError, match="binding"):
            BindingPoint("magic", 16)
        with pytest.raises(ValueError, match="chunks"):
            BindingPoint("interleaved", 0)

    def test_sweep_keys_and_monotone_utilization(self):
        results = sweep_bindings(**self.GRID, cache=False)
        assert set(results) == {
            (binding, chunks, 128, 128, 64)
            for binding in ("tile-serial", "interleaved")
            for chunks in (16, 64)
        }
        # Steady state: interleaved utilization grows with length while
        # tile-serial stays pinned by per-tile fill/drain.
        inter = [results[("interleaved", n, 128, 128, 64)].util_2d
                 for n in (16, 64)]
        serial = [results[("tile-serial", n, 128, 128, 64)].util_2d
                  for n in (16, 64)]
        assert inter[1] > inter[0]
        assert abs(serial[1] - serial[0]) < 0.01

    def test_embedding_and_pe1d_sweep_independently(self):
        results = sweep_bindings(
            chunks=(16,), array_dims=(128,),
            embeddings=(32, 64), pe_1d_dims=(64, None), cache=False,
        )
        assert set(results) == {
            ("tile-serial", 16, 128, pe_1d, e)
            for pe_1d in (64, 128) for e in (32, 64)
        } | {
            ("interleaved", 16, 128, pe_1d, e)
            for pe_1d in (64, 128) for e in (32, 64)
        }
        # Halving the 1D lanes doubles per-chunk 1D work: the narrow
        # array must not be faster.
        narrow = results[("interleaved", 16, 128, 64, 64)]
        matched = results[("interleaved", 16, 128, 128, 64)]
        assert narrow.busy_1d > matched.busy_1d
        assert narrow.makespan >= matched.makespan
        # The new columns ride through the row/codec path.
        assert narrow.pe_1d == 64 and narrow.embedding == 64
        payload = json.loads(json.dumps(encode_result(narrow)))
        assert decode_result(payload) == narrow

    def test_pe1d_none_and_matched_value_collapse_once(self):
        """None resolves to the matched floorplan: listing both must not
        compute twice or drop rows from the keyed merge."""
        from repro.runtime import binding_grid

        tasks = binding_grid(
            chunks=(16,), array_dims=(128,), pe_1d_dims=(None, 128)
        )
        assert len(tasks) == 2  # one per binding, not four
        results = sweep_bindings(
            chunks=(16,), array_dims=(128,), pe_1d_dims=(None, 128),
            cache=False,
        )
        assert len(results) == 2

    def test_sweep_parallel_and_cached_identical(self, tmp_path):
        baseline = sweep_bindings(**self.GRID, cache=False)
        parallel = sweep_bindings(**self.GRID, jobs=2, cache=False)
        assert parallel == baseline
        disk = ResultCache(directory=tmp_path / "cache")
        populated = sweep_bindings(**self.GRID, cache=disk)
        fresh = ResultCache(directory=tmp_path / "cache")
        warm = sweep_bindings(**self.GRID, cache=fresh)
        assert populated == baseline and warm == baseline
        assert fresh.stats.disk_hits == len(baseline)

    def test_sweep_records_run(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        sweep_bindings(**self.GRID, cache=False, registry=registry)
        record = registry.last_recorded
        assert record.kind == "binding"
        assert record.n_results == 4
        assert "tile-serial@128+128-E64" in record.grid["configs"]

    def test_run_record_distinguishes_lane_and_embedding_axes(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        sweep_bindings(
            chunks=(16,), array_dims=(128,), bindings=("interleaved",),
            pe_1d_dims=(64, 128), embeddings=(32,),
            cache=False, registry=registry,
        )
        configs = registry.last_recorded.grid["configs"]
        assert set(configs) == {
            "interleaved@128+64-E32", "interleaved@128+128-E32"
        }

    def test_binding_result_cache_codec_roundtrip(self):
        result = evaluate_binding_point(BindingPoint("tile-serial", 16))
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_emitters(self):
        results = sweep_bindings(**self.GRID, cache=False)
        csv_text = sweep_csv(results)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith(
            "binding,chunks,array_dim,pe_1d,embedding,seq_len"
        )
        assert len(lines) == 1 + len(results)
        rows = json.loads(sweep_json(results))
        assert len(rows) == len(results)
        assert {row["binding"] for row in rows} == {
            "tile-serial", "interleaved"
        }
        table = sweep_table(results)
        assert "util_2d" in table.splitlines()[0]

    def test_binding_result_fields_consistent(self):
        result = evaluate_binding_point(BindingPoint("interleaved", 16))
        assert isinstance(result, BindingResult)
        assert result.util_2d == pytest.approx(
            result.busy_2d / result.makespan
        )


class TestScenarioGraphs:
    """Merged multi-(batch, head) graphs: structure + engine parity."""

    @pytest.mark.parametrize("seed", fuzz_seeds("scenario-merged"))
    def test_merged_graph_engines_identical(self, seed):
        """The differential fuzz, extended to scenario merged graphs
        (mixed-model phases and dram_bw in {None, tight, ample} ride
        along through the seeded generator)."""
        rng = random.Random(seed)
        scenario = random_scenario(rng)
        tasks = build_scenario_tasks(scenario)
        serial = scenario.binding == "tile-serial"
        result = both(
            tasks,
            mode="serial" if serial else "interleaved",
            slots=scenario.slots,
            max_cycles=sum(t.duration for t in tasks) + 1,
        )
        # The folded path (scenario_sim engine="vector") must agree too:
        # it never materializes the merged task list, so this is the one
        # place lazy materialization and replay face the oracle.
        _, folded = scenario_sim(scenario, engine="vector")
        assert folded == result

    @pytest.mark.parametrize("seed", fuzz_seeds("scenario-bandwidth"))
    def test_bandwidth_graph_engines_identical(self, seed):
        """Pinned bandwidth coverage: every third seed runs unmodeled
        (None), tight (contended), and ample (free transfers) dram_bw on
        an otherwise identical scenario draw — the {None, tight, ample}
        differential the engines must agree on bit-for-bit."""
        rng = random.Random(seed)
        dram_bw = (None, 8.0, 65536.0)[seed % 3]
        scenario = random_scenario(rng, dram_bw=dram_bw)
        tasks = build_scenario_tasks(scenario)
        serial = scenario.binding == "tile-serial"
        result = both(
            tasks,
            mode="serial" if serial else "interleaved",
            slots=scenario.slots,
            max_cycles=sum(t.duration for t in tasks) + 1,
        )
        if dram_bw is None:
            assert "dram" not in result.busy_cycles
        else:
            assert result.busy_cycles.get("dram", 0) > 0
        _, folded = scenario_sim(scenario, engine="vector")
        assert folded == result

    @pytest.mark.parametrize("seed", fuzz_seeds("cluster"))
    def test_cluster_graph_engines_identical(self, seed):
        """Sharded multi-chip coverage: the same {None, tight, ample}
        differential, now over a modeled interconnect — every third
        seed runs unlinked, contended, and ample link bandwidth, and
        both sharding policies alternate across the seed range.  The
        engines must agree bit-for-bit on the merged cluster graph,
        and the shared link's busy cycles must equal the closed-form
        collective sum exactly."""
        rng = random.Random(seed)
        scenario = random_scenario(rng)
        link_bw = (None, 8.0, 65536.0)[seed % 3]
        spec = ClusterSpec(
            n_chips=(2, 4)[seed % 2],
            link_bw=link_bw,
            link_latency=rng.choice((0, 4)),
        )
        sharding = ("head", "tensor")[(seed // 3) % 2]
        tasks = build_cluster_tasks(scenario, spec, sharding)
        serial = scenario.binding == "tile-serial"
        result = both(
            tasks,
            mode="serial" if serial else "interleaved",
            slots=scenario.slots,
            max_cycles=sum(t.duration for t in tasks) + 1,
        )
        assert result.busy_cycles.get("link", 0) == cluster_link_cycles(
            scenario, spec, sharding
        )
        if link_bw is None:
            assert "link" not in result.busy_cycles
        # The folded path must replay the sharded classes exactly too.
        _, folded = cluster_sim(scenario, spec, sharding, engine="vector")
        assert folded == result

    @pytest.mark.parametrize("seed", fuzz_seeds("buffer-qos"))
    def test_buffer_qos_graph_engines_identical(self, seed):
        """Capacity + QoS coverage: the same three-way differential over
        buffer_bytes in {None, tight, ample} crossed with the QoS
        discipline and an explicit per-phase dram_priority.  A tight
        buffer inflates traffic with spills and bounds prefetch depth; a
        non-uniform priority reorders phase emission — both must leave
        the three engines (and the folded replay) bit-identical."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, dram_bw=(None, 8.0, 65536.0)[seed % 3])
        # 600 bytes undercuts the smallest drawn working set (1 KiB), so
        # the tight arm always spills; the ample arm never does.
        buffer_bytes = (None, 600.0, 1e12)[(seed // 3) % 3]
        phases = scenario.phases
        if seed % 5 == 0:
            # Explicit priority, including the prefill-outranks-decode
            # direction the qos switch alone can't reach.
            phases = tuple(
                replace(p, dram_priority=1 if p.kind == "prefill" else 0)
                for p in phases
            )
        scenario = replace(
            scenario,
            phases=phases,
            buffer_bytes=buffer_bytes,
            qos=("uniform", "decode-first")[seed % 2],
        )
        tasks = build_scenario_tasks(scenario)
        serial = scenario.binding == "tile-serial"
        result = both(
            tasks,
            mode="serial" if serial else "interleaved",
            slots=scenario.slots,
            max_cycles=sum(t.duration for t in tasks) + 1,
        )
        _, folded = scenario_sim(scenario, engine="vector")
        assert folded == result

    def test_scenario_sim_engine_parity(self):
        scenario = attention_scenario(3, 4, array_dim=32)
        _, event = scenario_sim(scenario, engine="event")
        _, cycle = scenario_sim(scenario, engine="cycle")
        _, vector = scenario_sim(scenario, engine="vector")
        assert event == cycle
        assert vector == cycle

    def test_single_instance_matches_binding_graph(self):
        """A one-instance scenario is the Fig. 4/5 graph, renamed."""
        scenario = attention_scenario(1, 8, binding="tile-serial")
        config = PipelineConfig(chunks=8)
        merged = build_scenario_tasks(scenario)
        single = build_tasks(config, serial=True)
        assert [t.name for t in merged] == [f"i0:{t.name}" for t in single]
        assert [(t.resource, t.duration) for t in merged] == [
            (t.resource, t.duration) for t in single
        ]
        _, sim = scenario_sim(scenario)
        _, ref = binding_sim(config, "tile-serial")
        assert sim.makespan == ref.makespan
        assert dict(sim.busy_cycles) == dict(ref.busy_cycles)

    def test_instances_share_arrays_not_dependencies(self):
        tasks = build_scenario_tasks(attention_scenario(3, 2))
        names = {t.name for t in tasks}
        for task in tasks:
            prefix = task.name.split(":")[0]
            for dep in task.deps:
                assert dep in names
                assert dep.split(":")[0] == prefix  # no cross-instance deps
        assert {t.name.split(":")[0] for t in tasks} == {"i0", "i1", "i2"}

    def test_decode_graph_shape(self):
        config = PipelineConfig(chunks=3, array_dim=32, pe_1d=32)
        tasks = build_decode_tasks(config, prefix="d:")
        assert len(tasks) == 4 * 3
        assert {t.resource for t in tasks} == {"2d", "1d"}
        # The running state chains serially; QK tiles are independent.
        by_name = {t.name: t for t in tasks}
        assert by_name["d:DSM[1]"].deps == ("d:DQK[1]", "d:DSM[0]")
        assert by_name["d:DQK[2]"].deps == ()

    def test_chunk_work_matches_built_graph(self):
        """The analytical work function and the graph builder agree."""
        config = PipelineConfig(chunks=5, array_dim=64, pe_1d=32, embedding=16)
        for serial in (True, False):
            tasks = build_tasks(config, serial=serial)
            work = chunk_work(config, serial=serial)
            by_resource = {"2d": 0, "1d": 0, "io": 0}
            for task in tasks:
                by_resource[task.resource] += task.duration
            assert by_resource["2d"] == config.chunks * work.cycles_2d
            assert by_resource["1d"] == config.chunks * work.cycles_1d
            assert by_resource["io"] == config.chunks * work.cycles_io
        decode = build_decode_tasks(config)
        decode_work = chunk_work(config, serial=False, kind="decode")
        assert sum(t.duration for t in decode if t.resource == "2d") == (
            config.chunks * decode_work.cycles_2d
        )
        assert sum(t.duration for t in decode if t.resource == "1d") == (
            config.chunks * decode_work.cycles_1d
        )

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="phase"):
            Scenario(name="empty", phases=())
        with pytest.raises(ValueError, match="binding"):
            attention_scenario(1, 4, binding="magic")
        with pytest.raises(ValueError, match="kind"):
            Phase("train", 1, 4)
        with pytest.raises(ValueError, match="divisible"):
            scenario_from_model(BERT, 1000)


class TestSymmetryFolding:
    """The folded path's own contract: recurrence replay fires on
    contended scenarios, expansion is exact where arbitration breaks
    symmetry, and malformed templates are rejected at fold time."""

    def _assert_folded_exact(self, scenario, stats=None):
        from repro.simulator import fold_scenario, run_folded

        tasks = build_scenario_tasks(scenario)
        serial = scenario.binding == "tile-serial"
        expected = Simulator(
            tasks,
            mode="serial" if serial else "interleaved",
            slots=scenario.slots,
            engine="event",
        ).run(max_cycles=sum(t.duration for t in tasks) + 1)
        folded = run_folded(
            fold_scenario(scenario),
            slots=1 if serial else scenario.slots,
            stats=stats,
        )
        assert folded == expected
        assert dict(folded.finish_times) == dict(expected.finish_times)
        return folded

    def test_contended_scenario_replays(self):
        """DRAM contention throttles admission, the live window recurs,
        and the steady state is replayed rather than simulated — and the
        expansion is still bit-identical to the event core."""
        scenario = attention_scenario(16, 4, dram_bw=4.0, array_dim=32)
        stats = {}
        self._assert_folded_exact(scenario, stats)
        assert stats["jumps"] >= 1
        assert stats["replayed"] > stats["events"]

    def test_prefill_decode_contention_folds_both_phases(self):
        """Two instance classes, both contended: the detector must jump
        inside the prefill regime without the (not-yet-started) decode
        class pinning the replay count to zero."""
        scenario = attention_scenario(
            24, 4, decode_instances=8, decode_chunks=6,
            dram_bw=8.0, array_dim=32,
        )
        stats = {}
        self._assert_folded_exact(scenario, stats)
        assert stats["jumps"] >= 2

    def test_symmetry_breaking_arbitration_expands_exactly(self):
        """Identical instances do NOT get identical schedules: slot
        arbitration staggers them, so expansion must place each
        instance's finish times individually, not stamp one template."""
        scenario = attention_scenario(5, 3, array_dim=32, slots=2)
        folded = self._assert_folded_exact(scenario)
        per_instance = {}
        for name, finish in folded.finish_times.items():
            prefix, task = name.split(":", 1)
            per_instance.setdefault(task, {})[prefix] = finish
        # At least one template task finishes at a different relative
        # offset across instances (pure shift would make all gaps equal).
        gaps = {
            task: {
                prefix: finish - min(times.values())
                for prefix, finish in times.items()
            }
            for task, times in per_instance.items()
        }
        assert any(len(set(offsets.values())) > 1 for offsets in gaps.values())

    def test_uncontended_scenario_still_exact_without_jumps(self):
        """No recurrence is a speed miss, never a correctness miss."""
        scenario = attention_scenario(6, 4, array_dim=32)
        stats = {}
        self._assert_folded_exact(scenario, stats)
        assert stats["jumps"] == 0

    def test_fold_rejects_cross_template_deps(self):
        from repro.simulator.vector import fold_templates

        template = [Task("a", "r", 1, deps=("elsewhere",))]
        with pytest.raises(ValueError, match="leaves the instance"):
            fold_templates([(template, 2)])

    def test_run_folded_deadlock_raises(self):
        from repro.simulator.vector import fold_templates, run_folded

        template = [
            Task("a", "r", 1, deps=("b",)),
            Task("b", "r", 1, deps=("a",)),
        ]
        with pytest.raises(RuntimeError, match="max_cycles"):
            run_folded(fold_templates([(template, 3)]), slots=2, max_cycles=50)


class TestScenarioCrossValidation:
    """Simulated schedules vs the analytical utilization estimates."""

    def test_lone_tile_serial_matches_serial_chain_exactly(self):
        """The closed-form chunk interval is the simulated schedule."""
        scenario = attention_scenario(1, 64, binding="tile-serial")
        sim = evaluate_scenario_point(scenario)
        model = analytical_scenario(scenario)
        assert model.kind == "serial-chain"
        assert model.latency_cycles == sim.makespan

    @pytest.mark.parametrize("binding", ("tile-serial", "interleaved"))
    def test_multi_instance_approaches_overlap_bound(self, binding):
        scenario = attention_scenario(8, 32, binding=binding)
        sim = evaluate_scenario_point(scenario)
        model = analytical_scenario(scenario)
        assert model.kind == "overlap-bound"
        # The bound is a true lower bound on latency...
        assert sim.makespan >= model.latency_cycles
        # ...approached within warm-up effects.
        for array in ("2d", "1d"):
            assert sim.utilization(array) <= model.utilization(array) + 1e-9
            assert sim.utilization(array) == pytest.approx(
                model.utilization(array), abs=0.02
            )

    def test_batching_hides_tile_serial_stalls(self):
        """Multi-instance contention is a modeled effect, not a scale
        factor: more tile-serial instances lift shared-array utilization
        until the serialized array edge saturates."""
        lone = evaluate_scenario_point(
            attention_scenario(1, 32, binding="tile-serial")
        )
        packed = evaluate_scenario_point(
            attention_scenario(8, 32, binding="tile-serial")
        )
        assert packed.util_2d > lone.util_2d * 1.3
        assert packed.util_io > 0.95  # fills/drains become the bottleneck

    def test_decode_mix_adds_2d_pressure(self):
        base = evaluate_scenario_point(attention_scenario(4, 32))
        mixed = evaluate_scenario_point(
            attention_scenario(4, 32, decode_instances=4, decode_chunks=64)
        )
        assert mixed.instances == 8
        assert mixed.busy_2d > base.busy_2d
        model = analytical_scenario(
            attention_scenario(4, 32, decode_instances=4, decode_chunks=64)
        )
        assert mixed.util_2d == pytest.approx(model.util_2d, abs=0.05)

    def test_crosscheck_report_all_seed_configs(self):
        from repro.experiments.crosscheck import crosscheck, render

        report = crosscheck(cache=False)
        assert report.ok, render(report)
        bindings = {row.binding for row in report.rows}
        assert bindings == {"tile-serial", "interleaved"}
        assert "within" in render(report)

    def test_crosscheck_flags_divergence(self):
        from repro.experiments.crosscheck import crosscheck, render

        report = crosscheck(
            [attention_scenario(4, 16)], tolerance=1e-6, cache=False
        )
        assert not report.ok
        assert "DIVERGED" in render(report)


class TestScenarioSweep:
    """The runtime path: kind "scenario" through cache/pool/registry."""

    SCENARIOS = (
        attention_scenario(2, 8, binding="tile-serial"),
        attention_scenario(2, 8, binding="interleaved"),
    )

    def test_sweep_matches_direct_evaluation(self):
        results = sweep_scenarios(self.SCENARIOS, cache=False)
        assert set(results) == set(self.SCENARIOS)
        for scenario in self.SCENARIOS:
            direct = evaluate_scenario_point(scenario)
            assert results[scenario] == direct

    def test_same_name_different_spec_both_kept(self):
        """Keys are the full Scenario spec: a shared display name can't
        shadow a computed result or cross-wire the crosscheck."""
        from repro.experiments.crosscheck import crosscheck

        small = attention_scenario(4, 16, array_dim=64, binding="tile-serial")
        large = attention_scenario(4, 16, array_dim=128, binding="tile-serial")
        assert small.name == large.name  # the collision under test
        results = sweep_scenarios([small, large], cache=False)
        assert len(results) == 2
        assert results[small].makespan != results[large].makespan
        report = crosscheck([small, large], cache=False)
        assert len(report.rows) == 4
        # Each simulation diffs its own estimate: the two scenarios'
        # rows carry distinct measured and modeled utilizations.
        small_2d, large_2d = (
            row for row in report.rows if row.array == "2d"
        )
        assert small_2d.sim_util != large_2d.sim_util
        assert small_2d.model_util != large_2d.model_util

    def test_sweep_parallel_and_cached_identical(self, tmp_path):
        baseline = sweep_scenarios(self.SCENARIOS, cache=False)
        parallel = sweep_scenarios(self.SCENARIOS, jobs=2, cache=False)
        assert parallel == baseline
        disk = ResultCache(directory=tmp_path / "cache")
        populated = sweep_scenarios(self.SCENARIOS, cache=disk)
        fresh = ResultCache(directory=tmp_path / "cache")
        warm = sweep_scenarios(self.SCENARIOS, cache=fresh)
        assert populated == baseline and warm == baseline
        assert fresh.stats.disk_hits == len(baseline)

    def test_sweep_records_run(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        sweep_scenarios(self.SCENARIOS, cache=False, registry=registry)
        record = registry.last_recorded
        assert record.kind == "scenario"
        assert record.n_results == 2
        # Configs are recorded as full describe() strings, so two
        # same-named scenarios with different specs stay attributable.
        assert all(c.startswith("attn-2x8:") for c in record.grid["configs"])
        assert len(record.grid["configs"]) == 2

    def test_run_record_distinguishes_same_named_specs(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        pair = [
            attention_scenario(2, 8, array_dim=64),
            attention_scenario(2, 8, array_dim=128),
        ]
        sweep_scenarios(pair, cache=False, registry=registry)
        configs = registry.last_recorded.grid["configs"]
        assert len(configs) == 2
        assert any("64x64" in c for c in configs)
        assert any("128x128" in c for c in configs)

    def test_scenario_result_cache_codec_roundtrip(self):
        result = evaluate_scenario_point(self.SCENARIOS[0])
        assert isinstance(result, ScenarioResult)
        payload = json.loads(json.dumps(encode_result(result)))
        assert decode_result(payload) == result

    def test_scenario_emitters(self):
        results = sweep_scenarios(self.SCENARIOS, cache=False)
        csv_text = scenario_csv(results)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("scenario,binding,instances")
        assert len(lines) == 1 + len(results)
        rows = json.loads(scenario_json(results))
        assert {row["binding"] for row in rows} == {
            "tile-serial", "interleaved"
        }
        assert "util_2d" in scenario_table(results).splitlines()[0]


class TestSweepCLI:
    def test_simulate_engines_print_identical_output(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--chunks", "6", "--engine", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["simulate", "--chunks", "6", "--engine", "cycle"]) == 0
        assert capsys.readouterr().out == event_out

    def test_simulate_sweep_csv(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--sweep", "--chunks-list", "16,32",
            "--arrays", "128", "--format", "csv", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("binding,chunks,array_dim")
        assert len(out.strip().splitlines()) == 5

    def test_simulate_sweep_output_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "sweep.json"
        code = main([
            "simulate", "--sweep", "--chunks-list", "16",
            "--arrays", "128", "--format", "json",
            "--output", str(target), "--no-cache",
        ])
        assert code == 0
        assert "sweep.json" in capsys.readouterr().out
        rows = json.loads(target.read_text())
        assert len(rows) == 2

    def test_simulate_sweep_bad_chunks_list(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--sweep", "--chunks-list", "16,banana"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_simulate_sweep_bad_arrays(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--sweep", "--arrays", "x"]) == 2
        assert "--arrays" in capsys.readouterr().err

    def test_simulate_sweep_nonpositive_axis_values(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--sweep", "--pe1d-list", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err
        assert main(["simulate", "--sweep", "--embeddings", "-64"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_simulate_sweep_rejects_cycle_engine(self, capsys):
        from repro.cli import main

        code = main(["simulate", "--sweep", "--engine", "cycle",
                     "--chunks-list", "16"])
        assert code == 2
        assert "event-driven core" in capsys.readouterr().err

    def test_simulate_sweep_new_axes(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--sweep", "--chunks-list", "16",
            "--arrays", "128", "--pe1d-list", "64,128",
            "--embeddings", "32", "--format", "csv", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1 + 4  # 2 pe1d x 2 bindings
        assert ",64,32," in out and ",128,32," in out

    def test_simulate_scenario_engines_identical(self, capsys):
        from repro.cli import main

        base = ["simulate", "--scenario", "--instances", "2",
                "--chunks", "4", "--array-dim", "32", "--no-cache"]
        assert main(base + ["--engine", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(base + ["--engine", "cycle"]) == 0
        assert capsys.readouterr().out == event_out
        assert "interleaved" in event_out and "tile-serial" in event_out

    def test_simulate_scenario_from_model(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--scenario", "--model", "BERT", "--batch", "2",
            "--heads", "2", "--chunks", "4", "--binding", "interleaved",
            "--format", "json", "--no-cache",
        ])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["instances"] == 4
        assert rows[0]["scenario"] == "BERT-B2xH2-L1024"

    def test_simulate_scenario_rejects_model_plus_instances(self, capsys):
        from repro.cli import main

        code = main(["simulate", "--scenario", "--model", "BERT",
                     "--instances", "4"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_simulate_scenario_unknown_model(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scenario", "--model", "GPT"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_simulate_scenario_cycle_rejects_runtime_flags(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        code = main(["simulate", "--scenario", "--instances", "2",
                     "--chunks", "4", "--engine", "cycle",
                     "--registry", str(tmp_path)])
        assert code == 2
        assert "runtime-backed" in capsys.readouterr().err
        code = main(["simulate", "--scenario", "--instances", "2",
                     "--chunks", "4", "--engine", "cycle", "--jobs", "8"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_simulate_scenario_negative_decode_instances(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exit_info:
            main(["simulate", "--scenario", "--instances", "2",
                  "--decode-instances", "-2"])
        assert exit_info.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_mode_specific_flags_rejected_outside_their_mode(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--pe1d", "128"]) == 2
        assert "requires --scenario" in capsys.readouterr().err
        assert main(["simulate", "--embeddings", "32"]) == 2
        assert "requires --sweep" in capsys.readouterr().err
        # Cross-field rules now surface from the typed requests'
        # validate() (field vocabulary, not flag vocabulary).
        assert main(["simulate", "--scenario", "--instances", "2",
                     "--decode-chunks", "8"]) == 2
        assert "requires decode_instances" in capsys.readouterr().err
        assert main(["simulate", "--scenario", "--batch", "8"]) == 2
        assert "requires model" in capsys.readouterr().err
        assert main(["simulate", "--scenario", "--instances", "2",
                     "--binding", "tile-serial", "--slots", "4"]) == 2
        assert "interleaved binding only" in capsys.readouterr().err
        assert main(["simulate", "--sweep", "--chunks-list", "16",
                     "--array-dim", "512"]) == 2
        assert "use --arrays" in capsys.readouterr().err
        assert main(["simulate", "--sweep", "--chunks", "16"]) == 2
        assert "use --chunks-list" in capsys.readouterr().err
        assert main(["simulate", "--format", "csv"]) == 2
        assert "requires --sweep or --scenario" in capsys.readouterr().err
        assert main(["simulate", "--output", "x.csv"]) == 2
        assert "--output requires" in capsys.readouterr().err
        assert main(["simulate", "--jobs", "8"]) == 2
        assert "--jobs requires" in capsys.readouterr().err

    def test_crosscheck_cli(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "within" in out and "DIVERGED" not in out

    def test_crosscheck_strict_flags_divergence(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--tolerance", "0.000001",
                     "--strict", "--no-cache"]) == 1
        assert "DIVERGED" in capsys.readouterr().out
