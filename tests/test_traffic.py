"""Tests for the memory-traffic lower bounds (Sec. III-B implications)."""


from repro.analysis import count_passes, family
from repro.analysis.traffic import traffic_lower_bound
from repro.cascades import attention_1pass, attention_3pass, cascade1_two_pass

SHAPES = {"E": 64, "F": 64, "M": 65536, "P": 1024, "M0": 256, "M1": 256}
WORD = 2
HUGE = 1 << 60
SMALL = 1 << 20  # 1 MB: holds the 1-pass running state, not an M fiber


def _bound(builder, fam, buffer_bytes):
    cascade = builder()
    analysis = count_passes(cascade, family(*fam))
    return traffic_lower_bound(analysis, SHAPES, buffer_bytes, WORD)


class TestInputs:
    def test_cascade1_reads_a_twice(self):
        """Cascade 1 is 2-pass over A's K fiber: A streams twice."""
        cascade = cascade1_two_pass()
        analysis = count_passes(cascade, family("k"))
        bound = traffic_lower_bound(analysis, {"K": 1000}, HUGE, WORD)
        assert bound.entries["A"].read_words == 2000
        assert bound.entries["B"].read_words == 1000

    def test_3pass_attention_inputs(self):
        bound = _bound(attention_3pass, ("m",), HUGE)
        m, p, e, f = SHAPES["M"], SHAPES["P"], SHAPES["E"], SHAPES["F"]
        # Q and K feed pass 1 only; V feeds pass 3 only: one stream each.
        assert bound.entries["Q"].read_words == e * p
        assert bound.entries["K"].read_words == e * m
        assert bound.entries["V"].read_words == f * m

    def test_1pass_attention_reads_everything_once(self):
        bound = _bound(attention_1pass, ("m1", "m0"), SMALL)
        for name in ("Q", "K", "V"):
            assert bound.entries[name].read_words == bound.entries[name].size_words


class TestIntermediates:
    def test_big_buffer_absorbs_crossings(self):
        bound = _bound(attention_3pass, ("m",), HUGE)
        assert bound.buffered
        assert bound.entries["QK"].total_words == 0
        assert bound.entries["SN"].total_words == 0

    def test_small_buffer_forces_spills(self):
        bound = _bound(attention_3pass, ("m",), SMALL)
        assert not bound.buffered
        m, p = SHAPES["M"], SHAPES["P"]
        # QK: written once, re-read by SN's pass; SN: written, re-read by A.
        assert bound.entries["QK"].write_words == m * p
        assert bound.entries["QK"].read_words == m * p
        assert bound.entries["SN"].total_words == 2 * m * p

    def test_output_written_once(self):
        bound = _bound(attention_3pass, ("m",), SMALL)
        assert bound.entries["AV"].write_words == bound.entries["AV"].size_words
        assert bound.entries["AV"].read_words == 0

    def test_1pass_traffic_independent_of_buffer(self):
        """The FuseMax property: no buffer pressure, no spills, ever."""
        big = _bound(attention_1pass, ("m1", "m0"), HUGE).total_words()
        small = _bound(attention_1pass, ("m1", "m0"), SMALL).total_words()
        assert big == small

    def test_1pass_beats_3pass_under_small_buffer(self):
        t1 = _bound(attention_1pass, ("m1", "m0"), SMALL).total_bytes(WORD)
        t3 = _bound(attention_3pass, ("m",), SMALL).total_bytes(WORD)
        assert t1 < t3 / 10  # intermediates dwarf the inputs at these shapes

    def test_traffic_floor_scales_with_m(self):
        cascade = attention_3pass()
        analysis = count_passes(cascade, family("m"))
        small = traffic_lower_bound(
            analysis, dict(SHAPES, M=8192), SMALL, WORD
        ).total_words()
        large = traffic_lower_bound(
            analysis, dict(SHAPES, M=16384), SMALL, WORD
        ).total_words()
        assert large > 1.9 * small
