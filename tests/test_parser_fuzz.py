"""Fuzz tests: the parser must parse or raise ParseError — never crash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.einsum.parser import ParseError, parse_einsum

_ALPHABET = "ABXYZabkmnp01 []=+-*/(),:<>"


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=_ALPHABET, max_size=40))
def test_parser_never_crashes(text):
    try:
        parse_einsum(text)
    except ParseError:
        pass  # rejection is the expected failure mode


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["Z", "Out", "R2"]),
    st.lists(st.sampled_from(["m", "n", "k", "p"]), min_size=0, max_size=3,
             unique=True),
    st.sampled_from(["A[k]", "A[k] * B[k]", "exp(A[k])", "A[k] + 1.0",
                     "max(A[k], B[k])", "A[k] / B[k]"]),
)
def test_wellformed_statements_always_parse(out, ranks, rhs):
    lhs = out if not ranks else f"{out}[{', '.join(ranks)}]"
    einsum = parse_einsum(f"{lhs} = {rhs}")
    assert einsum.writes_tensor() == out
    assert len(einsum.output.indices) == len(ranks)


class TestParserDeterminism:
    """Parsing is pure: the same text yields structurally equal Einsums."""

    @pytest.mark.parametrize(
        "text",
        [
            "Z[m, n] = A[k, m] * B[k, n]",
            "GM[p] = QK[m, p] :: max(m)",
            "SN[m, p] = exp(QK[m, p] - GM[p])",
            "A[m, p] = SN[m, p] / SD[p]",
            "RM[m1+1, p] = max(RM[m1, p], LM[m1, p])",
            "BK[e, m1, m0] = K[e, m1*M0 + m0]",
            "S[i+1] = A[k : k <= i]",
        ],
    )
    def test_determinism(self, text):
        first = parse_einsum(text)
        second = parse_einsum(text)
        assert first.output == second.output
        assert str(first.expr) == str(second.expr)
        assert dict(first.reductions) == dict(second.reductions)
