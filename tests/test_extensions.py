"""Tests for the attention-variant extension cascades (Sec. VIII)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import count_passes, family, live_footprints, total_ops
from repro.cascades import (
    attention_3pass,
    causal_attention,
    sigmoid_attention,
    sliding_window_attention,
)
from repro.functional import evaluate_output


def _masked_softmax_attention(q, k, v, mask):
    """Direct numpy reference: mask[m, p] True where attention is allowed."""
    qk = k.T @ q
    qk = np.where(mask, qk, -np.inf)
    shifted = qk - qk.max(axis=0, keepdims=True)
    numer = np.exp(shifted)
    numer = np.where(mask, numer, 0.0)
    return v @ (numer / numer.sum(axis=0, keepdims=True))


def _causal_mask(m, p):
    return np.arange(m)[:, None] <= np.arange(p)[None, :]


def _window_mask(m, p, w):
    rows = np.arange(m)[:, None]
    cols = np.arange(p)[None, :]
    return (rows <= cols) & (rows > cols - w)


@pytest.fixture
def square_inputs(rng):
    e, f, n = 4, 5, 12
    return {
        "Q": rng.normal(size=(e, n)),
        "K": rng.normal(size=(e, n)),
        "V": rng.normal(size=(f, n)),
    }


SQUARE_SHAPES = {"E": 4, "F": 5, "M": 12, "P": 12}


class TestCausalAttention:
    @pytest.mark.parametrize("div_opt", [True, False])
    def test_matches_masked_reference(self, square_inputs, div_opt):
        out = evaluate_output(
            causal_attention(div_opt), SQUARE_SHAPES, square_inputs
        )
        expected = _masked_softmax_attention(
            square_inputs["Q"], square_inputs["K"], square_inputs["V"],
            _causal_mask(12, 12),
        )
        assert np.allclose(out, expected)

    def test_first_query_attends_only_to_first_key(self, square_inputs):
        """Column p=0 sees only m=0: AV[:, 0] must equal V[:, 0]."""
        out = evaluate_output(causal_attention(), SQUARE_SHAPES, square_inputs)
        assert np.allclose(out[:, 0], square_inputs["V"][:, 0])

    def test_last_query_matches_full_attention(self, square_inputs):
        """Column p=M-1 sees everything: identical to unmasked attention."""
        causal = evaluate_output(causal_attention(), SQUARE_SHAPES, square_inputs)
        full = evaluate_output(attention_3pass(), SQUARE_SHAPES, square_inputs)
        assert np.allclose(causal[:, -1], full[:, -1])

    def test_stable_under_large_scores(self, rng):
        inputs = {
            "Q": 40 * rng.normal(size=(4, 12)),
            "K": 40 * rng.normal(size=(4, 12)),
            "V": rng.normal(size=(5, 12)),
        }
        # Masked (never-consumed) numerator positions may overflow — they
        # are culled by the filtered reductions, so only the output matters.
        with np.errstate(over="ignore"):
            out = evaluate_output(causal_attention(), SQUARE_SHAPES, inputs)
        assert np.all(np.isfinite(out))

    def test_still_multi_pass(self):
        """Masking does not change the pass structure of the softmax."""
        assert count_passes(causal_attention(False), family("m")).num_passes == 3
        assert count_passes(causal_attention(True), family("m")).num_passes == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**31))
    def test_causal_property(self, n, seed):
        """Changing future keys/values never changes past outputs."""
        rng = np.random.default_rng(seed)
        shapes = {"E": 3, "F": 3, "M": n, "P": n}
        q = rng.normal(size=(3, n))
        k = rng.normal(size=(3, n))
        v = rng.normal(size=(3, n))
        out1 = evaluate_output(causal_attention(), shapes, {"Q": q, "K": k, "V": v})
        k2, v2 = k.copy(), v.copy()
        k2[:, -1] += 100.0
        v2[:, -1] -= 100.0
        out2 = evaluate_output(causal_attention(), shapes, {"Q": q, "K": k2, "V": v2})
        if n > 1:
            assert np.allclose(out1[:, :-1], out2[:, :-1])
        assert not np.allclose(out1[:, -1], out2[:, -1])


class TestSlidingWindowAttention:
    @pytest.mark.parametrize("window", [1, 3, 6, 12])
    def test_matches_masked_reference(self, square_inputs, window):
        shapes = dict(SQUARE_SHAPES, W=window)
        out = evaluate_output(
            sliding_window_attention(), shapes, square_inputs
        )
        expected = _masked_softmax_attention(
            square_inputs["Q"], square_inputs["K"], square_inputs["V"],
            _window_mask(12, 12, window),
        )
        assert np.allclose(out, expected)

    def test_full_window_equals_causal(self, square_inputs):
        shapes = dict(SQUARE_SHAPES, W=12)
        windowed = evaluate_output(sliding_window_attention(), shapes, square_inputs)
        causal = evaluate_output(causal_attention(), SQUARE_SHAPES, square_inputs)
        assert np.allclose(windowed, causal)

    def test_window_one_copies_current_value(self, square_inputs):
        shapes = dict(SQUARE_SHAPES, W=1)
        out = evaluate_output(sliding_window_attention(), shapes, square_inputs)
        assert np.allclose(out, square_inputs["V"])


class TestSigmoidAttention:
    def test_matches_direct_numpy(self, square_inputs):
        out = evaluate_output(sigmoid_attention(), SQUARE_SHAPES, square_inputs)
        qk = square_inputs["K"].T @ square_inputs["Q"]
        expected = square_inputs["V"] @ (1.0 / (1.0 + np.exp(-qk)))
        assert np.allclose(out, expected)

    def test_natively_one_pass(self):
        assert count_passes(sigmoid_attention(), family("m")).num_passes == 1

    def test_no_sequence_dependent_footprint(self):
        shapes = {"E": 64, "F": 64, "M": 65536, "P": 1024}
        analysis = count_passes(sigmoid_attention(), family("m"))
        report = live_footprints(analysis, shapes)
        assert report.sequence_dependent_tensors() == ()

    def test_no_divisions_no_max(self):
        shapes = {"E": 64, "F": 64, "M": 1024, "P": 256}
        ops = total_ops(sigmoid_attention(), shapes)
        assert ops.get("divide") == 0
        assert ops.get("max") == 0
