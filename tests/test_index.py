"""Unit tests for index expressions (repro.einsum.index)."""

import pytest

from repro.einsum.index import (
    Affine,
    Filter,
    Fixed,
    Shifted,
    Var,
    resolve_symint,
)


class TestResolveSymint:
    def test_literal_int_passes_through(self):
        assert resolve_symint(7, {}) == 7

    def test_symbol_resolves(self):
        assert resolve_symint("M0", {"M0": 32}) == 32

    def test_unbound_symbol_raises(self):
        with pytest.raises(KeyError, match="M0"):
            resolve_symint("M0", {})


class TestVar:
    def test_vars(self):
        assert Var("m").vars() == ("m",)

    def test_evaluate(self):
        assert Var("m").evaluate({"m": 5}, {}) == 5

    def test_no_shift(self):
        assert Var("m").shifted_by() == 0

    def test_str(self):
        assert str(Var("m")) == "m"

    def test_equality_and_hash(self):
        assert Var("m") == Var("m")
        assert hash(Var("m")) == hash(Var("m"))
        assert Var("m") != Var("n")


class TestShifted:
    def test_vars(self):
        assert Shifted("m1", 1).vars() == ("m1",)

    def test_evaluate_applies_offset(self):
        assert Shifted("m1", 1).evaluate({"m1": 3}, {}) == 4

    def test_negative_offset(self):
        assert Shifted("i", -1).evaluate({"i": 3}, {}) == 2

    def test_shifted_by(self):
        assert Shifted("m1", 1).shifted_by() == 1

    def test_str(self):
        assert str(Shifted("m1", 1)) == "m1+1"
        assert str(Shifted("i", -2)) == "i-2"


class TestAffine:
    def test_vars_in_order(self):
        expr = Affine((("m1", "M0"), ("m0", 1)))
        assert expr.vars() == ("m1", "m0")

    def test_evaluate_with_symbolic_coefficient(self):
        expr = Affine((("m1", "M0"), ("m0", 1)))
        assert expr.evaluate({"m1": 2, "m0": 3}, {"M0": 8}) == 19

    def test_evaluate_with_offset(self):
        expr = Affine((("k", 2),), offset=5)
        assert expr.evaluate({"k": 3}, {}) == 11

    def test_symbolic_offset(self):
        expr = Affine((("k", 1),), offset="B")
        assert expr.evaluate({"k": 1}, {"B": 10}) == 11

    def test_str_mentions_coefficient(self):
        assert "m1*M0" in str(Affine((("m1", "M0"), ("m0", 1))))


class TestFixed:
    def test_no_vars(self):
        assert Fixed(0).vars() == ()

    def test_literal(self):
        assert Fixed(3).evaluate({}, {}) == 3

    def test_symbolic(self):
        assert Fixed("M1").evaluate({}, {"M1": 12}) == 12


class TestFilter:
    def test_vars_include_bound(self):
        flt = Filter("k", "<=", Var("i"))
        assert flt.vars() == ("k", "i")

    @pytest.mark.parametrize(
        "op,k,i,expected",
        [
            ("<", 2, 3, True),
            ("<", 3, 3, False),
            ("<=", 3, 3, True),
            ("==", 3, 3, True),
            (">=", 2, 3, False),
            (">", 4, 3, True),
        ],
    )
    def test_predicates(self, op, k, i, expected):
        flt = Filter("k", op, Var("i"))
        assert flt.test({"k": k, "i": i}, {}) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            Filter("k", "!=", Var("i"))

    def test_str(self):
        assert str(Filter("k", "<=", Var("i"))) == "k<=i"
