"""Tests for the pass-counting analysis (Section III) — the paper's first
contribution.  Every worked example from the paper is checked."""

import pytest

from repro.analysis.passes import RankFamily, count_passes, family
from repro.cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    attention_naive,
    cascade1_two_pass,
    cascade2_deferred,
    cascade3_iterative,
    iterative_prefix_sum,
)


class TestRankFamily:
    def test_single_var(self):
        fam = family("m")
        assert fam.outer == "m" and fam.inner == "m"

    def test_partitioned(self):
        fam = family("m1", "m0")
        assert fam.outer == "m1" and fam.inner == "m0"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RankFamily(())

    def test_str(self):
        assert str(family("m1", "m0")) == "(m1, m0)"


class TestPaperExamples:
    """Pass counts from the paper, verified by the analysis."""

    @pytest.mark.parametrize(
        "builder,fam,expected",
        [
            (cascade1_two_pass, ("k",), 2),  # Sec. III-A
            (cascade2_deferred, ("k",), 1),  # Sec. III-C1
            (cascade3_iterative, ("i",), 1),  # Sec. III-C2
            (iterative_prefix_sum, ("i",), 1),
            (attention_naive, ("m",), 2),
            (attention_3pass, ("m",), 3),  # Cascade 4
            (lambda: attention_3pass(div_opt=True), ("m",), 2),  # Sec. IV-E3
            (attention_2pass, ("m1", "m0"), 2),  # Sec. IV-E2
            (lambda: attention_2pass(div_opt=True), ("m1", "m0"), 2),
            (attention_1pass, ("m1", "m0"), 1),  # Cascade 5
        ],
        ids=[
            "cascade1=2",
            "cascade2=1",
            "cascade3=1",
            "prefix=1",
            "naive=2",
            "3pass=3",
            "3pass-divopt=2",
            "2pass=2",
            "2pass-divopt=2",
            "1pass=1",
        ],
    )
    def test_pass_count(self, builder, fam, expected):
        analysis = count_passes(builder(), family(*fam))
        assert analysis.num_passes == expected


class TestPassAssignment:
    def test_3pass_einsum_phases(self):
        """Cascade 4's Einsums land in the passes annotated in the paper."""
        analysis = count_passes(attention_3pass(), family("m"))
        assert analysis.pass_of("QK") == 1  # Pass 1
        assert analysis.pass_of("GM") == 1
        assert analysis.pass_of("SN") == 2  # Pass 2
        assert analysis.pass_of("SD") == 2
        assert analysis.pass_of("A") == 3  # Pass 3
        assert analysis.pass_of("AV") == 3

    def test_1pass_everything_in_pass_one(self):
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        for label in ("BQK", "LM", "SLN", "SLD", "SLNV"):
            assert analysis.pass_of(label) == 1

    def test_1pass_final_division_outside_passes(self):
        """AV reads only the final coordinates: it does not traverse M."""
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        info = analysis.info["AV"]
        assert not info.participates
        assert info.pass_number is None
        assert info.time > 1.0  # strictly after the single pass

    def test_2pass_correction_in_pass_two(self):
        analysis = count_passes(attention_2pass(), family("m1", "m0"))
        assert analysis.pass_of("BQK") == 1
        assert analysis.pass_of("SLN") == 1
        assert analysis.pass_of("SN") == 2
        assert analysis.pass_of("AV") == 2

    def test_2pass_denominator_between_passes(self):
        """SD is assembled from partition-granular tensors between passes."""
        analysis = count_passes(attention_2pass(), family("m1", "m0"))
        info = analysis.info["SD"]
        assert not info.participates
        assert 1.0 < info.time < 2.0

    def test_views_excluded(self):
        analysis = count_passes(attention_1pass(), family("m1", "m0"))
        assert analysis.info["BK"].is_view
        assert analysis.info["BK"].pass_number is None

    def test_participating_labels(self):
        analysis = count_passes(attention_3pass(), family("m"))
        assert set(analysis.participating()) == {"QK", "GM", "SN", "SD", "A", "AV"}


class TestOtherRankFamilies:
    def test_3pass_is_single_pass_over_p(self):
        """Over the query rank P, attention needs only one pass — queries
        stream independently."""
        analysis = count_passes(attention_3pass(), family("p"))
        assert analysis.num_passes == 1

    def test_3pass_over_embedding(self):
        """E appears only inside QK's reduction: one pass."""
        analysis = count_passes(attention_3pass(), family("e"))
        assert analysis.num_passes == 1

    def test_unrelated_rank_gives_zero_passes(self):
        analysis = count_passes(cascade1_two_pass(), family("zzz"))
        assert analysis.num_passes == 0


class TestMappingIndependence:
    def test_partitioning_does_not_change_3pass_count(self):
        """Cascade 4 partitioned on M is still 3-pass: partitioning is a
        mapping choice, and pass counts are mapping-independent."""
        # The 2-pass cascade with its correction removed degenerates to
        # a partitioned 3-pass; here we simply re-verify both published
        # partitioned cascades against their un-partitioned counterparts.
        assert count_passes(attention_3pass(), family("m")).num_passes == 3
        assert count_passes(attention_2pass(), family("m1", "m0")).num_passes == 2

    def test_analysis_is_deterministic(self):
        a1 = count_passes(attention_1pass(), family("m1", "m0"))
        a2 = count_passes(attention_1pass(), family("m1", "m0"))
        assert a1.num_passes == a2.num_passes
        assert a1.info == a2.info
