"""Tests for the ablation experiment driver."""


from repro.experiments import ablations


class TestDivisionReductionAblation:
    def test_divopt_rows_have_few_divisions(self):
        rows = {r.cascade: r for r in ablations.division_reduction()}
        assert rows["attention-3pass"].divisions == 1024 * 65536
        assert rows["attention-3pass-divopt"].divisions == 64 * 1024
        assert rows["attention-1pass"].divisions == 64 * 1024

    def test_macc_equivalents_unchanged_by_divopt(self):
        rows = {r.cascade: r for r in ablations.division_reduction()}
        assert (
            rows["attention-3pass"].macc_equivalents
            == rows["attention-3pass-divopt"].macc_equivalents
        )

    def test_1pass_does_more_work(self):
        rows = {r.cascade: r for r in ablations.division_reduction()}
        assert (
            rows["attention-1pass"].macc_equivalents
            > rows["attention-3pass"].macc_equivalents
        )


class TestBlockSizeAblation:
    def test_overhead_monotone_decreasing(self):
        sweep = ablations.block_size()
        costs = [cost for _, cost in sweep]
        assert costs == sorted(costs, reverse=True)


class TestBufferCapacityAblation:
    def test_larger_buffers_delay_spilling(self):
        table = ablations.buffer_capacity((4, 16, 64))
        first_spill = {
            mb: next(
                (i for i, s in enumerate(strategies) if s == "spill"),
                len(strategies),
            )
            for mb, strategies in table.items()
        }
        assert first_spill[4] <= first_spill[16] <= first_spill[64]

    def test_1k_always_resident(self):
        table = ablations.buffer_capacity((4, 16, 64))
        assert all(strategies[0] == "resident" for strategies in table.values())


class TestInterleavingAblation:
    def test_interleaving_dominates(self):
        results = ablations.interleaving(chunks=8)
        assert results["interleaved"][0] > results["tile-serial"][0]
        assert results["interleaved"][1] > results["tile-serial"][1]


class TestRender:
    def test_render_contains_all_sections(self):
        text = ablations.render()
        for fragment in ("division reduction", "block size", "buffer capacity",
                         "interleaving"):
            assert fragment in text
