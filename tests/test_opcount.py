"""Tests for operation counting — including the division-reduction result
of Section IV-D and the 1-pass compute overhead of Section IV-E3."""


from repro.analysis.opcount import EXP_MACCS, OpCounts, count_ops, total_ops
from repro.cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    cascade1_two_pass,
    cascade2_deferred,
)

SHAPES = {"E": 64, "F": 64, "M": 1024, "P": 256, "M0": 16, "M1": 64, "K": 100}
M, P, E, F = SHAPES["M"], SHAPES["P"], SHAPES["E"], SHAPES["F"]


class TestOpCounts:
    def test_addition(self):
        total = OpCounts({"macc": 3}) + OpCounts({"macc": 4, "exp": 1})
        assert total.get("macc") == 7
        assert total.get("exp") == 1
        assert total.total == 8

    def test_macc_equivalents_expand_exp(self):
        counts = OpCounts({"macc": 10, "exp": 2, "divide": 5})
        assert counts.macc_equivalents() == 10 + 2 * EXP_MACCS

    def test_get_missing_class_is_zero(self):
        assert OpCounts({}).get("divide") == 0


class TestGEMMCounting:
    def test_qk_maccs(self):
        per = count_ops(attention_3pass(), SHAPES)
        assert per["QK"].get("macc") == E * M * P

    def test_av_maccs(self):
        per = count_ops(attention_3pass(), SHAPES)
        assert per["AV"].get("macc") == F * M * P

    def test_fused_reduction_not_double_counted(self):
        """QK's sum reduction folds into the MACC; no separate adds."""
        per = count_ops(attention_3pass(), SHAPES)
        assert per["QK"].get("add") == 0


class TestSoftmaxCounting:
    def test_global_max_ops(self):
        per = count_ops(attention_3pass(), SHAPES)
        assert per["GM"].get("max") == M * P

    def test_exponential_count(self):
        per = count_ops(attention_3pass(), SHAPES)
        assert per["SN"].get("exp") == M * P

    def test_denominator_adds(self):
        per = count_ops(attention_3pass(), SHAPES)
        assert per["SD"].get("add") == M * P


class TestDivisionReduction:
    """Sec. IV-D: the reassociation reduces divisions by M/F."""

    def test_3pass_divisions(self):
        assert total_ops(attention_3pass(), SHAPES).get("divide") == M * P

    def test_divopt_divisions(self):
        assert total_ops(attention_3pass(div_opt=True), SHAPES).get("divide") == F * P

    def test_reduction_factor(self):
        plain = total_ops(attention_3pass(), SHAPES).get("divide")
        opt = total_ops(attention_3pass(div_opt=True), SHAPES).get("divide")
        assert plain // opt == M // F

    def test_1pass_inherits_reduced_divisions(self):
        assert total_ops(attention_1pass(), SHAPES).get("divide") == F * P

    def test_2pass_divopt(self):
        assert total_ops(attention_2pass(div_opt=True), SHAPES).get("divide") == F * P


class TestOnePassOverhead:
    """Sec. IV-E3: 'Note the evidently increased compute relative to the
    3-pass cascade.'"""

    def test_1pass_more_exps(self):
        exp1 = total_ops(attention_1pass(), SHAPES).get("exp")
        exp3 = total_ops(attention_3pass(), SHAPES).get("exp")
        assert exp1 == exp3 + SHAPES["M1"] * P  # PRM corrections

    def test_1pass_more_total_work(self):
        t1 = total_ops(attention_1pass(), SHAPES)
        t3 = total_ops(attention_3pass(), SHAPES)
        assert t1.macc_equivalents() > t3.macc_equivalents()

    def test_overhead_shrinks_with_larger_blocks(self):
        """Corrections are per-M1-chunk: larger M0 means fewer chunks."""
        small = dict(SHAPES, M0=16, M1=64)
        large = dict(SHAPES, M0=64, M1=16)
        t_small = total_ops(attention_1pass(), small).macc_equivalents()
        t_large = total_ops(attention_1pass(), large).macc_equivalents()
        assert t_large < t_small


class TestViewsAndInits:
    def test_views_are_free(self):
        per = count_ops(attention_1pass(), SHAPES)
        assert per["BK"].total == 0
        assert per["BV"].total == 0

    def test_pedagogical_counts(self):
        per1 = count_ops(cascade1_two_pass(), {"K": 100})
        assert per1["Y"].get("macc") == 100
        assert per1["Z"].get("macc") == 100  # K multiplications (Einsum 6)
        per2 = count_ops(cascade2_deferred(), {"K": 100})
        assert per2["Z"].get("macc") == 1  # a single multiplication (Einsum 9)
