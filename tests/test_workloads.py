"""Tests for workload definitions and the Fig. 1b compute breakdown."""

import pytest

from repro.workloads import (
    BATCH_SIZE,
    BERT,
    MODELS,
    SEQUENCE_LENGTHS,
    T5,
    TRXL,
    XLM,
    attention_crossover_length,
    compute_breakdown,
    seq_label,
)


class TestModelConfigs:
    def test_four_models(self):
        assert [m.name for m in MODELS] == ["BERT", "TrXL", "T5", "XLM"]

    def test_bert_hyperparameters(self):
        assert (BERT.d_model, BERT.n_heads, BERT.d_head) == (768, 12, 64)
        assert BERT.d_ff == 4 * BERT.d_model

    def test_xlm_has_larger_head_dim(self):
        """The paper attributes XLM's different behaviour to its larger
        embedding dimension E/F."""
        assert XLM.d_head == 128
        assert all(m.d_head == 64 for m in (BERT, TRXL, T5))

    def test_d_attn(self):
        assert BERT.d_attn == 768
        assert XLM.d_attn == 2048

    def test_batch_size_follows_flat(self):
        assert BATCH_SIZE == 64

    def test_sequence_sweep(self):
        assert SEQUENCE_LENGTHS[0] == 1024
        assert SEQUENCE_LENGTHS[-1] == 2**20
        assert len(SEQUENCE_LENGTHS) == 6

    def test_attention_shapes(self):
        shapes = BERT.attention_shapes(4096, block=256)
        assert shapes == {
            "E": 64, "F": 64, "M": 4096, "P": 4096, "M0": 256, "M1": 16
        }

    def test_attention_shapes_rejects_ragged(self):
        with pytest.raises(ValueError):
            BERT.attention_shapes(1000, block=256)

    def test_seq_labels(self):
        assert seq_label(1024) == "1K"
        assert seq_label(262144) == "256K"
        assert seq_label(2**20) == "1M"


class TestComputeBreakdown:
    def test_linear_dominates_short_sequences(self):
        bd = compute_breakdown(BERT, 1024)
        assert bd.linear > bd.attention

    def test_attention_dominates_long_sequences(self):
        bd = compute_breakdown(BERT, 2**20)
        assert bd.attention > 0.99 * bd.total

    def test_other_always_negligible(self):
        """Fig. 1b: non-linearities never matter."""
        for seq_len in SEQUENCE_LENGTHS:
            bd = compute_breakdown(BERT, seq_len)
            assert bd.other / bd.total < 0.01

    def test_proportions_sum_to_one(self):
        props = compute_breakdown(TRXL, 16384).proportions()
        assert sum(props.values()) == pytest.approx(1.0)

    def test_crossover_in_low_thousands(self):
        """Fig. 1b's crossover for BERT sits between 1K and 16K tokens."""
        crossover = attention_crossover_length(BERT)
        assert 1024 < crossover < 16384

    def test_attention_fraction_monotone_in_length(self):
        fractions = [
            compute_breakdown(BERT, L).proportions()["Attn"]
            for L in SEQUENCE_LENGTHS
        ]
        assert fractions == sorted(fractions)

    def test_every_model_crosses_over(self):
        for model in MODELS:
            short = compute_breakdown(model, 1024)
            long = compute_breakdown(model, 2**20)
            assert short.linear > short.attention
            assert long.attention > long.linear
