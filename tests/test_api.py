"""The unified typed evaluation API: requests, validation, Session.

Covers the three contracts of ``repro.api``:

- **validation** — every cross-field rule that used to live in the
  CLI's ``_simulate_flag_errors`` sprawl now raises from
  ``Request.validate()`` (plus the rules new request kinds add);
- **signature completeness** — a field walk over every request class
  asserts each declared field participates in the request's content
  signature, so no new field can silently escape caching/identity;
- **Session semantics** — payload equivalence with the runtime paths,
  provenance (cache deltas, registry run ids), cycle-oracle parity,
  and submit/gather pooling heterogeneous requests into one pass.
"""

import dataclasses

import pytest

from repro import __version__
from repro.api import (
    BindingSweepRequest,
    ClusterRequest,
    CrosscheckRequest,
    ExperimentRequest,
    REQUEST_TYPES,
    RequestValidationError,
    ScenarioGridRequest,
    ScenarioRequest,
    ServeRequest,
    Session,
)
from repro.runtime import ResultCache, RunRegistry
from repro.runtime import executor as _runtime
from repro.runtime.cache import code_version
from repro.serving import Arrival, poisson_arrivals, simulate_serving
from repro.simulator import evaluate_scenario_point
from repro.workloads import BERT
from repro.workloads.scenario import attention_scenario, heterogeneous_scenario


def violations(request):
    with pytest.raises(RequestValidationError) as err:
        request.validate()
    return list(err.value.errors)


class TestScenarioRequestValidation:
    """The rules ported from the CLI's ``_simulate_flag_errors``."""

    def test_valid_defaults(self):
        ScenarioRequest().validate()  # does not raise

    def test_model_and_instances_mutually_exclusive(self):
        errors = violations(ScenarioRequest(model="BERT", instances=4))
        assert any("mutually exclusive" in e for e in errors)

    def test_batch_and_heads_require_model(self):
        errors = violations(ScenarioRequest(batch=2, heads=4))
        assert sum("requires model" in e for e in errors) == 2

    def test_decode_chunks_requires_decode_instances(self):
        errors = violations(ScenarioRequest(decode_chunks=8))
        assert "decode_chunks requires decode_instances" in errors

    def test_slots_apply_to_interleaved_only(self):
        errors = violations(ScenarioRequest(binding="tile-serial", slots=4))
        assert "slots applies to the interleaved binding only" in errors
        ScenarioRequest(binding="interleaved", slots=4).validate()

    def test_unknown_model_and_binding_and_engine(self):
        errors = violations(
            ScenarioRequest(model="GPT", binding="spiral", engine="magic")
        )
        assert any("unknown model 'GPT'" in e for e in errors)
        assert any("unknown binding 'spiral'" in e for e in errors)
        assert any("unknown engine 'magic'" in e for e in errors)

    def test_explicit_scenarios_exclusive_with_spec_fields(self):
        scenarios = (attention_scenario(2, 4),)
        errors = violations(
            ScenarioRequest(scenarios=scenarios, model="BERT", batch=2)
        )
        assert sum("scenarios is mutually exclusive" in e for e in errors) == 2
        ScenarioRequest(scenarios=scenarios).validate()

    def test_all_violations_reported_at_once(self):
        errors = violations(ScenarioRequest(
            model="GPT", instances=0, decode_chunks=8, engine="magic",
        ))
        assert len(errors) >= 4

    def test_positivity(self):
        errors = violations(ScenarioRequest(instances=0, chunks=-1))
        assert any("instances must be >= 1" in e for e in errors)
        assert any("chunks must be >= 1" in e for e in errors)
        assert any(
            "decode_instances must be >= 0" in e
            for e in violations(ScenarioRequest(decode_instances=-1))
        )

    def test_mixed_models_mutually_exclusive_with_model_and_instances(self):
        errors = violations(
            ScenarioRequest(mixed_models=("BERT", "XLM"), model="T5")
        )
        assert any("mixed_models and model are mutually exclusive" in e
                   for e in errors)
        errors = violations(
            ScenarioRequest(mixed_models=("BERT",), instances=4)
        )
        assert any("mixed_models and instances are mutually exclusive" in e
                   for e in errors)

    def test_mixed_models_unknown_and_empty(self):
        errors = violations(ScenarioRequest(mixed_models=("BERT", "GPT")))
        assert any("unknown model 'GPT'" in e for e in errors)
        errors = violations(ScenarioRequest(mixed_models=()))
        assert any("at least one model" in e for e in errors)

    def test_mixed_models_allow_batch_and_heads(self):
        ScenarioRequest(mixed_models=("BERT", "XLM"), batch=2, heads=4).validate()
        built = ScenarioRequest(
            mixed_models=("BERT", "XLM"), batch=2, heads=4, chunks=4,
            binding="interleaved",
        ).build_scenarios()
        (one,) = built
        assert one.instances == 2 * (2 * 4)
        # Per-phase widths follow each model's d_head: a mixed-model
        # schedule, rejected nowhere because it is consistent.
        assert [p.embedding for p in one.phases] == [64, 128]
        assert one.mixed_embedding

    def test_dram_bw_must_be_positive(self):
        for bad in (0.0, -1.0, float("nan")):
            errors = violations(ScenarioRequest(dram_bw=bad))
            assert any("dram_bw must be > 0" in e for e in errors), bad
        ScenarioRequest(dram_bw=64.0).validate()
        ScenarioRequest(dram_bw=float("inf")).validate()

    def test_inconsistent_embedding_rejected_before_graph_build(self):
        """The mixed-model inconsistency cases: all raise at spec
        construction, never from inside the simulator."""
        from repro.workloads.scenario import (
            Phase, Scenario, heterogeneous_scenario, mixed_model_scenario,
        )

        with pytest.raises(ValueError, match="inconsistent embedding"):
            Phase("prefill", 1, 4, embedding=64, model="XLM")
        with pytest.raises(ValueError, match="d_head"):
            Scenario(name="bad", phases=(Phase("prefill", 1, 4),),
                     embedding=64, model="XLM")
        with pytest.raises(ValueError, match="inconsistent embedding"):
            heterogeneous_scenario(
                (4, 8), models=("BERT", "XLM"), embedding=64,
            )
        with pytest.raises(ValueError, match="one model per instance"):
            heterogeneous_scenario((4, 8, 16), models=("BERT", "XLM"))
        with pytest.raises(ValueError, match="unknown model"):
            heterogeneous_scenario((4, 8), models=("BERT", "GPT"))
        with pytest.raises(ValueError, match="unknown model"):
            mixed_model_scenario(("GPT",), 4)
        # Consistent mixes build fine.
        het = heterogeneous_scenario((4, 8), models=("BERT", "XLM"))
        assert [p.embedding for p in het.phases] == [64, 128]

    def test_crosscheck_bandwidth_excludes_explicit_scenarios(self):
        errors = violations(CrosscheckRequest(
            bandwidth=True, scenarios=(attention_scenario(1, 4),),
        ))
        assert any("seed grid only" in e for e in errors)
        CrosscheckRequest(bandwidth=True).validate()
        errors = violations(CrosscheckRequest(
            cluster=True, scenarios=(attention_scenario(1, 4),),
        ))
        assert any("explicit scenarios are unsharded" in e for e in errors)
        CrosscheckRequest(cluster=True).validate()

    def test_grid_dram_bw_reaches_every_cell(self):
        request = ScenarioGridRequest(
            models=("BERT",), batches=(1,), heads=(2,), chunks=4,
            array_dim=64, dram_bw=32.0,
        )
        request.validate()
        assert all(c.scenario.dram_bw == 32.0 for c in request.cells())
        errors = violations(dataclasses.replace(request, dram_bw=-2.0))
        assert any("dram_bw must be > 0" in e for e in errors)

    def test_build_scenarios_matches_cli_defaults(self):
        built = ScenarioRequest().build_scenarios()
        assert len(built) == 2  # both bindings
        assert {s.binding for s in built} == {"tile-serial", "interleaved"}
        assert all(s.instances == 4 and s.seq_len == 32 * 256 for s in built)
        (one,) = ScenarioRequest(
            model="BERT", batch=2, binding="interleaved", chunks=4,
        ).build_scenarios()
        assert one.instances == 2 * BERT.n_heads
        assert one.model == "BERT"


class TestOtherRequestValidation:
    def test_experiment_names(self):
        ExperimentRequest(name="fig6").validate()
        assert any(
            "unknown experiment" in e
            for e in violations(ExperimentRequest(name="fig99"))
        )

    def test_experiment_grid_fields_require_sweep(self):
        errors = violations(ExperimentRequest(
            name="fig6", kind="attention", models=("BERT",), seq_lens=(1024,),
        ))
        assert sum("applies to the 'sweep' experiment only" in e
                   for e in errors) == 3
        ExperimentRequest(name="sweep", kind="inference",
                          models=("BERT",), seq_lens=(1024,)).validate()

    def test_experiment_unknown_model_and_kind(self):
        errors = violations(ExperimentRequest(name="sweep", kind="pareto",
                                              models=("GPT",)))
        assert any("unknown sweep kind" in e for e in errors)
        assert any("unknown model 'GPT'" in e for e in errors)

    def test_binding_sweep_axes(self):
        BindingSweepRequest().validate()
        errors = violations(BindingSweepRequest(
            chunks=(), array_dims=(0,), bindings=("spiral",), engine="x",
        ))
        assert any("chunks must name at least one value" in e for e in errors)
        assert any("array_dims values must be >= 1" in e for e in errors)
        assert any("unknown binding 'spiral'" in e for e in errors)
        assert any("unknown engine 'x'" in e for e in errors)

    def test_grid_request_rules(self):
        ScenarioGridRequest().validate()
        errors = violations(ScenarioGridRequest(
            models=("GPT",), batches=(), decode_instances=(-1,),
            bindings=("tile-serial",), slots=2,
        ))
        assert any("unknown model 'GPT'" in e for e in errors)
        assert any("batches must name at least one value" in e for e in errors)
        assert any("decode_instances values must be >= 0" in e for e in errors)
        assert "slots applies to the interleaved binding only" in errors
        assert any(
            "decode_chunks requires a nonzero decode_instances" in e
            for e in violations(ScenarioGridRequest(decode_chunks=4))
        )
        assert any(
            "at least one model or extra scenario" in e
            for e in violations(ScenarioGridRequest(models=()))
        )
        # Extras alone are a valid (purely heterogeneous) grid.
        ScenarioGridRequest(
            models=(), extra_scenarios=(attention_scenario(1, 4),),
        ).validate()

    def test_serve_rate_xor_trace(self):
        errors = violations(ServeRequest())
        assert "exactly one of rate and trace must be given" in errors
        errors = violations(ServeRequest(rate=1.0, trace=(Arrival(0, 4),)))
        assert "exactly one of rate and trace must be given" in errors
        ServeRequest(rate=1.0).validate()
        ServeRequest(trace=(Arrival(0, 4),)).validate()

    def test_serve_rate_only_fields_rejected_with_trace(self):
        errors = violations(ServeRequest(
            trace=(Arrival(0, 4),), duration=1024, seed=1, chunks=4,
            decode_tokens=2,
        ))
        assert sum("applies to rate-driven serving only" in e
                   for e in errors) == 4

    def test_serve_trace_shape(self):
        errors = violations(ServeRequest(trace=()))
        assert "trace must name at least one arrival" in errors
        errors = violations(
            ServeRequest(trace=(Arrival(64, 4), Arrival(0, 4)))
        )
        assert any("non-decreasing" in e for e in errors)

    def test_serve_positivity_and_binding(self):
        errors = violations(ServeRequest(
            rate=0.0, max_inflight=0, deadline=0, dram_bw=-1.0,
            binding="spiral",
        ))
        assert any("rate must be > 0" in e for e in errors)
        assert any("max_inflight must be >= 1" in e for e in errors)
        assert any("deadline must be >= 1" in e for e in errors)
        assert any("dram_bw must be > 0" in e for e in errors)
        assert any("unknown binding 'spiral'" in e for e in errors)
        errors = violations(ServeRequest(rate=1.0, seed=-1, decode_tokens=-1))
        assert any("seed must be >= 0" in e for e in errors)
        assert any("decode_tokens must be >= 0" in e for e in errors)

    def test_serve_slots_interleaved_only(self):
        errors = violations(
            ServeRequest(rate=1.0, binding="tile-serial", slots=4)
        )
        assert "slots applies to the interleaved binding only" in errors
        ServeRequest(rate=1.0, binding="interleaved", slots=4).validate()

    def test_serve_engine_rules(self):
        errors = violations(ServeRequest(rate=1.0, engine="quantum"))
        assert any("unknown engine 'quantum'" in e for e in errors)
        errors = violations(ServeRequest(rate=1.0, engine="cycle"))
        assert "serve supports engines ('event', 'vector')" in errors
        ServeRequest(rate=1.0, engine="vector").validate()

    def test_serve_build_spec_defaults(self):
        spec = ServeRequest(rate=0.5, seed=3).build_spec()
        assert spec.name == "poisson-r0.5-s3"
        assert spec.rate == 0.5
        assert spec.max_inflight == 8 and spec.slots == 2
        assert spec.arrivals == poisson_arrivals(0.5, 32768, seed=3)
        trace_spec = ServeRequest(trace=(Arrival(0, 4, 2),)).build_spec()
        assert trace_spec.name == "trace-1req"
        assert trace_spec.rate is None
        assert trace_spec.arrivals == (Arrival(0, 4, 2),)

    def test_serve_cluster_rules(self):
        ServeRequest(rate=1.0, chips=4, link_bw=64.0, link_latency=2).validate()
        errors = violations(ServeRequest(rate=1.0, chips=0))
        assert any("chips must be >= 1" in e for e in errors)
        errors = violations(ServeRequest(rate=1.0, chips=4, link_bw=0.0))
        assert any("link_bw must be > 0" in e for e in errors)
        errors = violations(
            ServeRequest(rate=1.0, chips=4, link_latency=-1)
        )
        assert any("link_latency must be >= 0" in e for e in errors)
        errors = violations(ServeRequest(rate=1.0, link_bw=64.0))
        assert any("link_bw requires chips >= 2" in e for e in errors)
        errors = violations(ServeRequest(rate=1.0, chips=1, link_bw=64.0))
        assert any("link_bw requires chips >= 2" in e for e in errors)

    def test_cluster_request_rules(self):
        ClusterRequest().validate()
        ClusterRequest(model="BERT", batch=2, chips=(1, 2),
                       shardings=("head", "tensor"),
                       link_bws=(None, 64.0)).validate()
        errors = violations(ClusterRequest(model="BERT", instances=4))
        assert any("mutually exclusive" in e for e in errors)
        errors = violations(ClusterRequest(batch=2, heads=4))
        assert sum("requires model" in e for e in errors) == 2
        errors = violations(ClusterRequest(
            model="GPT", binding="spiral", engine="magic",
            chips=(0,), shardings=("diagonal",), link_bws=(-1.0,),
            link_latency=-1, topology="mesh",
        ))
        assert any("unknown model 'GPT'" in e for e in errors)
        assert any("unknown binding 'spiral'" in e for e in errors)
        assert any("unknown engine 'magic'" in e for e in errors)
        assert any("chips values must be >= 1" in e for e in errors)
        assert any("unknown sharding 'diagonal'" in e for e in errors)
        assert any("link_bws values must be > 0" in e for e in errors)
        assert any("link_latency must be >= 0" in e for e in errors)
        assert any("unknown topology 'mesh'" in e for e in errors)
        errors = violations(ClusterRequest(chips=(), shardings=(),
                                           link_bws=()))
        assert any("chips must name at least one value" in e for e in errors)
        assert any("at least one policy" in e for e in errors)
        assert any("at least one bandwidth" in e for e in errors)
        errors = violations(ClusterRequest(binding="tile-serial", slots=4))
        assert "slots applies to the interleaved binding only" in errors
        errors = violations(ClusterRequest(decode_chunks=8))
        assert "decode_chunks requires decode_instances" in errors
        # Tensor-sharding divisibility is caught at validation, not as
        # a traceback from inside the pooled worker.
        errors = violations(ClusterRequest(
            model="BERT", batch=1, heads=2, chunks=4, array_dim=64,
            chips=(3,), shardings=("tensor",),
        ))
        assert errors == ["tensor sharding needs embedding divisible "
                          "by n_chips; got E=64, n_chips=3"]
        ClusterRequest(model="BERT", batch=1, heads=2, chunks=4,
                       array_dim=64, chips=(3,),
                       shardings=("head",)).validate()

    def test_cluster_request_build_points(self):
        request = ClusterRequest(
            instances=4, chunks=4, array_dim=64,
            chips=(1, 2), shardings=("head", "tensor"), link_bws=(None, 8.0),
            link_latency=2,
        )
        points = request.build_points()
        assert len(points) == 8
        # chips outermost, shardings, then link bandwidths.
        assert [(p.spec.n_chips, p.sharding, p.spec.link_bw)
                for p in points[:4]] == [
            (1, "head", None), (1, "head", 8.0),
            (1, "tensor", None), (1, "tensor", 8.0),
        ]
        assert all(p.scenario == points[0].scenario for p in points)
        assert all(p.spec.link_latency == 2 for p in points)

    def test_crosscheck_rules(self):
        CrosscheckRequest().validate()
        assert any(
            "tolerance must be >= 0" in e
            for e in violations(CrosscheckRequest(tolerance=-0.1))
        )
        assert any(
            "at least one scenario" in e
            for e in violations(CrosscheckRequest(scenarios=()))
        )


#: A mutated value per field of every request class.  The walk below
#: asserts the maps stay exhaustive, so a future field cannot ship
#: without declaring how it perturbs the signature.
SIGNATURE_MUTATIONS = {
    ExperimentRequest: {
        "name": "fig6",
        "kind": "inference",
        "models": ("T5",),
        "seq_lens": (4096,),
    },
    BindingSweepRequest: {
        "chunks": (8,),
        "bindings": ("interleaved",),
        "array_dims": (64,),
        "embeddings": (32,),
        "pe_1d_dims": (128,),
        "engine": "cycle",
    },
    ScenarioRequest: {
        "model": "BERT",
        "batch": 2,
        "heads": 2,
        "instances": 8,
        "mixed_models": ("BERT", "XLM"),
        "chunks": 16,
        "array_dim": 128,
        "pe_1d": 64,
        "slots": 3,
        "decode_instances": 1,
        "decode_chunks": 4,
        "dram_bw": 64.0,
        "buffer_bytes": 65536.0,
        "qos": "decode-first",
        "binding": "interleaved",
        "engine": "cycle",
        "profile": True,
        "scenarios": (attention_scenario(1, 4),),
    },
    ScenarioGridRequest: {
        "models": ("T5",),
        "batches": (2,),
        "heads": (2,),
        "decode_instances": (1,),
        "chunks": 8,
        "decode_chunks": 4,
        "bindings": ("tile-serial",),
        "array_dim": 128,
        "pe_1d": 64,
        "slots": 3,
        "dram_bw": 64.0,
        "buffer_bytes": 65536.0,
        "qos": "decode-first",
        "extra_scenarios": (attention_scenario(1, 4),),
    },
    ServeRequest: {
        "rate": 0.5,
        "duration": 16384,
        "seed": 7,
        "trace": (Arrival(0, 4, 2),),
        "chunks": 4,
        "decode_tokens": 2,
        "max_inflight": 4,
        "deadline": 5000,
        "binding": "tile-serial",
        "embedding": 32,
        "array_dim": 128,
        "pe_1d": 64,
        "slots": 3,
        "dram_bw": 64.0,
        "buffer_bytes": 65536.0,
        "qos": "decode-first",
        "chips": 4,
        "link_bw": 128.0,
        "link_latency": 8,
        "engine": "vector",
    },
    ClusterRequest: {
        "model": "BERT",
        "batch": 2,
        "heads": 2,
        "instances": 8,
        "chunks": 16,
        "array_dim": 128,
        "pe_1d": 64,
        "slots": 3,
        "decode_instances": 1,
        "decode_chunks": 4,
        "dram_bw": 64.0,
        "binding": "tile-serial",
        "chips": (2, 8),
        "shardings": ("tensor",),
        "link_bws": (128.0,),
        "link_latency": 8,
        "topology": "ring",
        "engine": "vector",
    },
    CrosscheckRequest: {
        "tolerance": 0.1,
        "bandwidth": True,
        "capacity": True,
        "cluster": True,
        "scenarios": (attention_scenario(1, 4),),
    },
}


class TestSignatureCompleteness:
    """Field walk: every request field participates in the signature."""

    @pytest.mark.parametrize("cls", REQUEST_TYPES)
    def test_every_field_mutation_changes_signature(self, cls):
        mutations = SIGNATURE_MUTATIONS[cls]
        declared = {f.name for f in dataclasses.fields(cls)}
        assert set(mutations) == declared, (
            f"new {cls.__name__} field without a signature mutation entry"
        )
        base = cls()
        for field, value in mutations.items():
            mutated = dataclasses.replace(base, **{field: value})
            assert mutated.signature() != base.signature(), field

    def test_kinds_distinguish_requests(self):
        kinds = {cls.KIND for cls in REQUEST_TYPES}
        assert len(kinds) == len(REQUEST_TYPES)

    def test_equal_requests_share_signature(self):
        a = ScenarioRequest(model="BERT", batch=2)
        b = ScenarioRequest(model="BERT", batch=2)
        assert a.signature() == b.signature()


class TestSession:
    def test_version_matches_package(self):
        assert Session().version == __version__

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Session(jobs=0)
        with pytest.raises(ValueError):
            Session(cache=False, cache_dir="/tmp/x")

    def test_run_validates_first(self):
        with pytest.raises(RequestValidationError):
            Session().run(ScenarioRequest(model="BERT", instances=4))

    def test_scenario_payload_matches_runtime(self):
        request = ScenarioRequest(instances=2, chunks=4, array_dim=64)
        payload = Session(cache=False).run(request).payload
        expected = _runtime.sweep_scenarios(
            request.build_scenarios(), cache=False
        )
        assert payload == expected

    def test_cycle_engine_matches_event(self):
        event = Session(cache=False).run(
            ScenarioRequest(instances=2, chunks=4, array_dim=64)
        )
        cycle = Session(cache=False).run(
            ScenarioRequest(instances=2, chunks=4, array_dim=64,
                            engine="cycle")
        )
        assert event.payload == cycle.payload
        one_event = Session(cache=False).run(BindingSweepRequest(
            chunks=(4,), array_dims=(64,)))
        one_cycle = Session(cache=False).run(BindingSweepRequest(
            chunks=(4,), array_dims=(64,), engine="cycle"))
        assert one_event.payload == one_cycle.payload

    def test_vector_engine_matches_event(self):
        event = Session(cache=False).run(
            ScenarioRequest(instances=3, chunks=4, array_dim=64,
                            dram_bw=8.0)
        )
        vector = Session(cache=False).run(
            ScenarioRequest(instances=3, chunks=4, array_dim=64,
                            dram_bw=8.0, engine="vector")
        )
        assert event.payload == vector.payload
        one_vector = Session(cache=False).run(BindingSweepRequest(
            chunks=(4,), array_dims=(64,), engine="vector"))
        one_event = Session(cache=False).run(BindingSweepRequest(
            chunks=(4,), array_dims=(64,)))
        assert one_vector.payload == one_event.payload

    def test_profile_rides_in_provenance(self):
        request = ScenarioRequest(instances=2, chunks=4, array_dim=64,
                                  profile=True, engine="vector")
        result = Session(cache=False).run(request)
        plain = Session(cache=False).run(
            ScenarioRequest(instances=2, chunks=4, array_dim=64)
        )
        assert result.payload == plain.payload  # timing never changes results
        assert plain.provenance.profiles is None
        profiles = result.provenance.profiles
        assert profiles is not None and len(profiles) == len(result.payload)
        for prof in profiles:
            assert prof.engine == "vector"
            assert prof.build_s >= 0 and prof.schedule_s >= 0
            assert "schedule=" in prof.describe()

    def test_provenance_cache_and_registry(self, tmp_path):
        session = Session(
            cache=ResultCache(), registry=tmp_path / "runs",
        )
        request = ScenarioRequest(instances=2, chunks=4, array_dim=64)
        cold = session.run(request)
        assert cold.provenance.kind == "scenario"
        assert cold.provenance.code_version == code_version()
        assert cold.provenance.cache_misses == 2
        assert cold.provenance.cache_hits == 0
        assert cold.provenance.run_id is not None
        warm = session.run(request)
        assert warm.provenance.cache_hits == 2
        assert warm.provenance.cache_misses == 0
        assert warm.payload == cold.payload
        registry = RunRegistry(tmp_path / "runs")
        assert len(registry.list_runs()) == 2

    def test_experiment_text_payload(self):
        result = Session().run(ExperimentRequest(name="table1"))
        assert "FlashAttention" in result.payload

    def test_grid_cells_cached_per_cell(self, tmp_path):
        request = ScenarioGridRequest(
            models=("BERT",), batches=(1, 2), heads=(2,),
            chunks=4, array_dim=64,
        )
        cache = ResultCache(directory=tmp_path)
        first = Session(cache=cache).run(request)
        assert first.provenance.cache_misses == 2
        # A grown grid only computes the new cells.
        grown = Session(cache=cache).run(dataclasses.replace(
            request, batches=(1, 2, 4),
        ))
        assert grown.provenance.cache_hits == 2
        assert grown.provenance.cache_misses == 1
        assert [c.sim for c in grown.payload[:2]] == [
            c.sim for c in first.payload
        ]

    def test_grid_heterogeneous_cells(self):
        het = heterogeneous_scenario((4, 4, 8), array_dim=64)
        assert [p.chunks for p in het.phases] == [4, 8]
        assert het.phases[0].instances == 2
        result = Session(cache=False).run(ScenarioGridRequest(
            models=(), extra_scenarios=(het,),
        ))
        (cell,) = result.payload
        assert cell.model is None and cell.batch is None
        assert cell.sim == evaluate_scenario_point(het)
        assert cell.estimate == "overlap-bound"
        assert 0 < cell.est_util_2d <= 1

    def test_serve_payload_matches_simulator(self):
        request = ServeRequest(
            rate=0.5, duration=8192, array_dim=64, deadline=4000,
        )
        payload = Session(cache=False).run(request).payload
        assert payload == simulate_serving(request.build_spec())
        assert payload.goodput is not None

    def test_serve_submit_gather_pools_rate_points(self, tmp_path):
        requests = [
            ServeRequest(rate=rate, duration=8192, array_dim=64)
            for rate in (0.2, 0.4)
        ]
        session = Session(cache=ResultCache(), registry=tmp_path / "runs")
        for request in requests:
            session.submit(request)
        gathered = session.gather()
        single = Session(cache=False)
        for request, result in zip(requests, gathered):
            assert result.provenance.batched
            assert result.payload == single.run(request).payload
        registry = RunRegistry(tmp_path / "runs")
        (run_id,) = registry.list_runs()
        assert registry.load(run_id).kind == "batch"

    def test_submit_gather_matches_individual_runs(self, tmp_path):
        requests = [
            BindingSweepRequest(chunks=(4, 8), array_dims=(64,)),
            ScenarioRequest(instances=2, chunks=4, array_dim=64),
            ScenarioGridRequest(models=("BERT",), batches=(1,), heads=(2,),
                                chunks=4, array_dim=64),
            CrosscheckRequest(
                scenarios=(attention_scenario(2, 4, array_dim=64),)
            ),
        ]
        batched = Session(jobs=2, cache=ResultCache(),
                          registry=tmp_path / "runs")
        for request in requests:
            batched.submit(request)
        gathered = batched.gather()
        assert batched._pending == []
        single = Session(cache=False)
        for request, result in zip(requests, gathered):
            assert result.request is request
            assert result.payload == single.run(request).payload
        # The lowerable prefix pooled into one recorded batch run; the
        # crosscheck ran whole afterwards and recorded its own sweep.
        assert gathered[0].provenance.batched
        assert not gathered[3].provenance.batched
        registry = RunRegistry(tmp_path / "runs")
        kinds = [registry.load(r).kind for r in registry.list_runs()]
        assert "batch" in kinds
