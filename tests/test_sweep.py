"""Tests for the workload sweep utilities."""

import pytest

from repro.workloads import (
    BATCH_SIZE,
    BERT,
    MODELS,
    SEQUENCE_LENGTHS,
    WorkloadPoint,
    evaluation_grid,
    work_summary,
)


class TestEvaluationGrid:
    def test_grid_size(self):
        points = list(evaluation_grid())
        assert len(points) == len(MODELS) * len(SEQUENCE_LENGTHS)

    def test_row_major_order(self):
        points = list(evaluation_grid())
        assert points[0].model.name == "BERT"
        assert points[0].seq_len == 1024
        assert points[len(SEQUENCE_LENGTHS)].model.name == "TrXL"

    def test_default_batch(self):
        assert all(p.batch == BATCH_SIZE for p in evaluation_grid())


class TestWorkloadPoint:
    def test_attention_instances(self):
        point = WorkloadPoint(BERT, 4096)
        assert point.attention_instances == 64 * 12

    def test_shapes_delegate(self):
        point = WorkloadPoint(BERT, 4096)
        assert point.attention_shapes(block=256)["M1"] == 16

    def test_attention_ops_scale_quadratically(self):
        a = WorkloadPoint(BERT, 4096).total_attention_ops()
        b = WorkloadPoint(BERT, 8192).total_attention_ops()
        assert b == pytest.approx(4 * a)

    def test_linear_ops_scale_linearly(self):
        a = WorkloadPoint(BERT, 4096).total_linear_ops()
        b = WorkloadPoint(BERT, 8192).total_linear_ops()
        assert b == pytest.approx(2 * a)


class TestWorkSummary:
    def test_covers_grid(self):
        summary = work_summary()
        assert len(summary) == len(MODELS) * len(SEQUENCE_LENGTHS)

    def test_fields(self):
        entry = work_summary()[("BERT", 4096)]
        assert set(entry) == {"attention_ops", "linear_ops", "instances"}
        assert entry["instances"] == 64 * 12

    def test_xlm_heaviest(self):
        summary = work_summary(seq_lens=(65536,))
        xlm = summary[("XLM", 65536)]["attention_ops"]
        t5 = summary[("T5", 65536)]["attention_ops"]
        assert xlm > t5
