"""Tests for live-footprint lower bounds (Sec. III-B) — the buffer-capacity
implications that motivate FuseMax's sequence-length independence."""

import pytest

from repro.analysis import count_passes, family, live_footprints
from repro.cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    cascade1_two_pass,
    cascade2_deferred,
)

SHAPES = {"E": 64, "F": 64, "M": 4096, "P": 1024, "M0": 64, "M1": 64, "K": 512}


def _report(builder, fam):
    cascade = builder()
    return live_footprints(count_passes(cascade, family(*fam)), SHAPES)


class TestPedagogicalFootprints:
    def test_cascade1_input_fiber_is_the_bound(self):
        """Sec. III-B: Cascade 1's A needs a full K fiber live — but A is
        an *input*; the intermediate Y is a scalar."""
        report = _report(cascade1_two_pass, ("k",))
        assert report.entries["Y"].family_elems == 1
        # The 2 passes over the input manifest as pass count, not as an
        # intermediate footprint.
        assert report.sequence_dependent_tensors() == ()

    def test_cascade2_all_small(self):
        report = _report(cascade2_deferred, ("k",))
        assert report.max_family_footprint() == 1


class TestAttentionFootprints:
    def test_3pass_keeps_full_fibers_of_qk_and_sn(self):
        """Sec. V (Mapping): multi-pass cascades make QK's live footprint
        O(M), so long sequences cannot be buffered on chip."""
        report = _report(attention_3pass, ("m",))
        assert report.entries["QK"].crosses_pass_boundary
        assert report.entries["QK"].family_elems == SHAPES["M"]
        assert report.entries["SN"].family_elems == SHAPES["M"]
        assert set(report.sequence_dependent_tensors()) == {"QK", "SN"}

    def test_3pass_total_footprint_includes_other_ranks(self):
        report = _report(attention_3pass, ("m",))
        assert report.entries["QK"].total_elems == SHAPES["M"] * SHAPES["P"]

    def test_2pass_numerator_stays_live(self):
        """TileFlow's limitation: SLN (the pass-1 local numerator) must
        survive into pass 2 — footprint M1 × M0 = M."""
        report = _report(attention_2pass, ("m1", "m0"))
        sln = report.entries["SLN"]
        assert sln.crosses_pass_boundary
        assert sln.family_elems == SHAPES["M0"] * SHAPES["M1"]
        assert sln.scales_with_sequence

    def test_2pass_partition_tensors_scale_with_m1(self):
        report = _report(attention_2pass, ("m1", "m0"))
        assert report.entries["SLD"].family_elems == SHAPES["M1"]
        assert report.entries["LM"].family_elems == SHAPES["M1"]

    def test_1pass_footprints_sequence_independent(self):
        """FuseMax's headline property: no tensor's live footprint grows
        with sequence length."""
        report = _report(attention_1pass, ("m1", "m0"))
        assert report.sequence_dependent_tensors() == ()
        assert report.max_family_footprint() == 1

    def test_1pass_running_tensors_are_constant_size(self):
        report = _report(attention_1pass, ("m1", "m0"))
        for tensor in ("RM", "RD", "RNV"):
            assert report.entries[tensor].family_elems == 1

    def test_1pass_buffered_bytes_beat_3pass(self):
        r1 = _report(attention_1pass, ("m1", "m0"))
        r3 = _report(attention_3pass, ("m",))
        assert r1.buffered_bytes() < r3.buffered_bytes()

    def test_3pass_buffer_grows_with_m(self):
        small = live_footprints(
            count_passes(attention_3pass(), family("m")), {**SHAPES, "M": 1024}
        )
        large = live_footprints(
            count_passes(attention_3pass(), family("m")), {**SHAPES, "M": 8192}
        )
        # QK and SN scale 8x; the P-sized GM/SD stay fixed, so the total
        # ratio is just shy of 8.
        assert large.buffered_bytes() == pytest.approx(
            8 * small.buffered_bytes(), rel=0.01
        )

    def test_1pass_buffer_invariant_to_m(self):
        def bytes_at(m1):
            shapes = {**SHAPES, "M": m1 * SHAPES["M0"], "M1": m1}
            return live_footprints(
                count_passes(attention_1pass(), family("m1", "m0")), shapes
            ).buffered_bytes()

        assert bytes_at(16) == bytes_at(1024)
