"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "3-pass" in out and "1-pass" in out

    @pytest.mark.parametrize("cascade,expected", [
        ("3pass", "3-pass"),
        ("1pass", "1-pass"),
        ("sigmoid", "1-pass"),
    ])
    def test_passes(self, capsys, cascade, expected):
        assert main(["passes", cascade]) == 0
        assert expected in capsys.readouterr().out

    def test_passes_unknown_cascade(self, capsys):
        assert main(["passes", "nope"]) == 2
        assert "unknown cascade" in capsys.readouterr().err

    def test_simulate(self, capsys):
        assert main(["simulate", "--chunks", "4"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out and "tile-serial" in out

    def test_fig1b(self, capsys):
        assert main(["fig1b"]) == 0
        assert "Attn" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "FlashAttention" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
