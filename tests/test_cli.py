"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "3-pass" in out and "1-pass" in out

    @pytest.mark.parametrize("cascade,expected", [
        ("3pass", "3-pass"),
        ("1pass", "1-pass"),
        ("sigmoid", "1-pass"),
    ])
    def test_passes(self, capsys, cascade, expected):
        assert main(["passes", cascade]) == 0
        assert expected in capsys.readouterr().out

    def test_passes_unknown_cascade(self, capsys):
        assert main(["passes", "nope"]) == 2
        assert "unknown cascade" in capsys.readouterr().err

    def test_simulate(self, capsys):
        assert main(["simulate", "--chunks", "4"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out and "tile-serial" in out

    def test_fig1b(self, capsys):
        assert main(["fig1b"]) == 0
        assert "Attn" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "FlashAttention" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out == f"repro {__version__}\n"


class TestSimulateModeErrors:
    """Flag-to-mode routing stays in the CLI (the typed requests make
    these combinations unrepresentable); cross-field rules now surface
    from ``Request.validate()`` through the same stderr path."""

    def test_sweep_and_scenario_exclusive(self, capsys):
        assert main(["simulate", "--sweep", "--scenario"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_scenario_flags_require_scenario(self, capsys):
        assert main(["simulate", "--model", "BERT"]) == 2
        assert "--model requires --scenario" in capsys.readouterr().err

    def test_sweep_flags_require_sweep(self, capsys):
        assert main(["simulate", "--chunks-list", "16"]) == 2
        assert "--chunks-list requires --sweep" in capsys.readouterr().err

    def test_one_shot_rejects_runtime_flags(self, capsys):
        assert main(["simulate", "--jobs", "4"]) == 2
        assert "--jobs requires --sweep or --scenario" in capsys.readouterr().err

    def test_sweep_rejects_one_shot_shape_flags(self, capsys):
        assert main(["simulate", "--sweep", "--chunks", "4"]) == 2
        assert "use --chunks-list" in capsys.readouterr().err

    def test_validation_errors_reach_stderr(self, capsys):
        assert main([
            "simulate", "--scenario", "--model", "BERT", "--instances", "4",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_scenario_unknown_model(self, capsys):
        assert main(["simulate", "--scenario", "--model", "GPT"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestSweepGrid:
    def test_grid_smoke(self, capsys, tmp_path):
        assert main([
            "sweep", "--grid", "--models", "BERT", "--batches", "1,2",
            "--heads-list", "2", "--chunks", "4", "--array-dim", "64",
            "--jobs", "2", "--registry", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 grid cells (scenario_grid)" in out
        assert "est_util_2d" in out
        assert "recorded run" in out

    def test_grid_flags_require_grid(self, capsys):
        assert main(["sweep", "--batches", "1,2"]) == 2
        assert "--batches requires --grid" in capsys.readouterr().err

    def test_grid_rejects_eval_sweep_flags(self, capsys):
        assert main(["sweep", "--grid", "--kind", "attention"]) == 2
        assert "--kind does not apply to --grid" in capsys.readouterr().err

    def test_grid_unknown_model(self, capsys):
        assert main(["sweep", "--grid", "--models", "GPT"]) == 2
        assert "unknown model" in capsys.readouterr().err
