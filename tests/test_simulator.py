"""Tests for the cycle-granular binding simulator (Fig. 4/5)."""

import pytest

from repro.simulator import (
    PipelineConfig,
    Simulator,
    Task,
    bqk_tile_timing,
    build_tasks,
    compare_bindings,
    exp_tile_timing,
    simulate_binding,
)


class TestEngine:
    def test_single_task(self):
        result = Simulator([Task("a", "r", 5)]).run()
        assert result.makespan == 5
        assert result.busy_cycles["r"] == 5
        assert result.utilization("r") == 1.0

    def test_chain_serializes(self):
        tasks = [Task("a", "r", 3), Task("b", "r", 4, deps=("a",))]
        result = Simulator(tasks, mode="serial").run()
        assert result.makespan == 7
        assert result.finish_times["a"] == 3
        assert result.finish_times["b"] == 7

    def test_independent_resources_overlap(self):
        tasks = [Task("a", "r1", 10), Task("b", "r2", 10)]
        result = Simulator(tasks).run()
        assert result.makespan == 10
        assert result.utilization("r1") == 1.0
        assert result.utilization("r2") == 1.0

    def test_dependency_across_resources(self):
        tasks = [Task("a", "r1", 5), Task("b", "r2", 5, deps=("a",))]
        result = Simulator(tasks).run()
        assert result.makespan == 10
        assert result.utilization("r2") == 0.5

    def test_interleaving_shares_issue_slots(self):
        """Two ready tasks interleave: both finish at ~sum of durations."""
        tasks = [Task("a", "r", 4), Task("b", "r", 4)]
        result = Simulator(tasks, mode="interleaved", slots=2).run()
        assert result.makespan == 8
        assert result.utilization("r") == 1.0

    def test_serial_runs_one_at_a_time(self):
        tasks = [Task("a", "r", 4), Task("b", "r", 4)]
        result = Simulator(tasks, mode="serial").run()
        assert result.finish_times["a"] == 4  # a completes before b starts

    def test_zero_duration_tasks_complete_immediately(self):
        tasks = [Task("a", "r", 0), Task("b", "r", 2, deps=("a",))]
        assert Simulator(tasks).run().makespan == 2

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown dep"):
            Simulator([Task("a", "r", 1, deps=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Simulator([Task("a", "r", 1), Task("a", "r", 1)])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("a", "r", -1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Simulator([Task("a", "r", 1)], mode="quantum")

    def test_deadlock_detection(self):
        # a mutual dependency can never finish
        tasks = [Task("a", "r", 1, deps=("b",)), Task("b", "r", 1, deps=("a",))]
        with pytest.raises(RuntimeError, match="max_cycles"):
            Simulator(tasks).run(max_cycles=100)


class TestSystolicTiming:
    def test_paper_fill_drain_arithmetic(self):
        """Sec. V: E = 64 MACCs per PE but ~256+256 cycles of fill/drain."""
        timing = bqk_tile_timing(array_dim=256, embedding=64)
        assert timing.compute == 64
        assert timing.fill + timing.drain == 512
        assert timing.serial_utilization == pytest.approx(64 / 576)

    def test_pipelined_interval_is_compute(self):
        timing = bqk_tile_timing(256, 64)
        assert timing.pipelined_interval == 64

    def test_exp_tile_needs_no_fill(self):
        timing = exp_tile_timing(256)
        assert timing.fill == 0
        assert timing.compute == 6


class TestPipelineSimulation:
    def test_interleaved_near_full_utilization(self):
        """The headline binding claim: ~100% on both arrays."""
        report = simulate_binding(PipelineConfig(chunks=32), "interleaved")
        assert report.util_2d > 0.85
        assert report.util_1d > 0.85

    def test_tile_serial_stalls(self):
        report = simulate_binding(PipelineConfig(chunks=32), "tile-serial")
        assert report.util_2d < 0.35
        assert report.util_1d < 0.35

    def test_interleaving_is_much_faster(self):
        reports = compare_bindings(PipelineConfig(chunks=32))
        assert (
            reports["tile-serial"].makespan
            > 3 * reports["interleaved"].makespan
        )

    def test_unknown_binding_rejected(self):
        with pytest.raises(ValueError):
            simulate_binding(PipelineConfig(chunks=4), "magic")

    def test_task_graph_size(self):
        tasks = build_tasks(PipelineConfig(chunks=4), serial=False)
        # 9 tasks per chunk in the interleaved graph
        assert len(tasks) == 4 * 9

    def test_serial_graph_adds_fill_drain(self):
        serial = build_tasks(PipelineConfig(chunks=4), serial=True)
        interleaved = build_tasks(PipelineConfig(chunks=4), serial=False)
        assert len(serial) == len(interleaved) + 2 * 4

    def test_utilization_stable_with_more_chunks(self):
        """Steady state: utilization does not degrade as the kernel grows."""
        short = simulate_binding(PipelineConfig(chunks=8), "interleaved")
        long = simulate_binding(PipelineConfig(chunks=48), "interleaved")
        assert long.util_2d >= short.util_2d - 0.02
