"""Unit tests for map/reduce/unary actions (repro.einsum.ops)."""

import numpy as np
import pytest

from repro.einsum.ops import (
    ADD,
    DIV,
    EXP,
    MAX,
    MAX_REDUCE,
    MUL,
    NEG,
    SIGMOID,
    SUB,
    SUB_THEN_EXP,
    SUM_REDUCE,
    map_op,
    reduce_op,
    unary_op,
)


class TestMapOps:
    def test_mul(self):
        assert MUL(np.array([2.0, 3.0]), np.array([4.0, 5.0])).tolist() == [8, 15]

    def test_add(self):
        assert ADD(np.array([1.0]), np.array([2.0])).tolist() == [3.0]

    def test_sub(self):
        assert SUB(np.array([5.0]), np.array([2.0])).tolist() == [3.0]

    def test_max_is_elementwise(self):
        out = MAX(np.array([1.0, 9.0]), np.array([5.0, 2.0]))
        assert out.tolist() == [5.0, 9.0]

    def test_sub_then_exp(self):
        out = SUB_THEN_EXP(np.array([1.0]), np.array([1.0]))
        assert out.tolist() == [1.0]

    def test_sub_then_exp_of_minus_inf(self):
        out = SUB_THEN_EXP(np.array([-np.inf]), np.array([0.0]))
        assert out.tolist() == [0.0]

    def test_div(self):
        assert DIV(np.array([6.0]), np.array([3.0])).tolist() == [2.0]

    def test_div_culls_zero_divisor(self):
        """EDGE's ÷(←) merge leaves zero where the divisor is zero."""
        out = DIV(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert out.tolist() == [0.0, 1.0]

    def test_div_broadcasts(self):
        out = DIV(np.ones((2, 3)), np.array([1.0, 2.0, 4.0]))
        assert out.shape == (2, 3)
        assert out[0].tolist() == [1.0, 0.5, 0.25]

    def test_merge_labels(self):
        assert MUL.merge == "intersection"
        assert ADD.merge == "union"
        assert DIV.merge == "right-nonzero"
        assert SUB_THEN_EXP.merge == "pass-through"

    def test_cost_classes(self):
        assert MUL.cost_class == "macc"
        assert MAX.cost_class == "max"
        assert DIV.cost_class == "divide"
        assert SUB_THEN_EXP.cost_class == "exp"


class TestReduceOps:
    def test_sum_reduce(self):
        arr = np.arange(6.0).reshape(2, 3)
        assert SUM_REDUCE.reduce(arr, axis=0).tolist() == [3.0, 5.0, 7.0]

    def test_max_reduce(self):
        arr = np.array([[1.0, 9.0], [5.0, 2.0]])
        assert MAX_REDUCE.reduce(arr, axis=1).tolist() == [9.0, 5.0]

    def test_identities(self):
        assert SUM_REDUCE.identity == 0.0
        assert MAX_REDUCE.identity == -np.inf


class TestUnaryOps:
    def test_exp(self):
        assert EXP(np.array([0.0])).tolist() == [1.0]

    def test_neg(self):
        assert NEG(np.array([3.0])).tolist() == [-3.0]

    def test_sigmoid_midpoint(self):
        assert SIGMOID(np.array([0.0])).tolist() == [0.5]

    def test_sigmoid_saturates(self):
        assert SIGMOID(np.array([100.0]))[0] == pytest.approx(1.0)


class TestRegistries:
    def test_map_lookup(self):
        assert map_op("mul") is MUL
        assert map_op("sub-then-exp") is SUB_THEN_EXP

    def test_reduce_lookup(self):
        assert reduce_op("max") is MAX_REDUCE

    def test_unary_lookup(self):
        assert unary_op("exp") is EXP

    @pytest.mark.parametrize("lookup", [map_op, reduce_op, unary_op])
    def test_unknown_name_raises(self, lookup):
        with pytest.raises(KeyError):
            lookup("nope")
