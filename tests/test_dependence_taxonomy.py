"""Tests for the dependence graph and the Table I taxonomy."""


from repro.analysis.dependence import build_dependence
from repro.analysis.taxonomy import (
    TABLE_I,
    attention_rank_family,
    build_taxonomy,
    classify,
)
from repro.cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    cascade1_two_pass,
)


class TestDependenceGraph:
    def test_producers(self):
        graph = build_dependence(attention_3pass())
        assert graph.producer_of["QK"] == "QK"
        assert graph.producer_of["AV"] == "AV"

    def test_consumers(self):
        graph = build_dependence(attention_3pass())
        assert set(graph.consumers_of["QK"]) == {"GM", "SN"}
        assert set(graph.consumers_of["SN"]) == {"SD", "A"}

    def test_init_producers_separate(self):
        graph = build_dependence(attention_1pass())
        assert graph.init_producer_of["RM"] == "RM0"
        assert graph.producer_of["RM"] == "RM"

    def test_view_backing_resolves_to_input(self):
        graph = build_dependence(attention_1pass())
        assert graph.backing["BK"] == "K"
        assert graph.backing["BV"] == "V"
        assert graph.is_input_backed("BK")
        assert not graph.is_input_backed("BQK")

    def test_predecessors(self):
        graph = build_dependence(attention_3pass())
        sn = attention_3pass().find("SN")
        assert set(graph.predecessors(sn)) == {"QK", "GM"}

    def test_topological_check_accepts_iterative_back_edges(self):
        # attention_1pass has RD/RNV recurrences; build must not raise.
        build_dependence(attention_1pass())

    def test_simple_cascade(self):
        graph = build_dependence(cascade1_two_pass())
        assert graph.consumers_of["A"] == ("Y", "Z")


class TestTaxonomy:
    def test_classify_all_three(self):
        assert classify(attention_3pass()) == "3-pass"
        assert classify(attention_2pass()) == "2-pass"
        assert classify(attention_1pass()) == "1-pass"

    def test_rank_family_selection(self):
        assert attention_rank_family(attention_3pass()).vars == ("m",)
        assert attention_rank_family(attention_1pass()).vars == ("m1", "m0")

    def test_table1_exemplars(self):
        assert "FLAT" in TABLE_I["3-pass"]
        assert "TileFlow" in TABLE_I["2-pass"]
        assert "FlashAttention-2" in TABLE_I["1-pass"]

    def test_build_taxonomy_matches_table1(self):
        taxonomy = build_taxonomy()
        assert len(taxonomy) == 3
        by_category = {entry.category: entry for entry in taxonomy.values()}
        for category, exemplars in TABLE_I.items():
            assert by_category[category].exemplars == exemplars

    def test_passes_field_consistent(self):
        for entry in build_taxonomy().values():
            assert entry.category == f"{entry.passes}-pass"
