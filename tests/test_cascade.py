"""Unit tests for the Cascade container and its validation."""

import pytest

from repro.cascades import (
    attention_1pass,
    attention_3pass,
    cascade1_two_pass,
    cascade3_iterative,
)
from repro.einsum import (
    Cascade,
    CascadeError,
    Einsum,
    IterativeRank,
    MUL,
    Map,
    TensorRef,
    ref,
)


def _einsum(out, out_ranks, a, a_ranks, b, b_ranks, **kwargs):
    return Einsum(
        output=TensorRef.of(out, *out_ranks),
        expr=Map(MUL, ref(a, *a_ranks), ref(b, *b_ranks)),
        name=out,
        **kwargs,
    )


class TestValidation:
    def test_reading_undefined_tensor_raises(self):
        with pytest.raises(CascadeError, match="undefined tensor"):
            Cascade.build(
                "bad",
                [_einsum("Z", ("m",), "A", ("m",), "Missing", ("m",))],
                inputs=["A"],
                rank_shapes={"m": "M"},
            )

    def test_writing_input_raises(self):
        with pytest.raises(CascadeError, match="writes input"):
            Cascade.build(
                "bad",
                [_einsum("A", ("m",), "B", ("m",), "C", ("m",))],
                inputs=["A", "B", "C"],
                rank_shapes={"m": "M"},
            )

    def test_undeclared_rank_raises(self):
        with pytest.raises(CascadeError, match="no declared shape"):
            Cascade.build(
                "bad",
                [_einsum("Z", ("m",), "A", ("m", "k"), "B", ("k",))],
                inputs=["A", "B"],
                rank_shapes={"m": "M"},
            )


class TestStructure:
    def test_tensors_inputs_first(self):
        cascade = cascade1_two_pass()
        assert cascade.tensors() == ("A", "B", "Y", "Z")

    def test_result_tensors_inferred(self):
        assert cascade1_two_pass().result_tensors() == ("Z",)

    def test_result_tensors_declared(self):
        assert attention_3pass().result_tensors() == ("AV",)

    def test_intermediates(self):
        cascade = attention_3pass()
        assert "QK" in cascade.intermediates()
        assert "AV" not in cascade.intermediates()
        assert "Q" not in cascade.intermediates()

    def test_producer_and_consumers(self):
        cascade = attention_3pass()
        assert cascade.producer("QK").label == "QK"
        assert {e.label for e in cascade.consumers("QK")} == {"GM", "SN"}

    def test_producer_prefers_extended_over_init(self):
        cascade = attention_1pass()
        producer = cascade.producer("RM")
        assert producer is not None
        assert not producer.is_initialization

    def test_find_by_label(self):
        assert attention_3pass().find("SN").label == "SN"

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            attention_3pass().find("NOPE")

    def test_initialization_and_extended_partition(self):
        cascade = attention_1pass()
        init = cascade.initialization()
        ext = cascade.extended()
        assert len(init) + len(ext) == len(cascade.einsums)
        assert all(e.is_initialization for e in init)
        assert {e.label for e in init} == {"BK", "BV", "RM0", "RD0", "RNV0"}

    def test_iterative_vars(self):
        assert attention_1pass().iterative_vars == ("m1",)
        assert attention_3pass().iterative_vars == ()
        assert attention_1pass().is_iterative()

    def test_rank_extent_resolution(self):
        cascade = attention_3pass()
        assert cascade.rank_extent("m", {"M": 128}) == 128

    def test_iterative_rank_extent(self):
        it = IterativeRank("m1", "M1")
        assert it.resolved_extent({"M1": 8}) == 8

    def test_str_mentions_stopping_condition(self):
        text = str(cascade3_iterative())
        assert "Initialization" in text
        assert "i >= K" in text
