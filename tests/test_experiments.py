"""Integration tests for the experiment drivers (one per figure/table)."""

import pytest

from repro.experiments import (
    fig1b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)
from repro.experiments.common import format_table
from repro.workloads import BERT, MODELS, SEQUENCE_LENGTHS

SHORT = (1024, 262144)  # trimmed grid keeps integration tests quick


class TestFig1b:
    def test_rows_cover_sweep(self):
        rows = fig1b.run()
        assert [r.seq_len for r in rows] == list(SEQUENCE_LENGTHS)

    def test_proportions_normalized(self):
        for row in fig1b.run():
            assert row.attn + row.linear + row.other == pytest.approx(1.0)

    def test_crossover_visible(self):
        rows = fig1b.run()
        assert rows[0].linear > rows[0].attn  # 1K
        assert rows[-1].attn > 0.99  # 1M

    def test_render(self):
        assert "Attn" in fig1b.render(fig1b.run())


class TestTable1:
    def test_three_categories_plus_ablations(self):
        rows = table1.run()
        by_name = {r.cascade: r.passes for r in rows}
        assert by_name["attention-3pass"] == 3
        assert by_name["attention-2pass"] == 2
        assert by_name["attention-1pass"] == 1
        assert by_name["attention-3pass-divopt"] == 2

    def test_exemplars_present(self):
        rows = table1.run()
        text = table1.render(rows)
        assert "FlashAttention-2" in text
        assert "FLAT" in text


class TestFig6:
    def test_grid_size(self):
        rows = fig6.run(models=[BERT], seq_lens=SHORT)
        assert len(rows) == 5 * 1 * 2  # configs x models x lengths

    def test_utilizations_in_unit_interval(self):
        for row in fig6.run(models=[BERT], seq_lens=SHORT):
            assert 0.0 <= row.util_1d <= 1.0
            assert 0.0 <= row.util_2d <= 1.0

    def test_series_extraction(self):
        rows = fig6.run(models=[BERT], seq_lens=SHORT)
        series = fig6.series(rows, "1d")
        assert len(series[("+Binding", "BERT")]) == 2


class TestFig7:
    def test_groups_sum_below_one(self):
        for row in fig7.run(seq_lens=SHORT):
            assert 0.0 < row.total_active <= 1.0 + 1e-9

    def test_fusemax_dominated_by_tensor_products(self):
        """Fig. 7: most active cycles go to QK and SLNV/AV."""
        rows = [r for r in fig7.run(seq_lens=(262144,)) if r.config == "+Binding"]
        row = rows[0]
        products = row.shares["QK"] + row.shares["SLNV/AV"]
        assert products > 0.8 * row.total_active

    def test_flat_has_no_exponentials_on_2d(self):
        rows = [r for r in fig7.run(seq_lens=(1024,)) if r.config == "FLAT"]
        assert rows[0].shares["SLN"] == 0.0


class TestFig8:
    def test_unfused_baseline_is_one(self):
        rows = fig8.run(models=[BERT], seq_lens=SHORT)
        for row in rows:
            if row.config == "Unfused":
                assert row.speedup == pytest.approx(1.0)

    def test_binding_fastest_everywhere(self):
        rows = fig8.run(models=[BERT], seq_lens=SHORT)
        by_len = {}
        for row in rows:
            by_len.setdefault(row.seq_len, {})[row.config] = row.speedup
        for speedups in by_len.values():
            assert speedups["+Binding"] == max(speedups.values())

    def test_headline_band(self):
        assert 5.0 <= fig8.fusemax_vs_flat(fig8.run()) <= 9.0


class TestFig9:
    def test_fusemax_cheapest(self):
        rows = fig9.run(models=[BERT], seq_lens=SHORT)
        by_len = {}
        for row in rows:
            by_len.setdefault(row.seq_len, {})[row.config] = row.normalized_energy
        for energies in by_len.values():
            assert energies["+Binding"] == min(energies.values())

    def test_headline_band(self):
        assert 0.4 <= fig9.fusemax_vs_flat(fig9.run()) <= 0.9


class TestFig10And11:
    def test_speedup_headline_band(self):
        assert 4.0 <= fig10.fusemax_vs_flat(fig10.run()) <= 7.5

    def test_energy_headline_band(self):
        assert 0.5 <= fig11.fusemax_vs_flat(fig11.run()) <= 0.95

    def test_e2e_speedup_below_attention_speedup(self):
        attn = fig8.fusemax_vs_flat(fig8.run(models=[BERT], seq_lens=SHORT))
        e2e = fig10.fusemax_vs_flat(fig10.run(models=[BERT], seq_lens=SHORT))
        assert e2e < attn


class TestFig12:
    def test_all_models_swept(self):
        results = fig12.run(seq_len=262144, dims=(64, 256))
        assert set(results) == {m.name for m in MODELS}

    def test_render_marks_pareto(self):
        text = fig12.render(fig12.run(dims=(64, 256)))
        assert "*" in text


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
