"""Property layer for the open-loop serving simulator.

Four contracts:

- **replayability** — equal ``(rate, duration, seed)`` triples produce
  identical arrival traces and identical :class:`ServingResult`s, trace
  files round-trip through ``format_trace``/``parse_trace``, and the
  event core agrees with the cycle-accurate oracle on serving graphs;
- **metrics math** — percentile/TTFT/TBT/goodput agree with
  hand-computed mini-traces;
- **closed-scenario equivalence** — a one-shot arrival batch (all
  requests at t=0, window wide open) schedules to exactly the closed
  :class:`Scenario` result, with and without DRAM contention, for both
  bindings;
- **load monotonicity** — with a fixed seed, scaling the offered rate
  up never decreases p50 latency and never increases goodput.
"""

import pytest

from repro.serving import (
    Arrival,
    RequestMetrics,
    ServingResult,
    ServingSpec,
    build_serving_tasks,
    format_trace,
    parse_trace,
    percentile,
    poisson_arrivals,
    serving_csv,
    serving_json,
    serving_sim,
    serving_table,
    simulate_serving,
)
from repro.simulator import scenario_sim
from repro.workloads.scenario import attention_scenario


def spec(arrivals, **overrides):
    defaults = dict(name="t", arrivals=tuple(arrivals), array_dim=64)
    defaults.update(overrides)
    return ServingSpec(**defaults)


class TestArrivals:
    def test_same_seed_identical_trace(self):
        a = poisson_arrivals(1.0, 32768, seed=7)
        b = poisson_arrivals(1.0, 32768, seed=7)
        assert a == b
        assert a != poisson_arrivals(1.0, 32768, seed=8)

    def test_rate_and_duration_bound_the_trace(self):
        arrivals = poisson_arrivals(2.0, 16384, seed=3)
        assert all(0 <= a.at < 16384 for a in arrivals)
        assert all(a.at <= b.at for a, b in zip(arrivals, arrivals[1:]))
        # More load, same horizon: the same seed draws a longer trace.
        assert len(arrivals) > len(poisson_arrivals(0.5, 16384, seed=3))

    def test_rejects_bad_process(self):
        with pytest.raises(ValueError, match="rate must be > 0"):
            poisson_arrivals(0.0, 1024)
        with pytest.raises(ValueError, match="duration must be >= 1"):
            poisson_arrivals(1.0, 0)
        with pytest.raises(ValueError, match="arrival chunks"):
            Arrival(0, 0)
        with pytest.raises(ValueError, match="arrival time"):
            Arrival(-1, 4)
        with pytest.raises(ValueError, match="decode_tokens"):
            Arrival(0, 4, -1)

    def test_trace_round_trip(self):
        arrivals = (Arrival(0, 4, 2), Arrival(64, 8), Arrival(64, 2, 1))
        assert parse_trace(format_trace(arrivals)) == arrivals

    def test_trace_parsing_details(self):
        text = "# header\n0 4 2\n\n64, 8  # inline comment\n"
        assert parse_trace(text) == (Arrival(0, 4, 2), Arrival(64, 8, 0))
        with pytest.raises(ValueError, match="line 1.*expected"):
            parse_trace("0 4 2 9")
        with pytest.raises(ValueError, match="line 2.*non-integer"):
            parse_trace("0 4\nx 4")
        with pytest.raises(ValueError, match="non-decreasing"):
            parse_trace("64 4\n0 4")


class TestMetricsMath:
    """Hand-computed mini-traces: every aggregate is checkable."""

    def test_percentile_nearest_rank(self):
        values = [10, 30, 20, 40]
        assert percentile(values, 50) == 20
        assert percentile(values, 99) == 40
        assert percentile(values, 25) == 10
        assert percentile(values, 100) == 40
        assert percentile([7], 50) == 7
        assert percentile([], 50) is None
        with pytest.raises(ValueError):
            percentile(values, 0)
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_request_timeline(self):
        r = RequestMetrics(
            index=0,
            arrival=100,
            chunks=4,
            decode_tokens=4,
            admitted=150,
            first_token=300,
            finish=700,
        )
        assert r.queue_delay == 50
        assert r.ttft == 200
        assert r.latency == 600
        assert r.tbt == (700 - 300) / 4
        assert r.met(600) and not r.met(599) and r.met(None)
        prefill_only = RequestMetrics(
            index=1,
            arrival=0,
            chunks=4,
            decode_tokens=0,
            admitted=0,
            first_token=80,
            finish=80,
        )
        assert prefill_only.tbt is None
        assert prefill_only.ttft == prefill_only.latency == 80

    def test_aggregates_from_mini_trace(self):
        requests = tuple(
            RequestMetrics(
                index=i,
                arrival=arrival,
                chunks=2,
                decode_tokens=tokens,
                admitted=arrival,
                first_token=first,
                finish=finish,
            )
            for i, (arrival, tokens, first, finish) in enumerate(
                [
                    (0, 2, 50, 150),  # ttft  50, latency 150, tbt 50
                    (10, 0, 110, 110),  # ttft 100, latency 100, tbt None
                    (20, 2, 220, 320),  # ttft 200, latency 300, tbt 50
                ]
            )
        )
        result = ServingResult(
            name="mini",
            binding="interleaved",
            rate=None,
            max_inflight=8,
            deadline=150,
            array_dim=64,
            pe_1d=64,
            embedding=64,
            slots=2,
            dram_bw=None,
            n_tasks=30,
            makespan=400,
            busy_2d=200,
            busy_1d=100,
            busy_io=40,
            busy_dram=0,
            requests=requests,
        )
        assert result.ttft_p50 == 100 and result.ttft_p99 == 200
        assert result.latency_p50 == 150 and result.latency_p99 == 300
        assert result.tbt_mean == 50.0
        assert result.goodput == pytest.approx(2 / 3)
        assert result.throughput == pytest.approx(3 * 1000 / 400)
        assert result.util_2d == pytest.approx(0.5)
        assert result.util_dram is None

    def test_emitters_cover_every_field_and_blank_nones(self):
        result = simulate_serving(spec([Arrival(0, 2, 1)]))
        csv_text = serving_csv([result])
        header, row = csv_text.strip().split("\n")
        assert header.count(",") == row.count(",") == 22
        assert ",-," in row  # rate/deadline columns blank
        assert '"rate": null' in serving_json([result])
        assert serving_table([result]).splitlines()[0].lstrip().startswith(
            "workload"
        )


class TestServingSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            spec([Arrival(64, 2), Arrival(0, 2)])
        with pytest.raises(ValueError, match="unknown binding"):
            spec([Arrival(0, 2)], binding="spiral")
        with pytest.raises(ValueError, match="max_inflight"):
            spec([Arrival(0, 2)], max_inflight=0)
        with pytest.raises(ValueError, match="deadline"):
            spec([Arrival(0, 2)], deadline=0)
        with pytest.raises(ValueError, match="rate"):
            spec([Arrival(0, 2)], rate=0.0)

    def test_tile_serial_normalizes_slots(self):
        s = spec([Arrival(0, 2)], binding="tile-serial", slots=4)
        assert s.slots == 1

    def test_seq_len_and_describe(self):
        s = spec([Arrival(0, 2), Arrival(5, 8)], rate=0.5, deadline=900)
        assert s.seq_len == 8 * 64
        assert "rate=0.5/kcy" in s.describe()
        assert "slo=900" in s.describe()
        assert "trace" in spec([Arrival(0, 2)]).describe()


class TestDeterminismAndEngines:
    def test_same_spec_identical_result(self):
        s = spec(
            poisson_arrivals(0.5, 8192, seed=5, chunks=2, decode_tokens=2),
            deadline=4000,
            rate=0.5,
        )
        assert simulate_serving(s) == simulate_serving(s)

    def test_event_equals_cycle_on_serving_graph(self):
        s = spec(
            poisson_arrivals(1.0, 4096, seed=9, chunks=2, decode_tokens=1),
            dram_bw=64.0,
        )
        assert simulate_serving(s, engine="event") == simulate_serving(
            s, engine="cycle"
        )

    def test_empty_arrivals_short_circuit(self):
        result = simulate_serving(spec([]))
        assert result.n_requests == 0 and result.makespan == 0
        assert result.latency_p50 is None
        assert result.throughput == 0.0


class TestContinuousBatching:
    def test_window_of_one_serializes(self):
        s = spec([Arrival(0, 2), Arrival(0, 2), Arrival(0, 2)], max_inflight=1)
        result = simulate_serving(s)
        first, second, third = result.requests
        # Each admission waits for the previous completion, exactly.
        assert second.admitted == first.finish
        assert third.admitted == second.finish
        assert first.admitted == 0

    def test_open_window_admits_on_arrival(self):
        s = spec([Arrival(0, 2), Arrival(10, 2)], max_inflight=8)
        result = simulate_serving(s)
        assert [r.queue_delay for r in result.requests] == [0, 0]

    def test_arrival_shift_invariance(self):
        """An uncontended request's TTFT/latency don't depend on when it
        arrives: the clock gate delays the start, not the service."""
        at_zero = simulate_serving(spec([Arrival(0, 4, 2)])).requests[0]
        shifted = simulate_serving(spec([Arrival(700, 4, 2)])).requests[0]
        assert shifted.ttft == at_zero.ttft
        assert shifted.latency == at_zero.latency
        assert shifted.finish == at_zero.finish + 700

    def test_gate_structure(self):
        s = spec(
            [Arrival(0, 2), Arrival(0, 2), Arrival(5, 2)], max_inflight=2
        )
        tasks, plans = build_serving_tasks(s)
        clock = [t for t in tasks if t.resource == "clock"]
        # Two distinct arrival times -> two chained clock tasks.
        assert [t.duration for t in clock] == [0, 5]
        assert plans[0].gate == plans[1].gate == ("CLK[0]",)
        # The third request waits on its clock AND request 0 finishing.
        assert plans[2].gate == ("CLK[1]",) + plans[0].finish_sinks


class TestClosedScenarioEquivalence:
    """A one-shot arrival batch is exactly the closed Scenario."""

    @pytest.mark.parametrize("binding", ["interleaved", "tile-serial"])
    @pytest.mark.parametrize("dram_bw", [None, 48.0])
    def test_one_shot_batch_matches_scenario(self, binding, dram_bw):
        instances, chunks = 3, 4
        closed = attention_scenario(
            instances, chunks, binding=binding, array_dim=64, slots=2,
            dram_bw=dram_bw,
        )
        _, closed_result = scenario_sim(closed)
        open_spec = spec(
            [Arrival(0, chunks, 0)] * instances,
            binding=binding,
            max_inflight=instances,
            dram_bw=dram_bw,
        )
        _, _, open_result = serving_sim(open_spec)
        assert open_result.makespan == closed_result.makespan
        for resource in ("2d", "1d", "io", "dram"):
            assert open_result.busy_cycles.get(
                resource, 0
            ) == closed_result.busy_cycles.get(resource, 0), resource

    def test_single_request_latency_is_scenario_makespan(self):
        closed = attention_scenario(1, 4, binding="interleaved", array_dim=64)
        _, closed_result = scenario_sim(closed)
        result = simulate_serving(spec([Arrival(0, 4, 0)]))
        (request,) = result.requests
        assert request.latency == closed_result.makespan


class TestLoadMonotonicity:
    def test_latency_up_goodput_down_with_rate(self):
        results = []
        for rate in (0.2, 0.8, 3.2):
            arrivals = poisson_arrivals(
                rate, 16384, seed=13, chunks=2, decode_tokens=1
            )
            results.append(
                simulate_serving(
                    spec(arrivals, deadline=4000, rate=rate)
                )
            )
        for lo, hi in zip(results, results[1:]):
            assert lo.latency_p50 <= hi.latency_p50
            assert lo.ttft_p50 <= hi.ttft_p50
            assert lo.goodput >= hi.goodput
        # The sweep spans both regimes, so the ordering is non-trivial.
        assert results[0].goodput == 1.0
        assert results[-1].goodput < 1.0
