"""Property layer for the multi-chip cluster subsystem.

Five contracts:

- **degenerate identity** — a 1-chip cluster (any link setting) lowers
  to a merged graph *byte-identical* to the unsharded scenario's, and
  an unmodeled/infinite link on many chips emits no collectives;
- **sharding math** — block partitions balance to within one instance,
  tensor parallelism slices the embedding exactly (and rejects
  non-divisible slices), and collective traffic follows the cascade's
  tensor shapes;
- **exact link accounting** — the shared ``link``'s simulated busy
  cycles equal the closed-form collective sum, cycle for cycle, and
  the analytical cluster bound reads off the binding resource;
- **runtime/emitters** — cluster points ride the pooled runtime
  (cache, registry, codec round-trip) index-aligned, and the DRAM /
  link columns gate independently per batch;
- **serving bridge** — request-parallel serving degenerates to the
  single-array spec at one chip, spreads compute across chips without
  changing total work, and keeps all three engines bit-identical.
"""

import json
import math

import pytest

from repro.cluster import (
    CLUSTER_BW_FIELDS,
    CLUSTER_FIELDS,
    CLUSTER_LINK_FIELDS,
    ClusterPoint,
    ClusterResult,
    ClusterSpec,
    build_cluster_tasks,
    chip_instance_counts,
    cluster_csv,
    cluster_fields_for,
    cluster_json,
    cluster_link_cycles,
    cluster_sim,
    cluster_table,
    collective_bytes,
    decode_cluster_result,
    encode_cluster_result,
    evaluate_cluster_point,
    shard_config,
)
from repro.model.cluster import analytical_cluster, cluster_work
from repro.runtime import (
    ResultCache,
    RunRegistry,
    decode_result,
    encode_result,
    sweep_cluster,
)
from repro.serving import (
    Arrival,
    ServingSpec,
    build_serving_tasks,
    serving_sim,
    simulate_serving,
)
from repro.simulator import build_scenario_tasks, scenario_sim
from repro.workloads.scenario import Phase, Scenario, attention_scenario


def small_scenario(**overrides):
    defaults = dict(instances=4, chunks=8, array_dim=64)
    defaults.update(overrides)
    return attention_scenario(
        defaults.pop("instances"), defaults.pop("chunks"), **defaults
    )


class TestClusterSpec:
    def test_defaults_are_the_degenerate_cluster(self):
        spec = ClusterSpec()
        assert spec.n_chips == 1
        assert spec.link_bw is None
        assert not spec.models_link
        assert spec.describe() == "1 chip"

    def test_validation(self):
        with pytest.raises(ValueError, match="n_chips"):
            ClusterSpec(n_chips=0)
        with pytest.raises(ValueError, match="link_bw"):
            ClusterSpec(n_chips=2, link_bw=0.0)
        with pytest.raises(ValueError, match="link_latency"):
            ClusterSpec(n_chips=2, link_bw=64.0, link_latency=-1)
        with pytest.raises(ValueError, match="topology"):
            ClusterSpec(n_chips=2, topology="torus")

    def test_models_link_semantics(self):
        assert ClusterSpec(n_chips=4, link_bw=64.0).models_link
        # One chip has no peers; None and inf price nothing.
        assert not ClusterSpec(n_chips=1, link_bw=64.0).models_link
        assert not ClusterSpec(n_chips=4).models_link
        assert not ClusterSpec(n_chips=4, link_bw=math.inf).models_link

    def test_describe_names_the_link(self):
        spec = ClusterSpec(n_chips=4, link_bw=64.0, link_latency=8)
        assert "4 chips" in spec.describe()
        assert "64B/cy" in spec.describe()
        assert "lat=8" in spec.describe()
        assert "unmodeled" in ClusterSpec(n_chips=2).describe()

    def test_point_rejects_unknown_sharding(self):
        with pytest.raises(ValueError, match="sharding"):
            ClusterPoint(scenario=small_scenario(), sharding="expert")

    def test_point_name_and_describe(self):
        point = ClusterPoint(
            scenario=small_scenario(),
            spec=ClusterSpec(n_chips=4, link_bw=64.0),
            sharding="tensor",
        )
        assert point.name == "attn-4x8@x4-tensor"
        assert "tensor on 4 chips" in point.describe()


class TestDegenerateIdentity:
    """The invariant the whole lowering hangs off: one chip (or a free
    link) reproduces the unsharded scenario byte for byte."""

    @pytest.mark.parametrize("sharding", ("head", "tensor"))
    def test_one_chip_graph_byte_identical(self, sharding):
        scenario = small_scenario(
            decode_instances=2, decode_chunks=4, dram_bw=32.0
        )
        for spec in (
            ClusterSpec(),
            ClusterSpec(n_chips=1, link_bw=64.0, link_latency=9),
        ):
            assert build_cluster_tasks(scenario, spec, sharding) == (
                build_scenario_tasks(scenario)
            )

    def test_unmodeled_link_emits_no_collectives(self):
        scenario = small_scenario()
        for spec in (
            ClusterSpec(n_chips=4),
            ClusterSpec(n_chips=4, link_bw=math.inf),
        ):
            tasks = build_cluster_tasks(scenario, spec)
            assert all(task.resource != "link" for task in tasks)
            assert cluster_link_cycles(scenario, spec) == 0

    def test_one_chip_result_matches_scenario_schedule(self):
        scenario = small_scenario(dram_bw=32.0)
        result = evaluate_cluster_point(ClusterPoint(scenario=scenario))
        _, sim = scenario_sim(scenario)
        assert result.makespan == sim.makespan
        assert result.busy_2d == sim.busy_cycles.get("2d", 0)
        assert result.busy_dram == sim.busy_cycles.get("dram", 0)
        assert result.link_bw is None and result.busy_link == 0


class TestShardingMath:
    def test_block_counts_balance_within_one(self):
        phase = Phase("prefill", 10, 8)
        assert chip_instance_counts(phase, "head", 4) == [3, 3, 2, 2]
        assert chip_instance_counts(phase, "head", 1) == [10]
        # More chips than instances: trailing chips idle, none negative.
        assert chip_instance_counts(Phase("prefill", 2, 8), "head", 4) == (
            [1, 1, 0, 0]
        )

    def test_tensor_prefill_replicates_and_slices(self):
        scenario = small_scenario(embedding=64)
        phase = scenario.phases[0]
        assert chip_instance_counts(phase, "tensor", 4) == [4] * 4
        config = shard_config(scenario, phase, "tensor", 4)
        assert config.embedding == 16

    def test_tensor_decode_falls_back_to_blocks(self):
        scenario = small_scenario(
            embedding=64, decode_instances=6, decode_chunks=4
        )
        decode = scenario.phases[1]
        assert decode.kind == "decode"
        assert chip_instance_counts(decode, "tensor", 4) == [2, 2, 1, 1]
        assert shard_config(scenario, decode, "tensor", 4).embedding == 64

    def test_tensor_rejects_non_divisible_embedding(self):
        scenario = small_scenario(embedding=64)
        with pytest.raises(ValueError, match="divisible"):
            build_cluster_tasks(
                scenario, ClusterSpec(n_chips=3, link_bw=64.0), "tensor"
            )

    def test_collective_traffic_follows_tensor_shapes(self):
        scenario = small_scenario(embedding=64)
        config = shard_config(scenario, scenario.phases[0], "head", 4)
        # Prefill output: chunks x array_dim rows of E words, each sent
        # to the 3 peer chips.
        assert collective_bytes(config, "prefill", 4) == 8 * 64 * 64 * 2 * 3
        assert collective_bytes(config, "decode", 4) == 64 * 2 * 3
        assert collective_bytes(config, "prefill", 1) == 0
        # Tensor slices divide per-collective traffic by n_chips.
        sliced = shard_config(scenario, scenario.phases[0], "tensor", 4)
        assert collective_bytes(sliced, "prefill", 4) == (
            collective_bytes(config, "prefill", 4) // 4
        )


class TestLinkAccounting:
    """The schedule and the closed form must agree cycle for cycle."""

    @pytest.mark.parametrize("sharding", ("head", "tensor"))
    @pytest.mark.parametrize("link_bw", (8.0, 1024.0))
    def test_busy_link_equals_collective_sum(self, sharding, link_bw):
        scenario = small_scenario(
            decode_instances=2, decode_chunks=4, dram_bw=64.0
        )
        spec = ClusterSpec(n_chips=2, link_bw=link_bw, link_latency=5)
        _, sim = cluster_sim(scenario, spec, sharding)
        expected = cluster_link_cycles(scenario, spec, sharding)
        assert expected > 0
        assert sim.busy_cycles["link"] == expected

    def test_latency_charged_once_per_collective(self):
        scenario = small_scenario()
        flat = ClusterSpec(n_chips=4, link_bw=64.0)
        delayed = ClusterSpec(n_chips=4, link_bw=64.0, link_latency=7)
        base = cluster_link_cycles(scenario, flat)
        n_collectives = scenario.instances  # one all-gather per instance
        assert cluster_link_cycles(scenario, delayed) == (
            base + 7 * n_collectives
        )

    def test_cluster_work_sums_match_graph_durations(self):
        scenario = small_scenario(dram_bw=32.0)
        spec = ClusterSpec(n_chips=4, link_bw=64.0)
        chips, link = cluster_work(scenario, spec, "head")
        tasks = build_cluster_tasks(scenario, spec, "head")
        for k, chip in enumerate(chips):
            for resource in ("2d", "1d", "io", "dram"):
                assert chip[resource] == sum(
                    t.duration for t in tasks
                    if t.resource == f"c{k}:{resource}"
                )
        assert link == sum(
            t.duration for t in tasks if t.resource == "link"
        )


class TestAnalyticalCluster:
    def test_ample_link_is_compute_bound(self):
        estimate = analytical_cluster(
            small_scenario(), ClusterSpec(n_chips=4, link_bw=65536.0)
        )
        assert estimate.kind == "overlap-bound"

    def test_starved_link_is_link_bound(self):
        estimate = analytical_cluster(
            small_scenario(), ClusterSpec(n_chips=4, link_bw=1.0)
        )
        assert estimate.kind == "link-bound"
        assert estimate.latency_cycles == estimate.busy["link"]
        assert estimate.util_link == 1.0

    def test_tight_dram_is_bandwidth_bound(self):
        estimate = analytical_cluster(
            small_scenario(dram_bw=1.0),
            ClusterSpec(n_chips=2, link_bw=65536.0),
        )
        assert estimate.kind == "bandwidth-bound"

    def test_strong_scaling_until_the_knee(self):
        """More chips shrink the compute bound while collective traffic
        grows — past the knee the link term wins and adding chips
        actively hurts, the curve the chip sweep exists to read off."""
        scenario = attention_scenario(16, 8, array_dim=64)
        ample = [
            analytical_cluster(
                scenario, ClusterSpec(n_chips=n, link_bw=65536.0)
            )
            for n in (1, 2, 4, 8)
        ]
        assert all(e.kind == "overlap-bound" for e in ample)
        latencies = [e.latency_cycles for e in ample]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[-1] < latencies[0]
        priced = [
            analytical_cluster(
                scenario, ClusterSpec(n_chips=n, link_bw=64.0)
            )
            for n in (1, 2, 4, 8)
        ]
        assert priced[0].kind == "overlap-bound"
        assert all(e.kind == "link-bound" for e in priced[1:])
        # All-gather traffic scales with (n_chips - 1): once the link
        # binds, the latency bound grows again with the chip count.
        assert priced[2].latency_cycles > priced[1].latency_cycles
        assert priced[3].latency_cycles > priced[2].latency_cycles

    def test_bound_is_a_true_lower_bound(self):
        for sharding in ("head", "tensor"):
            point = ClusterPoint(
                scenario=small_scenario(),
                spec=ClusterSpec(n_chips=2, link_bw=64.0),
                sharding=sharding,
            )
            sim = evaluate_cluster_point(point)
            estimate = analytical_cluster(
                point.scenario, point.spec, sharding
            )
            assert sim.makespan >= estimate.latency_cycles


class TestClusterResultAndEmitters:
    POINTS = (
        ClusterPoint(scenario=small_scenario()),
        ClusterPoint(
            scenario=small_scenario(),
            spec=ClusterSpec(n_chips=2, link_bw=64.0, link_latency=3),
        ),
        ClusterPoint(
            scenario=small_scenario(dram_bw=32.0),
            spec=ClusterSpec(n_chips=2, link_bw=64.0),
            sharding="tensor",
        ),
    )

    def test_utilization_conventions(self):
        result = evaluate_cluster_point(self.POINTS[1])
        denom = result.makespan * result.n_chips
        assert result.util_2d == pytest.approx(result.busy_2d / denom)
        assert result.util_link == pytest.approx(
            result.busy_link / result.makespan
        )
        assert result.utilization("link") == result.util_link
        assert result.utilization("2d") == result.util_2d

    def test_field_gating_is_independent(self):
        plain, linked, both_ = [
            evaluate_cluster_point(p) for p in self.POINTS
        ]
        assert cluster_fields_for([plain]) == CLUSTER_FIELDS
        assert cluster_fields_for([linked]) == (
            CLUSTER_FIELDS + CLUSTER_LINK_FIELDS
        )
        assert cluster_fields_for([both_]) == (
            CLUSTER_FIELDS + CLUSTER_BW_FIELDS + CLUSTER_LINK_FIELDS
        )
        # A single-chip row in a linked batch reports its link unmodeled.
        assert plain.link_bw is None
        assert linked.link_bw == 64.0 and linked.link_latency == 3

    def test_emitters_blank_unmodeled_columns(self):
        results = [evaluate_cluster_point(p) for p in self.POINTS]
        csv_text = cluster_csv(results)
        header, *rows = csv_text.strip().splitlines()
        assert header.startswith("scenario,binding,sharding,topology")
        assert header.endswith("link_bw,link_latency,busy_link,util_link")
        # The unclustered row blanks every widened column.
        assert rows[0].endswith(",-,-,-,-,-,-,-")
        payload = json.loads(cluster_json(results))
        assert payload[0]["link_bw"] is None
        assert payload[1]["link_bw"] == 64.0
        assert payload[2]["dram_bw"] == 32.0
        table = cluster_table(results)
        assert "util_link" in table.splitlines()[0]
        assert len(table.splitlines()) == 1 + len(results)

    def test_narrow_batch_keeps_historical_columns(self):
        results = [evaluate_cluster_point(self.POINTS[0])]
        header = cluster_csv(results).splitlines()[0]
        assert "link_bw" not in header and "dram_bw" not in header
        assert header.split(",") == list(CLUSTER_FIELDS)

    def test_codec_round_trip(self):
        for point in self.POINTS:
            result = evaluate_cluster_point(point)
            assert isinstance(result, ClusterResult)
            direct = json.loads(json.dumps(encode_cluster_result(result)))
            assert decode_cluster_result(direct) == result
            # And through the runtime's polymorphic codec.
            payload = json.loads(json.dumps(encode_result(result)))
            assert decode_result(payload) == result


class TestClusterRuntime:
    POINTS = tuple(
        ClusterPoint(
            scenario=small_scenario(),
            spec=ClusterSpec(n_chips=n, link_bw=64.0),
        )
        for n in (1, 2, 4)
    )

    def test_sweep_matches_direct_evaluation(self):
        results = sweep_cluster(self.POINTS, cache=False)
        assert len(results) == len(self.POINTS)
        for point, result in zip(self.POINTS, results):
            assert result == evaluate_cluster_point(point)

    def test_sweep_parallel_and_cached_identical(self, tmp_path):
        baseline = sweep_cluster(self.POINTS, cache=False)
        parallel = sweep_cluster(self.POINTS, jobs=2, cache=False)
        assert parallel == baseline
        disk = ResultCache(directory=tmp_path / "cache")
        populated = sweep_cluster(self.POINTS, cache=disk)
        fresh = ResultCache(directory=tmp_path / "cache")
        warm = sweep_cluster(self.POINTS, cache=fresh)
        assert populated == baseline and warm == baseline
        assert fresh.stats.disk_hits == len(baseline)

    def test_sweep_records_run(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        sweep_cluster(self.POINTS, cache=False, registry=registry)
        record = registry.last_recorded
        assert record.kind == "cluster"
        assert record.n_results == len(self.POINTS)
        assert any("4 chips" in c for c in record.grid["configs"])

    def test_engine_parity_through_the_runtime(self):
        event = sweep_cluster(self.POINTS, cache=False, engine="event")
        vector = sweep_cluster(self.POINTS, cache=False, engine="vector")
        assert event == vector


class TestServingBridge:
    """Request parallelism over the cluster, on the serving graph."""

    ARRIVALS = tuple(
        Arrival(at=512 * j, chunks=4, decode_tokens=2) for j in range(8)
    )

    def spec(self, **overrides):
        defaults = dict(
            name="t", arrivals=self.ARRIVALS, array_dim=64, max_inflight=4
        )
        defaults.update(overrides)
        return ServingSpec(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_chips"):
            self.spec(n_chips=0)
        with pytest.raises(ValueError, match="link_bw"):
            self.spec(n_chips=2, link_bw=-1.0)
        with pytest.raises(ValueError, match="link_latency"):
            self.spec(n_chips=2, link_bw=8.0, link_latency=-1)

    def test_one_chip_graph_byte_identical(self):
        base, _ = build_serving_tasks(self.spec())
        for overrides in (
            dict(n_chips=1),
            dict(n_chips=1, link_bw=64.0, link_latency=9),
        ):
            tasks, plans = build_serving_tasks(self.spec(**overrides))
            assert tasks == base
            assert all(plan.gather == () for plan in plans)

    def test_requests_round_robin_across_chips(self):
        tasks, plans = build_serving_tasks(
            self.spec(n_chips=4, link_bw=64.0)
        )
        assert [plan.chip for plan in plans] == [0, 1, 2, 3, 0, 1, 2, 3]
        for plan in plans:
            assert plan.gather == (f"r{plan.index}:AG",)
        by_name = {t.name: t for t in tasks}
        gather = by_name["r0:AG"]
        assert gather.resource == "link"
        # Compute lives on the request's own chip; the link is shared.
        assert by_name["r1:BQK[0]"].resource.startswith("c1:")
        assert by_name["r4:BQK[0]"].resource.startswith("c0:")

    def test_total_compute_invariant_across_chip_counts(self):
        lone = simulate_serving(self.spec())
        spread = simulate_serving(self.spec(n_chips=4, link_bw=65536.0))
        assert spread.busy_2d == lone.busy_2d
        assert spread.busy_1d == lone.busy_1d

    def test_sharding_relieves_a_saturated_array(self):
        # All arrivals at t=0: the single array serializes the burst;
        # four chips split it.
        burst = tuple(
            Arrival(at=0, chunks=4, decode_tokens=2) for _ in range(8)
        )
        lone = simulate_serving(
            self.spec(arrivals=burst, max_inflight=8)
        )
        spread = simulate_serving(
            self.spec(
                arrivals=burst, max_inflight=8,
                n_chips=4, link_bw=65536.0,
            )
        )
        assert spread.makespan < lone.makespan

    def test_engines_identical_on_cluster_serving_graph(self):
        spec = self.spec(n_chips=4, link_bw=8.0, link_latency=2)
        _, _, cycle = serving_sim(spec, engine="cycle")
        for engine in ("event", "vector"):
            _, _, result = serving_sim(spec, engine=engine)
            assert result == cycle
        assert cycle.busy_cycles.get("link", 0) > 0

    def test_metrics_count_the_gather(self):
        """Decode is gated on the gather, so a starved link pushes the
        finish (and TTFT stays a compute milestone)."""
        fast = simulate_serving(self.spec(n_chips=2, link_bw=65536.0))
        slow = simulate_serving(
            self.spec(n_chips=2, link_bw=1.0)
        )
        assert slow.requests[0].finish > fast.requests[0].finish
