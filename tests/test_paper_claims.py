"""Integration tests for the paper's headline quantitative claims.

These are the reproduction's acceptance tests: the *shape* of each result
(who wins, by roughly what factor, where crossovers fall) must match the
paper even though the substrate is an independent analytical model.
"""

import statistics


from repro.model import FLATModel, UnfusedModel, evaluate_inference, fusemax
from repro.workloads import MODELS, SEQUENCE_LENGTHS


def _mean_ratio(numer_model, denom_model, metric):
    ratios = []
    for model in MODELS:
        for seq_len in SEQUENCE_LENGTHS:
            a = metric(numer_model, model, seq_len)
            b = metric(denom_model, model, seq_len)
            ratios.append(a / b)
    return statistics.mean(ratios)


def _attention_latency(config, model, seq_len):
    return config.evaluate(model, seq_len).latency_cycles


def _attention_energy(config, model, seq_len):
    return config.evaluate(model, seq_len).energy_pj


def _e2e_latency(config, model, seq_len):
    return evaluate_inference(config, model, seq_len).latency_cycles


def _e2e_energy(config, model, seq_len):
    return evaluate_inference(config, model, seq_len).energy_pj


class TestHeadlineSpeedups:
    def test_fusemax_vs_flat_attention(self):
        """Paper: 6.7x average speedup on attention."""
        ratio = _mean_ratio(FLATModel(), fusemax(), _attention_latency)
        assert 5.0 <= ratio <= 8.5

    def test_fusemax_vs_unfused_attention(self):
        """Paper: 10x average speedup over the unfused baseline."""
        ratio = _mean_ratio(UnfusedModel(), fusemax(), _attention_latency)
        assert 8.0 <= ratio <= 13.0

    def test_fusemax_vs_flat_e2e(self):
        """Paper: 5.3x average end-to-end speedup."""
        ratio = _mean_ratio(FLATModel(), fusemax(), _e2e_latency)
        assert 4.0 <= ratio <= 7.0

    def test_fusemax_vs_unfused_e2e(self):
        """Paper: 7.6x average end-to-end speedup."""
        ratio = _mean_ratio(UnfusedModel(), fusemax(), _e2e_latency)
        assert 5.5 <= ratio <= 10.0

    def test_e2e_speedup_grows_with_length(self):
        """Paper Sec. VI-C: at 1M tokens the e2e gap reaches ~7.5x."""
        flat, fm = FLATModel(), fusemax()
        short = _e2e_latency(flat, MODELS[0], 1024) / _e2e_latency(fm, MODELS[0], 1024)
        long = _e2e_latency(flat, MODELS[0], 2**20) / _e2e_latency(fm, MODELS[0], 2**20)
        assert long > short


class TestHeadlineEnergy:
    def test_fusemax_energy_below_flat(self):
        """Paper: FuseMax uses 79% of FLAT's attention energy.  Our model
        lands more favourably (harsher spill penalty); assert the band."""
        ratio = _mean_ratio(fusemax(), FLATModel(), _attention_energy)
        assert 0.4 <= ratio <= 0.9

    def test_fusemax_energy_below_unfused(self):
        ratio = _mean_ratio(fusemax(), UnfusedModel(), _attention_energy)
        assert ratio < 0.8

    def test_fusemax_e2e_energy_below_flat(self):
        ratio = _mean_ratio(fusemax(), FLATModel(), _e2e_energy)
        assert 0.5 <= ratio <= 0.95

    def test_energy_gap_grows_with_length(self):
        flat, fm = FLATModel(), fusemax()
        short = _attention_energy(fm, MODELS[0], 1024) / _attention_energy(
            flat, MODELS[0], 1024
        )
        long = _attention_energy(fm, MODELS[0], 2**20) / _attention_energy(
            flat, MODELS[0], 2**20
        )
        assert long < short


class TestUtilizationClaims:
    def test_fusemax_full_utilization_everywhere(self):
        """Paper: ~100% of both arrays at every model and length >= 4K."""
        fm = fusemax()
        for model in MODELS:
            for seq_len in SEQUENCE_LENGTHS[1:]:
                result = fm.evaluate(model, seq_len)
                assert result.util_1d > 0.9, (model.name, seq_len)
                assert result.util_2d > 0.9, (model.name, seq_len)

    def test_flat_drops_at_256k(self):
        """XLM (larger E/F) goes memory-bound a step earlier, so compare
        against 16K where every model is still compute-bound."""
        flat = FLATModel()
        for model in MODELS:
            ok = flat.evaluate(model, 16384)
            bad = flat.evaluate(model, 262144)
            assert ok.util_1d > bad.util_1d, model.name
            assert bad.util_1d < 0.75, model.name

    def test_fusemax_wins_everywhere(self):
        """FuseMax is never slower than FLAT at any grid point."""
        flat, fm = FLATModel(), fusemax()
        for model in MODELS:
            for seq_len in SEQUENCE_LENGTHS:
                assert (
                    fm.evaluate(model, seq_len).latency_cycles
                    < flat.evaluate(model, seq_len).latency_cycles
                )

    def test_xlm_baselines_do_better(self):
        """Paper Fig. 6b: baselines reach higher 2D utilization on XLM."""
        flat = FLATModel()
        xlm = next(m for m in MODELS if m.name == "XLM")
        bert = MODELS[0]
        assert (
            flat.evaluate(xlm, 16384).util_2d > flat.evaluate(bert, 16384).util_2d
        )
