"""DRAM-bandwidth contention in merged scenarios: the property layer.

The simulator's shared ``dram`` resource (a finite ``Scenario.dram_bw``)
must behave like memory bandwidth, not like an arbitrary extra resource.
These tests pin the contract down:

- **identity** — ``dram_bw=None`` and ``dram_bw=inf`` schedules are
  bit-identical to pre-bandwidth results (no hidden perturbation);
- **monotonicity** — adding a decode instance never makes a scenario
  faster, and halving the bandwidth never makes it faster;
- **exact accounting** — the link's busy cycles equal the analytical
  integration task-for-task, and the traffic the graphs carry matches
  :func:`repro.simulator.chunk_traffic`;
- **the wall** — decode-heavy mixes at tight bandwidth ride the
  roofline's memory bound (``util_dram -> 1``) and the analytical
  ``bandwidth-bound`` estimate agrees within crosscheck tolerance;
- **presentation** — bandwidth columns appear in scenario/grid output
  only when a scenario models DRAM, keeping legacy bytes untouched.
"""

import json
import math

import pytest

from repro.experiments.crosscheck import bandwidth_scenarios, crosscheck
from repro.model.scenario import analytical_scenario, scenario_work
from repro.runtime import decode_result, encode_result
from repro.simulator import (
    PipelineConfig,
    ScenarioGridCell,
    Simulator,
    Task,
    build_decode_tasks,
    build_scenario_tasks,
    build_tasks,
    chunk_traffic,
    evaluate_scenario_point,
    grid_csv,
    lower_dram,
    scenario_csv,
    scenario_dram_cycles,
    scenario_json,
    scenario_sim,
    scenario_table,
    transfer_cycles,
)
from repro.workloads.scenario import (
    attention_scenario,
    heterogeneous_scenario,
    mixed_model_scenario,
)

#: A bandwidth at which the seed scenarios are firmly memory-bound and
#: one at which transfers cost a cycle or two but never bind.
TIGHT, AMPLE = 16.0, 1e6


def contended(dram_bw, decode=4, binding="interleaved"):
    """A decode-heavy scenario at ``dram_bw`` (small enough for the
    cycle oracle)."""
    return attention_scenario(
        2, 8, array_dim=64, binding=binding,
        decode_instances=decode, decode_chunks=32, dram_bw=dram_bw,
    )


class TestBandwidthIdentity:
    def test_infinite_bandwidth_equals_none_exactly(self):
        tasks_none, result_none = scenario_sim(contended(None))
        tasks_inf, result_inf = scenario_sim(contended(math.inf))
        assert result_inf == result_none
        assert [t.name for t in tasks_inf] == [t.name for t in tasks_none]
        assert "dram" not in result_inf.busy_cycles

    def test_none_graph_untouched_by_annotations(self):
        """bytes_moved alone never changes a schedule: the graph only
        grows when a finite dram_bw lowers it."""
        tasks = build_scenario_tasks(contended(None))
        assert all(t.resource in ("2d", "1d", "io") for t in tasks)
        assert any(t.bytes_moved > 0 for t in tasks)

    def test_lowering_adds_gated_transfers(self):
        plain = build_scenario_tasks(contended(None))
        lowered = build_scenario_tasks(contended(TIGHT))
        transfers = [t for t in lowered if t.resource == "dram"]
        carried = [t for t in plain if t.bytes_moved > 0]
        assert len(lowered) == len(plain) + len(transfers)
        assert len(transfers) == len(carried)
        by_name = {t.name: t for t in lowered}
        for transfer in transfers:
            assert transfer.deps == ()  # streams ahead freely
            consumer = by_name[transfer.name.removesuffix("@dram")]
            assert transfer.name in consumer.deps
            assert transfer.duration == transfer_cycles(
                consumer.bytes_moved, TIGHT
            )

    def test_double_lowering_rejected(self):
        lowered = build_scenario_tasks(contended(TIGHT))
        with pytest.raises(ValueError, match="duplicate"):
            Simulator(lowered, dram_bw=TIGHT)

    def test_engines_bit_identical_under_contention(self):
        for scenario in (contended(TIGHT), contended(TIGHT, binding="tile-serial")):
            _, event = scenario_sim(scenario, engine="event")
            _, cycle = scenario_sim(scenario, engine="cycle")
            assert event == cycle


class TestBandwidthMonotonicity:
    def test_halving_bandwidth_never_decreases_latency(self):
        makespans = [
            evaluate_scenario_point(contended(bw)).makespan
            for bw in (256.0, 128.0, 64.0, 32.0, 16.0, 8.0)
        ]
        assert makespans == sorted(makespans)
        assert makespans[-1] > makespans[0]  # the wall actually binds

    def test_adding_decode_instances_never_decreases_latency(self):
        makespans = [
            evaluate_scenario_point(contended(TIGHT, decode=n)).makespan
            for n in (0, 1, 2, 4, 8)
        ]
        assert makespans == sorted(makespans)
        assert makespans[-1] > makespans[0]

    def test_decode_instances_contend_for_bandwidth_not_just_slots(self):
        """The tentpole's point: with the link saturated, each extra
        decode instance costs its full transfer time — the slowdown the
        array-slot-only model could not see."""
        lone = evaluate_scenario_point(contended(TIGHT, decode=1))
        packed = evaluate_scenario_point(contended(TIGHT, decode=8))
        added_traffic = packed.busy_dram - lone.busy_dram
        assert packed.makespan - lone.makespan >= 0.95 * added_traffic

    def test_makespan_bounded_below_by_link_busy(self):
        for bw in (8.0, 64.0, AMPLE):
            result = evaluate_scenario_point(contended(bw))
            assert result.makespan >= result.busy_dram


class TestTrafficAccounting:
    @pytest.mark.parametrize("kind", ("prefill", "decode"))
    def test_graph_bytes_match_chunk_traffic(self, kind):
        config = PipelineConfig(chunks=7, array_dim=32, pe_1d=32, embedding=16)
        if kind == "decode":
            tasks = build_decode_tasks(config)
        else:
            tasks = build_tasks(config, serial=True)
        traffic = chunk_traffic(config, kind)
        assert sum(t.bytes_moved for t in tasks) == traffic.instance_bytes(
            config.chunks
        )

    def test_chunk_traffic_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            chunk_traffic(PipelineConfig(), "train")

    def test_transfer_cycles_ceiling(self):
        assert transfer_cycles(0, 64.0) == 0
        assert transfer_cycles(1, 64.0) == 1
        assert transfer_cycles(64, 64.0) == 1
        assert transfer_cycles(65, 64.0) == 2
        assert transfer_cycles(10**9, math.inf) == 0

    def test_simulated_link_busy_matches_analytical_exactly(self):
        for scenario in (
            contended(TIGHT),
            contended(AMPLE),
            contended(TIGHT, binding="tile-serial"),
            mixed_model_scenario(("BERT", "XLM"), 4, array_dim=32,
                                 dram_bw=TIGHT),
        ):
            result = evaluate_scenario_point(scenario)
            assert result.busy_dram == scenario_dram_cycles(scenario)
            assert result.busy_dram == scenario_work(scenario)["dram"]

    def test_lowered_task_count_reported(self):
        plain = evaluate_scenario_point(contended(None))
        lowered = evaluate_scenario_point(contended(TIGHT))
        assert lowered.n_tasks > plain.n_tasks
        assert lowered.dram_bw == TIGHT and plain.dram_bw is None


class TestAnalyticalBandwidth:
    def test_tight_bandwidth_is_bandwidth_bound(self):
        scenario = contended(TIGHT)
        estimate = analytical_scenario(scenario)
        assert estimate.kind == "bandwidth-bound"
        assert estimate.latency_cycles == estimate.busy["dram"]
        result = evaluate_scenario_point(scenario)
        assert result.makespan >= estimate.latency_cycles
        assert result.util_dram > 0.95
        assert result.util_dram == pytest.approx(estimate.util_dram, abs=0.05)

    def test_ample_bandwidth_stays_overlap_bound(self):
        estimate = analytical_scenario(contended(AMPLE))
        assert estimate.kind == "overlap-bound"
        assert estimate.busy["dram"] < estimate.latency_cycles

    def test_lone_serial_chain_survives_ample_bandwidth(self):
        """Dependency-free transfers stream ahead of the serial chain,
        so the closed-form interval stays exact until the link itself
        runs out of cycles."""
        scenario = attention_scenario(
            1, 16, binding="tile-serial", dram_bw=AMPLE,
        )
        estimate = analytical_scenario(scenario)
        assert estimate.kind == "serial-chain"
        assert evaluate_scenario_point(scenario).makespan == (
            estimate.latency_cycles
        )

    def test_lone_serial_tight_bandwidth_takes_the_link_bound(self):
        scenario = attention_scenario(
            1, 16, binding="tile-serial", dram_bw=4.0,
        )
        estimate = analytical_scenario(scenario)
        assert estimate.kind == "serial-chain"
        assert estimate.latency_cycles == estimate.busy["dram"]
        result = evaluate_scenario_point(scenario)
        assert result.makespan >= estimate.latency_cycles
        assert result.util_dram == pytest.approx(1.0, abs=0.05)

    def test_crosscheck_gate_over_bandwidth_scenarios(self):
        """The CI gate: simulated vs analytical bandwidth-bound
        utilization within tolerance over the bandwidth seed grid."""
        report = crosscheck(bandwidth_scenarios(), cache=False)
        assert report.ok, [
            (r.scenario, r.array, r.delta) for r in report.flagged
        ]
        assert any(row.array == "dram" for row in report.rows)
        assert any(row.model_kind == "bandwidth-bound" for row in report.rows)

    def test_crosscheck_bandwidth_flag_appends_grid(self):
        base = crosscheck(cache=False)
        extended = crosscheck(bandwidth=True, cache=False)
        assert len(extended.rows) > len(base.rows)
        assert extended.rows[: len(base.rows)] == base.rows
        assert extended.ok


class TestMixedModelScenarios:
    def test_phase_widths_follow_models(self):
        scenario = mixed_model_scenario(("BERT", "XLM"), 4, array_dim=32)
        assert scenario.mixed_embedding
        tasks = build_scenario_tasks(scenario)
        durations = {
            t.name: t.duration for t in tasks if "BQK[0]" in t.name
        }
        # BERT instances run E=64 tiles, XLM instances E=128 tiles.
        assert sorted(set(durations.values())) == [64, 128]

    def test_mixed_engines_identical_and_crosscheck_within_tolerance(self):
        scenario = mixed_model_scenario(
            ("BERT", "XLM"), 4, array_dim=32, dram_bw=TIGHT,
            decode_instances=2, decode_chunks=8,
        )
        _, event = scenario_sim(scenario, engine="event")
        _, cycle = scenario_sim(scenario, engine="cycle")
        assert event == cycle
        report = crosscheck([scenario], cache=False)
        assert report.ok, [(r.array, r.delta) for r in report.rows]

    def test_heterogeneous_mixed_models_group_by_count_and_model(self):
        scenario = heterogeneous_scenario(
            (4, 4, 8), models=("BERT", "BERT", "XLM"), dram_bw=TIGHT,
        )
        assert [(p.instances, p.chunks, p.model) for p in scenario.phases] == [
            (2, 4, "BERT"), (1, 8, "XLM"),
        ]
        assert scenario.name.startswith("het-2xBERT:4+1xXLM:8")

    def test_einsum_model_rejects_mixed_embedding(self):
        from repro.model.fusemax import fusemax

        scenario = mixed_model_scenario(("BERT", "XLM"), 4)
        with pytest.raises(ValueError, match="one embedding width"):
            fusemax().evaluate_scenario(scenario)

    def test_describe_names_models_and_bandwidth(self):
        scenario = mixed_model_scenario(
            ("BERT", "XLM"), 4, dram_bw=32.0,
        )
        text = scenario.describe()
        assert "BERT" in text and "XLM" in text and "bw=32" in text


class TestBandwidthEmitters:
    def rows(self, *scenarios):
        return {s: evaluate_scenario_point(s) for s in scenarios}

    def test_legacy_rows_keep_legacy_columns(self):
        results = self.rows(contended(None))
        assert "dram_bw" not in scenario_csv(results)
        assert "dram_bw" not in scenario_table(results)
        assert "dram_bw" not in json.loads(scenario_json(results))[0]

    def test_bandwidth_rows_gain_bandwidth_columns(self):
        results = self.rows(contended(TIGHT))
        header = scenario_csv(results).splitlines()[0]
        assert header.endswith("dram_bw,busy_dram,util_dram")
        row = json.loads(scenario_json(results))[0]
        assert row["dram_bw"] == TIGHT
        assert row["busy_dram"] > 0
        assert 0 < row["util_dram"] <= 1

    def test_grid_rows_gain_bandwidth_columns(self):
        from repro.model.scenario import evaluate_grid_cell

        cell = ScenarioGridCell(
            scenario=contended(TIGHT), model=None, batch=None, heads=None,
            decode=4,
        )
        text = grid_csv([evaluate_grid_cell(cell)])
        header = text.splitlines()[0]
        assert "dram_bw" in header
        assert header.endswith("estimate,est_util_2d,est_util_1d")

    def test_auto_names_distinguish_bandwidths(self):
        """Same shape at different dram_bw must not collide on the name
        (the crosscheck and CSV rows key on it)."""
        tight = contended(TIGHT)
        ample = contended(AMPLE)
        unmodeled = contended(None)
        assert tight.name != ample.name != unmodeled.name
        assert tight.name.endswith("@bw16")
        assert "@bw" not in unmodeled.name  # legacy names untouched
        named = attention_scenario(2, 4, dram_bw=TIGHT, name="mine")
        assert named.name == "mine"  # explicit names never suffixed

    def test_mixed_batch_blanks_unmodeled_bandwidth_columns(self):
        """A batch mixing modeled and unmodeled rows widens the columns
        once; the unmodeled row renders '-' (not None/0) in text
        emitters and null dram_bw in JSON."""
        results = self.rows(contended(TIGHT), contended(None))
        csv_lines = scenario_csv(results).splitlines()
        assert csv_lines[0].endswith("dram_bw,busy_dram,util_dram")
        assert csv_lines[2].endswith(",-,-,-")
        table_rows = scenario_table(results).splitlines()
        assert table_rows[2].split()[-3:] == ["-", "-", "-"]
        modeled, unmodeled = json.loads(scenario_json(results))
        assert modeled["dram_bw"] == TIGHT
        assert unmodeled["dram_bw"] is None

    def test_codec_roundtrip_with_bandwidth(self):
        for scenario in (contended(TIGHT), contended(math.inf)):
            result = evaluate_scenario_point(scenario)
            payload = json.loads(json.dumps(encode_result(result)))
            assert decode_result(payload) == result

    def test_task_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="bytes_moved"):
            Task("t", "r", 1, bytes_moved=-1)
        with pytest.raises(ValueError, match="dram_bw"):
            lower_dram([Task("t", "r", 1, bytes_moved=8)], -1.0)


class TestBandwidthCLI:
    def test_dram_bw_requires_scenario_mode(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--dram-bw", "64"]) == 2
        assert "--dram-bw requires --scenario" in capsys.readouterr().err
        assert main(["simulate", "--mixed-models", "BERT,XLM"]) == 2
        assert "--mixed-models requires --scenario" in capsys.readouterr().err

    def test_dram_bw_must_be_positive(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scenario", "--instances", "2",
                     "--chunks", "4", "--dram-bw", "0"]) == 2
        assert "dram_bw must be > 0" in capsys.readouterr().err

    def test_mixed_models_exclusive_with_model(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scenario", "--model", "BERT",
                     "--mixed-models", "BERT,XLM"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_scenario_dram_bw_engines_identical(self, capsys):
        from repro.cli import main

        base = ["simulate", "--scenario", "--instances", "2", "--chunks",
                "4", "--array-dim", "32", "--decode-instances", "2",
                "--dram-bw", "16", "--no-cache"]
        assert main(base + ["--engine", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(base + ["--engine", "cycle"]) == 0
        assert capsys.readouterr().out == event_out
        assert "dram_bw" in event_out and "util_dram" in event_out

    def test_crosscheck_bandwidth_strict(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--bandwidth", "--strict",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "dram" in out and "bandwidth-bound" in out

    def test_grid_dram_bw_column(self, capsys):
        from repro.cli import main

        assert main([
            "sweep", "--grid", "--models", "BERT", "--batches", "1",
            "--heads-list", "2", "--chunks", "4", "--array-dim", "64",
            "--decode-list", "2", "--dram-bw", "32", "--format", "csv",
            "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "dram_bw" in out.splitlines()[0]
        assert ",32.0," in out
