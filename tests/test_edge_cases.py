"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.einsum import (
    ADD,
    Affine,
    Cascade,
    Einsum,
    Filter,
    IterativeRank,
    Literal,
    Map,
    Shifted,
    TensorRef,
    Var,
    ref,
)
from repro.functional.interpreter import Interpreter, InterpreterError, evaluate
from repro.model import fusemax, plus_architecture
from repro.model.pareto import sweep
from repro.workloads import BERT, XLM


class TestInterpreterFailures:
    def test_nested_iterative_rejected(self, rng):
        inner = Einsum(
            output=TensorRef.of("S", Shifted("i", 1), Shifted("j", 1)),
            expr=Map(ADD, ref("S", "i", "j"), ref("A", "i", "j")),
            name="S",
        )
        init = Einsum(
            output=TensorRef.of("S", Var("i"), Var("j")),
            expr=Literal(0.0),
            name="S0",
            is_initialization=True,
        )
        cascade = Cascade.build(
            "nested",
            [init, inner],
            inputs=["A"],
            rank_shapes={"i": "K", "j": "K"},
            iterative=[IterativeRank("i", "K"), IterativeRank("j", "K")],
        )
        with pytest.raises(InterpreterError, match="nested iterative"):
            evaluate(cascade, {"K": 2}, {"A": rng.normal(size=(2, 2))})

    def test_affine_output_index_rejected(self, rng):
        bad = Einsum(
            output=TensorRef.of("Z", Affine((("m", 2),))),
            expr=ref("A", "m"),
            name="Z",
        )
        cascade = Cascade.build(
            "affine-out", [bad], inputs=["A"], rank_shapes={"m": "M"}
        )
        with pytest.raises(InterpreterError, match="affine output"):
            evaluate(cascade, {"M": 4}, {"A": rng.normal(size=4)})

    def test_filter_on_foreign_variable_rejected(self, rng):
        bad = Einsum(
            output=TensorRef.of("Z", "m"),
            expr=ref("A", "m", filters=[Filter("q", "<=", Var("m"))]),
            name="Z",
        )
        cascade = Cascade.build(
            "bad-filter", [bad], inputs=["A"],
            rank_shapes={"m": "M", "q": "Q"},
        )
        with pytest.raises(InterpreterError, match="does not index"):
            evaluate(cascade, {"M": 4, "Q": 4}, {"A": rng.normal(size=4)})

    def test_repeated_variable_in_ref_rejected(self, rng):
        diag = Einsum(
            output=TensorRef.of("Z", "m"),
            expr=ref("A", "m", "m"),
            name="Z",
        )
        cascade = Cascade.build(
            "diag", [diag], inputs=["A"], rank_shapes={"m": "M"}
        )
        with pytest.raises(InterpreterError, match="repeated"):
            evaluate(cascade, {"M": 3}, {"A": rng.normal(size=(3, 3))})

    def test_unbound_shape_symbol(self, rng):
        gemm = Einsum(
            output=TensorRef.of("Z", "m"),
            expr=ref("A", "m"),
            name="Z",
        )
        cascade = Cascade.build(
            "missing-shape", [gemm], inputs=["A"], rank_shapes={"m": "M"}
        )
        with pytest.raises(KeyError, match="M"):
            Interpreter(cascade, {}, {"A": rng.normal(size=4)})


class TestModelEdgeCases:
    def test_batch_one(self):
        result = fusemax().evaluate(BERT, 4096, batch=1)
        assert result.latency_cycles > 0
        assert result.util_2d > 0.5

    def test_xlm_balanced_arrays(self):
        """XLM's E=F=128 keeps the two arrays near-balanced (Sec. VI-B)."""
        result = fusemax().evaluate(XLM, 65536)
        ratio = result.busy_2d_cycles / result.busy_1d_cycles
        assert 0.8 < ratio < 1.2

    def test_architecture_stage_tiles_at_1k(self):
        """+Architecture at the shortest length: tiles still divide."""
        result = plus_architecture().evaluate(BERT, 1024)
        assert result.latency_cycles > 0

    def test_pareto_smallest_array(self):
        """16x16 arrays still evaluate (block size follows the array)."""
        points = sweep(BERT, dims=(16,))
        assert points[0].latency_seconds > 0

    def test_results_deterministic(self):
        a = fusemax().evaluate(BERT, 16384)
        b = fusemax().evaluate(BERT, 16384)
        assert a.latency_cycles == b.latency_cycles
        assert a.energy_pj == b.energy_pj


class TestNumericalEdges:
    def test_attention_with_identical_scores(self):
        """Constant scores: attention averages V uniformly."""
        from repro.cascades import attention_1pass
        from repro.functional import evaluate_output

        e, f, m, p, m0 = 2, 3, 8, 2, 4
        shapes = {"E": e, "F": f, "M": m, "P": p, "M0": m0, "M1": m // m0}
        inputs = {
            "Q": np.zeros((e, p)),
            "K": np.zeros((e, m)),
            "V": np.arange(float(f * m)).reshape(f, m),
        }
        out = evaluate_output(attention_1pass(), shapes, inputs)
        assert np.allclose(out, inputs["V"].mean(axis=1, keepdims=True))

    def test_attention_single_key(self):
        from repro.cascades import attention_1pass
        from repro.functional import evaluate_output

        shapes = {"E": 2, "F": 3, "M": 1, "P": 2, "M0": 1, "M1": 1}
        rng = np.random.default_rng(5)
        inputs = {
            "Q": rng.normal(size=(2, 2)),
            "K": rng.normal(size=(2, 1)),
            "V": rng.normal(size=(3, 1)),
        }
        out = evaluate_output(attention_1pass(), shapes, inputs)
        assert np.allclose(out, np.repeat(inputs["V"], 2, axis=1))
