"""Numerical equivalence of every attention cascade (Sec. IV).

The central correctness claim: all cascades (3-pass, 2-pass, 1-pass, with
or without the division-reduction optimization) compute identical attention
outputs — they differ only in how many passes they take over M fibers.
"""

import numpy as np
import pytest

from repro.cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    attention_naive,
)
from repro.functional import (
    attention,
    evaluate,
    evaluate_output,
    flash_attention,
    scores,
    softmax,
    two_pass_attention,
)

ALL_CASCADES = [
    attention_naive,
    attention_3pass,
    lambda: attention_3pass(div_opt=True),
    attention_2pass,
    lambda: attention_2pass(div_opt=True),
    attention_1pass,
]

CASCADE_IDS = [
    "naive",
    "3pass",
    "3pass-divopt",
    "2pass",
    "2pass-divopt",
    "1pass",
]


@pytest.mark.parametrize("builder", ALL_CASCADES, ids=CASCADE_IDS)
def test_cascade_matches_reference(builder, attention_inputs, attention_shapes):
    expected = attention(
        attention_inputs["Q"], attention_inputs["K"], attention_inputs["V"]
    )
    out = evaluate_output(builder(), attention_shapes, attention_inputs)
    assert np.allclose(out, expected, atol=1e-12)


@pytest.mark.parametrize("builder", ALL_CASCADES[1:], ids=CASCADE_IDS[1:])
def test_stable_cascades_survive_large_scores(builder, rng, attention_shapes):
    """The numerically stable variants must not overflow on large QK."""
    inputs = {
        "Q": 40.0 * rng.normal(size=(4, 3)),
        "K": 40.0 * rng.normal(size=(4, 16)),
        "V": rng.normal(size=(5, 16)),
    }
    out = evaluate_output(builder(), attention_shapes, inputs)
    assert np.all(np.isfinite(out))
    expected = attention(inputs["Q"], inputs["K"], inputs["V"])
    assert np.allclose(out, expected, atol=1e-9)


def test_naive_cascade_overflows_on_large_scores(rng, attention_shapes):
    """The unstable softmax really is unstable — motivating Sec. IV-C1."""
    inputs = {
        "Q": 40.0 * rng.normal(size=(4, 3)),
        "K": 40.0 * rng.normal(size=(4, 16)),
        "V": rng.normal(size=(5, 16)),
    }
    with np.errstate(over="ignore", invalid="ignore"):
        out = evaluate_output(attention_naive(), attention_shapes, inputs)
    assert not np.all(np.isfinite(out))


class TestIntermediateTensors:
    def test_3pass_softmax_rows_sum_to_one(self, attention_inputs, attention_shapes):
        tensors = evaluate(attention_3pass(), attention_shapes, attention_inputs)
        assert np.allclose(tensors["A"].sum(axis=0), 1.0)

    def test_3pass_numerator_bounded(self, attention_inputs, attention_shapes):
        """Subtracting the global max bounds SN to (0, 1] (Sec. IV-C1)."""
        tensors = evaluate(attention_3pass(), attention_shapes, attention_inputs)
        assert np.all(tensors["SN"] > 0)
        assert np.all(tensors["SN"] <= 1.0)
        assert np.allclose(tensors["SN"].max(axis=0), 1.0)

    def test_global_max_matches_numpy(self, attention_inputs, attention_shapes):
        tensors = evaluate(attention_3pass(), attention_shapes, attention_inputs)
        qk = scores(attention_inputs["Q"], attention_inputs["K"])
        assert np.allclose(tensors["GM"], qk.max(axis=0))

    def test_1pass_running_max_is_monotone(self, attention_inputs, attention_shapes):
        tensors = evaluate(attention_1pass(), attention_shapes, attention_inputs)
        rm = tensors["RM"]  # (M1+1, P)
        assert np.all(np.diff(rm, axis=0) >= 0)

    def test_1pass_final_running_max_is_global_max(
        self, attention_inputs, attention_shapes
    ):
        tensors = evaluate(attention_1pass(), attention_shapes, attention_inputs)
        qk = scores(attention_inputs["Q"], attention_inputs["K"])
        assert np.allclose(tensors["RM"][-1], qk.max(axis=0))

    def test_1pass_final_denominator_matches_3pass(
        self, attention_inputs, attention_shapes
    ):
        t1 = evaluate(attention_1pass(), attention_shapes, attention_inputs)
        t3 = evaluate(attention_3pass(), attention_shapes, attention_inputs)
        assert np.allclose(t1["RD"][-1], t3["SD"])

    def test_2pass_denominator_matches_3pass(
        self, attention_inputs, attention_shapes
    ):
        t2 = evaluate(attention_2pass(), attention_shapes, attention_inputs)
        t3 = evaluate(attention_3pass(), attention_shapes, attention_inputs)
        assert np.allclose(t2["SD"], t3["SD"])
        assert np.allclose(t2["GM"], t3["GM"])


class TestReferenceImplementations:
    def test_softmax_columns_sum_to_one(self, rng):
        qk = rng.normal(size=(8, 3))
        assert np.allclose(softmax(qk).sum(axis=0), 1.0)

    def test_flash_attention_matches_direct(self, attention_inputs):
        q, k, v = (attention_inputs[n] for n in ("Q", "K", "V"))
        assert np.allclose(flash_attention(q, k, v, block=4), attention(q, k, v))

    @pytest.mark.parametrize("block", [1, 2, 4, 8, 16])
    def test_flash_attention_block_invariance(self, attention_inputs, block):
        q, k, v = (attention_inputs[n] for n in ("Q", "K", "V"))
        assert np.allclose(flash_attention(q, k, v, block), attention(q, k, v))

    def test_flash_attention_rejects_ragged_blocks(self, attention_inputs):
        q, k, v = (attention_inputs[n] for n in ("Q", "K", "V"))
        with pytest.raises(ValueError, match="not divisible"):
            flash_attention(q, k, v, block=5)

    def test_two_pass_matches_direct(self, attention_inputs):
        q, k, v = (attention_inputs[n] for n in ("Q", "K", "V"))
        av, sln = two_pass_attention(q, k, v, block=4)
        assert np.allclose(av, attention(q, k, v))
        # The pass-1 numerator really is O(M): full sequence length stored.
        assert sln.shape[0] * sln.shape[1] == k.shape[1]

    def test_cascade_interpreter_agrees_with_flash_reference(
        self, attention_inputs, attention_shapes
    ):
        q, k, v = (attention_inputs[n] for n in ("Q", "K", "V"))
        out_cascade = evaluate_output(
            attention_1pass(), attention_shapes, attention_inputs
        )
        assert np.allclose(out_cascade, flash_attention(q, k, v, block=4))
