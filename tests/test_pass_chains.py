"""Property tests for pass counting on synthetic reduce-and-revisit chains.

Each stage of the chain reduces the whole K fiber and feeds the result
back into a point-wise revisit of that fiber:

    X1[k] = X0[k] - (X0[k] :: max(k))
    X2[k] = X1[k] - (X1[k] :: max(k))
    ...

Every stage forces one more pass, so an n-stage chain is (n+1)-pass: the
generalization behind the 3-pass softmax (which is exactly a 2-stage
chain: max-subtract then sum-divide).
"""

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.analysis import count_passes, family, live_footprints
from repro.einsum import (
    Cascade,
    Einsum,
    MAX_REDUCE,
    SUB,
    Map,
    TensorRef,
    ref,
)
from repro.functional import evaluate


def reduction_chain(stages: int) -> Cascade:
    """A cascade with ``stages`` reduce-then-revisit stages over rank k."""
    einsums = []
    current = "X0"
    for i in range(stages):
        reduced = f"R{i}"
        nxt = f"X{i + 1}"
        einsums.append(
            Einsum(
                output=TensorRef.of(reduced),
                expr=ref(current, "k"),
                reductions={"k": MAX_REDUCE},
                name=reduced,
            )
        )
        einsums.append(
            Einsum(
                output=TensorRef.of(nxt, "k"),
                expr=Map(SUB, ref(current, "k"), ref(reduced)),
                name=nxt,
            )
        )
        current = nxt
    return Cascade.build(
        name=f"chain-{stages}",
        einsums=einsums,
        inputs=["X0"],
        rank_shapes={"k": "K"},
        outputs=[current],
    )


class TestReductionChains:
    @pytest.mark.parametrize("stages", [1, 2, 3, 5, 8])
    def test_chain_pass_count(self, stages):
        cascade = reduction_chain(stages)
        assert count_passes(cascade, family("k")).num_passes == stages + 1

    @pytest.mark.parametrize("stages", [2, 4])
    def test_every_intermediate_crosses(self, stages):
        cascade = reduction_chain(stages)
        analysis = count_passes(cascade, family("k"))
        report = live_footprints(analysis, {"K": 128})
        # Every X_i (i < stages) is revisited after its reduction: full
        # fiber live.  The final X_stages is the output.
        for i in range(1, stages):
            assert report.entries[f"X{i}"].family_elems == 128

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**31))
    def test_chain_numerics(self, stages, seed):
        """Each stage subtracts the running max; after one stage the max
        is 0, and further stages leave the tensor unchanged."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=16)
        cascade = reduction_chain(stages)
        tensors = evaluate(cascade, {"K": 16}, {"X0": x})
        expected = x - x.max()
        assert np.allclose(tensors[f"X{stages}"], expected)

    def test_zero_stages_is_trivial(self):
        cascade = Cascade.build(
            "identity",
            [Einsum(output=TensorRef.of("Y", "k"), expr=ref("X0", "k"), name="Y")],
            inputs=["X0"],
            rank_shapes={"k": "K"},
        )
        assert count_passes(cascade, family("k")).num_passes == 1
