"""Buffer capacity and per-stream DRAM QoS: the property layer.

A finite ``Scenario.buffer_bytes`` must behave like an on-chip buffer
(spills are overflow, never free bandwidth) and ``qos="decode-first"``
must behave like arbitration priority (decode wins ties, nothing else
changes).  These tests pin the contracts down:

- **identity** — ``buffer_bytes=None`` and ``inf`` schedules are
  bit-identical, and a non-default QoS with no decode phase is the
  uniform schedule exactly (no hidden perturbation);
- **monotonicity** — shrinking the buffer never shrinks spill volume
  and never makes the schedule faster;
- **exact accounting** — graph traffic is baseline plus the closed-form
  spill volume task-for-task, and the link's busy cycles equal the
  analytical transfer integration exactly;
- **no inversion** — under single-slot dispatch a ready decode DRAM
  transfer is *never* passed over for a prefill transfer (and under
  uniform QoS it demonstrably is — the contrast that makes zero
  meaningful);
- **the roofline** — spilling scenarios take the ``capacity-bound``
  analytical term and the crosscheck grid agrees within tolerance;
- **serving** — ``decode-first`` protects token gaps of a request
  decoding behind a large queued prefill, at a priced TTFT cost.
"""

import math

import pytest

from repro.experiments.crosscheck import capacity_scenarios, crosscheck
from repro.model.scenario import analytical_scenario
from repro.serving import Arrival, ServingSpec, build_serving_tasks, simulate_serving
from repro.simulator import (
    PipelineConfig,
    apply_buffer_spills,
    build_tasks,
    chunk_residency,
    chunk_traffic,
    evaluate_scenario_point,
    instance_spill_bytes,
    scenario_csv,
    scenario_dram_cycles,
    scenario_sim,
    scenario_spill_bytes,
    spill_bytes_per_chunk,
)
from repro.workloads.scenario import attention_scenario

#: A bandwidth at which the capacity scenarios are firmly memory-bound.
TIGHT_BW = 32.0

#: Buffer sizes around the default-geometry prefill working set (2 tiles
#: resident + 2 transient at 256x64 = 131072 bytes demand): full
#: resident spill, partial spill, and two spill-free controls.
TIGHT_BUF, PARTIAL_BUF, AMPLE_BUF = 50_000.0, 100_000.0, 150_000.0


def capacitated(buffer_bytes, qos="uniform", binding="interleaved",
                slots=2, dram_bw=TIGHT_BW):
    """A prefill+decode mix contending for one tight DRAM link under
    ``buffer_bytes`` of on-chip capacity (small enough for the cycle
    oracle)."""
    return attention_scenario(
        3, 8, binding=binding, slots=slots, decode_instances=2,
        dram_bw=dram_bw, buffer_bytes=buffer_bytes, qos=qos,
    )


class TestCapacityIdentity:
    def test_infinite_buffer_equals_none_exactly(self):
        tasks_none, result_none = scenario_sim(capacitated(None))
        tasks_inf, result_inf = scenario_sim(capacitated(math.inf))
        assert result_inf == result_none
        assert list(tasks_inf) == list(tasks_none)
        assert scenario_spill_bytes(capacitated(math.inf)) == 0

    def test_decode_first_without_decode_is_uniform_exactly(self):
        """QoS is arbitration, not traffic: with nothing to prioritize
        the schedule must not move by a byte."""
        uniform = attention_scenario(
            3, 8, dram_bw=TIGHT_BW, buffer_bytes=PARTIAL_BUF,
        )
        boosted = attention_scenario(
            3, 8, dram_bw=TIGHT_BW, buffer_bytes=PARTIAL_BUF,
            qos="decode-first",
        )
        tasks_u, result_u = scenario_sim(uniform)
        tasks_b, result_b = scenario_sim(boosted)
        assert list(tasks_b) == list(tasks_u)
        assert result_b == result_u

    def test_uniform_qos_keeps_declaration_order(self):
        scenario = capacitated(TIGHT_BUF)
        assert scenario.emission_phases == scenario.phases
        assert not scenario.prioritized
        boosted = capacitated(TIGHT_BUF, qos="decode-first")
        assert boosted.prioritized
        assert boosted.emission_phases[0].kind == "decode"

    def test_engines_bit_identical_under_capacity_and_qos(self):
        for binding in ("interleaved", "tile-serial"):
            scenario = capacitated(
                TIGHT_BUF, qos="decode-first", binding=binding,
            )
            _, event = scenario_sim(scenario, engine="event")
            _, cycle = scenario_sim(scenario, engine="cycle")
            _, vector = scenario_sim(scenario, engine="vector")
            assert event == cycle
            assert vector == cycle


class TestSpillMonotonicity:
    BUFFERS = (TIGHT_BUF, PARTIAL_BUF, AMPLE_BUF, 200_000.0, None)

    def test_spill_non_increasing_in_buffer(self):
        spills = [
            scenario_spill_bytes(capacitated(buf)) for buf in self.BUFFERS
        ]
        assert spills == sorted(spills, reverse=True)
        assert spills[0] > spills[1] > 0  # both spill regimes exercised
        assert spills[2] == spills[-1] == 0  # ample capacity is free

    def test_shrinking_buffer_never_speeds_up_schedule(self):
        makespans = [
            evaluate_scenario_point(capacitated(buf)).makespan
            for buf in self.BUFFERS
        ]
        assert makespans == sorted(makespans, reverse=True)
        assert makespans[0] > makespans[-1]  # the spills actually bind

    def test_spill_clamped_to_resident_stream(self):
        """Only resident tiles can spill: a degenerate buffer refetches
        the whole resident stream, never the pass-through traffic."""
        config = PipelineConfig(chunks=8)
        for kind in ("prefill", "decode"):
            residency = chunk_residency(config, kind)
            assert spill_bytes_per_chunk(config, kind, 1.0) == (
                residency.resident_bytes
            )
            assert spill_bytes_per_chunk(
                config, kind, residency.demand_bytes
            ) == 0

    def test_residency_rederives_traffic_split(self):
        """The working-set model and the graph builders' byte totals are
        one account: prefill holds exactly its once-fetched stream."""
        config = PipelineConfig(chunks=8)
        traffic = chunk_traffic(config, "prefill")
        residency = chunk_residency(config, "prefill")
        assert residency.resident_bytes == traffic.bytes_once
        assert residency.transient_bytes == traffic.bytes_per_chunk


class TestSpillConservation:
    def test_graph_bytes_are_baseline_plus_spill(self):
        """Spills inflate traffic by exactly the closed form — on the
        annotated graph and through the dram lowering alike."""
        base = capacitated(None, dram_bw=None)
        tight = capacitated(TIGHT_BUF, dram_bw=None)
        base_bytes = sum(t.bytes_moved for t in scenario_sim(base)[0])
        tight_bytes = sum(t.bytes_moved for t in scenario_sim(tight)[0])
        assert tight_bytes - base_bytes == scenario_spill_bytes(tight)
        lowered = scenario_sim(capacitated(TIGHT_BUF))[0]
        carried = sum(
            t.bytes_moved for t in lowered if t.resource != "dram"
        )
        assert carried == tight_bytes

    def test_instance_spill_closed_form_matches_graph(self):
        """Chunk 0 fetches fresh (already priced as bytes_once); every
        later chunk re-fetches the spilled slice on its leading task."""
        config = PipelineConfig(chunks=8)
        tasks = build_tasks(config, serial=False)
        spilled = apply_buffer_spills(tasks, config, "prefill", TIGHT_BUF)
        diff = sum(t.bytes_moved for t in spilled) - sum(
            t.bytes_moved for t in tasks
        )
        assert diff == instance_spill_bytes(config, "prefill", TIGHT_BUF)
        by_name = {t.name: t.bytes_moved for t in spilled}
        baseline = {t.name: t.bytes_moved for t in tasks}
        assert by_name["BQK[0]"] == baseline["BQK[0]"]  # chunk 0 untouched
        assert by_name["BQK[1]"] > baseline["BQK[1]"]

    def test_busy_dram_matches_analytical_transfer_cycles(self):
        """Exact accounting under spills: the simulated link's busy
        cycles equal the analytical integration task-for-task."""
        for buf in (TIGHT_BUF, PARTIAL_BUF, None):
            scenario = capacitated(buf)
            result = evaluate_scenario_point(scenario)
            assert result.busy_dram == scenario_dram_cycles(scenario)
            assert result.spill_bytes == scenario_spill_bytes(scenario)


def dram_inversions(scenario):
    """Priority-inversion pairs in one simulated schedule: a prefill
    DRAM transfer dispatched while a decode transfer sat ready (deps
    all finished) but unstarted.  Start times are reconstructed as
    ``finish - duration``; readiness as the latest dep finish."""
    tasks, result = scenario_sim(scenario)
    finish = result.finish_times
    transfers = [t for t in tasks if t.resource == "dram"]
    start = {t.name: finish[t.name] - t.duration for t in transfers}
    ready = {
        t.name: max((finish[d] for d in t.deps), default=0)
        for t in transfers
    }
    decode = [t.name for t in transfers if ":D" in t.name]
    prefill = [t.name for t in transfers if ":B" in t.name]
    return sum(
        1
        for p in prefill
        for d in decode
        if start[p] < start[d] and ready[d] <= start[p]
    )


class TestQoSNoInversion:
    def test_decode_first_never_passes_over_ready_decode(self):
        """The no-inversion contract, exact under single-slot dispatch
        (tile-serial, and interleaved with one issue slot): whenever a
        prefill transfer starts, no decode transfer was ready-waiting."""
        for scenario in (
            capacitated(PARTIAL_BUF, qos="decode-first",
                        binding="tile-serial"),
            capacitated(PARTIAL_BUF, qos="decode-first", slots=1),
        ):
            assert dram_inversions(scenario) == 0

    def test_uniform_passes_over_ready_decode(self):
        """The contrast that makes zero meaningful: FIFO arbitration
        demonstrably starves ready decode transfers behind prefill."""
        for scenario in (
            capacitated(PARTIAL_BUF, binding="tile-serial"),
            capacitated(PARTIAL_BUF, slots=1),
        ):
            assert dram_inversions(scenario) > 100

    def test_slot_rotation_residue_bounded(self):
        """Multi-slot round-robin may interleave one stale prefill
        dispatch per rotation; the residue must stay negligible next to
        the uniform baseline, not grow with it."""
        boosted = dram_inversions(capacitated(PARTIAL_BUF, qos="decode-first"))
        uniform = dram_inversions(capacitated(PARTIAL_BUF))
        assert boosted * 10 < uniform


class TestAnalyticalCapacity:
    def test_tight_buffer_is_capacity_bound(self):
        scenario = capacitated(TIGHT_BUF)
        estimate = analytical_scenario(scenario)
        assert estimate.kind == "capacity-bound"
        assert estimate.latency_cycles == estimate.busy["dram"]
        assert estimate.busy["dram"] == scenario_dram_cycles(scenario)
        result = evaluate_scenario_point(scenario)
        assert result.makespan >= estimate.latency_cycles
        assert result.util_dram == pytest.approx(estimate.util_dram, abs=0.05)

    def test_infinite_buffer_control_stays_bandwidth_bound(self):
        estimate = analytical_scenario(capacitated(math.inf))
        assert estimate.kind == "bandwidth-bound"

    def test_crosscheck_gate_over_capacity_scenarios(self):
        """The CI gate: simulated vs analytical capacity-bound
        utilization within tolerance over the capacity seed grid."""
        report = crosscheck(capacity_scenarios(), cache=False)
        assert report.ok, [
            (r.scenario, r.array, r.delta) for r in report.flagged
        ]
        assert any(row.model_kind == "capacity-bound" for row in report.rows)
        assert any(row.model_kind == "bandwidth-bound" for row in report.rows)

    def test_crosscheck_capacity_flag_appends_grid(self):
        base = crosscheck(cache=False)
        extended = crosscheck(capacity=True, cache=False)
        assert len(extended.rows) > len(base.rows)
        assert extended.rows[: len(base.rows)] == base.rows
        assert extended.ok

    def test_capacity_rows_gain_capacity_columns(self):
        scenario = capacitated(PARTIAL_BUF)
        results = {scenario: evaluate_scenario_point(scenario)}
        header = scenario_csv(results).splitlines()[0]
        assert header.endswith("buffer_bytes,qos,spill_bytes")
        legacy = capacitated(None)
        legacy_header = scenario_csv(
            {legacy: evaluate_scenario_point(legacy)}
        ).splitlines()[0]
        assert "buffer_bytes" not in legacy_header
        assert "spill_bytes" not in legacy_header


class TestServingQoS:
    #: A large prefill admitted first, then a small decoding request
    #: arriving behind it — the inversion the QoS knob exists for.
    BURST = (Arrival(0, 24, 0), Arrival(500, 2, 12))

    def spec(self, qos, buffer_bytes=PARTIAL_BUF):
        return ServingSpec(
            name="burst", arrivals=self.BURST, dram_bw=TIGHT_BW,
            buffer_bytes=buffer_bytes, qos=qos,
        )

    def test_decode_first_protects_tbt_behind_prefill_burst(self):
        """Decode token gaps shrink; the burst's TTFT pays for it (the
        priority trade, not a free lunch); traffic volume is unchanged
        either way."""
        uniform = simulate_serving(self.spec("uniform"))
        boosted = simulate_serving(self.spec("decode-first"))
        assert boosted.tbt_p50 < uniform.tbt_p50
        assert boosted.tbt_p99 < uniform.tbt_p99
        assert boosted.requests[0].ttft >= uniform.requests[0].ttft
        assert boosted.spill_bytes == uniform.spill_bytes > 0

    def test_infinite_buffer_uniform_graph_identical(self):
        base = ServingSpec(name="burst", arrivals=self.BURST,
                           dram_bw=TIGHT_BW)
        inf = self.spec("uniform", buffer_bytes=math.inf)
        tasks_base, _ = build_serving_tasks(base)
        tasks_inf, _ = build_serving_tasks(inf)
        assert tasks_inf == tasks_base

    def test_serving_spill_conserved_in_graph(self):
        base = ServingSpec(name="burst", arrivals=self.BURST,
                           dram_bw=TIGHT_BW)
        tight = self.spec("uniform")
        base_bytes = sum(
            t.bytes_moved for t in build_serving_tasks(base)[0]
        )
        tight_bytes = sum(
            t.bytes_moved for t in build_serving_tasks(tight)[0]
        )
        result = simulate_serving(tight)
        assert tight_bytes - base_bytes == result.spill_bytes


class TestCapacityCLI:
    def test_buffer_bytes_requires_dram_bw(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--scenario", "--instances", "2",
                     "--chunks", "4", "--buffer-bytes", "65536"]) == 2
        assert "requires dram_bw" in capsys.readouterr().err

    def test_buffer_bytes_requires_scenario_mode(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--buffer-bytes", "65536"]) == 2
        assert "--buffer-bytes requires --scenario" in (
            capsys.readouterr().err
        )

    def test_crosscheck_capacity_strict(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--capacity", "--strict",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "capacity-bound" in out and "DIVERGED" not in out
