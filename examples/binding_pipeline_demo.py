"""Scenario: visualizing the FuseMax binding (Fig. 4/5) in simulation.

Runs the cycle-granular epoch simulator under the tile-serial
(+Architecture) and interleaved (+Binding) disciplines, prints the
utilization gap, and renders a small text waterfall of task finish times
showing the software pipelining across epochs.

Run:  python examples/binding_pipeline_demo.py
"""

from repro.simulator import (
    PipelineConfig,
    binding_sim,
    compare_bindings,
)
from repro.simulator.systolic import bqk_tile_timing
from repro.simulator.waterfall import waterfall_text


def waterfall(chunks: int = 5) -> None:
    """Print per-chunk finish times for the interleaved binding."""
    config = PipelineConfig(chunks=chunks)
    tasks, result = binding_sim(config, "interleaved")
    names = ("BQK", "LM", "RM", "SLN", "SLNV", "PRM", "RD", "RNV")
    print(f"{'chunk':>5} " + " ".join(f"{n:>6}" for n in names))
    for i in range(chunks):
        row = [f"{result.finish_times[f'{n}[{i}]']:>6}" for n in names]
        print(f"{i:>5} " + " ".join(row))
    print("\nNote the overlap: BQK of chunk i+1 finishes before RNV of chunk")
    print("i — the epochs of Fig. 4, emerging from dependencies alone.")
    print("\nWaterfall (B=BQK, S=SLN/SLNV/SLD, L=LM, R=RM/RD/RNV, P=PRM):")
    print(waterfall_text(tasks, result, width=68))


def main():
    timing = bqk_tile_timing(array_dim=256, embedding=64)
    print("Per-tile arithmetic (Sec. V): each PE performs "
          f"{timing.compute} MACCs but fill+drain cost "
          f"{timing.fill + timing.drain} cycles -> tile-serial utilization "
          f"caps at {timing.serial_utilization:.2f}\n")

    reports = compare_bindings(PipelineConfig(chunks=32))
    print(f"{'binding':>12} {'makespan':>9} {'util 2D':>8} {'util 1D':>8}")
    for name, r in reports.items():
        print(f"{name:>12} {r.makespan:>9} {r.util_2d:>8.2f} {r.util_1d:>8.2f}")
    serial, inter = reports["tile-serial"], reports["interleaved"]
    print(f"\ninterleaving is {serial.makespan / inter.makespan:.1f}x faster "
          "at identical hardware\n")

    # The event-driven core makes long-sequence points instant; the
    # steady state the paper argues for emerges as chunks grow.
    long = compare_bindings(PipelineConfig(chunks=4096))
    print("at 4096 chunks (1M tokens): interleaved util2d="
          f"{long['interleaved'].util_2d:.3f} vs tile-serial "
          f"{long['tile-serial'].util_2d:.3f}\n")

    waterfall()


if __name__ == "__main__":
    main()
