"""Quickstart: the FuseMax workflow end to end in one script.

1. Build the attention cascades (Extended Einsums).
2. Run the mapping-independent analyses: pass counts, live footprints,
   operation counts (Sections III-IV).
3. Validate the cascades numerically with the functional interpreter.
4. Model the accelerators (unfused, FLAT, FuseMax) on one workload point
   through the typed evaluation API (repro.api Session).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import count_passes, family, live_footprints, total_ops
from repro.api import ExperimentRequest, Session
from repro.cascades import attention_1pass, attention_3pass
from repro.functional import attention, evaluate_output
from repro.workloads import BERT


def section(title):
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main():
    section("1. Cascades of Einsums")
    three_pass = attention_3pass()
    one_pass = attention_1pass()
    print(three_pass)
    print()
    print(f"(and {one_pass.name}: {len(one_pass.einsums)} Einsums, "
          f"iterative rank {one_pass.iterative_vars[0]!r})")

    section("2. Pass analysis (Sec. III)")
    for cascade, fam in ((three_pass, family("m")), (one_pass, family("m1", "m0"))):
        analysis = count_passes(cascade, fam)
        print(f"{cascade.name}: {analysis.num_passes}-pass over {fam}")

    shapes = BERT.attention_shapes(seq_len=4096, block=256)
    report3 = live_footprints(count_passes(three_pass, family("m")), shapes)
    report1 = live_footprints(count_passes(one_pass, family("m1", "m0")), shapes)
    print("3-pass tensors needing full M fibers: "
          f"{report3.sequence_dependent_tensors()}")
    print("1-pass tensors needing full M fibers: "
          f"{report1.sequence_dependent_tensors()} (none - the FuseMax property)")

    ops3 = total_ops(three_pass, shapes)
    ops1 = total_ops(one_pass, shapes)
    print(f"divisions: 3-pass {ops3.get('divide'):,} vs 1-pass "
          f"{ops1.get('divide'):,} (Sec. IV-D reduction)")

    section("3. Numerical validation")
    rng = np.random.default_rng(0)
    small = {"E": 8, "F": 8, "M": 32, "P": 4, "M0": 8, "M1": 4}
    inputs = {
        "Q": rng.normal(size=(8, 4)),
        "K": rng.normal(size=(8, 32)),
        "V": rng.normal(size=(8, 32)),
    }
    expected = attention(inputs["Q"], inputs["K"], inputs["V"])
    for cascade in (three_pass, one_pass):
        out = evaluate_output(cascade, small, inputs)
        print(f"{cascade.name}: matches reference = "
              f"{np.allclose(out, expected)}")

    section("4. Accelerator models (BERT, L = 64K, batch 64)")
    # One typed request through the Session façade evaluates every
    # configuration of the figure grid on this point, cached + recorded.
    session = Session()
    result = session.run(ExperimentRequest(
        name="sweep", kind="attention", models=("BERT",), seq_lens=(65536,),
    ))
    print(f"{'config':>14} {'latency (Mcyc)':>15} {'util 2D':>8} "
          f"{'util 1D':>8} {'energy (mJ)':>12}")
    for r in result.payload.values():
        print(f"{r.config:>14} {r.latency_cycles / 1e6:>15.1f} "
              f"{r.util_2d:>8.2f} {r.util_1d:>8.2f} "
              f"{r.energy_pj / 1e9:>12.2f}")
    prov = result.provenance
    print(f"(api {session.version}, code {prov.code_version}, "
          f"{prov.cache_misses} evaluated / {prov.cache_hits} cached, "
          f"{prov.wall_time_s:.2f}s)")


if __name__ == "__main__":
    main()
