"""Scenario: sizing a FuseMax-style accelerator for a latency target.

Reproduces the Sec. VI-D design-space sweep (Fig. 12) and extends it:
given a latency budget for BERT attention at 256K tokens, find the
smallest-area design that meets it, and report the area breakdown of the
chosen configuration.

Run:  python examples/design_space_exploration.py
"""

from repro.arch import area_of
from repro.model.pareto import ARRAY_DIMS, PARETO_SEQ_LEN, pareto_frontier, sweep
from repro.model.pareto import _scaled_arch  # reuse the sweep's arch scaling
from repro.workloads import BERT, MODELS


def main():
    print(f"Design sweep at L = 256K (paper Fig. 12), dims {ARRAY_DIMS}:\n")
    print(f"{'model':>6} {'array':>9} {'area cm^2':>10} {'latency s':>10}")
    frontiers = {}
    for model in MODELS:
        points = sweep(model, seq_len=PARETO_SEQ_LEN)
        frontiers[model.name] = pareto_frontier(points)
        for p in points:
            print(f"{p.model:>6} {p.array_dim:>5}x{p.array_dim:<3} "
                  f"{p.area_cm2:>10.3f} {p.latency_seconds:>10.1f}")

    budget_seconds = 200.0
    print(f"\nSmallest design meeting a {budget_seconds:.0f}s budget on BERT:")
    feasible = [
        p for p in frontiers["BERT"] if p.latency_seconds <= budget_seconds
    ]
    if not feasible:
        print("  no swept design meets the budget")
        return
    chosen = min(feasible, key=lambda p: p.area_cm2)
    print(f"  {chosen.array_dim}x{chosen.array_dim} "
          f"({chosen.area_cm2:.2f} cm^2, {chosen.latency_seconds:.1f} s)")

    breakdown = area_of(_scaled_arch(chosen.array_dim))
    print("  area breakdown (mm^2):")
    print(f"    2D PE array   {breakdown.pe_2d:9.1f}")
    print(f"    1D PE array   {breakdown.pe_1d:9.1f}")
    print(f"    global buffer {breakdown.global_buffer:9.1f}")
    print(f"    fixed/NoC     {breakdown.fixed:9.1f}")
    print(f"    total         {breakdown.total:9.1f}")


if __name__ == "__main__":
    main()
