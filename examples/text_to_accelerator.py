"""Scenario: from textual Einsums to an accelerator estimate, end to end.

Authors a full attention cascade in the text notation, validates it
numerically, classifies it with the pass analysis, binds it to the
FuseMax architecture, and gets a first-order latency/utilization estimate
from the generic evaluator — the complete architect's loop without
writing a single IR constructor by hand.

Run:  python examples/text_to_accelerator.py
"""

import numpy as np

from repro.analysis import count_passes, family
from repro.arch import fusemax_arch
from repro.einsum import Cascade, parse_einsum
from repro.functional import attention, evaluate_output
from repro.mapping import Binding
from repro.model import evaluate_cascade
from repro.workloads import BERT


def main():
    # 1. Author the cascade as text (3-pass + division reduction).
    source = [
        "QK[m, p] = Q[e, p] * K[e, m]",
        "GM[p] = QK[m, p] :: max(m)",
        "SN[m, p] = exp(QK[m, p] - GM[p])",
        "SD[p] = SN[m, p]",
        "SNV[f, p] = SN[m, p] * V[f, m]",
        "AV[f, p] = SNV[f, p] / SD[p]",
    ]
    cascade = Cascade.build(
        "textual-attention",
        [parse_einsum(line) for line in source],
        inputs=["Q", "K", "V"],
        rank_shapes={"e": "E", "f": "F", "m": "M", "p": "P"},
        outputs=["AV"],
    )
    print(cascade)

    # 2. Numerical validation on a small instance.
    rng = np.random.default_rng(1)
    shapes = {"E": 8, "F": 8, "M": 64, "P": 8}
    inputs = {
        "Q": rng.normal(size=(8, 8)),
        "K": rng.normal(size=(8, 64)),
        "V": rng.normal(size=(8, 64)),
    }
    out = evaluate_output(cascade, shapes, inputs)
    ok = np.allclose(out, attention(inputs["Q"], inputs["K"], inputs["V"]))
    print(f"\nnumerically correct: {ok}")

    # 3. Mapping-independent classification.
    analysis = count_passes(cascade, family("m"))
    print(f"passes over M: {analysis.num_passes} "
          "(division reduction merged passes 2 and 3)")

    # 4. Bind to the FuseMax architecture and evaluate.
    binding = Binding(
        name="textual",
        assignment={
            "QK": "2d", "GM": "2d", "SN": "2d", "SNV": "2d",
            "SD": "1d", "AV": "1d",
        },
    )
    arch = fusemax_arch()
    big = BERT.attention_shapes(65536, block=256)
    big = {k: big[k] for k in ("E", "F", "M", "P")}
    result = evaluate_cascade(cascade, binding, family("m"), arch, big)
    seconds = arch.seconds(result.latency_cycles)
    print("\nper-(batch, head) instance at L = 64K on the cloud machine:")
    print(f"  latency  {result.latency_cycles:,.0f} cycles ({seconds*1e3:.2f} ms)")
    print(f"  util 2D  {result.util_2d:.2f}")
    print(f"  util 1D  {result.util_1d:.2f}")
    print(f"  DRAM     {result.dram_words * arch.word_bytes / 2**20:.1f} MB "
          f"(buffered on chip: {result.buffered})")
    print("\nNote the 2-pass cascade spills its M-long intermediates at this")
    print("length — the reason FuseMax adopts the 1-pass cascade instead.")


if __name__ == "__main__":
    main()
