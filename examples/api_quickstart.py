"""The typed evaluation API end to end: one request of every kind.

``repro.api`` is the single front door to everything the reproduction
can evaluate.  Build a frozen request, hand it to a ``Session`` (which
owns jobs / cache / run registry), and read the payload plus a
provenance envelope saying how it came to be.

1. Session + provenance on a figure-grid sweep (ExperimentRequest).
2. Long-sequence binding sweep (BindingSweepRequest).
3. Merged multi-instance schedules (ScenarioRequest).
4. Scenario *grids* over models x batch x heads x decode-instances —
   including a heterogeneous cell with unequal chunk counts
   (ScenarioGridRequest).
5. Simulated vs analytical crosscheck (CrosscheckRequest).
6. Open-loop serving: seeded Poisson arrivals, continuous batching,
   SLO metrics over a latency-vs-load sweep (ServeRequest).
7. submit()/gather(): heterogeneous requests pooled through one pass
   of the parallel runtime.
8. Multi-chip strong scaling: one scenario sharded over 1/2/4/8 chips
   on a priced interconnect, and the link-bound knee the analytical
   cluster model reads off without simulating (ClusterRequest).
9. Memory QoS: decode token gaps under a prefill burst, uniform vs
   decode-first DRAM arbitration on a finite on-chip buffer
   (ServeRequest with buffer_bytes/qos).

Run:  python examples/api_quickstart.py
"""

from repro.api import (
    BindingSweepRequest,
    ClusterRequest,
    CrosscheckRequest,
    ExperimentRequest,
    ScenarioGridRequest,
    ScenarioRequest,
    ServeRequest,
    Session,
)
from repro.cluster import ClusterSpec
from repro.model.cluster import analytical_cluster
from repro.serving import Arrival
from repro.workloads import BERT, heterogeneous_scenario
from repro.workloads.scenario import scenario_from_model


def section(title):
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main():
    session = Session(jobs=2)
    print(f"repro.api {session.version}")

    section("1. ExperimentRequest: one evaluation-grid point, with provenance")
    result = session.run(ExperimentRequest(
        name="sweep", kind="attention", models=("BERT",), seq_lens=(4096,),
    ))
    for (config, model, seq_len), r in result.payload.items():
        print(f"{config:>14}  {model} L={seq_len}  "
              f"latency={r.latency_cycles:.3e} util2d={r.util_2d:.2f}")
    prov = result.provenance
    print(f"provenance: kind={prov.kind} code={prov.code_version} "
          f"hits={prov.cache_hits} misses={prov.cache_misses} "
          f"jobs={prov.jobs}")

    section("2. BindingSweepRequest: utilization vs sequence length")
    result = session.run(BindingSweepRequest(
        chunks=(16, 64, 256), array_dims=(128,),
    ))
    for (binding, chunks, *_), row in result.payload.items():
        print(f"{binding:12s} chunks={chunks:4d} seq={row.seq_len:6d} "
              f"util2d={row.util_2d:.3f} util1d={row.util_1d:.3f}")

    section("3. ScenarioRequest: B x H instances sharing the arrays")
    result = session.run(ScenarioRequest(
        model="BERT", batch=2, heads=4, chunks=8, array_dim=64,
    ))
    for scenario, row in result.payload.items():
        print(f"{scenario.name:22s} {scenario.binding:12s} "
              f"makespan={row.makespan:8d} util2d={row.util_2d:.3f}")

    section("4. ScenarioGridRequest: models x batch x heads (+ heterogeneous)")
    het = heterogeneous_scenario((4, 4, 16), array_dim=64)
    result = session.run(ScenarioGridRequest(
        models=("BERT", "T5"), batches=(1, 2), heads=(2,),
        chunks=4, array_dim=64, extra_scenarios=(het,),
    ))
    for cell in result.payload:
        label = cell.model or cell.sim.scenario
        print(f"{label:>14} B={cell.batch!s:>4} H={cell.heads!s:>4} "
              f"util2d={cell.sim.util_2d:.3f} "
              f"estimate={cell.estimate}:{cell.est_util_2d:.3f}")
    print(f"({len(result.payload)} cells, cached per cell: "
          f"hits={result.provenance.cache_hits})")

    section("5. CrosscheckRequest: simulator vs analytical models")
    report = session.run(CrosscheckRequest(tolerance=0.05)).payload
    flagged = len(report.flagged)
    print(f"{len(report.rows)} comparisons, {flagged} diverged "
          f"beyond +/-{report.tolerance:g}")

    section("6. ServeRequest: latency-vs-offered-load, one rate per request")
    for rate in (0.2, 0.4, 0.8):
        session.submit(ServeRequest(
            rate=rate, duration=16384, seed=7, array_dim=128,
            deadline=10_000, decode_tokens=2,
        ))
    for result in session.gather():
        point = result.payload
        print(f"rate={point.rate:4g}/kcy  {point.n_requests:3d} req  "
              f"ttft_p50={point.ttft_p50:6d}  p50={point.latency_p50:6d}  "
              f"p99={point.latency_p99:6d}  goodput={point.goodput:.3f}")

    section("7. submit()/gather(): one pooled pass, heterogeneous requests")
    session.submit(BindingSweepRequest(chunks=(16, 32), array_dims=(64,)))
    session.submit(ScenarioRequest(instances=4, chunks=8, array_dim=64))
    session.submit(ScenarioGridRequest(models=("BERT",), batches=(1, 4),
                                       chunks=4, array_dim=64))
    for result in session.gather():
        print(f"{result.provenance.kind:14s} -> {len(result.payload):3d} "
              f"rows (batched={result.provenance.batched})")

    section("8. ClusterRequest: strong scaling until the link binds")
    result = session.run(ClusterRequest(
        model="BERT", batch=2, heads=8, chunks=16, array_dim=64,
        chips=(1, 2, 4, 8), link_bws=(1024.0,), link_latency=4,
    ))
    scenario = scenario_from_model(
        BERT, 16 * 64, batch=2, heads=8, array_dim=64
    )
    for row in result.payload:
        estimate = analytical_cluster(scenario, ClusterSpec(
            n_chips=row.n_chips, link_bw=1024.0, link_latency=4,
        ))
        link = "-" if row.link_bw is None else f"{row.util_link:.3f}"
        print(f"chips={row.n_chips}  makespan={row.makespan:7d}  "
              f"util2d={row.util_2d:.3f}  util_link={link:>5s}  "
              f"bound={estimate.kind}")
    # The knee: past it the collective traffic (which grows with the
    # chip count) binds, and adding chips stops paying.

    section("9. Memory QoS: decode token gaps under a prefill burst")
    # A small request decodes behind a 24-chunk prefill burst on a
    # tight DRAM link with a finite on-chip buffer (working-set spills
    # included).  Uniform arbitration prefetches FIFO, so the burst's
    # bulk transfers starve the decoder's token gaps; decode-first
    # issues decode transfers just-in-time and gives them priority at
    # the link — smaller TBT, paid for with the burst's TTFT.
    burst = (Arrival(0, 24, 0), Arrival(500, 2, 12))
    for qos in ("uniform", "decode-first"):
        point = session.run(ServeRequest(
            trace=burst, dram_bw=32.0, buffer_bytes=100_000.0, qos=qos,
        )).payload
        print(f"qos={qos:12s}  tbt_p50={point.tbt_p50:7.1f}  "
              f"tbt_p99={point.tbt_p99:7.1f}  "
              f"burst_ttft={point.requests[0].ttft:6d}  "
              f"spill_bytes={point.spill_bytes}")


if __name__ == "__main__":
    main()
