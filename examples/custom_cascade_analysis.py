"""Scenario: analyzing a *new* attention variant with the library.

The paper's conclusion invites applying cascades of Einsums to other
attention variants.  This script authors sigmoid attention — which
replaces the softmax with an element-wise sigmoid, so no global
normalization exists — as a cascade, then:

1. verifies it numerically against a direct numpy implementation,
2. runs the pass analysis: with no cross-M dependence, it is 1-pass
   *without* any running-max machinery,
3. compares its op counts against softmax attention.

This is the workflow an architect would follow before building hardware
for a new kernel.

Run:  python examples/custom_cascade_analysis.py
"""

import numpy as np

from repro.analysis import count_passes, family, live_footprints, total_ops
from repro.cascades import attention_3pass
from repro.einsum import Cascade, Einsum, MUL, Map, SIGMOID, TensorRef, Unary, ref
from repro.functional import evaluate_output


def sigmoid_attention_cascade() -> Cascade:
    """AV[f, p] = Σ_m σ(QK[m, p]) × V[f, m] as a cascade."""
    qk = Einsum(
        output=TensorRef.of("QK", "m", "p"),
        expr=Map(MUL, ref("Q", "e", "p"), ref("K", "e", "m")),
        name="QK",
    )
    sig = Einsum(
        output=TensorRef.of("SA", "m", "p"),
        expr=Unary(SIGMOID, ref("QK", "m", "p")),
        name="SA",
    )
    av = Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=Map(MUL, ref("SA", "m", "p"), ref("V", "f", "m")),
        name="AV",
    )
    return Cascade.build(
        name="sigmoid-attention",
        einsums=[qk, sig, av],
        inputs=["Q", "K", "V"],
        rank_shapes={"e": "E", "f": "F", "m": "M", "p": "P"},
        outputs=["AV"],
    )


def main():
    cascade = sigmoid_attention_cascade()
    print(cascade)

    # 1. Numerical validation against direct numpy.
    rng = np.random.default_rng(3)
    shapes = {"E": 8, "F": 8, "M": 64, "P": 8}
    inputs = {
        "Q": rng.normal(size=(8, 8)),
        "K": rng.normal(size=(8, 64)),
        "V": rng.normal(size=(8, 64)),
    }
    out = evaluate_output(cascade, shapes, inputs)
    qk = inputs["K"].T @ inputs["Q"]
    expected = inputs["V"] @ (1.0 / (1.0 + np.exp(-qk)))
    print(f"\nmatches direct numpy: {np.allclose(out, expected)}")

    # 2. Pass analysis: sigmoid needs no normalization, hence one pass
    #    with no running-state corrections at all.
    analysis = count_passes(cascade, family("m"))
    print(f"passes over M: {analysis.num_passes} "
          "(vs 3 for stable softmax attention)")
    report = live_footprints(analysis, {"E": 64, "F": 64, "M": 65536, "P": 1024})
    print("sequence-dependent live tensors: "
          f"{report.sequence_dependent_tensors() or 'none'}")

    # 3. Op-count comparison at a real workload point.
    big = {"E": 64, "F": 64, "M": 65536, "P": 1024, "M0": 256, "M1": 256}
    ours = total_ops(cascade, big)
    softmax = total_ops(attention_3pass(), big)
    print("\nop counts vs stable softmax attention (M=64K, P=1K):")
    for cls in ("macc", "exp", "max", "add", "divide"):
        print(f"  {cls:>7}: sigmoid {ours.get(cls):>14,}  "
              f"softmax {softmax.get(cls):>14,}")
    print("\nConclusion: sigmoid attention is natively single-pass — an")
    print("accelerator needs neither the running-max corrections nor any")
    print("sequence-proportional buffering. The cascade abstraction shows")
    print("this before any mapping or RTL work.")


if __name__ == "__main__":
    main()
