"""Scenario: serving encoders at million-token context lengths.

The paper's motivating workload (Sec. I): sequence lengths are growing —
Google reports 10M-token research contexts — and attention accelerators
whose buffering scales with sequence length fall off a cliff.  This script
walks BERT from 1K to 1M tokens and shows:

- where FLAT starts spilling (its buffer-capacity crossover),
- how each design's utilization, DRAM traffic, and latency respond,
- the end-to-end inference picture including the linear layers.

Run:  python examples/long_context_inference.py
"""

from repro.model import FLATModel, UnfusedModel, evaluate_inference, fusemax
from repro.model.flat import spill_decision
from repro.workloads import BERT, SEQUENCE_LENGTHS, seq_label


def main():
    configs = (UnfusedModel(), FLATModel(), fusemax())

    print("FLAT's buffer-capacity crossover (Sec. VI-B):")
    arch = FLATModel().arch
    for seq_len in SEQUENCE_LENGTHS:
        decision = spill_decision(arch, 64, 64, seq_len, seq_len)
        extra_gb = decision.extra_dram_words * arch.word_bytes / 2**30
        print(f"  L={seq_label(seq_len):>4}: {decision.strategy:>9} "
              f"(+{extra_gb:8.2f} GB extra DRAM traffic per head)")

    print("\nAttention kernel across sequence lengths (BERT, batch 64):")
    header = f"{'L':>5}"
    for config in configs:
        header += f" | {config.name:>8}: {'s':>9} {'u2D':>5} {'DRAM GB':>8}"
    print(header)
    for seq_len in SEQUENCE_LENGTHS:
        line = f"{seq_label(seq_len):>5}"
        for config in configs:
            r = config.evaluate(BERT, seq_len)
            seconds = config.arch.seconds(r.latency_cycles)
            line += (f" | {'':>8}  {seconds:>9.2f} {r.util_2d:>5.2f} "
                     f"{r.dram_bytes / 2**30:>8.1f}")
        print(line)

    print("\nEnd-to-end encoder inference (attention + linear layers):")
    print(f"{'L':>5} {'unfused (s)':>12} {'FLAT (s)':>10} {'FuseMax (s)':>12} "
          f"{'speedup vs FLAT':>16}")
    for seq_len in SEQUENCE_LENGTHS:
        results = [evaluate_inference(c, BERT, seq_len) for c in configs]
        secs = [c.arch.seconds(r.latency_cycles) for c, r in zip(configs, results)]
        print(f"{seq_label(seq_len):>5} {secs[0]:>12.2f} {secs[1]:>10.2f} "
              f"{secs[2]:>12.2f} {secs[1] / secs[2]:>15.1f}x")

    print("\nTakeaway: FuseMax's DRAM traffic stays input-proportional and its")
    print("utilization stays ~100% no matter the context length, while FLAT")
    print("goes memory-bound once a score fiber outgrows the global buffer.")


if __name__ == "__main__":
    main()
