"""Reference numpy implementations of attention.

These are the ground truth the cascade interpreter is validated against.
All functions use the paper's tensor conventions (Sec. IV-B):

- ``Q[e, p]`` — queries (embedding × query-sequence),
- ``K[e, m]`` — keys (embedding × key-sequence),
- ``V[f, m]`` — values (embedding × key-sequence),
- result ``AV[f, p]``.

The ``1/sqrt(E)`` scaling is omitted to match the cascades (Sec. IV-C1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def scores(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Einsum 22 without scaling: ``QK[m, p] = sum_e Q[e, p] K[e, m]``."""
    return k.T @ q


def softmax(qk: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the ``m`` (first) rank of ``QK``."""
    shifted = qk - qk.max(axis=0, keepdims=True)
    numer = np.exp(shifted)
    return numer / numer.sum(axis=0, keepdims=True)


def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Full attention: ``AV[f, p] = sum_m softmax(QK)[m, p] V[f, m]``."""
    return v @ softmax(scores(q, k))


def flash_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, block: int
) -> np.ndarray:
    """A direct numpy transliteration of the 1-pass cascade (Cascade 5).

    Processes keys/values in ``M1 = M / block`` chunks of ``block`` elements,
    maintaining the running maximum ``RM``, running denominator ``RD``, and
    running numerator-times-V ``RNV``.  Written independently of the cascade
    interpreter so the two can be cross-checked.
    """
    n_e, m = k.shape
    n_f = v.shape[0]
    p = q.shape[1]
    if m % block != 0:
        raise ValueError(f"sequence length {m} not divisible by block {block}")
    rm = np.full(p, -np.inf)
    rd = np.zeros(p)
    rnv = np.zeros((n_f, p))
    for start in range(0, m, block):
        chunk = slice(start, start + block)
        bqk = k[:, chunk].T @ q  # (block, p)
        lm = bqk.max(axis=0)
        rm_next = np.maximum(rm, lm)
        sln = np.exp(bqk - rm_next)  # (block, p)
        sld = sln.sum(axis=0)
        slnv = v[:, chunk] @ sln  # (f, p)
        prm = np.exp(rm - rm_next)
        rd = sld + rd * prm
        rnv = slnv + rnv * prm
        rm = rm_next
    return rnv / rd


def two_pass_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, block: int
) -> Tuple[np.ndarray, np.ndarray]:
    """A numpy transliteration of the 2-pass cascade (Sec. IV-E2).

    Returns ``(AV, SLN)`` — the second element is the pass-1 local numerator
    that must stay live across the pass boundary, exposed so tests can check
    its O(M) footprint claim.
    """
    n_e, m = k.shape
    p = q.shape[1]
    if m % block != 0:
        raise ValueError(f"sequence length {m} not divisible by block {block}")
    m1 = m // block
    # Pass 1: per-partition local max / numerator / denominator.
    bqk = (k.T @ q).reshape(m1, block, p)
    lm = bqk.max(axis=1)  # (m1, p)
    gm = lm.max(axis=0)  # (p,)
    sln = np.exp(bqk - lm[:, None, :])  # (m1, block, p) — lives across passes
    sld = sln.sum(axis=1)  # (m1, p)
    # Between passes: denominator from partition-granular tensors only.
    pm = np.exp(lm - gm[None, :])  # (m1, p)
    sd = (sld * pm).sum(axis=0)  # (p,)
    # Pass 2: correct the numerators and produce the output.
    sn = sln * pm[:, None, :]
    a = sn / sd[None, None, :]
    av = np.einsum("fm,mp->fp", v, a.reshape(m, p))
    return av, sln
