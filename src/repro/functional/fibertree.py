"""A minimal format-agnostic fibertree (paper Sec. II-A).

The fibertree abstraction (TeAAL, Sec. 2.1) represents a tensor as a tree
of *fibers*: each fiber holds the coordinates of one rank (with common
coordinates for all higher ranks), and each coordinate carries a payload —
a reference to a fiber of the next rank, or a leaf value.

This module implements the subset the paper relies on:

- construction from (and back to) dense numpy arrays,
- per-fiber traversal in coordinate order,
- the two EDGE merge operators over fibers: intersection (``∩``) and
  union (``∪``), which define which iteration-space points a map action
  touches (Sec. II-C1),
- occupancy statistics (used to reason about footprints).

Zero values are treated as empty positions, so intersection/union have
their sparse-tensor-algebra meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

Payload = Union["Fiber", float]


@dataclass
class Fiber:
    """One fiber: sorted coordinates with payloads.

    Payloads are either leaf values (bottom rank) or child fibers.
    """

    rank: str
    elements: List[Tuple[int, Payload]] = field(default_factory=list)

    def __post_init__(self) -> None:
        coords = [c for c, _ in self.elements]
        if coords != sorted(coords):
            raise ValueError(f"fiber over {self.rank!r}: coordinates unsorted")
        if len(set(coords)) != len(coords):
            raise ValueError(f"fiber over {self.rank!r}: duplicate coordinates")

    def coords(self) -> Tuple[int, ...]:
        return tuple(c for c, _ in self.elements)

    def payload(self, coord: int) -> Optional[Payload]:
        for c, p in self.elements:
            if c == coord:
                return p
        return None

    def __iter__(self) -> Iterator[Tuple[int, Payload]]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def occupancy(self) -> int:
        """Number of non-empty leaves in this subtree."""
        total = 0
        for _, payload in self.elements:
            total += payload.occupancy() if isinstance(payload, Fiber) else 1
        return total

    # -- EDGE merge operators -------------------------------------------------

    def intersect(self, other: "Fiber") -> Tuple[Tuple[int, Payload, Payload], ...]:
        """``∩``: coordinates present (non-empty) in both fibers."""
        mine = dict(self.elements)
        out = []
        for coord, payload in other.elements:
            if coord in mine:
                out.append((coord, mine[coord], payload))
        return tuple(out)

    def union(
        self, other: "Fiber", empty: float = 0.0
    ) -> Tuple[Tuple[int, Payload, Payload], ...]:
        """``∪``: coordinates present in at least one fiber; the missing
        side contributes ``empty``."""
        mine = dict(self.elements)
        theirs = dict(other.elements)
        coords = sorted(set(mine) | set(theirs))
        return tuple(
            (coord, mine.get(coord, empty), theirs.get(coord, empty))
            for coord in coords
        )


@dataclass
class FibertreeTensor:
    """A tensor as a fibertree: named ranks, root fiber, and shape."""

    rank_names: Tuple[str, ...]
    root: Fiber
    shape: Tuple[int, ...]

    @staticmethod
    def from_dense(
        array: np.ndarray, rank_names: Sequence[str]
    ) -> "FibertreeTensor":
        """Build the fibertree of a dense array (zeros become empty)."""
        array = np.asarray(array, dtype=float)
        if array.ndim != len(rank_names):
            raise ValueError(
                f"{array.ndim}-tensor needs {array.ndim} rank names, "
                f"got {list(rank_names)}"
            )
        if array.ndim == 0:
            raise ValueError("0-tensors have no fibers")

        def build(sub: np.ndarray, depth: int) -> Fiber:
            elements: List[Tuple[int, Payload]] = []
            if depth == len(rank_names) - 1:
                for coord, value in enumerate(sub):
                    if value != 0.0:
                        elements.append((coord, float(value)))
            else:
                for coord in range(sub.shape[0]):
                    child = build(sub[coord], depth + 1)
                    if len(child):
                        elements.append((coord, child))
            return Fiber(rank_names[depth], elements)

        return FibertreeTensor(
            rank_names=tuple(rank_names),
            root=build(array, 0),
            shape=array.shape,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)

        def fill(fiber: Fiber, prefix: Tuple[int, ...]) -> None:
            for coord, payload in fiber:
                if isinstance(payload, Fiber):
                    fill(payload, prefix + (coord,))
                else:
                    out[prefix + (coord,)] = payload

        fill(self.root, ())
        return out

    def occupancy(self) -> int:
        """Non-zero leaf count."""
        return self.root.occupancy()

    def fiber_at(self, *prefix: int) -> Optional[Fiber]:
        """The fiber reached by following ``prefix`` coordinates from the
        root — e.g. ``fiber_at(p)`` of ``QK[p][m]`` is one M fiber, the
        unit the paper's pass analysis counts traversals of."""
        fiber: Payload = self.root
        for coord in prefix:
            if not isinstance(fiber, Fiber):
                raise ValueError("prefix descends below the leaf rank")
            nxt = fiber.payload(coord)
            if nxt is None:
                return None
            fiber = nxt
        if not isinstance(fiber, Fiber):
            raise ValueError("prefix reaches a leaf value, not a fiber")
        return fiber

    def swizzle(self, order: Sequence[str]) -> "FibertreeTensor":
        """Reorder ranks (the format-agnostic part of the abstraction)."""
        if sorted(order) != sorted(self.rank_names):
            raise ValueError(
                f"order {list(order)} does not permute {list(self.rank_names)}"
            )
        perm = [self.rank_names.index(name) for name in order]
        dense = self.to_dense().transpose(perm)
        return FibertreeTensor.from_dense(dense, order)


def dot_via_intersection(a: Fiber, b: Fiber) -> float:
    """A dot product using the ``×(∩)`` map + default sum reduction —
    the GEMM inner loop of Einsum 2, executed on fibers."""
    total = 0.0
    for _, va, vb in a.intersect(b):
        if isinstance(va, Fiber) or isinstance(vb, Fiber):
            raise ValueError("dot product needs leaf fibers")
        total += va * vb
    return total


def max_via_union(a: Fiber, b: Fiber) -> Fiber:
    """The ``max(∪)`` map of Sec. II-C1 executed on leaf fibers."""
    elements: List[Tuple[int, Payload]] = []
    for coord, va, vb in a.union(b):
        if isinstance(va, Fiber) or isinstance(vb, Fiber):
            raise ValueError("max needs leaf fibers")
        value = max(va, vb)
        if value != 0.0:
            elements.append((coord, value))
    return Fiber(a.rank, elements)
