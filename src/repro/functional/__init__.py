"""Functional (numerical) execution of cascades."""

from .attention_ref import attention, flash_attention, scores, softmax, two_pass_attention
from .interpreter import Interpreter, InterpreterError, evaluate, evaluate_output

__all__ = [
    "Interpreter",
    "InterpreterError",
    "attention",
    "evaluate",
    "evaluate_output",
    "flash_attention",
    "scores",
    "softmax",
    "two_pass_attention",
]
