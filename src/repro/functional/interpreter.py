"""A functional interpreter for cascades of Extended Einsums.

The interpreter evaluates a :class:`repro.einsum.Cascade` on dense numpy
inputs, supporting the full authoring subset used by the paper's cascades:

- map/reduce/unary actions with user-defined compute,
- affine index expressions (``K[e, m1*M0 + m0]``),
- fixed coordinates (``RNV[f, M1, p]``),
- filtered rank expressions (``A[k: k<=i]``),
- iterative ranks with initialization statements and shifted outputs.

It is an *executable semantics*, optimised for clarity over speed: every
Einsum materialises its full iteration space through numpy broadcasting.
It exists so that the analysis results (pass counts, taxonomy) can be
checked against ground-truth numerics — e.g. that Cascade 5 computes
exactly the same attention output as Cascade 4.
"""

from __future__ import annotations

from typing import (
    Callable,
    Container,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..einsum import Cascade, Einsum
from ..einsum.index import Affine, Filter, Fixed, Shifted, Var
from ..einsum.tensor import Expr, Leaf, Literal, Map, TensorRef, Unary

Axes = Tuple[str, ...]
Labeled = Tuple[np.ndarray, Axes]


class InterpreterError(RuntimeError):
    """Raised when a cascade cannot be evaluated."""


def _to_axes(arr: np.ndarray, axes: Axes, target: Axes) -> np.ndarray:
    """Transpose/expand ``arr`` (labelled by ``axes``) onto ``target`` axes."""
    perm = [axes.index(a) for a in target if a in axes]
    arr = np.transpose(arr, perm) if perm != list(range(arr.ndim)) else arr
    shape_iter = iter(arr.shape)
    new_shape = [next(shape_iter) if a in axes else 1 for a in target]
    return arr.reshape(new_shape)


class Interpreter:
    """Evaluates one cascade on concrete inputs.

    Args:
        cascade: The cascade to evaluate.
        shapes: Shape environment binding every shape symbol the cascade
            mentions (e.g. ``{"E": 8, "M": 32, ...}``).
        inputs: One numpy array per cascade input tensor.
    """

    def __init__(
        self,
        cascade: Cascade,
        shapes: Mapping[str, int],
        inputs: Mapping[str, np.ndarray],
    ) -> None:
        self.cascade = cascade
        self.shapes = dict(shapes)
        missing = set(cascade.inputs) - set(inputs)
        if missing:
            raise InterpreterError(f"missing input tensors: {sorted(missing)}")
        self.tensors: Dict[str, np.ndarray] = {
            name: np.asarray(array, dtype=float) for name, array in inputs.items()
        }
        self.extents: Dict[str, int] = {
            var: cascade.rank_extent(var, self.shapes)
            for var in cascade.rank_shapes
        }

    # -- public API ----------------------------------------------------------

    def run(self) -> Dict[str, np.ndarray]:
        """Evaluate the cascade; returns every tensor (inputs included)."""
        self._allocate_outputs()
        for einsum in self.cascade.initialization():
            self._execute(einsum, bound={})
        iter_vars = self.cascade.iterative_vars
        if len(iter_vars) > 1:
            raise InterpreterError("nested iterative ranks are not supported")
        if iter_vars:
            var = iter_vars[0]
            extent = self.cascade.iterative[0].resolved_extent(self.shapes)
            body = [e for e in self.cascade.extended() if var in e.iteration_vars()]
            tail = [
                e for e in self.cascade.extended() if var not in e.iteration_vars()
            ]
            # The per-Einsum schedule (identity lookup, output axes,
            # reduce actions) depends only on which variables are bound,
            # not their values — hoist it out of the chunk loop.
            plans = [(e, _EinsumPlan(self, e, (var,))) for e in body]
            for i in range(extent):
                for einsum, plan in plans:
                    self._execute(einsum, bound={var: i}, plan=plan)
            for einsum in tail:
                self._execute(einsum, bound={})
        else:
            for einsum in self.cascade.extended():
                self._execute(einsum, bound={})
        return dict(self.tensors)

    def outputs(self) -> Dict[str, np.ndarray]:
        """Evaluate the cascade and return only its declared result tensors."""
        all_tensors = self.run()
        return {name: all_tensors[name] for name in self.cascade.result_tensors()}

    # -- allocation ----------------------------------------------------------

    def _allocate_outputs(self) -> None:
        """Allocate a zero array for every tensor the cascade produces.

        A rank indexed by ``Shifted(v, o)`` anywhere needs ``extent(v) + o``
        coordinates (iterative tensors carry one extra slot).
        """
        produced = [t for t in self.cascade.tensors() if t not in self.cascade.inputs]
        for tensor in produced:
            dims: List[int] = []
            refs = [
                e.output for e in self.cascade.producers(tensor)
            ] + [
                r
                for e in self.cascade.einsums
                for r in e.reads()
                if r.tensor == tensor
            ]
            rank_count = refs[0].rank_count()
            for pos in range(rank_count):
                dims.append(self._rank_extent_at(refs, pos))
            self.tensors[tensor] = np.zeros(tuple(dims), dtype=float)

    def _rank_extent_at(self, refs: Sequence[TensorRef], pos: int) -> int:
        """Extent of rank ``pos`` of a tensor, over all its references."""
        best = 0
        for ref_ in refs:
            ix = ref_.indices[pos]
            if isinstance(ix, Var):
                best = max(best, self.extents[ix.name])
            elif isinstance(ix, Shifted):
                best = max(best, self.extents[ix.name] + max(ix.offset, 0))
            elif isinstance(ix, Fixed):
                best = max(best, ix.evaluate({}, self.shapes) + 1)
            elif isinstance(ix, Affine):
                env = {v: self.extents[v] - 1 for v in ix.vars()}
                best = max(best, ix.evaluate(env, self.shapes) + 1)
        if best == 0:
            raise InterpreterError(f"cannot size rank {pos} of {refs[0].tensor}")
        return best

    # -- execution -----------------------------------------------------------

    def _execute(
        self,
        einsum: Einsum,
        bound: Mapping[str, int],
        plan: Optional["_EinsumPlan"] = None,
    ) -> None:
        if plan is None:
            plan = _EinsumPlan(self, einsum, bound)
        identity_for = plan.identity_for
        arr, axes = self._eval(einsum.expr, bound, identity_for)
        out_axes = plan.out_axes
        for var in [a for a in axes if a not in out_axes]:
            op = plan.reduce_op(var)
            axis = axes.index(var)
            arr = op.reduce(np.asarray(arr), axis=axis)
            axes = axes[:axis] + axes[axis + 1 :]
        if not set(axes) <= set(out_axes):
            raise InterpreterError(
                f"{einsum.label}: expression axes {axes} do not match "
                f"output axes {out_axes}"
            )
        if tuple(axes) != tuple(out_axes):
            # Missing axes broadcast over the output (e.g. initialising
            # RM[0, p] from a scalar literal).
            arr = _to_axes(np.asarray(arr), axes, out_axes)
        index = self._write_index(einsum.output, bound)
        self.tensors[einsum.writes_tensor()][index] = arr

    def _identity_lookup(self, einsum: Einsum) -> Callable[[str], float]:
        reduced = set(einsum.reduced_vars())

        def identity(var: str) -> float:
            if var in reduced:
                return einsum.reduce_action(var).identity
            return 0.0

        return identity

    def _free_axes(self, ref_: TensorRef, bound: Container[str]) -> Axes:
        axes: List[str] = []
        for ix in ref_.indices:
            for var in ix.vars():
                if var not in bound and var not in axes:
                    axes.append(var)
        return tuple(axes)

    def _write_index(self, ref_: TensorRef, bound: Mapping[str, int]):
        index: List[object] = []
        for ix in ref_.indices:
            if isinstance(ix, Fixed):
                index.append(ix.evaluate({}, self.shapes))
            elif isinstance(ix, Var):
                if ix.name in bound:
                    index.append(bound[ix.name])
                else:
                    index.append(slice(None))
            elif isinstance(ix, Shifted):
                if ix.name in bound:
                    index.append(bound[ix.name] + ix.offset)
                else:
                    index.append(
                        slice(ix.offset, self.extents[ix.name] + ix.offset)
                    )
            else:
                raise InterpreterError(
                    "affine output indices are not supported (tensor "
                    f"{ref_.tensor})"
                )
        return tuple(index)

    # -- expression evaluation -------------------------------------------------

    def _eval(
        self,
        expr: Expr,
        bound: Mapping[str, int],
        identity_for: Callable[[str], float],
    ) -> Labeled:
        if isinstance(expr, Literal):
            return np.float64(expr.value), ()
        if isinstance(expr, Unary):
            arr, axes = self._eval(expr.child, bound, identity_for)
            return expr.op(np.asarray(arr)), axes
        if isinstance(expr, Map):
            a, aa = self._eval(expr.lhs, bound, identity_for)
            b, bb = self._eval(expr.rhs, bound, identity_for)
            union = tuple(aa) + tuple(x for x in bb if x not in aa)
            a_aligned = _to_axes(np.asarray(a), aa, union) if union else a
            b_aligned = _to_axes(np.asarray(b), bb, union) if union else b
            return expr.op(a_aligned, b_aligned), union
        if isinstance(expr, Leaf):
            return self._eval_leaf(expr.ref, bound, identity_for)
        raise InterpreterError(f"unknown expression node {type(expr).__name__}")

    def _eval_leaf(
        self,
        ref_: TensorRef,
        bound: Mapping[str, int],
        identity_for: Callable[[str], float],
    ) -> Labeled:
        try:
            out = self.tensors[ref_.tensor]
        except KeyError:
            raise InterpreterError(
                f"tensor {ref_.tensor!r} read before definition"
            ) from None
        labels: List[str] = []
        axis = 0
        for ix in ref_.indices:
            if isinstance(ix, Fixed):
                out = np.take(out, ix.evaluate({}, self.shapes), axis=axis)
            elif isinstance(ix, (Var, Shifted)):
                name = ix.name
                if name in bound:
                    out = np.take(out, ix.evaluate(bound, self.shapes), axis=axis)
                else:
                    if ix.shifted_by() != 0:
                        coords = np.arange(self.extents[name]) + ix.shifted_by()
                        out = np.take(out, coords, axis=axis)
                    if name in labels:
                        raise InterpreterError(
                            f"repeated rank variable {name!r} in {ref_}"
                        )
                    labels.append(name)
                    axis += 1
            elif isinstance(ix, Affine):
                free = [v for v in ix.vars() if v not in bound]
                if not free:
                    out = np.take(out, ix.evaluate(bound, self.shapes), axis=axis)
                else:
                    idx = self._affine_index(ix, bound, free)
                    out = np.take(out, idx, axis=axis)
                    labels.extend(free)
                    axis += len(free)
            else:
                raise InterpreterError(f"unsupported index {ix!r} in {ref_}")
        out, labels = self._apply_filters(
            out, tuple(labels), ref_, bound, identity_for
        )
        return out, tuple(labels)

    def _affine_index(
        self, ix: Affine, bound: Mapping[str, int], free: Sequence[str]
    ) -> np.ndarray:
        """Index array for an affine expression over its free variables."""
        from ..einsum.index import resolve_symint

        base = resolve_symint(ix.offset, self.shapes)
        grids = []
        for pos, (name, coeff) in enumerate(ix.terms):
            c = resolve_symint(coeff, self.shapes)
            if name in bound:
                base += bound[name] * c
            else:
                shape = [1] * len(free)
                shape[free.index(name)] = self.extents[name]
                grids.append((np.arange(self.extents[name]) * c).reshape(shape))
        idx = np.asarray(base)
        for grid in grids:
            idx = idx + grid
        return idx

    def _apply_filters(
        self,
        out: np.ndarray,
        labels: Axes,
        ref_: TensorRef,
        bound: Mapping[str, int],
        identity_for: Callable[[str], float],
    ) -> Labeled:
        for flt in ref_.filters:
            if flt.var not in labels:
                raise InterpreterError(
                    f"filter variable {flt.var!r} does not index {ref_.tensor!r}"
                )
            var_axis = labels.index(flt.var)
            var_coords = np.arange(out.shape[var_axis])
            bound_free = [v for v in flt.bound.vars() if v not in bound]
            fill = identity_for(flt.var)
            cmp = Filter._OPS[flt.op]
            if not bound_free:
                limit = flt.bound.evaluate(bound, self.shapes)
                mask = cmp(var_coords, limit)
                shape = [1] * out.ndim
                shape[var_axis] = len(var_coords)
                out = np.where(mask.reshape(shape), out, fill)
            elif len(bound_free) == 1 and bound_free[0] in labels:
                # The bound variable already indexes this tensor (e.g. the
                # causal mask QK[m, p : m <= p]): mask across both axes,
                # evaluating the bound expression per coordinate so affine
                # bounds like p - W work.
                free_var = bound_free[0]
                free_axis = labels.index(free_var)
                limits = self._bound_values(
                    flt, bound, free_var, out.shape[free_axis]
                )
                mask = cmp(var_coords[:, None], limits[None, :])
                shape = [1] * out.ndim
                shape[var_axis] = len(var_coords)
                shape[free_axis] = len(limits)
                if var_axis > free_axis:
                    mask = mask.T
                out = np.where(mask.reshape(shape), out, fill)
            elif len(bound_free) == 1:
                free_var = bound_free[0]
                limits = self._bound_values(
                    flt, bound, free_var, self.extents[free_var]
                )
                mask = cmp(var_coords[:, None], limits[None, :])
                shape = [1] * (out.ndim + 1)
                shape[var_axis] = len(var_coords)
                shape[-1] = len(limits)
                out = np.where(mask.reshape(shape), out[..., None], fill)
                labels = labels + (free_var,)
            else:
                raise InterpreterError(
                    "filters with multiple free bound variables are unsupported"
                )
        return out, labels

    def _bound_values(
        self,
        flt: Filter,
        bound: Mapping[str, int],
        free_var: str,
        extent: int,
    ) -> np.ndarray:
        """The filter bound evaluated at every coordinate of ``free_var``."""
        env = dict(bound)
        values = np.empty(extent, dtype=np.int64)
        for coord in range(extent):
            env[free_var] = coord
            values[coord] = flt.bound.evaluate(env, self.shapes)
        return values


class _EinsumPlan:
    """Loop-invariant evaluation schedule for one Einsum.

    Everything here depends on the Einsum's structure and on *which*
    variables are bound — never on their values — so the iterative
    interpreter builds one plan per body Einsum instead of recomputing
    reduce identities, output axes, and reduce actions for every chunk.
    """

    __slots__ = ("identity_for", "out_axes", "_einsum", "_reduce_ops")

    def __init__(
        self, interp: Interpreter, einsum: Einsum, bound: Container[str]
    ) -> None:
        self._einsum = einsum
        self.identity_for = interp._identity_lookup(einsum)
        self.out_axes = interp._free_axes(einsum.output, bound)
        self._reduce_ops: Dict[str, object] = {}

    def reduce_op(self, var: str):
        """The reduce action for ``var``, resolved once."""
        op = self._reduce_ops.get(var)
        if op is None:
            op = self._reduce_ops[var] = self._einsum.reduce_action(var)
        return op


def evaluate(
    cascade: Cascade,
    shapes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Evaluate ``cascade`` and return all tensors (convenience wrapper)."""
    return Interpreter(cascade, shapes, inputs).run()


def evaluate_output(
    cascade: Cascade,
    shapes: Mapping[str, int],
    inputs: Mapping[str, np.ndarray],
    tensor: Optional[str] = None,
) -> np.ndarray:
    """Evaluate ``cascade`` and return one result tensor.

    When ``tensor`` is omitted, the cascade must declare exactly one output.
    """
    results = Interpreter(cascade, shapes, inputs).outputs()
    if tensor is not None:
        return results[tensor]
    if len(results) != 1:
        raise InterpreterError(
            f"cascade {cascade.name!r} has outputs {sorted(results)}; "
            "specify which one to return"
        )
    return next(iter(results.values()))
