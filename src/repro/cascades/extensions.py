"""Attention variants beyond the paper's evaluation (Sec. VIII future work).

The conclusion invites expressing other attention variants as cascades of
Einsums so the same mapping-agnostic analysis applies.  This module
provides three:

- :func:`causal_attention` — decoder-style masking (position ``m`` attends
  only to ``m <= p``), expressed with EDGE filtered rank expressions on
  the *reducing* reads so culled points contribute the reduction identity
  (−∞ for max, 0 for sum) — no explicit mask tensor needed.
- :func:`sliding_window_attention` — each query attends to a trailing
  window of ``W`` keys (``p - W < m <= p``), the Longformer/Mistral-style
  local pattern.
- :func:`sigmoid_attention` — replaces softmax with an element-wise
  sigmoid; with no cross-M normalization it is natively 1-pass.

All three keep the standard attention interface (inputs ``Q``, ``K``,
``V``; output ``AV``) so they drop into the analysis, the interpreter,
and the op-counting machinery unchanged.
"""

from __future__ import annotations

from ..einsum import (
    Affine,
    Cascade,
    DIV,
    Einsum,
    Filter,
    MAX_REDUCE,
    MUL,
    Map,
    SIGMOID,
    SUB_THEN_EXP,
    TensorRef,
    Unary,
    Var,
    ref,
)
from .attention import ATTENTION_INPUTS, FLAT_RANKS, _qk_einsum


def _causal(var: str = "m") -> Filter:
    """The causal predicate: key position ``m`` visible when ``m <= p``."""
    return Filter(var, "<=", Var("p"))


def causal_attention(div_opt: bool = True) -> Cascade:
    """Numerically stable causal (masked) attention.

    The filters sit on the reads that *reduce* over ``m`` — the masked
    numerator entries are simply never accumulated, which is exactly the
    EDGE merge semantics (culled points contribute the identity).
    """
    gm = Einsum(
        output=TensorRef.of("GM", "p"),
        expr=ref("QK", "m", "p", filters=[_causal()]),
        reductions={"m": MAX_REDUCE},
        name="GM",
    )
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Map(SUB_THEN_EXP, ref("QK", "m", "p"), ref("GM", "p")),
        name="SN",
    )
    sd = Einsum(
        output=TensorRef.of("SD", "p"),
        expr=ref("SN", "m", "p", filters=[_causal()]),
        name="SD",
    )
    einsums = [_qk_einsum(), gm, sn, sd]
    if div_opt:
        snv = Einsum(
            output=TensorRef.of("SNV", "f", "p"),
            expr=Map(
                MUL,
                ref("SN", "m", "p", filters=[_causal()]),
                ref("V", "f", "m"),
            ),
            name="SNV",
        )
        av = Einsum(
            output=TensorRef.of("AV", "f", "p"),
            expr=Map(DIV, ref("SNV", "f", "p"), ref("SD", "p")),
            name="AV",
        )
        einsums += [snv, av]
    else:
        a = Einsum(
            output=TensorRef.of("A", "m", "p"),
            expr=Map(DIV, ref("SN", "m", "p"), ref("SD", "p")),
            name="A",
        )
        av = Einsum(
            output=TensorRef.of("AV", "f", "p"),
            expr=Map(
                MUL,
                ref("A", "m", "p", filters=[_causal()]),
                ref("V", "f", "m"),
            ),
            name="AV",
        )
        einsums += [a, av]
    suffix = "" if div_opt else "-nodivopt"
    return Cascade.build(
        name=f"attention-causal{suffix}",
        einsums=einsums,
        inputs=ATTENTION_INPUTS,
        rank_shapes=FLAT_RANKS,
        outputs=["AV"],
    )


def sliding_window_attention(window_symbol: str = "W") -> Cascade:
    """Local attention: query ``p`` attends to keys ``p - W < m <= p``.

    ``W`` is a shape symbol resolved at evaluation time, so one cascade
    covers every window size.
    """

    def window(var: str = "m"):
        return [
            Filter(var, "<=", Var("p")),
            Filter(var, ">", Affine((("p", 1),), offset=f"-{window_symbol}")),
        ]

    gm = Einsum(
        output=TensorRef.of("GM", "p"),
        expr=ref("QK", "m", "p", filters=window()),
        reductions={"m": MAX_REDUCE},
        name="GM",
    )
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Map(SUB_THEN_EXP, ref("QK", "m", "p"), ref("GM", "p")),
        name="SN",
    )
    sd = Einsum(
        output=TensorRef.of("SD", "p"),
        expr=ref("SN", "m", "p", filters=window()),
        name="SD",
    )
    snv = Einsum(
        output=TensorRef.of("SNV", "f", "p"),
        expr=Map(
            MUL, ref("SN", "m", "p", filters=window()), ref("V", "f", "m")
        ),
        name="SNV",
    )
    av = Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=Map(DIV, ref("SNV", "f", "p"), ref("SD", "p")),
        name="AV",
    )
    return Cascade.build(
        name="attention-sliding-window",
        einsums=[_qk_einsum(), gm, sn, sd, snv, av],
        inputs=ATTENTION_INPUTS,
        rank_shapes=FLAT_RANKS,
        outputs=["AV"],
    )


def sigmoid_attention() -> Cascade:
    """Unnormalized sigmoid attention: ``AV = Σ_m σ(QK) × V``.

    With no cross-M normalization there is no reduction feeding a revisit:
    the cascade is natively 1-pass with O(1) live footprints — the
    analysis shows this without any running-max machinery.
    """
    sa = Einsum(
        output=TensorRef.of("SA", "m", "p"),
        expr=Unary(SIGMOID, ref("QK", "m", "p")),
        name="SA",
    )
    av = Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=Map(MUL, ref("SA", "m", "p"), ref("V", "f", "m")),
        name="AV",
    )
    return Cascade.build(
        name="attention-sigmoid",
        einsums=[_qk_einsum(), sa, av],
        inputs=ATTENTION_INPUTS,
        rank_shapes=FLAT_RANKS,
        outputs=["AV"],
    )
