"""The attention cascades taxonomized by the paper (Section IV).

All cascades share the same inputs and output:

- inputs ``Q[e, p]``, ``K[e, m]``, ``V[f, m]`` where ``M``/``P`` are the
  key/query sequence lengths and ``E``/``F`` the embedding dimensions;
- output ``AV[f, p]`` (the attention result, Einsum 24).

Following Section IV-C1, the ``1/sqrt(E)`` scaling of Einsum 22 is dropped:
the numerically stable variants bound the numerator already, and dropping
it everywhere keeps all cascades numerically comparable.

The batch ``B`` and head ``H`` ranks are omitted per the paper's convention
(Sec. IV-B): they add independent outer loops without changing any of the
analysis.

Builders:

- :func:`attention_naive` — unstable softmax; overflows for large scores.
- :func:`attention_3pass` — Cascade 4 (PyTorch/TensorFlow/FLAT).
- :func:`attention_2pass` — the partitioned local-max cascade
  (TileFlow / Choi et al., Sec. IV-E2).
- :func:`attention_1pass` — Cascade 5 (FlashAttention-2), with iterative
  running max/denominator/numerator-times-V.

The ``div_opt`` flag applies the division-reduction optimization of
Section IV-D (divide ``SNV`` by ``SD`` once per ``(f, p)`` instead of
dividing ``SN`` per ``(m, p)``); the 1-pass cascade uses it inherently.
"""

from __future__ import annotations

import math
from typing import List

from ..einsum import (
    ADD,
    Affine,
    Cascade,
    DIV,
    EXP,
    Einsum,
    Fixed,
    IterativeRank,
    Literal,
    MAX,
    MAX_REDUCE,
    MUL,
    Map,
    SUB_THEN_EXP,
    Shifted,
    TensorRef,
    Unary,
    ref,
)

FLAT_RANKS = {"e": "E", "f": "F", "m": "M", "p": "P"}
PARTITIONED_RANKS = {"e": "E", "f": "F", "m1": "M1", "m0": "M0", "p": "P"}

ATTENTION_INPUTS = ("Q", "K", "V")


def _qk_einsum() -> Einsum:
    """Einsum 22 (sans scaling): ``QK[m, p] = Q[e, p] × K[e, m]``."""
    return Einsum(
        output=TensorRef.of("QK", "m", "p"),
        expr=Map(MUL, ref("Q", "e", "p"), ref("K", "e", "m")),
        name="QK",
    )


def _av_from(numerator: str) -> Einsum:
    """Einsum 24: ``AV[f, p] = <numerator>[m, p] × V[f, m]``."""
    return Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=Map(MUL, ref(numerator, "m", "p"), ref("V", "f", "m")),
        name="AV",
    )


def attention_batched() -> Cascade:
    """Batched multi-head 3-pass attention (Sec. IV-B).

    Adds the batch ``b`` and head ``h`` ranks to every tensor, turning the
    "matrix multiplications" into many independent instances.  The paper
    omits these ranks from its cascades for brevity; this builder makes
    them explicit so the IR, interpreter, and analyses are exercised on
    4- and 5-rank tensors.
    """
    bh = ("b", "h")
    qk = Einsum(
        output=TensorRef.of("QK", *bh, "m", "p"),
        expr=Map(MUL, ref("Q", *bh, "e", "p"), ref("K", *bh, "e", "m")),
        name="QK",
    )
    gm = Einsum(
        output=TensorRef.of("GM", *bh, "p"),
        expr=ref("QK", *bh, "m", "p"),
        reductions={"m": MAX_REDUCE},
        name="GM",
    )
    sn = Einsum(
        output=TensorRef.of("SN", *bh, "m", "p"),
        expr=Map(
            SUB_THEN_EXP, ref("QK", *bh, "m", "p"), ref("GM", *bh, "p")
        ),
        name="SN",
    )
    sd = Einsum(
        output=TensorRef.of("SD", *bh, "p"),
        expr=ref("SN", *bh, "m", "p"),
        name="SD",
    )
    snv = Einsum(
        output=TensorRef.of("SNV", *bh, "f", "p"),
        expr=Map(MUL, ref("SN", *bh, "m", "p"), ref("V", *bh, "f", "m")),
        name="SNV",
    )
    av = Einsum(
        output=TensorRef.of("AV", *bh, "f", "p"),
        expr=Map(DIV, ref("SNV", *bh, "f", "p"), ref("SD", *bh, "p")),
        name="AV",
    )
    return Cascade.build(
        name="attention-batched",
        einsums=[qk, gm, sn, sd, snv, av],
        inputs=ATTENTION_INPUTS,
        rank_shapes={"b": "B", "h": "H", **FLAT_RANKS},
        outputs=["AV"],
    )


def attention_naive() -> Cascade:
    """Attention with the numerically *unstable* softmax (Einsums 26-28)."""
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Unary(EXP, ref("QK", "m", "p")),
        name="SN",
    )
    sd = Einsum(output=TensorRef.of("SD", "p"), expr=ref("SN", "m", "p"), name="SD")
    a = Einsum(
        output=TensorRef.of("A", "m", "p"),
        expr=Map(DIV, ref("SN", "m", "p"), ref("SD", "p")),
        name="A",
    )
    return Cascade.build(
        name="attention-naive",
        einsums=[_qk_einsum(), sn, sd, a, _av_from("A")],
        inputs=ATTENTION_INPUTS,
        rank_shapes=FLAT_RANKS,
        outputs=["AV"],
    )


def attention_3pass(div_opt: bool = False) -> Cascade:
    """Cascade 4: the 3-pass numerically stable attention cascade.

    With ``div_opt=True`` the division is deferred past the ``×V``
    reduction (Einsums 31-32), which merges passes 2 and 3 and turns this
    into a 2-pass cascade performing ``F × P`` instead of ``M × P``
    divisions.
    """
    gm = Einsum(
        output=TensorRef.of("GM", "p"),
        expr=ref("QK", "m", "p"),
        reductions={"m": MAX_REDUCE},
        name="GM",
    )
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Map(SUB_THEN_EXP, ref("QK", "m", "p"), ref("GM", "p")),
        name="SN",
    )
    sd = Einsum(output=TensorRef.of("SD", "p"), expr=ref("SN", "m", "p"), name="SD")
    einsums: List[Einsum] = [_qk_einsum(), gm, sn, sd]
    if div_opt:
        snv = Einsum(
            output=TensorRef.of("SNV", "f", "p"),
            expr=Map(MUL, ref("SN", "m", "p"), ref("V", "f", "m")),
            name="SNV",
        )
        av = Einsum(
            output=TensorRef.of("AV", "f", "p"),
            expr=Map(DIV, ref("SNV", "f", "p"), ref("SD", "p")),
            name="AV",
        )
        einsums += [snv, av]
    else:
        a = Einsum(
            output=TensorRef.of("A", "m", "p"),
            expr=Map(DIV, ref("SN", "m", "p"), ref("SD", "p")),
            name="A",
        )
        einsums += [a, _av_from("A")]
    suffix = "-divopt" if div_opt else ""
    return Cascade.build(
        name=f"attention-3pass{suffix}",
        einsums=einsums,
        inputs=ATTENTION_INPUTS,
        rank_shapes=FLAT_RANKS,
        outputs=["AV"],
    )


def _partition_views() -> List[Einsum]:
    """Einsums 39-40: partition K and V into M1 chunks of M0 elements."""
    split = Affine((("m1", "M0"), ("m0", 1)))
    bk = Einsum(
        output=TensorRef.of("BK", "e", "m1", "m0"),
        expr=ref("K", "e", split),
        name="BK",
        is_initialization=True,
        is_view=True,
    )
    bv = Einsum(
        output=TensorRef.of("BV", "f", "m1", "m0"),
        expr=ref("V", "f", split),
        name="BV",
        is_initialization=True,
        is_view=True,
    )
    return [bk, bv]


def attention_2pass(div_opt: bool = False) -> Cascade:
    """The 2-pass partitioned local-max attention cascade (Sec. IV-E2).

    Pass 1 computes per-partition local maxima, numerators and denominators
    while building the global maximum from the local maxima.  Between the
    passes, the softmax denominator is assembled purely from
    partition-granular (small) tensors.  Pass 2 corrects the stored local
    numerators with ``PM[m1, p] = e^{LM - GM}`` and produces the output.

    Note the pass-1 numerator ``SLN`` must stay live across the pass
    boundary — its algorithmic minimum live footprint is a full ``M`` fiber,
    which is why 2-pass accelerators (e.g. TileFlow) still need on-chip
    storage proportional to sequence length.
    """
    bqk = Einsum(
        output=TensorRef.of("BQK", "m1", "m0", "p"),
        expr=Map(MUL, ref("Q", "e", "p"), ref("BK", "e", "m1", "m0")),
        name="BQK",
    )
    lm = Einsum(
        output=TensorRef.of("LM", "m1", "p"),
        expr=ref("BQK", "m1", "m0", "p"),
        reductions={"m0": MAX_REDUCE},
        name="LM",
    )
    gm = Einsum(
        output=TensorRef.of("GM", "p"),
        expr=ref("LM", "m1", "p"),
        reductions={"m1": MAX_REDUCE},
        name="GM",
    )
    sln = Einsum(
        output=TensorRef.of("SLN", "m1", "m0", "p"),
        expr=Map(SUB_THEN_EXP, ref("BQK", "m1", "m0", "p"), ref("LM", "m1", "p")),
        name="SLN",
    )
    sld = Einsum(
        output=TensorRef.of("SLD", "m1", "p"),
        expr=ref("SLN", "m1", "m0", "p"),
        name="SLD",
    )
    pm = Einsum(
        output=TensorRef.of("PM", "m1", "p"),
        expr=Map(SUB_THEN_EXP, ref("LM", "m1", "p"), ref("GM", "p")),
        name="PM",
    )
    sd = Einsum(
        output=TensorRef.of("SD", "p"),
        expr=Map(MUL, ref("SLD", "m1", "p"), ref("PM", "m1", "p")),
        name="SD",
    )
    einsums = _partition_views() + [bqk, lm, gm, sln, sld, pm, sd]
    if div_opt:
        snv = Einsum(
            output=TensorRef.of("SNV", "f", "p"),
            expr=Map(
                MUL,
                Map(MUL, ref("SLN", "m1", "m0", "p"), ref("PM", "m1", "p")),
                ref("BV", "f", "m1", "m0"),
            ),
            name="SNV",
        )
        av = Einsum(
            output=TensorRef.of("AV", "f", "p"),
            expr=Map(DIV, ref("SNV", "f", "p"), ref("SD", "p")),
            name="AV",
        )
        einsums += [snv, av]
    else:
        sn = Einsum(
            output=TensorRef.of("SN", "m1", "m0", "p"),
            expr=Map(MUL, ref("SLN", "m1", "m0", "p"), ref("PM", "m1", "p")),
            name="SN",
        )
        a = Einsum(
            output=TensorRef.of("A", "m1", "m0", "p"),
            expr=Map(DIV, ref("SN", "m1", "m0", "p"), ref("SD", "p")),
            name="A",
        )
        av = Einsum(
            output=TensorRef.of("AV", "f", "p"),
            expr=Map(MUL, ref("A", "m1", "m0", "p"), ref("BV", "f", "m1", "m0")),
            name="AV",
        )
        einsums += [sn, a, av]
    suffix = "-divopt" if div_opt else ""
    return Cascade.build(
        name=f"attention-2pass{suffix}",
        einsums=einsums,
        inputs=ATTENTION_INPUTS,
        rank_shapes=PARTITIONED_RANKS,
        outputs=["AV"],
    )


def attention_1pass_fa1() -> Cascade:
    """The FlashAttention-1-style 1-pass cascade.

    Like Cascade 5 but maintains the *normalized* running output
    ``RO[f, m1, p] = RNV / RD`` at every iteration instead of deferring
    the division to the end.  Functionally identical; the cost is
    ``F × M1 × P`` divisions plus ``F × M1 × P`` re-multiplications per
    kernel instead of ``F × P`` — exactly the work FlashAttention-2's
    reassociation (Sec. IV-D) removes.  Included so the Table I entries
    FlashAttention vs FlashAttention-2 are distinguishable by op count
    while sharing the 1-pass classification.

    Recurrence: ``RO_{m1+1} = (RO_{m1} · RD_{m1} · PRM + SLNV) / RD_{m1+1}``.
    """
    rm_init = Einsum(
        output=TensorRef.of("RM", Fixed(0), "p"),
        expr=Literal(-math.inf),
        name="RM0",
        is_initialization=True,
    )
    rd_init = Einsum(
        output=TensorRef.of("RD", Fixed(0), "p"),
        expr=Literal(0.0),
        name="RD0",
        is_initialization=True,
    )
    ro_init = Einsum(
        output=TensorRef.of("RO", "f", Fixed(0), "p"),
        expr=Literal(0.0),
        name="RO0",
        is_initialization=True,
    )
    bqk = Einsum(
        output=TensorRef.of("BQK", "m1", "m0", "p"),
        expr=Map(MUL, ref("Q", "e", "p"), ref("BK", "e", "m1", "m0")),
        name="BQK",
    )
    lm = Einsum(
        output=TensorRef.of("LM", "m1", "p"),
        expr=ref("BQK", "m1", "m0", "p"),
        reductions={"m0": MAX_REDUCE},
        name="LM",
    )
    rm = Einsum(
        output=TensorRef.of("RM", Shifted("m1", 1), "p"),
        expr=Map(MAX, ref("RM", "m1", "p"), ref("LM", "m1", "p")),
        name="RM",
    )
    sln = Einsum(
        output=TensorRef.of("SLN", "m1", "m0", "p"),
        expr=Map(
            SUB_THEN_EXP,
            ref("BQK", "m1", "m0", "p"),
            ref("RM", Shifted("m1", 1), "p"),
        ),
        name="SLN",
    )
    sld = Einsum(
        output=TensorRef.of("SLD", "m1", "p"),
        expr=ref("SLN", "m1", "m0", "p"),
        name="SLD",
    )
    slnv = Einsum(
        output=TensorRef.of("SLNV", "f", "m1", "p"),
        expr=Map(MUL, ref("SLN", "m1", "m0", "p"), ref("BV", "f", "m1", "m0")),
        name="SLNV",
    )
    prm = Einsum(
        output=TensorRef.of("PRM", "m1", "p"),
        expr=Map(
            SUB_THEN_EXP, ref("RM", "m1", "p"), ref("RM", Shifted("m1", 1), "p")
        ),
        name="PRM",
    )
    spd = Einsum(
        output=TensorRef.of("SPD", "m1", "p"),
        expr=Map(MUL, ref("RD", "m1", "p"), ref("PRM", "m1", "p")),
        name="SPD",
    )
    rd = Einsum(
        output=TensorRef.of("RD", Shifted("m1", 1), "p"),
        expr=Map(ADD, ref("SLD", "m1", "p"), ref("SPD", "m1", "p")),
        name="RD",
    )
    # Un-normalize the previous output, correct its max, add this chunk's
    # contribution, and re-normalize with the new running denominator.
    spnv = Einsum(
        output=TensorRef.of("SPNV", "f", "m1", "p"),
        expr=Map(MUL, ref("RO", "f", "m1", "p"), ref("SPD", "m1", "p")),
        name="SPNV",
    )
    ro = Einsum(
        output=TensorRef.of("RO", "f", Shifted("m1", 1), "p"),
        expr=Map(
            DIV,
            Map(ADD, ref("SLNV", "f", "m1", "p"), ref("SPNV", "f", "m1", "p")),
            ref("RD", Shifted("m1", 1), "p"),
        ),
        name="RO",
    )
    av = Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=ref("RO", "f", Fixed("M1"), "p"),
        name="AV",
    )
    return Cascade.build(
        name="attention-1pass-fa1",
        einsums=_partition_views()
        + [rm_init, rd_init, ro_init]
        + [bqk, lm, rm, sln, sld, slnv, prm, spd, rd, spnv, ro, av],
        inputs=ATTENTION_INPUTS,
        rank_shapes=PARTITIONED_RANKS,
        iterative=[IterativeRank("m1", "M1")],
        outputs=["AV"],
    )


def attention_1pass() -> Cascade:
    """Cascade 5: the 1-pass attention cascade used by FuseMax.

    ``M1`` serves both as a standard rank (partition index of ``BQK``) and
    as an iterative rank carrying the running maximum ``RM``, running
    denominator ``RD``, and running numerator-times-V ``RNV``.  The division
    reduction of Section IV-D is inherent: the single division happens at
    the very end (Einsum 55), once per ``(f, p)``.
    """
    rm_init = Einsum(
        output=TensorRef.of("RM", Fixed(0), "p"),
        expr=Literal(-math.inf),
        name="RM0",
        is_initialization=True,
    )
    rd_init = Einsum(
        output=TensorRef.of("RD", Fixed(0), "p"),
        expr=Literal(0.0),
        name="RD0",
        is_initialization=True,
    )
    rnv_init = Einsum(
        output=TensorRef.of("RNV", "f", Fixed(0), "p"),
        expr=Literal(0.0),
        name="RNV0",
        is_initialization=True,
    )
    bqk = Einsum(
        output=TensorRef.of("BQK", "m1", "m0", "p"),
        expr=Map(MUL, ref("Q", "e", "p"), ref("BK", "e", "m1", "m0")),
        name="BQK",
    )
    lm = Einsum(
        output=TensorRef.of("LM", "m1", "p"),
        expr=ref("BQK", "m1", "m0", "p"),
        reductions={"m0": MAX_REDUCE},
        name="LM",
    )
    rm = Einsum(
        output=TensorRef.of("RM", Shifted("m1", 1), "p"),
        expr=Map(MAX, ref("RM", "m1", "p"), ref("LM", "m1", "p")),
        name="RM",
    )
    sln = Einsum(
        output=TensorRef.of("SLN", "m1", "m0", "p"),
        expr=Map(
            SUB_THEN_EXP,
            ref("BQK", "m1", "m0", "p"),
            ref("RM", Shifted("m1", 1), "p"),
        ),
        name="SLN",
    )
    sld = Einsum(
        output=TensorRef.of("SLD", "m1", "p"),
        expr=ref("SLN", "m1", "m0", "p"),
        name="SLD",
    )
    slnv = Einsum(
        output=TensorRef.of("SLNV", "f", "m1", "p"),
        expr=Map(MUL, ref("SLN", "m1", "m0", "p"), ref("BV", "f", "m1", "m0")),
        name="SLNV",
    )
    prm = Einsum(
        output=TensorRef.of("PRM", "m1", "p"),
        expr=Map(
            SUB_THEN_EXP, ref("RM", "m1", "p"), ref("RM", Shifted("m1", 1), "p")
        ),
        name="PRM",
    )
    spd = Einsum(
        output=TensorRef.of("SPD", "m1", "p"),
        expr=Map(MUL, ref("RD", "m1", "p"), ref("PRM", "m1", "p")),
        name="SPD",
    )
    rd = Einsum(
        output=TensorRef.of("RD", Shifted("m1", 1), "p"),
        expr=Map(ADD, ref("SLD", "m1", "p"), ref("SPD", "m1", "p")),
        name="RD",
    )
    spnv = Einsum(
        output=TensorRef.of("SPNV", "f", "m1", "p"),
        expr=Map(MUL, ref("RNV", "f", "m1", "p"), ref("PRM", "m1", "p")),
        name="SPNV",
    )
    rnv = Einsum(
        output=TensorRef.of("RNV", "f", Shifted("m1", 1), "p"),
        expr=Map(ADD, ref("SLNV", "f", "m1", "p"), ref("SPNV", "f", "m1", "p")),
        name="RNV",
    )
    av = Einsum(
        output=TensorRef.of("AV", "f", "p"),
        expr=Map(DIV, ref("RNV", "f", Fixed("M1"), "p"), ref("RD", Fixed("M1"), "p")),
        name="AV",
    )
    return Cascade.build(
        name="attention-1pass",
        einsums=_partition_views()
        + [rm_init, rd_init, rnv_init]
        + [bqk, lm, rm, sln, sld, slnv, prm, spd, rd, spnv, rnv, av],
        inputs=ATTENTION_INPUTS,
        rank_shapes=PARTITIONED_RANKS,
        iterative=[IterativeRank("m1", "M1")],
        outputs=["AV"],
    )
