"""Cascade definitions from the FuseMax paper.

- :mod:`repro.cascades.pedagogical` — Cascades 1–3 (Sec. III) and prefix sums.
- :mod:`repro.cascades.softmax` — softmax as a cascade (Sec. IV-C).
- :mod:`repro.cascades.attention` — the 3-/2-/1-pass attention cascades
  (Sec. IV-E), with and without the division-reduction optimization.
- :mod:`repro.cascades.transformer` — the linear layers surrounding
  attention in a transformer encoder (Sec. IV-A).
"""

from .attention import (
    attention_1pass,
    attention_1pass_fa1,
    attention_2pass,
    attention_3pass,
    attention_batched,
    attention_naive,
)
from .extensions import (
    causal_attention,
    sigmoid_attention,
    sliding_window_attention,
)
from .pedagogical import (
    cascade1_two_pass,
    cascade2_deferred,
    cascade3_iterative,
    iterative_prefix_sum,
)
from .softmax import naive_softmax, stable_softmax
from .transformer import encoder_layer_einsums

__all__ = [
    "attention_1pass",
    "attention_1pass_fa1",
    "attention_2pass",
    "attention_3pass",
    "attention_batched",
    "attention_naive",
    "cascade1_two_pass",
    "cascade2_deferred",
    "cascade3_iterative",
    "causal_attention",
    "encoder_layer_einsums",
    "sigmoid_attention",
    "sliding_window_attention",
    "iterative_prefix_sum",
    "naive_softmax",
    "stable_softmax",
]
