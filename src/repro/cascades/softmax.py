"""Softmax as a cascade of Einsums (Section IV-C).

Both forms operate on a pre-computed attention score tensor ``QK[m, p]``:

- :func:`naive_softmax` — Einsums 26-28: exponentiate, reduce, divide.
  Numerically unstable (``e^{QK}`` overflows).
- :func:`stable_softmax` — Einsums 29-30 + 27-28: subtract the global
  maximum ``GM_p`` inside the exponent, bounding the numerator to (0, 1].
"""

from __future__ import annotations

from ..einsum import (
    Cascade,
    DIV,
    EXP,
    Einsum,
    MAX_REDUCE,
    Map,
    SUB_THEN_EXP,
    TensorRef,
    Unary,
    ref,
)

SOFTMAX_RANKS = {"m": "M", "p": "P"}


def naive_softmax() -> Cascade:
    """The straightforward (unstable) softmax cascade, Einsums 26-28."""
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Unary(EXP, ref("QK", "m", "p")),
        name="SN",
    )
    sd = Einsum(
        output=TensorRef.of("SD", "p"),
        expr=ref("SN", "m", "p"),
        name="SD",
    )
    a = Einsum(
        output=TensorRef.of("A", "m", "p"),
        expr=Map(DIV, ref("SN", "m", "p"), ref("SD", "p")),
        name="A",
    )
    return Cascade.build(
        name="softmax-naive",
        einsums=[sn, sd, a],
        inputs=["QK"],
        rank_shapes=SOFTMAX_RANKS,
        outputs=["A"],
    )


def stable_softmax() -> Cascade:
    """The numerically stable softmax cascade, Einsums 29-30 and 27-28."""
    gm = Einsum(
        output=TensorRef.of("GM", "p"),
        expr=ref("QK", "m", "p"),
        reductions={"m": MAX_REDUCE},
        name="GM",
    )
    sn = Einsum(
        output=TensorRef.of("SN", "m", "p"),
        expr=Map(SUB_THEN_EXP, ref("QK", "m", "p"), ref("GM", "p")),
        name="SN",
    )
    sd = Einsum(
        output=TensorRef.of("SD", "p"),
        expr=ref("SN", "m", "p"),
        name="SD",
    )
    a = Einsum(
        output=TensorRef.of("A", "m", "p"),
        expr=Map(DIV, ref("SN", "m", "p"), ref("SD", "p")),
        name="A",
    )
    return Cascade.build(
        name="softmax-stable",
        einsums=[gm, sn, sd, a],
        inputs=["QK"],
        rank_shapes=SOFTMAX_RANKS,
        outputs=["A"],
    )
