"""The linear layers surrounding attention in a transformer encoder.

Section IV-A (Fig. 1a): the encoder projects the input into Q/K/V,
runs self-attention per head, deprojects, and applies a two-layer FFN.
These layers are ordinary weight-times-activation GEMMs; we express them as
Einsums so the same op-counting and modeling machinery applies.

Rank naming convention (per head count ``H``, head dim ``E``, model dim
``D = H × E``, FFN dim ``G``, sequence length ``N``):

- projections:   ``Q[h, e, n] = WQ[h, e, d] × X[d, n]`` (same for K, V)
- deprojection:  ``O[d, n] = WO[d, h, f] × AV[h, f, n]``
- FFN layers:    ``F1[g, n] = W1[g, d] × O[d, n]``,
                 ``F2[d, n] = W2[d, g] × F1[g, n]``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..einsum import Cascade, Einsum, MUL, Map, TensorRef, ref


@dataclass(frozen=True)
class LinearLayer:
    """One weight-times-activation GEMM in the encoder.

    ``macs_per_token`` is the multiply-accumulate count per sequence
    position, so total MACs for a sequence of length ``N`` (and batch ``B``)
    are ``B × N × macs_per_token``.
    """

    name: str
    macs_per_token: int
    weight_elems: int


def encoder_layer_einsums() -> Cascade:
    """The encoder's linear layers as a cascade of GEMM Einsums.

    Attention itself (QK/softmax/AV) is deliberately excluded; it is
    supplied by one of the :mod:`repro.cascades.attention` cascades.
    """

    def gemm(out: str, out_ranks, a: str, a_ranks, b: str, b_ranks) -> Einsum:
        return Einsum(
            output=TensorRef.of(out, *out_ranks),
            expr=Map(MUL, ref(a, *a_ranks), ref(b, *b_ranks)),
            name=out,
        )

    einsums = [
        gemm("Q", ("h", "e", "n"), "WQ", ("h", "e", "d"), "X", ("d", "n")),
        gemm("K", ("h", "e", "n"), "WK", ("h", "e", "d"), "X", ("d", "n")),
        gemm("V", ("h", "e", "n"), "WV", ("h", "e", "d"), "X", ("d", "n")),
        gemm("O", ("d", "n"), "WO", ("d", "h", "f"), "AV", ("h", "f", "n")),
        gemm("F1", ("g", "n"), "W1", ("g", "d"), "O", ("d", "n")),
        gemm("F2", ("d2", "n"), "W2", ("d2", "g"), "F1", ("g", "n")),
    ]
    ranks = {
        "h": "H",
        "e": "E",
        "f": "F",
        "d": "D",
        "d2": "D",
        "g": "G",
        "n": "N",
    }
    return Cascade.build(
        name="encoder-linear-layers",
        einsums=einsums,
        inputs=["X", "WQ", "WK", "WV", "WO", "W1", "W2", "AV"],
        rank_shapes=ranks,
        outputs=["F2"],
    )


def linear_layers(d_model: int, n_heads: int, d_head: int, d_ff: int) -> Tuple[
    LinearLayer, ...
]:
    """Per-token MAC and weight inventories for one encoder layer.

    Used by :mod:`repro.workloads.compute` for the Fig. 1b breakdown and by
    the end-to-end inference model (Figs. 10-11).
    """
    d_attn = n_heads * d_head
    return (
        LinearLayer("proj_q", d_model * d_attn, d_model * d_attn),
        LinearLayer("proj_k", d_model * d_attn, d_model * d_attn),
        LinearLayer("proj_v", d_model * d_attn, d_model * d_attn),
        LinearLayer("deproj", d_attn * d_model, d_attn * d_model),
        LinearLayer("ffn_1", d_model * d_ff, d_model * d_ff),
        LinearLayer("ffn_2", d_ff * d_model, d_ff * d_model),
    )
