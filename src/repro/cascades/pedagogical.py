"""The pedagogical cascades of Section III.

These are the small examples the paper uses to introduce pass counting and
pass reduction:

- **Cascade 1** — the 2-pass example: ``Y = A_k × B_k``, ``Z = Y × A_k``.
- **Cascade 2** — reassociation by deferring the multiply (1 pass).
- **Cascade 3** — reassociation by iteratively constructing Y and Z (1 pass,
  extra compute).
- **Prefix sums** — both the filtered-rank (non-iterative) and iterative
  forms from Sections II-C3 and II-C4.
"""

from __future__ import annotations

from ..einsum import (
    ADD,
    Cascade,
    DIV,
    Einsum,
    Filter,
    Fixed,
    IterativeRank,
    Literal,
    MUL,
    Map,
    Shifted,
    TensorRef,
    Var,
    ref,
)


def cascade1_two_pass() -> Cascade:
    """Cascade 1: the example 2-pass cascade (Einsums 5-6)."""
    y = Einsum(
        output=TensorRef.of("Y"),
        expr=Map(MUL, ref("A", "k"), ref("B", "k")),
        name="Y",
    )
    z = Einsum(
        output=TensorRef.of("Z"),
        expr=Map(MUL, ref("Y"), ref("A", "k")),
        name="Z",
    )
    return Cascade.build(
        name="cascade1-2pass",
        einsums=[y, z],
        inputs=["A", "B"],
        rank_shapes={"k": "K"},
    )


def cascade2_deferred() -> Cascade:
    """Cascade 2: defer the multiply by Y to get 1 pass (Einsums 7-9)."""
    y = Einsum(
        output=TensorRef.of("Y"),
        expr=Map(MUL, ref("A", "k"), ref("B", "k")),
        name="Y",
    )
    x = Einsum(output=TensorRef.of("X"), expr=ref("A", "k"), name="X")
    z = Einsum(
        output=TensorRef.of("Z"),
        expr=Map(MUL, ref("Y"), ref("X")),
        name="Z",
    )
    return Cascade.build(
        name="cascade2-deferred",
        einsums=[y, x, z],
        inputs=["A", "B"],
        rank_shapes={"k": "K"},
    )


def cascade3_iterative() -> Cascade:
    """Cascade 3: iteratively construct Y and Z (Einsums 10-15).

    ``RY_{i+1} = RY_i + A_i × B_i`` and
    ``RZ_{i+1} = RZ_i × RY_{i+1} / RY_i + RY_{i+1} × A_i``.

    The division uses EDGE's ``÷(←)`` merge, so the zero-initialised first
    step contributes zero rather than a division by zero.
    """
    ry_init = Einsum(
        output=TensorRef.of("RY", Fixed(0)),
        expr=Literal(0.0),
        name="RY0",
        is_initialization=True,
    )
    rz_init = Einsum(
        output=TensorRef.of("RZ", Fixed(0)),
        expr=Literal(0.0),
        name="RZ0",
        is_initialization=True,
    )
    ry = Einsum(
        output=TensorRef.of("RY", Shifted("i", 1)),
        expr=Map(ADD, ref("RY", "i"), Map(MUL, ref("A", "i"), ref("B", "i"))),
        name="RY",
    )
    rz = Einsum(
        output=TensorRef.of("RZ", Shifted("i", 1)),
        expr=Map(
            ADD,
            Map(
                DIV,
                Map(MUL, ref("RZ", "i"), ref("RY", Shifted("i", 1))),
                ref("RY", "i"),
            ),
            Map(MUL, ref("RY", Shifted("i", 1)), ref("A", "i")),
        ),
        name="RZ",
    )
    z = Einsum(
        output=TensorRef.of("Z"),
        expr=ref("RZ", Fixed("K")),
        name="Z",
    )
    return Cascade.build(
        name="cascade3-iterative",
        einsums=[ry_init, rz_init, ry, rz, z],
        inputs=["A", "B"],
        rank_shapes={"i": "K"},
        iterative=[IterativeRank("i", "K")],
    )


def filtered_prefix_sum() -> Cascade:
    """The filtered-rank prefix sum ``S_{i+1} = A_{k: k<=i}`` (Sec. II-C3).

    This form recomputes the whole sum for each ``i`` — quadratic work.
    """
    s = Einsum(
        output=TensorRef.of("S", Shifted("i", 1)),
        expr=ref("A", "k", filters=[Filter("k", "<=", Var("i"))]),
        name="S",
    )
    return Cascade.build(
        name="prefix-sum-filtered",
        einsums=[s],
        inputs=["A"],
        rank_shapes={"i": "K", "k": "K"},
    )


def iterative_prefix_sum() -> Cascade:
    """The iterative prefix sum ``S_{i+1} = S_i + A_i`` (Einsums 3-4)."""
    s_init = Einsum(
        output=TensorRef.of("S", Fixed(0)),
        expr=Literal(0.0),
        name="S0",
        is_initialization=True,
    )
    s = Einsum(
        output=TensorRef.of("S", Shifted("i", 1)),
        expr=Map(ADD, ref("S", "i"), ref("A", "i")),
        name="S",
    )
    return Cascade.build(
        name="prefix-sum-iterative",
        einsums=[s_init, s],
        inputs=["A"],
        rank_shapes={"i": "K"},
        iterative=[IterativeRank("i", "K")],
    )
