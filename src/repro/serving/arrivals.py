"""Arrival processes for the open-loop serving simulator.

An :class:`Arrival` is one request hitting the accelerator: a timestamp
(in cycles) plus the request's shape — how many prefill M1 chunks its
prompt spans and how many decode steps it runs after the first token.
Two generators produce them:

- :func:`poisson_arrivals` — a seeded open-loop Poisson process at a
  given offered load (requests per kilocycle).  The generator draws
  exponential inter-arrival gaps from ``random.Random(seed)``, so the
  same ``(rate, duration, seed)`` always replays the same trace and the
  CLI's ``repro serve --rate R --seed S`` is bit-reproducible.
- :func:`parse_trace` — a replayable trace file (one ``at chunks
  decode_tokens`` line per request), the exact-workload counterpart for
  regression traces and hand-built mini-schedules.

Arrival times must be non-decreasing: the continuous-batching admission
window is FIFO in arrival order, so an out-of-order trace is a spec
error, not a reorderable input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = [
    "Arrival",
    "check_sorted",
    "format_trace",
    "parse_trace",
    "poisson_arrivals",
]

#: Cycles per "kilocycle", the unit offered load is quoted in.
KILO = 1000


@dataclass(frozen=True)
class Arrival:
    """One request: arrival time (cycles) and its prefill/decode shape."""

    at: int
    chunks: int
    decode_tokens: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.at}")
        if self.chunks < 1:
            raise ValueError(f"arrival chunks must be >= 1, got {self.chunks}")
        if self.decode_tokens < 0:
            raise ValueError(f"arrival decode_tokens must be >= 0, got {self.decode_tokens}")


def check_sorted(arrivals: Iterable[Arrival]) -> Tuple[Arrival, ...]:
    """Validate that ``arrivals`` come in non-decreasing time order.

    Admission is FIFO in arrival order, so a decreasing timestamp would
    silently reorder the queue; reject it where the trace is built.
    """
    ordered = tuple(arrivals)
    for prev, this in zip(ordered, ordered[1:]):
        if this.at < prev.at:
            raise ValueError(f"arrival times must be non-decreasing, got {prev.at} then {this.at}")
    return ordered


def poisson_arrivals(
    rate: float,
    duration: int,
    *,
    seed: int = 0,
    chunks: int = 8,
    decode_tokens: int = 4,
) -> Tuple[Arrival, ...]:
    """A seeded Poisson arrival trace at ``rate`` requests/kilocycle.

    Exponential inter-arrival gaps accumulate from t=0 until ``duration``
    cycles; each arrival lands at the floor of its exact time.  The draw
    sequence is a pure function of ``seed``, so equal ``(rate, duration,
    seed)`` triples replay identical traces, and scaling ``rate`` with a
    fixed seed rescales the *same* gap sequence — the property the
    goodput-monotonicity tests lean on.
    """
    if not rate > 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    rng = random.Random(seed)
    per_cycle = rate / KILO
    arrivals: List[Arrival] = []
    t = 0.0
    while True:
        t += rng.expovariate(per_cycle)
        if t >= duration:
            return tuple(arrivals)
        arrivals.append(Arrival(int(t), chunks, decode_tokens))


def parse_trace(text: str) -> Tuple[Arrival, ...]:
    """Parse a replayable trace: one request per line.

    Each line is ``at chunks decode_tokens`` (whitespace- or
    comma-separated; ``decode_tokens`` defaults to 0 when omitted).
    Blank lines and ``#`` comments are skipped.  Times must be
    non-decreasing (see :func:`check_sorted`).
    """
    arrivals: List[Arrival] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        if len(parts) not in (2, 3):
            raise ValueError(
                f"trace line {lineno}: expected 'at chunks [decode_tokens]', got {raw!r}"
            )
        try:
            values = [int(part) for part in parts]
        except ValueError:
            raise ValueError(f"trace line {lineno}: non-integer field in {raw!r}") from None
        at, chunks = values[0], values[1]
        decode_tokens = values[2] if len(values) == 3 else 0
        arrivals.append(Arrival(at, chunks, decode_tokens))
    return check_sorted(arrivals)


def format_trace(arrivals: Iterable[Arrival]) -> str:
    """Render arrivals in the :func:`parse_trace` format (round-trips)."""
    lines = ["# at chunks decode_tokens"]
    lines.extend(f"{a.at} {a.chunks} {a.decode_tokens}" for a in arrivals)
    return "\n".join(lines) + "\n"
