"""Open-loop serving on the event core: arrivals joining a live schedule.

Closed scenarios declare every instance up front; a serving stack sees
requests *arrive*.  This module bridges the two without touching either
scheduling engine, by encoding the dynamics as ordinary task-graph
structure:

- **Arrivals** become a chain of zero-fan-in ``CLK[g]`` tasks on a
  dedicated ``clock`` resource, one per distinct arrival time, each
  lasting the gap to the previous one — so ``CLK[g]`` *finishes* exactly
  at arrival time ``t_g``, and a request gated on its clock task cannot
  start early.  One chained resource keeps the event core's per-event
  resource scan O(1) in the request count.
- **Continuous batching** is a FIFO admission window: request ``j``'s
  dependency-free tasks additionally wait on the completion sinks of
  request ``j - max_inflight``, so at most ``max_inflight`` requests are
  in flight and a finishing request frees its slot to the next arrival —
  admission, not reordering, exactly like a serving scheduler's queue.
- **Requests** are the existing per-instance graphs: one prefill graph
  (:func:`~repro.simulator.pipeline.build_tasks`) chained into
  ``decode_tokens`` decode steps
  (:func:`~repro.simulator.pipeline.build_decode_tasks`), each step
  gated on the previous step's accumulate.  Per-request
  :func:`~repro.simulator.engine.lower_dram` makes DRAM transfers
  arrive-gated too (the lowering is per-task-local, so lowering per
  request equals lowering the merged graph).

Everything else — array-slot contention, issue disciplines, DRAM
bandwidth arbitration, the event/cycle engine equivalence — applies to
the dynamic population unchanged, because the population *is* a static
graph once the clock chain encodes time.

An all-zero arrival batch with a wide-open window degenerates to the
closed :class:`~repro.workloads.scenario.Scenario` schedule exactly
(the clock tasks are zero-duration, hence done at t=0 and stripped by
the dependency frontier) — the equivalence ``tests/test_serving.py``
locks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import re

from ..cluster.build import instance_out_bytes
from ..cluster.spec import LINK_RESOURCE
from ..simulator.engine import (
    DRAM_RESOURCE,
    SimResult,
    Simulator,
    Task,
    lower_dram,
    transfer_cycles,
)
from ..simulator.pipeline import (
    PipelineConfig,
    apply_buffer_spills,
    build_decode_tasks,
    build_tasks,
    instance_spill_bytes,
)
from ..workloads.scenario import BINDINGS, QOS_MODES
from .arrivals import Arrival, check_sorted
from .metrics import RequestMetrics, ServingResult

__all__ = [
    "CLOCK_RESOURCE",
    "RequestPlan",
    "ServingSpec",
    "build_serving_tasks",
    "serving_sim",
    "simulate_serving",
]

#: Resource name of the arrival clock chain (never contended: the chain
#: is linear, so at most one clock task is ready at a time).
CLOCK_RESOURCE = "clock"


@dataclass(frozen=True)
class ServingSpec:
    """One open-loop serving workload over one array configuration.

    Like :class:`~repro.workloads.scenario.Scenario`, the spec is
    declarative and complete: equal specs describe the same schedule and
    any field difference changes the runtime cache key (task kind
    ``"serve"``).  ``rate`` records the offered load that generated
    ``arrivals`` (None for trace-driven workloads) — it is reporting
    metadata, but deliberately part of the identity.  ``deadline`` is
    the SLO (cycles from arrival to last token) that goodput is
    measured against; ``max_inflight`` is the continuous-batching
    window.  ``slots`` normalizes to 1 under ``tile-serial`` exactly as
    scenarios do.

    ``n_chips`` spreads requests over a cluster of identical arrays —
    request parallelism, the decode-side sharding policy of
    :mod:`repro.cluster` — assigning request ``j`` to chip ``j %
    n_chips`` (its resources become ``c{k}:``-prefixed, exactly like the
    sharded scenario lowering).  ``link_bw``/``link_latency`` price each
    request's prefill-output gather (KV publication to the other chips)
    on the shared ``link`` resource before its decode steps run, so
    concurrent requests contend for the interconnect under load.  One
    chip, or an unmodeled link at one chip, builds a byte-identical
    graph to the unclustered spec.

    ``buffer_bytes`` models the per-request on-chip buffer exactly as
    ``Scenario.buffer_bytes`` does: working-set overflow spills and
    refills (inflating each request's DRAM traffic) and the dram
    lowering bounds prefetch depth to the capacity.
    ``qos="decode-first"`` reclassifies every in-flight request's
    *decode* DRAM transfers as an urgent stream: they issue
    just-in-time (gated with their decode step instead of prefetching
    at admission) and take priority over prefill bulk transfers at the
    shared memory link — the knob that answers "what happens to decode
    TBT under a prefill burst".  Under ``"uniform"`` all transfers are
    one prefetched bulk stream arbitrated FIFO, which favors whoever
    arrived first; ``"decode-first"`` trades prefetch depth on the
    decode stream for arbitration priority, protecting token gaps of
    requests decoding *behind* a large queued prefill.  The defaults
    (None, ``"uniform"``) are byte-identical to the historical graphs.
    """

    name: str
    arrivals: Tuple[Arrival, ...]
    binding: str = "interleaved"
    embedding: int = 64
    array_dim: int = 256
    pe_1d: Optional[int] = None
    slots: int = 2
    max_inflight: int = 8
    deadline: Optional[int] = None
    dram_bw: Optional[float] = None
    n_chips: int = 1
    link_bw: Optional[float] = None
    link_latency: int = 0
    rate: Optional[float] = None
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"

    def __post_init__(self) -> None:
        check_sorted(self.arrivals)
        if self.binding not in BINDINGS:
            raise ValueError(f"unknown binding {self.binding!r}; have {BINDINGS}")
        if self.embedding < 1:
            raise ValueError(f"embedding must be >= 1, got {self.embedding}")
        if self.array_dim < 1:
            raise ValueError(f"array_dim must be >= 1, got {self.array_dim}")
        if self.pe_1d is not None and self.pe_1d < 1:
            raise ValueError(f"pe_1d must be >= 1, got {self.pe_1d}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.deadline is not None and self.deadline < 1:
            raise ValueError(f"deadline must be >= 1, got {self.deadline}")
        if self.dram_bw is not None and not self.dram_bw > 0:
            raise ValueError(f"dram_bw must be > 0, got {self.dram_bw}")
        if self.n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {self.n_chips}")
        if self.link_bw is not None and not self.link_bw > 0:
            raise ValueError(f"link_bw must be > 0, got {self.link_bw}")
        if self.link_latency < 0:
            raise ValueError(f"link_latency must be >= 0, got {self.link_latency}")
        if self.rate is not None and not self.rate > 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.buffer_bytes is not None and not self.buffer_bytes > 0:
            raise ValueError(
                f"buffer_bytes must be > 0, got {self.buffer_bytes}"
            )
        if self.qos not in QOS_MODES:
            raise ValueError(f"unknown qos {self.qos!r}; have {QOS_MODES}")
        if self.binding == "tile-serial":
            object.__setattr__(self, "slots", 1)

    @property
    def models_link(self) -> bool:
        """Whether the shared interconnect carries modeled traffic (one
        chip needs no collectives, mirroring ``ClusterSpec``)."""
        return self.n_chips > 1 and self.link_bw is not None

    @property
    def resolved_pe_1d(self) -> int:
        return self.pe_1d if self.pe_1d is not None else self.array_dim

    @property
    def n_requests(self) -> int:
        return len(self.arrivals)

    @property
    def seq_len(self) -> int:
        """Longest per-request prefill length (for grid summaries)."""
        chunks = [a.chunks for a in self.arrivals]
        return max(chunks, default=0) * self.array_dim

    def describe(self) -> str:
        """One-line summary for CLI output and run-registry records."""
        load = "trace" if self.rate is None else f"rate={self.rate:g}/kcy"
        tail = f"E={self.embedding}"
        if self.dram_bw is not None:
            tail += f", bw={self.dram_bw:g}"
        if self.buffer_bytes is not None:
            tail += f", buf={self.buffer_bytes:g}"
        if self.qos != "uniform":
            tail += f", qos={self.qos}"
        if self.deadline is not None:
            tail += f", slo={self.deadline}"
        if self.n_chips > 1:
            tail += f", chips={self.n_chips}"
            if self.link_bw is not None:
                tail += f", link={self.link_bw:g}+{self.link_latency}"
        return (
            f"{self.name}: {self.n_requests}req ({load}, window {self.max_inflight}) on "
            f"{self.array_dim}x{self.array_dim}+{self.resolved_pe_1d} ({self.binding}, {tail})"
        )


@dataclass(frozen=True)
class RequestPlan:
    """Where one request's milestones live in the built graph.

    ``gate`` names the tasks whose completion admits the request (its
    clock task, plus the window predecessor's finish sinks);
    ``prefill_sinks`` complete when its first token is ready;
    ``token_sinks`` hold one accumulate task per decode token.  On a
    multi-chip spec ``chip`` is the array the request ran on and
    ``gather`` the link task publishing its prefill output (empty when
    the interconnect is unmodeled).
    """

    index: int
    arrival: Arrival
    gate: Tuple[str, ...]
    prefill_sinks: Tuple[str, ...]
    token_sinks: Tuple[str, ...]
    chip: int = 0
    gather: Tuple[str, ...] = ()

    @property
    def finish_sinks(self) -> Tuple[str, ...]:
        """Tasks whose completion ends the request (last decode token,
        or the gather/prefill sinks for a prefill-only request)."""
        if self.token_sinks:
            return (self.token_sinks[-1],)
        return self.gather or self.prefill_sinks


def _sinks(tasks: Sequence[Task]) -> Tuple[str, ...]:
    """Tasks no other task in ``tasks`` depends on, in build order."""
    depended = {dep for task in tasks for dep in task.deps}
    return tuple(task.name for task in tasks if task.name not in depended)


#: Decode-step tasks live in a ``r{i}:t{step}:`` namespace; prefill
#: tasks never carry a ``t{step}:`` segment, so the name alone
#: classifies a lowered DRAM transfer's stream (and its step index).
_DECODE_STEP = re.compile(r":t(\d+):")


def _is_decode_transfer(task: Task) -> bool:
    """Whether ``task`` is a decode-step DRAM transfer (on any chip)."""
    on_dram = task.resource == DRAM_RESOURCE or task.resource.endswith(
        f":{DRAM_RESOURCE}"
    )
    return on_dram and _DECODE_STEP.search(task.name) is not None


def _gated(tasks: Sequence[Task], gate: Tuple[str, ...]) -> List[Task]:
    """Hang every dependency-free task on ``gate`` (arrival + window)."""
    return [replace(task, deps=gate) if not task.deps else task for task in tasks]


def build_serving_tasks(spec: ServingSpec) -> Tuple[List[Task], List[RequestPlan]]:
    """The full serving graph: clock chain + gated request graphs.

    Returns the merged task list plus one :class:`RequestPlan` per
    arrival, index-aligned with ``spec.arrivals``.
    """
    serial = spec.binding == "tile-serial"
    tasks: List[Task] = []
    # One clock task per *distinct* arrival time: a duration-0 segment in
    # the middle of the chain would be treated as done at t=0 by the
    # dependency frontier, so requests sharing a timestamp share a gate.
    # (The only zero-duration clock task is a first arrival at t=0,
    # where done-at-0 is exactly right.)
    gate_of = {}
    prev_time = 0
    prev_name: Optional[str] = None
    for g, time in enumerate(sorted({a.at for a in spec.arrivals})):
        name = f"CLK[{g}]"
        deps = () if prev_name is None else (prev_name,)
        tasks.append(Task(name, CLOCK_RESOURCE, time - prev_time, deps))
        gate_of[time] = name
        prev_time, prev_name = time, name

    plans: List[RequestPlan] = []
    for index, arrival in enumerate(spec.arrivals):
        prefix = f"r{index}:"
        chip = index % spec.n_chips
        config = PipelineConfig(
            chunks=arrival.chunks,
            embedding=spec.embedding,
            array_dim=spec.array_dim,
            pe_1d=spec.resolved_pe_1d,
        )
        graph = build_tasks(config, serial=serial, prefix=prefix)
        graph = apply_buffer_spills(
            graph, config, "prefill", spec.buffer_bytes, prefix
        )
        prefill_sinks = _sinks(graph)
        prev_sinks = prefill_sinks
        gather: Tuple[str, ...] = ()
        if spec.models_link:
            # Publish the prefill output (the request's KV shard) to the
            # other chips before decode proceeds — the cross-chip
            # dependency that makes the link a contended shared
            # resource.  Same arithmetic as the cluster lowering's
            # all-gather: (n_chips - 1) peer copies of one instance's
            # output, priced by transfer_cycles plus the hop latency.
            moved = instance_out_bytes(config, "prefill") * (spec.n_chips - 1)
            cycles = transfer_cycles(moved, spec.link_bw) + spec.link_latency
            if cycles > 0:
                graph.append(Task(f"{prefix}AG", LINK_RESOURCE, cycles, prefill_sinks))
                gather = (f"{prefix}AG",)
                prev_sinks = gather
        token_sinks: List[str] = []
        step_gates: List[Tuple[str, ...]] = []
        for step in range(arrival.decode_tokens):
            step_prefix = f"{prefix}t{step}:"
            step_tasks = build_decode_tasks(config, prefix=step_prefix)
            step_tasks = apply_buffer_spills(
                step_tasks, config, "decode", spec.buffer_bytes, step_prefix
            )
            # Chain: the step's dependency-free tasks wait on the
            # previous step's accumulate (or the gather/prefill sinks).
            step_gates.append(prev_sinks)
            step_tasks = _gated(step_tasks, prev_sinks)
            prev_sinks = _sinks(step_tasks)
            token_sinks.extend(prev_sinks)
            graph.extend(step_tasks)
        # Lower DRAM traffic per request *before* gating, so the
        # transfer tasks are arrive-gated too (the memory system cannot
        # stream a request that has not arrived).  lower_dram inserts
        # per task, so per-request lowering equals whole-graph lowering.
        # A finite buffer_bytes bounds each request's prefetch window.
        graph = lower_dram(graph, spec.dram_bw, spec.buffer_bytes)
        if spec.qos == "decode-first":
            # Decode streams issue just-in-time: each step's DRAM
            # transfers wait on the step's own gate instead of
            # prefetching at admission, so prioritizing them (the
            # partition below) means "cut ahead of queued prefill bulk
            # when a token needs data" rather than "stream the whole
            # decode working set before the request's own prefill".
            def jit(task: Task) -> Task:
                if task.resource != DRAM_RESOURCE:
                    return task
                match = _DECODE_STEP.search(task.name)
                if match is None:
                    return task
                gate_deps = step_gates[int(match.group(1))]
                extra = tuple(d for d in gate_deps if d not in task.deps)
                return replace(task, deps=task.deps + extra)

            graph = [jit(task) for task in graph]
        if spec.n_chips > 1:
            # The request's compute and DRAM traffic live on its own
            # chip's resources; only the link (and the clock) is shared.
            graph = [
                task if task.resource == LINK_RESOURCE
                else replace(task, resource=f"c{chip}:{task.resource}")
                for task in graph
            ]
        gate = (gate_of[arrival.at],)
        if index >= spec.max_inflight:
            gate = gate + plans[index - spec.max_inflight].finish_sinks
        tasks.extend(_gated(graph, gate))
        plans.append(
            RequestPlan(
                index=index,
                arrival=arrival,
                gate=gate,
                prefill_sinks=prefill_sinks,
                token_sinks=tuple(token_sinks),
                chip=chip,
                gather=gather,
            )
        )
    if spec.qos == "decode-first":
        # Engines arbitrate ties by program order, so a stable partition
        # that floats every decode-step DRAM transfer ahead of the rest
        # *is* the priority scheme: whenever a decode refill and a
        # prefill bulk transfer are both ready, the link issues the
        # decode one first — across requests, so an in-flight request's
        # tokens beat a newly arriving request's prefill burst.  Deps
        # are name-based, so list position carries no semantics beyond
        # tie-breaking and ``"uniform"`` stays byte-identical.
        front = [task for task in tasks if _is_decode_transfer(task)]
        rest = [task for task in tasks if not _is_decode_transfer(task)]
        tasks = front + rest
    return tasks, plans


def serving_sim(
    spec: ServingSpec, engine: str = "event"
) -> Tuple[List[Task], List[RequestPlan], SimResult]:
    """Build and schedule ``spec``'s serving graph."""
    tasks, plans = build_serving_tasks(spec)
    sim = Simulator(
        tasks,
        mode="serial" if spec.binding == "tile-serial" else "interleaved",
        slots=spec.slots,
        engine=engine,
    )
    # Same budget argument as the closed scenarios: while work remains,
    # some resource issues every cycle — during arrival gaps that
    # resource is the clock chain itself — so the makespan can never
    # exceed the summed durations.
    budget = sum(task.duration for task in tasks) + 1
    return tasks, plans, sim.run(max_cycles=budget)


def simulate_serving(spec: ServingSpec, engine: str = "event") -> ServingResult:
    """Schedule one serving workload and reduce it to SLO metrics."""
    if spec.arrivals:
        tasks, plans, result = serving_sim(spec, engine=engine)
        finish = result.finish_times
        requests = tuple(
            RequestMetrics(
                index=plan.index,
                arrival=plan.arrival.at,
                chunks=plan.arrival.chunks,
                decode_tokens=plan.arrival.decode_tokens,
                admitted=max(finish[name] for name in plan.gate),
                first_token=max(finish[name] for name in plan.prefill_sinks),
                finish=max(finish[name] for name in plan.finish_sinks),
            )
            for plan in plans
        )
        n_tasks, makespan, busy = len(tasks), result.makespan, result.busy_cycles
    else:
        # An empty trace (e.g. a duration shorter than the first draw)
        # is a valid, trivially idle workload.
        requests, n_tasks, makespan, busy = (), 0, 0, {}

    def total(base: str) -> int:
        # Cluster-wide busy cycles: on a multi-chip spec each chip's
        # resources are ``c{k}:``-prefixed, so the report sums them.
        return busy.get(base, 0) + sum(
            cycles for name, cycles in busy.items()
            if name.endswith(f":{base}") and name != base
        )

    spill = 0
    for arrival in spec.arrivals:
        config = PipelineConfig(
            chunks=arrival.chunks,
            embedding=spec.embedding,
            array_dim=spec.array_dim,
            pe_1d=spec.resolved_pe_1d,
        )
        spill += instance_spill_bytes(config, "prefill", spec.buffer_bytes)
        spill += arrival.decode_tokens * instance_spill_bytes(
            config, "decode", spec.buffer_bytes
        )

    return ServingResult(
        name=spec.name,
        binding=spec.binding,
        rate=spec.rate,
        max_inflight=spec.max_inflight,
        deadline=spec.deadline,
        array_dim=spec.array_dim,
        pe_1d=spec.resolved_pe_1d,
        embedding=spec.embedding,
        slots=spec.slots,
        dram_bw=spec.dram_bw,
        n_tasks=n_tasks,
        makespan=makespan,
        busy_2d=total("2d"),
        busy_1d=total("1d"),
        busy_io=total("io"),
        busy_dram=total("dram"),
        requests=requests,
        buffer_bytes=spec.buffer_bytes,
        qos=spec.qos,
        spill_bytes=spill,
    )
