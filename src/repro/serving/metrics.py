"""Per-request SLO metrics and aggregate serving results.

The serving simulator reduces a scheduled request population to the
numbers a serving stack quotes against its SLOs:

- **TTFT** (time to first token): prefill-complete time minus arrival.
- **TBT** (time between tokens): mean decode-token gap of one request.
- **latency**: last-token-complete time minus arrival.
- **queue delay**: admission time minus arrival (continuous batching's
  FIFO window is the only queueing in the model).
- **goodput**: the fraction of requests whose latency meets the
  deadline (None when no deadline is set) — a fraction, not a rate, so
  it is monotone non-increasing in offered load for a FIFO window.
- **throughput**: completed requests per kilocycle of makespan.

Percentiles use the nearest-rank method (the smallest sample at or
above the requested rank), so p50/p99 are actual observed cycle counts
and every aggregate is hand-checkable from a mini-trace.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, fields
from math import ceil
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SERVE_FIELDS",
    "SERVE_QOS_FIELDS",
    "RequestMetrics",
    "ServingResult",
    "decode_serving_result",
    "encode_serving_result",
    "percentile",
    "serve_fields_for",
    "serving_csv",
    "serving_json",
    "serving_table",
]


def percentile(values: Sequence[int], q: float) -> Optional[int]:
    """Nearest-rank percentile: the smallest sample covering ``q``% of
    ``values``; None for an empty sample."""
    if not values:
        return None
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class RequestMetrics:
    """One request's measured timeline, all times in absolute cycles."""

    index: int
    arrival: int
    chunks: int
    decode_tokens: int
    admitted: int
    first_token: int
    finish: int

    @property
    def queue_delay(self) -> int:
        """Cycles spent waiting for an admission slot (0 when the
        continuous-batching window had room on arrival)."""
        return self.admitted - self.arrival

    @property
    def ttft(self) -> int:
        """Time to first token: prefill completion relative to arrival."""
        return self.first_token - self.arrival

    @property
    def latency(self) -> int:
        """End-to-end latency: last token (or prefill, for a
        prefill-only request) relative to arrival."""
        return self.finish - self.arrival

    @property
    def tbt(self) -> Optional[float]:
        """Mean time between decode tokens; None for prefill-only."""
        if not self.decode_tokens:
            return None
        return (self.finish - self.first_token) / self.decode_tokens

    def met(self, deadline: Optional[int]) -> bool:
        """Whether this request's latency meets ``deadline``."""
        return deadline is None or self.latency <= deadline


#: Keys of one serving result row, in CSV column order.
SERVE_FIELDS: Tuple[str, ...] = (
    "workload",
    "binding",
    "requests",
    "rate",
    "max_inflight",
    "deadline",
    "array_dim",
    "pe_1d",
    "embedding",
    "slots",
    "dram_bw",
    "n_tasks",
    "makespan",
    "util_2d",
    "util_1d",
    "util_dram",
    "ttft_p50",
    "ttft_p99",
    "tbt_mean",
    "latency_p50",
    "latency_p99",
    "throughput",
    "goodput",
)

#: Columns appended (after :data:`SERVE_FIELDS`) when any result models
#: buffer capacity or non-uniform DRAM QoS — the decode-TBT percentiles
#: are what a prefill burst moves, so they only surface with the knobs.
SERVE_QOS_FIELDS: Tuple[str, ...] = (
    "buffer_bytes",
    "qos",
    "spill_bytes",
    "tbt_p50",
    "tbt_p99",
)


def serve_fields_for(results: Sequence["ServingResult"]) -> Tuple[str, ...]:
    """Column set for ``results``: the historical :data:`SERVE_FIELDS`
    widen with :data:`SERVE_QOS_FIELDS` only when some row exercises the
    buffer/QoS model, so existing outputs stay byte-identical."""
    if any(r.buffer_bytes is not None or r.qos != "uniform" for r in results):
        return SERVE_FIELDS + SERVE_QOS_FIELDS
    return SERVE_FIELDS


@dataclass(frozen=True)
class ServingResult:
    """Measured outcome of one open-loop serving simulation.

    Carries the full per-request timeline (``requests``) plus the
    schedule-level busy counts; every aggregate column in
    :data:`SERVE_FIELDS` is derived, so cached results and fresh runs
    can never disagree about a percentile.
    """

    name: str
    binding: str
    rate: Optional[float]
    max_inflight: int
    deadline: Optional[int]
    array_dim: int
    pe_1d: int
    embedding: int
    slots: int
    dram_bw: Optional[float]
    n_tasks: int
    makespan: int
    busy_2d: int
    busy_1d: int
    busy_io: int
    busy_dram: int
    requests: Tuple[RequestMetrics, ...]
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"
    spill_bytes: int = 0

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def utilization(self, resource: str) -> float:
        busy = {
            "2d": self.busy_2d,
            "1d": self.busy_1d,
            "io": self.busy_io,
            "dram": self.busy_dram,
        }
        return busy[resource] / self.makespan if self.makespan else 0.0

    @property
    def util_2d(self) -> float:
        return self.utilization("2d")

    @property
    def util_1d(self) -> float:
        return self.utilization("1d")

    @property
    def util_dram(self) -> Optional[float]:
        return None if self.dram_bw is None else self.utilization("dram")

    @property
    def ttft_p50(self) -> Optional[int]:
        return percentile([r.ttft for r in self.requests], 50)

    @property
    def ttft_p99(self) -> Optional[int]:
        return percentile([r.ttft for r in self.requests], 99)

    @property
    def latency_p50(self) -> Optional[int]:
        return percentile([r.latency for r in self.requests], 50)

    @property
    def latency_p99(self) -> Optional[int]:
        return percentile([r.latency for r in self.requests], 99)

    @property
    def tbt_mean(self) -> Optional[float]:
        """Mean time between decode tokens over the decoding requests;
        None when the whole population is prefill-only."""
        gaps = [r.tbt for r in self.requests if r.tbt is not None]
        return sum(gaps) / len(gaps) if gaps else None

    @property
    def tbt_p50(self) -> Optional[float]:
        """Median per-request decode-token gap — with ``decode-first``
        QoS this is the headline number a prefill burst cannot move."""
        return percentile([r.tbt for r in self.requests if r.tbt is not None], 50)

    @property
    def tbt_p99(self) -> Optional[float]:
        """Tail per-request decode-token gap under the offered load."""
        return percentile([r.tbt for r in self.requests if r.tbt is not None], 99)

    @property
    def throughput(self) -> float:
        """Completed requests per kilocycle of makespan."""
        return self.n_requests * 1000 / self.makespan if self.makespan else 0.0

    @property
    def goodput(self) -> Optional[float]:
        """Fraction of requests meeting the deadline (None without one)."""
        if self.deadline is None:
            return None
        if not self.requests:
            return 0.0
        met = sum(1 for r in self.requests if r.met(self.deadline))
        return met / self.n_requests

    #: Column names whose value lives under a different attribute.
    _ALIASES = {"workload": "name", "requests": "n_requests"}

    def row(self, fields_: Tuple[str, ...] = SERVE_FIELDS) -> Tuple:
        """The result as a tuple in ``fields_`` order (absent values
        stay None; the text emitters render them as ``-``)."""
        return tuple(
            getattr(self, self._ALIASES.get(name, name)) for name in fields_
        )


#: Scalar fields of :class:`ServingResult` in declaration order — the
#: codec walks exactly these, so a new field cannot silently escape it.
_SCALAR_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(ServingResult) if f.name != "requests"
)


def encode_serving_result(result: ServingResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {
        "__type__": "ServingResult",
        **{name: getattr(result, name) for name in _SCALAR_FIELDS},
        "requests": [asdict(r) for r in result.requests],
    }


#: Defaults for scalar fields added after the cache format shipped, so
#: pre-capacity cache entries still decode (they never modeled either).
_SCALAR_DEFAULTS: Dict[str, object] = {
    "buffer_bytes": None,
    "qos": "uniform",
    "spill_bytes": 0,
}


def decode_serving_result(payload: Mapping) -> ServingResult:
    """Inverse of :func:`encode_serving_result` (strict on the
    historical fields, defaulting for the capacity/QoS columns)."""
    data = {
        name: (
            payload.get(name, _SCALAR_DEFAULTS[name])
            if name in _SCALAR_DEFAULTS
            else payload[name]
        )
        for name in _SCALAR_FIELDS
    }
    return ServingResult(
        **data,
        requests=tuple(RequestMetrics(**entry) for entry in payload["requests"]),
    )


# --------------------------------------------------------------------------
# Emitters: serving rows as CSV / JSON / aligned text (one row per
# simulated load point, so a rate sweep is a latency-vs-load curve).
# --------------------------------------------------------------------------


def _blanked(row: Tuple) -> Tuple:
    """Text-emitter row with absent values rendered as ``-`` (matching
    the scenario emitters' convention; JSON keeps them as nulls)."""
    return tuple("-" if value is None else value for value in row)


def serving_csv(results: Sequence[ServingResult]) -> str:
    """Serving results as CSV with a :func:`serve_fields_for` header."""
    fields_ = serve_fields_for(results)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(fields_)
    for result in results:
        writer.writerow(_blanked(result.row(fields_)))
    return buffer.getvalue()


def serving_json(results: Sequence[ServingResult]) -> str:
    """Serving results as a JSON array of row objects (absent values
    are nulls)."""
    fields_ = serve_fields_for(results)
    return json.dumps(
        [dict(zip(fields_, r.row(fields_))) for r in results], indent=2
    )


def serving_table(results: Sequence[ServingResult]) -> str:
    """Serving results as an aligned text table (the CLI default)."""
    fields_ = serve_fields_for(results)
    text_rows: List[Tuple[str, ...]] = [fields_]
    for result in results:
        text_rows.append(
            tuple(
                f"{value:.3f}" if isinstance(value, float) else str(value)
                for value in _blanked(result.row(fields_))
            )
        )
    widths = [max(len(row[i]) for row in text_rows) for i in range(len(fields_))]
    return "\n".join(
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths)) for row in text_rows
    )
