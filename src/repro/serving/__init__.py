"""Open-loop serving simulator: arrivals, continuous batching, SLO metrics.

Layered on the event core (:mod:`repro.simulator`): a seeded arrival
process emits prefill→decode requests that join and leave a running
merged schedule through a FIFO continuous-batching window, and the
scheduled timeline reduces to the numbers a serving stack quotes —
TTFT, time between tokens, p50/p99 latency, goodput at a deadline.
"""

from .arrivals import Arrival, check_sorted, format_trace, parse_trace, poisson_arrivals
from .metrics import (
    SERVE_FIELDS,
    SERVE_QOS_FIELDS,
    RequestMetrics,
    ServingResult,
    decode_serving_result,
    encode_serving_result,
    percentile,
    serve_fields_for,
    serving_csv,
    serving_json,
    serving_table,
)
from .simulator import (
    CLOCK_RESOURCE,
    RequestPlan,
    ServingSpec,
    build_serving_tasks,
    serving_sim,
    simulate_serving,
)

__all__ = [
    "CLOCK_RESOURCE",
    "SERVE_FIELDS",
    "SERVE_QOS_FIELDS",
    "Arrival",
    "RequestMetrics",
    "RequestPlan",
    "ServingResult",
    "ServingSpec",
    "build_serving_tasks",
    "check_sorted",
    "decode_serving_result",
    "encode_serving_result",
    "format_trace",
    "parse_trace",
    "percentile",
    "poisson_arrivals",
    "serve_fields_for",
    "serving_csv",
    "serving_json",
    "serving_sim",
    "serving_table",
    "simulate_serving",
]
