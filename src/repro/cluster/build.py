"""Lower a scenario onto a cluster: per-chip graphs + link collectives.

The lowering generalizes :func:`~repro.simulator.pipeline
.build_scenario_tasks` from one accelerator to ``spec.n_chips``
identical ones.  Each phase of the scenario becomes one template class
per chip — the phase's instance graph built at the chip's shard of the
work, its resources renamed ``c<k>:2d`` / ``c<k>:1d`` / ``c<k>:io`` /
``c<k>:dram`` so chips never contend for each other's arrays or memory
— and the cross-chip output exchange becomes an explicit *collective*
task (``AG``, an all-gather) on the one shared ``link`` resource,
emitted exactly the way :func:`~repro.simulator.engine.lower_dram`
emits transfers: as ordinary graph structure, so all three engines run
cluster graphs bit-identically with zero engine changes.

Sharding (:data:`~repro.cluster.spec.SHARDINGS`) decides how a phase's
instances map to chips:

- **block** (the ``"head"`` policy, and decode phases under either
  policy): instances are partitioned into contiguous, balanced blocks —
  head parallelism for prefill, request parallelism for decode.  Each
  instance's full output (its tensor-shape bytes) is all-gathered to
  the other ``n_chips - 1`` chips.
- **tensor** (the ``"tensor"`` policy, prefill phases only): every chip
  runs every instance over a ``1/n_chips`` slice of the embedding
  (column-parallel), so each chip all-gathers its *slice* of the
  output — per-collective traffic shrinks by ``n_chips`` while the
  collective count grows by the same factor.

Collective traffic is computed from the cascade's tensor shapes
(:func:`instance_out_bytes`): a prefill instance's output is its
``seq_len × E`` tile stream, a decode step's output is one ``E``-wide
row.  Duration is the link's ceiling-arithmetic transfer time plus the
fixed per-collective ``link_latency``.  A collective that would cost
zero cycles (``link_bw=None``/``inf``, or a single chip) is simply not
emitted — so a 1-chip cluster's merged graph is *byte-identical* to
the unsharded scenario's, the degenerate invariant the tests lock.

Every template keeps its dependencies inside the instance (collectives
hang off their own instance's sinks), so the folded vector engine
(:func:`~repro.simulator.vector.fold_templates`) accepts cluster
classes unchanged and ``engine="vector"`` replays cluster-scale grids
arithmetically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..simulator.engine import (
    SimResult,
    Simulator,
    Task,
    lower_dram,
    transfer_cycles,
)
from ..simulator.pipeline import (
    WORD_BYTES,
    PipelineConfig,
    build_decode_tasks,
    build_tasks,
    instance_config,
)
from ..simulator.vector import FoldedScenario, fold_templates, run_folded
from ..workloads.scenario import Phase, Scenario
from .spec import LINK_RESOURCE, SHARDINGS, ClusterSpec

__all__ = [
    "build_cluster_tasks",
    "chip_instance_counts",
    "cluster_link_cycles",
    "cluster_sim",
    "cluster_templates",
    "collective_bytes",
    "fold_cluster",
    "instance_out_bytes",
    "schedule_cluster_tasks",
    "shard_config",
    "template_dram_cycles",
]


def _check_sharding(sharding: str) -> None:
    if sharding not in SHARDINGS:
        raise ValueError(f"unknown sharding {sharding!r}; have {SHARDINGS}")


def _tensor_sharded(phase: Phase, sharding: str, n_chips: int) -> bool:
    """Whether this phase slices the embedding across chips (tensor
    policy, prefill only — decode rows are too small to slice)."""
    return sharding == "tensor" and phase.kind != "decode" and n_chips > 1


def shard_config(
    scenario: Scenario, phase: Phase, sharding: str, n_chips: int
) -> PipelineConfig:
    """One chip's :class:`PipelineConfig` for its shard of ``phase``.

    Block-parallel phases run the unmodified per-instance config;
    tensor-parallel prefill slices the embedding evenly (the slice must
    divide, as real column-parallel projections require)."""
    config = instance_config(scenario, phase)
    if not _tensor_sharded(phase, sharding, n_chips):
        return config
    if config.embedding % n_chips:
        raise ValueError(
            f"tensor sharding needs embedding divisible by n_chips; "
            f"got E={config.embedding}, n_chips={n_chips}"
        )
    return replace(config, embedding=config.embedding // n_chips)


def chip_instance_counts(
    phase: Phase, sharding: str, n_chips: int
) -> List[int]:
    """How many copies of the (phase, chip) template each chip runs.

    Block-parallel: contiguous balanced blocks (earlier chips take the
    remainder, so counts differ by at most one).  Tensor-parallel: every
    chip runs every instance (each over its embedding slice)."""
    if _tensor_sharded(phase, sharding, n_chips):
        return [phase.instances] * n_chips
    base, rem = divmod(phase.instances, n_chips)
    return [base + (1 if k < rem else 0) for k in range(n_chips)]


def instance_out_bytes(config: PipelineConfig, kind: str) -> int:
    """Bytes of one instance's attention output at ``config``'s shapes:
    the full ``seq_len × E`` tile stream for prefill, one ``E``-wide
    row for a decode step.  (Matches the output-side ``bytes_moved``
    the graph builders charge to RNV / the final DAC.)"""
    row_bytes = config.embedding * WORD_BYTES
    if kind == "decode":
        return row_bytes
    return config.chunks * config.array_dim * row_bytes


def collective_bytes(
    config: PipelineConfig, kind: str, n_chips: int
) -> int:
    """Link bytes one instance's all-gather moves: its (possibly
    embedding-sliced) output, sent to each of the other chips.  Zero on
    a single chip — there is no one to gather from."""
    return instance_out_bytes(config, kind) * (n_chips - 1)


def template_dram_cycles(
    config: PipelineConfig,
    kind: str,
    serial: bool,
    dram_bw: Optional[float],
) -> int:
    """DRAM busy cycles of one instance at ``config``'s shard — the
    sharded counterpart of :func:`~repro.simulator.pipeline
    .scenario_dram_cycles`, walking the same builders and ceiling
    arithmetic so the analytical cluster model can never disagree with
    the lowered schedule."""
    if dram_bw is None:
        return 0
    if kind == "decode":
        tasks = build_decode_tasks(config)
    else:
        tasks = build_tasks(config, serial=serial)
    return sum(transfer_cycles(t.bytes_moved, dram_bw) for t in tasks)


def _sink_names(tasks: Sequence[Task]) -> Tuple[str, ...]:
    """Tasks no other task in ``tasks`` depends on, in build order."""
    depended = {dep for task in tasks for dep in task.deps}
    return tuple(task.name for task in tasks if task.name not in depended)


def _chip_template(
    scenario: Scenario,
    phase: Phase,
    chip: int,
    spec: ClusterSpec,
    sharding: str,
) -> List[Task]:
    """One chip's template graph for one phase: the shard's instance
    graph, dram-lowered, chip-renamed, plus its output collective."""
    config = shard_config(scenario, phase, sharding, spec.n_chips)
    chip_prefix = "" if spec.n_chips == 1 else f"c{chip}:"
    serial = scenario.binding == "tile-serial"
    if phase.kind == "decode":
        tasks = build_decode_tasks(config, prefix=chip_prefix)
    else:
        tasks = build_tasks(config, serial=serial, prefix=chip_prefix)
    tasks = lower_dram(tasks, scenario.dram_bw)
    if spec.n_chips > 1:
        # Each chip owns private arrays and a private DRAM stack; only
        # the interconnect below is shared.
        tasks = [
            replace(task, resource=f"c{chip}:{task.resource}")
            for task in tasks
        ]
    if spec.link_bw is not None:
        cycles = transfer_cycles(
            collective_bytes(config, phase.kind, spec.n_chips), spec.link_bw
        )
        if cycles:
            tasks.append(
                Task(
                    f"{chip_prefix}AG",
                    LINK_RESOURCE,
                    cycles + spec.link_latency,
                    _sink_names(tasks),
                )
            )
    return tasks


def cluster_templates(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> List[Tuple[List[Task], int]]:
    """The counted template classes of a sharded scenario, in phase-
    major then chip-ascending order — the cluster counterpart of the
    per-phase classes :func:`~repro.simulator.pipeline.fold_scenario`
    folds.  Chips whose block is empty contribute no class."""
    _check_sharding(sharding)
    classes: List[Tuple[List[Task], int]] = []
    for phase in scenario.phases:
        counts = chip_instance_counts(phase, sharding, spec.n_chips)
        for chip, count in enumerate(counts):
            if count:
                classes.append(
                    (_chip_template(scenario, phase, chip, spec, sharding), count)
                )
    return classes


def build_cluster_tasks(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> List[Task]:
    """The merged task graph of ``scenario`` sharded over ``spec``.

    Same replication idiom as :func:`~repro.simulator.pipeline
    .build_scenario_tasks` — each class's template is built once and
    stamped out per instance under an ``i<n>:`` namespace, with ``n``
    counting globally in class order (the numbering the folded engine
    reconstructs).  A 1-chip cluster, or any spec whose collectives
    cost zero cycles, reproduces the unsharded merged graph byte for
    byte."""
    tasks: List[Task] = []
    index = 0
    for template_tasks, count in cluster_templates(scenario, spec, sharding):
        template = [
            (t.name, t.resource, t.duration, t.deps, t.bytes_moved)
            for t in template_tasks
        ]
        for _ in range(count):
            prefix = f"i{index}:"
            tasks.extend(
                Task(prefix + name, resource, duration,
                     tuple(prefix + dep for dep in deps), bytes_moved)
                for name, resource, duration, deps, bytes_moved in template
            )
            index += 1
    return tasks


def fold_cluster(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> FoldedScenario:
    """Collapse the sharded scenario into counted template classes for
    ``engine="vector"``.  Collectives depend only on their own
    instance's sinks, so the fold's instance-locality requirement holds
    by construction."""
    return fold_templates(cluster_templates(scenario, spec, sharding))


def cluster_link_cycles(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> int:
    """Total ``link`` busy cycles of the sharded merged graph: the
    exact sum of the emitted collective durations, 0 when the
    interconnect is unmodeled.  Walks one shard per (phase, chip) class
    through the same byte and ceiling arithmetic the builder lowers
    with, so the analytical cluster model (:mod:`repro.model.cluster`)
    can never disagree with the schedule about link occupancy."""
    if spec.link_bw is None or spec.n_chips == 1:
        return 0
    total = 0
    for phase in scenario.phases:
        config = shard_config(scenario, phase, sharding, spec.n_chips)
        cycles = transfer_cycles(
            collective_bytes(config, phase.kind, spec.n_chips), spec.link_bw
        )
        if not cycles:
            continue
        count = sum(chip_instance_counts(phase, sharding, spec.n_chips))
        total += count * (cycles + spec.link_latency)
    return total


def schedule_cluster_tasks(
    scenario: Scenario,
    spec: ClusterSpec,
    sharding: str,
    tasks: List[Task],
    engine: str = "event",
) -> SimResult:
    """Schedule an already-built sharded merged graph.

    Mirrors :func:`~repro.simulator.pipeline.schedule_scenario_tasks`:
    ``engine="vector"`` re-derives the template classes (cheap) and
    takes the folded path; the other engines schedule ``tasks``
    directly under the scenario's binding discipline with the same
    total-duration cycle budget."""
    serial = scenario.binding == "tile-serial"
    if engine == "vector":
        return run_folded(
            fold_cluster(scenario, spec, sharding),
            slots=1 if serial else scenario.slots,
        )
    sim = Simulator(
        tasks,
        mode="serial" if serial else "interleaved",
        slots=scenario.slots,
        engine=engine,
    )
    budget = sum(task.duration for task in tasks) + 1
    return sim.run(max_cycles=budget)


def cluster_sim(
    scenario: Scenario,
    spec: ClusterSpec,
    sharding: str = "head",
    engine: str = "event",
) -> Tuple[List[Task], SimResult]:
    """Build and schedule ``scenario`` sharded over ``spec``."""
    tasks = build_cluster_tasks(scenario, spec, sharding)
    return tasks, schedule_cluster_tasks(scenario, spec, sharding, tasks, engine=engine)
