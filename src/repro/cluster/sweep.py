"""Cluster evaluation points, result rows, emitters, and cache codec.

One :class:`ClusterPoint` pairs a workload (:class:`~repro.workloads
.scenario.Scenario`) with a machine (:class:`~repro.cluster.spec
.ClusterSpec`) and a sharding policy; evaluating it schedules the
sharded merged graph and folds the measurement into a
:class:`ClusterResult` row.  Points are frozen and pure, so they flow
through the pooled runtime unchanged under task kind ``"cluster"``:
fan out over processes, content-address into the cache, replay from a
rerun.

Column gating follows the scenario emitters exactly: the historical
columns always render; the DRAM columns join only when a row models
memory bandwidth; the link columns (``link_bw`` / ``link_latency`` /
``busy_link`` / ``util_link``) join only when a row models the
interconnect (more than one chip *and* a bandwidth) — so single-chip
and unlinked sweeps keep their narrow byte-stable shape.

Utilization conventions: the per-chip arrays and DRAM stacks report
*per-chip-normalized* utilization (busy summed over chips, divided by
``makespan × n_chips`` — 1.0 means every chip's array was busy every
cycle), which degenerates to the scenario convention at one chip.  The
link is a single shared resource, so ``util_link`` divides by the
makespan alone.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..simulator.sweep import _rows_csv, _rows_table
from ..workloads.scenario import Scenario
from .build import cluster_sim
from .spec import LINK_RESOURCE, SHARDINGS, ClusterSpec

__all__ = [
    "CLUSTER_BW_FIELDS",
    "CLUSTER_FIELDS",
    "CLUSTER_LINK_FIELDS",
    "ClusterPoint",
    "ClusterResult",
    "cluster_csv",
    "cluster_fields_for",
    "cluster_json",
    "cluster_table",
    "decode_cluster_result",
    "encode_cluster_result",
    "evaluate_cluster_point",
]

#: Keys of one cluster result, in CSV column order (always present).
CLUSTER_FIELDS: Tuple[str, ...] = (
    "scenario",
    "binding",
    "sharding",
    "topology",
    "n_chips",
    "instances",
    "array_dim",
    "pe_1d",
    "embedding",
    "slots",
    "seq_len",
    "n_tasks",
    "makespan",
    "busy_2d",
    "busy_1d",
    "busy_io",
    "util_2d",
    "util_1d",
)

#: DRAM columns, appended when any row's scenario models memory
#: bandwidth (same gating as the scenario emitters).
CLUSTER_BW_FIELDS: Tuple[str, ...] = ("dram_bw", "busy_dram", "util_dram")

#: Interconnect columns, appended when any row models the link (more
#: than one chip and a finite-or-infinite ``link_bw``).
CLUSTER_LINK_FIELDS: Tuple[str, ...] = (
    "link_bw",
    "link_latency",
    "busy_link",
    "util_link",
)


@dataclass(frozen=True)
class ClusterPoint:
    """One grid point of a cluster sweep (pickles cleanly to workers)."""

    scenario: Scenario
    spec: ClusterSpec = ClusterSpec()
    sharding: str = "head"

    def __post_init__(self) -> None:
        if self.sharding not in SHARDINGS:
            raise ValueError(
                f"unknown sharding {self.sharding!r}; have {SHARDINGS}"
            )

    @property
    def name(self) -> str:
        """Short display label (crosscheck rows, registry summaries)."""
        return f"{self.scenario.name}@x{self.spec.n_chips}-{self.sharding}"

    def describe(self) -> str:
        """Full point label for run-registry grid summaries."""
        return f"{self.scenario.describe()} | {self.sharding} on {self.spec.describe()}"


@dataclass(frozen=True)
class ClusterResult:
    """Measured schedule of one sharded cluster graph.

    ``busy_2d`` / ``busy_1d`` / ``busy_io`` / ``busy_dram`` sum the
    per-chip resources (``c<k>:2d`` …); ``busy_link`` counts cycles the
    one shared interconnect was held (0 unless the point models it, in
    which case ``n_tasks`` also counts the collective tasks).
    ``link_bw`` is None — and the link columns stay gated off — when
    the interconnect is unmodeled (single chip or ``link_bw=None``).
    """

    scenario: str
    binding: str
    sharding: str
    topology: str
    n_chips: int
    instances: int
    array_dim: int
    pe_1d: int
    embedding: int
    slots: int
    seq_len: int
    n_tasks: int
    makespan: int
    busy_2d: int
    busy_1d: int
    busy_io: int
    util_2d: float
    util_1d: float
    dram_bw: Optional[float] = None
    busy_dram: int = 0
    link_bw: Optional[float] = None
    link_latency: int = 0
    busy_link: int = 0

    @property
    def util_io(self) -> float:
        if not self.makespan:
            return 0.0
        return self.busy_io / (self.makespan * self.n_chips)

    @property
    def util_dram(self) -> float:
        if not self.makespan:
            return 0.0
        return self.busy_dram / (self.makespan * self.n_chips)

    @property
    def util_link(self) -> float:
        """Shared-link occupancy: one resource, so no per-chip factor."""
        return self.busy_link / self.makespan if self.makespan else 0.0

    def utilization(self, resource: str) -> float:
        if resource == "link":
            return self.util_link
        busy = {"2d": self.busy_2d, "1d": self.busy_1d, "io": self.busy_io,
                "dram": self.busy_dram}
        if not self.makespan:
            return 0.0
        return busy[resource] / (self.makespan * self.n_chips)

    def row(self, fields_: Sequence[str] = CLUSTER_FIELDS) -> Tuple:
        """The result as a tuple in ``fields_`` order (default: the
        always-present :data:`CLUSTER_FIELDS` columns)."""
        return tuple(getattr(self, field) for field in fields_)


assert CLUSTER_FIELDS + (
    "dram_bw", "busy_dram", "link_bw", "link_latency", "busy_link"
) == tuple(f.name for f in fields(ClusterResult))


def cluster_fields_for(results: Sequence[ClusterResult]) -> Tuple[str, ...]:
    """The column set of one result batch: historical columns, plus the
    DRAM columns when any row models memory bandwidth, plus the link
    columns when any row models the interconnect — each gate
    independent, mirroring :func:`~repro.simulator.sweep
    .scenario_fields_for`."""
    fields_ = CLUSTER_FIELDS
    if any(r.dram_bw is not None for r in results):
        fields_ = fields_ + CLUSTER_BW_FIELDS
    if any(r.link_bw is not None for r in results):
        fields_ = fields_ + CLUSTER_LINK_FIELDS
    return fields_


def evaluate_cluster_point(
    point: ClusterPoint, engine: str = "event"
) -> ClusterResult:
    """Schedule one sharded cluster graph and measure utilizations —
    the worker function behind the runtime's ``"cluster"`` task kind."""
    scenario, spec = point.scenario, point.spec
    tasks, result = cluster_sim(scenario, spec, point.sharding, engine=engine)
    busy = result.busy_cycles

    def total(base: str) -> int:
        if spec.n_chips == 1:
            return busy.get(base, 0)
        return sum(
            busy.get(f"c{k}:{base}", 0) for k in range(spec.n_chips)
        )

    makespan = result.makespan
    denom = makespan * spec.n_chips
    busy_2d = total("2d")
    busy_1d = total("1d")
    # A spec whose link can never be occupied (single chip, or no
    # bandwidth at all) reports the link as unmodeled, so mixed batches
    # gate the link columns per row exactly like the DRAM columns.
    linked = spec.n_chips > 1 and spec.link_bw is not None
    return ClusterResult(
        scenario=scenario.name,
        binding=scenario.binding,
        sharding=point.sharding,
        topology=spec.topology,
        n_chips=spec.n_chips,
        instances=scenario.instances,
        array_dim=scenario.array_dim,
        pe_1d=scenario.resolved_pe_1d,
        embedding=scenario.embedding,
        slots=scenario.slots,
        seq_len=scenario.seq_len,
        n_tasks=len(tasks),
        makespan=makespan,
        busy_2d=busy_2d,
        busy_1d=busy_1d,
        busy_io=total("io"),
        util_2d=busy_2d / denom if denom else 0.0,
        util_1d=busy_1d / denom if denom else 0.0,
        dram_bw=scenario.dram_bw,
        busy_dram=total("dram"),
        link_bw=spec.link_bw if linked else None,
        link_latency=spec.link_latency if linked else 0,
        busy_link=busy.get(LINK_RESOURCE, 0),
    )


# --------------------------------------------------------------------------
# Emitters: cluster rows as CSV / JSON / aligned text.
# --------------------------------------------------------------------------

ClusterResults = Sequence[ClusterResult]


def _blanked_row(result: ClusterResult, fields_: Sequence[str]) -> Tuple:
    """A result row for text emitters: DRAM / link columns a widened
    batch includes but this row does not model render as ``-`` (JSON
    keeps them as nulls), matching the scenario emitters."""
    return tuple(
        "-"
        if (result.dram_bw is None and name in CLUSTER_BW_FIELDS)
        or (result.link_bw is None and name in CLUSTER_LINK_FIELDS)
        else value
        for name, value in zip(fields_, result.row(fields_))
    )


def cluster_csv(results: ClusterResults) -> str:
    """Cluster results as CSV (header widens with the DRAM / link
    columns only when a row models them)."""
    fields_ = cluster_fields_for(list(results))
    return _rows_csv(fields_, [_blanked_row(r, fields_) for r in results])


def cluster_json(results: ClusterResults) -> str:
    """Cluster results as a JSON array of row objects (``link_bw`` is
    null on rows that do not model the interconnect)."""
    fields_ = cluster_fields_for(list(results))
    return json.dumps(
        [dict(zip(fields_, r.row(fields_))) for r in results], indent=2
    )


def cluster_table(results: ClusterResults) -> str:
    """Cluster results as an aligned text table (the CLI default)."""
    fields_ = cluster_fields_for(list(results))
    return _rows_table(fields_, [_blanked_row(r, fields_) for r in results])


#: Scalar dataclass fields, the exact set the codec round-trips.
_RESULT_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(ClusterResult))


def encode_cluster_result(result: ClusterResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {"__type__": "ClusterResult", **asdict(result)}


def decode_cluster_result(payload: Mapping) -> ClusterResult:
    """Inverse of :func:`encode_cluster_result`."""
    return ClusterResult(**{field: payload[field] for field in _RESULT_FIELDS})
