"""Multi-chip cluster subsystem: sharded scenarios over a modeled link.

The third shared-resource tier (array slots → ``dram`` → ``link``): a
frozen :class:`ClusterSpec` plus a sharding policy lower a
:class:`~repro.workloads.scenario.Scenario` to per-chip task graphs
whose cross-chip output exchanges become collective tasks arbitrating
one shared ``link`` resource — ordinary graph structure, so all three
scheduling engines run cluster graphs bit-identically with zero engine
changes, and a 1-chip cluster degenerates byte-for-byte to the
unsharded scenario.
"""

from .build import (
    build_cluster_tasks,
    chip_instance_counts,
    cluster_link_cycles,
    cluster_sim,
    cluster_templates,
    collective_bytes,
    fold_cluster,
    instance_out_bytes,
    schedule_cluster_tasks,
    shard_config,
    template_dram_cycles,
)
from .spec import LINK_RESOURCE, SHARDINGS, TOPOLOGIES, ClusterSpec
from .sweep import (
    CLUSTER_BW_FIELDS,
    CLUSTER_FIELDS,
    CLUSTER_LINK_FIELDS,
    ClusterPoint,
    ClusterResult,
    cluster_csv,
    cluster_fields_for,
    cluster_json,
    cluster_table,
    decode_cluster_result,
    encode_cluster_result,
    evaluate_cluster_point,
)

__all__ = [
    "CLUSTER_BW_FIELDS",
    "CLUSTER_FIELDS",
    "CLUSTER_LINK_FIELDS",
    "LINK_RESOURCE",
    "SHARDINGS",
    "TOPOLOGIES",
    "ClusterPoint",
    "ClusterResult",
    "ClusterSpec",
    "build_cluster_tasks",
    "chip_instance_counts",
    "cluster_csv",
    "cluster_fields_for",
    "cluster_json",
    "cluster_link_cycles",
    "cluster_sim",
    "cluster_table",
    "cluster_templates",
    "collective_bytes",
    "decode_cluster_result",
    "encode_cluster_result",
    "evaluate_cluster_point",
    "fold_cluster",
    "instance_out_bytes",
    "schedule_cluster_tasks",
    "shard_config",
    "template_dram_cycles",
]
