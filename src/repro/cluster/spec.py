"""Cluster specifications: chips, interconnect, and sharding policies.

A :class:`ClusterSpec` describes the *machine side* of a multi-chip
deployment — how many accelerator instances there are and what link
connects them — exactly the way :class:`~repro.workloads.scenario
.Scenario` describes the workload side.  Both are frozen and complete:
equal specs describe the same cluster, and every field participates in
the runtime cache identity (task kind ``"cluster"``).

``link_bw`` follows the ``dram_bw`` convention from PR 5: ``None``
means the interconnect is not modeled at all (a 1-chip cluster, or a
deliberate "infinite fabric" baseline) and the lowered graphs are
bit-identical to unsharded scenarios; ``math.inf`` models the link but
prices every collective at zero cycles, which degenerates to the same
graphs.  ``link_latency`` is a fixed per-collective cost (cycles) added
on top of the bandwidth term — the fabric's software + serialization
overhead, paid once per collective, not per byte.

``topology`` is ``"all-to-all"`` first: every chip reaches every other
chip through one shared full-duplex fabric, so all collectives arbitrate
a single ``link`` resource.  Ring/mesh topologies (per-hop resources)
are roadmap follow-ons; the field exists now so their arrival cannot
silently re-key cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "LINK_RESOURCE",
    "SHARDINGS",
    "TOPOLOGIES",
    "ClusterSpec",
]

#: Resource name of the shared interconnect the collective tasks occupy
#: (the third shared-resource tier: array slots → ``dram`` → ``link``).
LINK_RESOURCE = "link"

#: Supported interconnect topologies (all-to-all first; ring/mesh are
#: roadmap follow-ons).
TOPOLOGIES: Tuple[str, ...] = ("all-to-all",)

#: Sharding policies for lowering a scenario onto the chips:
#:
#: - ``"head"`` — head parallelism: each prefill ``(batch, head)``
#:   instance runs whole on one chip, instances block-partitioned
#:   across chips; decode instances spread the same way (request
#:   parallelism).
#: - ``"tensor"`` — tensor parallelism: every chip runs every prefill
#:   instance over a ``1/n_chips`` embedding slice (column-parallel
#:   projections), so per-chip compute shrinks while collective traffic
#:   grows; decode still uses request parallelism (a single query row
#:   is too small to slice).
SHARDINGS: Tuple[str, ...] = ("head", "tensor")


@dataclass(frozen=True)
class ClusterSpec:
    """One multi-chip deployment: identical accelerators on a shared link.

    The defaults describe the degenerate single-chip cluster, whose
    lowered schedules are byte-identical to unsharded scenarios — the
    invariant ``tests/test_cluster.py`` locks.
    """

    n_chips: int = 1
    link_bw: Optional[float] = None  # bytes per cycle; None = unmodeled
    link_latency: int = 0  # fixed cycles per collective
    topology: str = "all-to-all"

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {self.n_chips}")
        if self.link_bw is not None and not self.link_bw > 0:
            raise ValueError(f"link_bw must be > 0, got {self.link_bw}")
        if self.link_latency < 0:
            raise ValueError(
                f"link_latency must be >= 0, got {self.link_latency}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; have {TOPOLOGIES}"
            )

    @property
    def models_link(self) -> bool:
        """Whether collectives can occupy the ``link`` resource at all:
        more than one chip and a finite bandwidth.  (``math.inf`` prices
        every collective at zero cycles, so nothing is emitted.)"""
        return (
            self.n_chips > 1
            and self.link_bw is not None
            and self.link_bw != float("inf")
        )

    def describe(self) -> str:
        """One-line summary for CLI output and run-registry records."""
        if self.n_chips == 1:
            return "1 chip"
        link = "unmodeled" if self.link_bw is None else f"{self.link_bw:g}B/cy"
        tail = f", lat={self.link_latency}" if self.link_latency else ""
        return f"{self.n_chips} chips ({self.topology}, link={link}{tail})"
