"""Index expressions for Extended Einsum tensor references.

The EDGE notation (Odemuyiwa et al.) indexes tensor ranks with *rank
variable expressions*.  This module models the subset of those expressions
used by the FuseMax paper:

- plain rank variables (``m``),
- shifted variables for iterative ranks (``m1 + 1``),
- affine combinations for partitioning (``m1 * M0 + m0``),
- single fixed coordinates (``RNV[f, M1, p]`` reads coordinate ``M1``).

Every expression can report the rank variables it mentions and evaluate
itself given a concrete binding of those variables.  Shape symbols (such as
the ``M0`` in ``m1 * M0 + m0``) are resolved against a *shape environment*,
a mapping from symbol name to integer extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple, Union

ShapeEnv = Mapping[str, int]

#: A coefficient or offset may be a literal int or the name of a shape symbol.
SymInt = Union[int, str]


def resolve_symint(value: SymInt, shapes: ShapeEnv) -> int:
    """Resolve a literal-or-symbolic integer against a shape environment.

    A leading ``-`` on a symbol negates it (``"-W"`` → ``-shapes["W"]``),
    which lets affine expressions describe trailing windows like
    ``p - W``.
    """
    if isinstance(value, str):
        negate = value.startswith("-")
        symbol = value[1:] if negate else value
        try:
            resolved = shapes[symbol]
        except KeyError:
            raise KeyError(f"shape symbol {symbol!r} is not bound") from None
        return -resolved if negate else resolved
    return value


class IndexExpr:
    """Base class for rank variable expressions."""

    def vars(self) -> Tuple[str, ...]:
        """Rank variables mentioned by this expression, in syntactic order."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int], shapes: ShapeEnv) -> int:
        """Evaluate to a coordinate given variable bindings and shapes."""
        raise NotImplementedError

    def shifted_by(self) -> int:
        """Constant offset applied to a single variable (0 when not shifted)."""
        return 0


@dataclass(frozen=True)
class Var(IndexExpr):
    """A plain rank variable, e.g. the ``m`` in ``A[m, p]``."""

    name: str

    def vars(self) -> Tuple[str, ...]:
        return (self.name,)

    def evaluate(self, env: Mapping[str, int], shapes: ShapeEnv) -> int:
        return env[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Shifted(IndexExpr):
    """A variable plus a constant, e.g. the ``m1 + 1`` in ``RM[m1 + 1, p]``.

    Shifted indices are how EDGE expresses iterative (generative) rank
    access: an Einsum writing ``RM[m1 + 1]`` while reading ``RM[m1]``
    defines a recurrence along ``m1``.
    """

    name: str
    offset: int = 1

    def vars(self) -> Tuple[str, ...]:
        return (self.name,)

    def evaluate(self, env: Mapping[str, int], shapes: ShapeEnv) -> int:
        return env[self.name] + self.offset

    def shifted_by(self) -> int:
        return self.offset

    def __str__(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.name}{sign}{abs(self.offset)}"


@dataclass(frozen=True)
class Affine(IndexExpr):
    """An affine combination of variables, e.g. ``m1 * M0 + m0``.

    ``terms`` maps each variable to its (possibly symbolic) coefficient.
    The FuseMax cascades use this for partitioning a flat rank ``m`` into
    ``(m1, m0)`` chunks via ``K[e, m1 * M0 + m0]``.
    """

    terms: Tuple[Tuple[str, SymInt], ...]
    offset: SymInt = 0

    def vars(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    def evaluate(self, env: Mapping[str, int], shapes: ShapeEnv) -> int:
        total = resolve_symint(self.offset, shapes)
        for name, coeff in self.terms:
            total += env[name] * resolve_symint(coeff, shapes)
        return total

    def __str__(self) -> str:
        parts = [
            name if coeff == 1 else f"{name}*{coeff}" for name, coeff in self.terms
        ]
        if self.offset != 0:
            parts.append(str(self.offset))
        return "+".join(parts)


@dataclass(frozen=True)
class Fixed(IndexExpr):
    """A single fixed coordinate, e.g. the ``M1`` in ``RNV[f, M1, p]``.

    The coordinate may be symbolic (a shape name) so that cascades can refer
    to "the final coordinate of the iterative rank" without committing to a
    concrete extent.
    """

    value: SymInt

    def vars(self) -> Tuple[str, ...]:
        return ()

    def evaluate(self, env: Mapping[str, int], shapes: ShapeEnv) -> int:
        return resolve_symint(self.value, shapes)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Filter:
    """A filtering rank expression such as the ``k <= i`` in ``A[k: k<=i]``.

    Only points of the iteration space satisfying ``<var> <op> <bound>`` are
    touched; culled points contribute the reduction identity.  ``bound`` may
    reference another rank variable (``i``) or a constant.
    """

    var: str
    op: str  # one of "<", "<=", "==", ">=", ">"
    bound: IndexExpr

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        "==": lambda a, b: a == b,
        ">=": lambda a, b: a >= b,
        ">": lambda a, b: a > b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unsupported filter operator {self.op!r}")

    def vars(self) -> Tuple[str, ...]:
        return (self.var,) + tuple(self.bound.vars())

    def test(self, env: Mapping[str, int], shapes: ShapeEnv) -> bool:
        """Evaluate the filter predicate under concrete variable bindings."""
        return self._OPS[self.op](env[self.var], self.bound.evaluate(env, shapes))

    def __str__(self) -> str:
        return f"{self.var}{self.op}{self.bound}"
