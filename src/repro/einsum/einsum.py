"""The Einsum statement: one node of a cascade.

An Einsum couples an output tensor reference, a right-hand-side expression
tree, and explicit reduce actions for the ranks it collapses.  Following the
paper's shorthand (Sec. II-C2), ranks that appear on the right-hand side but
not on the left default to a ``+(∪)`` (sum) reduction unless overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Tuple

from .ops import ReduceOp, SUM_REDUCE
from .tensor import Expr, TensorRef


@dataclass(frozen=True)
class Einsum:
    """A single Extended Einsum statement.

    Attributes:
        output: The left-hand-side tensor reference (may use shifted indices
            on an iterative rank, e.g. ``RM[m1 + 1, p]``).
        expr: The right-hand-side expression tree.
        reductions: Reduce action per collapsed rank variable.  Variables on
            the RHS but absent from both the LHS and this mapping get the
            default sum reduction.
        name: Short label used in figures and diagnostics (e.g. ``"SLNV"``).
        is_initialization: True for EDGE ``Initialization`` statements, which
            execute once rather than per iteration of an iterative rank.
        is_view: True when the Einsum merely re-indexes (partitions) another
            tensor without computing, e.g. ``BK[e, m1, m0] = K[e, m1*M0+m0]``.
            Views contribute no compute and the pass analysis treats a read
            of a view as a read of the backing tensor.
    """

    output: TensorRef
    expr: Expr
    reductions: Mapping[str, ReduceOp] = field(default_factory=dict)
    name: str = ""
    is_initialization: bool = False
    is_view: bool = False

    @property
    def label(self) -> str:
        """Display name: the explicit name if given, else the output tensor."""
        return self.name or self.output.tensor

    def output_vars(self) -> Tuple[str, ...]:
        return self.output.vars()

    def input_vars(self) -> Tuple[str, ...]:
        return self.expr.vars()

    def iteration_vars(self) -> Tuple[str, ...]:
        """All rank variables of this Einsum's iteration space, LHS first."""
        seen = list(self.output_vars())
        for name in self.expr.vars():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def reduced_vars(self) -> Tuple[str, ...]:
        """Rank variables collapsed by this Einsum (explicit or default)."""
        out = set(self.output_vars())
        return tuple(v for v in self.expr.vars() if v not in out)

    def reduce_action(self, var: str) -> ReduceOp:
        """The reduce action applied to ``var`` (default: sum)."""
        return dict(self.reductions).get(var, SUM_REDUCE)

    def reads(self) -> Tuple[TensorRef, ...]:
        """All tensor references on the right-hand side."""
        return tuple(self.expr.refs())

    def read_tensors(self) -> FrozenSet[str]:
        return frozenset(r.tensor for r in self.reads())

    def writes_tensor(self) -> str:
        return self.output.tensor

    def reads_tensor_on(self, tensor: str, var: str) -> bool:
        """Whether this Einsum reads ``tensor`` traversing rank ``var``."""
        return any(r.tensor == tensor and r.carries(var) for r in self.reads())

    def traverses(self, var: str) -> bool:
        """Whether ``var`` is part of this Einsum's iteration space."""
        return var in self.iteration_vars()

    def __str__(self) -> str:
        text = f"{self.output} = {self.expr}"
        explicit = {v: op for v, op in self.reductions.items() if op != SUM_REDUCE}
        if explicit:
            actions = ", ".join(f"∨_{v} {op.name}" for v, op in explicit.items())
            text += f" :: {actions}"
        return text
