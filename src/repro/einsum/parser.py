"""A text front-end for authoring Extended Einsums.

Accepts a pragmatic rendering of the paper's notation:

>>> parse_einsum("Z[m, n] = A[k, m] * B[k, n]")
>>> parse_einsum("GM[p] = QK[m, p] :: max(m)")
>>> parse_einsum("SN[m, p] = exp(QK[m, p] - GM[p])")
>>> parse_einsum("RM[m1+1, p] = max(RM[m1, p], LM[m1, p])")
>>> parse_einsum("BK[e, m1, m0] = K[e, m1*M0 + m0]", view=True)
>>> parse_einsum("S[i+1] = A[k : k <= i]")
>>> parse_einsum("RD[0, p] = 0.0", init=True)

Grammar (informal):

- statement:   ``OUT = EXPR`` optionally followed by ``:: red(var), ...``
  where ``red`` is ``sum`` or ``max`` (naming the reduce action applied to
  ``var``; unlisted reduced variables default to sum, per the shorthand).
- tensor ref:  ``Name[idx, idx, ...]`` or bare ``Name`` (0-tensor).
- index:       variable ``m`` · shifted ``m1+1`` · fixed ``0`` / ``M1``
  (uppercase symbol) · affine ``m1*M0 + m0`` · filtered ``k : k <= i``.
- expression:  ``*`` ``/`` bind tighter than ``+`` ``-``; parentheses;
  functions ``max(a, b)``, ``exp(x)``, ``sigmoid(x)``; numeric literals
  including ``-inf``.  ``exp(a - b)`` folds into the paper's
  ``sub-then-exp`` map action.

Convention: lowercase leading letter → rank variable; uppercase leading
letter inside an index position → a fixed symbolic coordinate (``M1``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .einsum import Einsum
from .index import Affine, Filter, Fixed, IndexExpr, Shifted, Var
from .ops import (
    ADD,
    DIV,
    EXP,
    MAX,
    MAX_REDUCE,
    MUL,
    SIGMOID,
    SUB,
    SUB_THEN_EXP,
    SUM_REDUCE,
)
from .tensor import Expr, Leaf, Literal, Map, TensorRef, Unary


class ParseError(ValueError):
    """Raised on malformed Einsum text."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\d+|inf)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><=|>=|==|::|[\[\],:+\-*/()<>=]))"
)

_FUNCTIONS = {"exp": EXP, "sigmoid": SIGMOID}
_REDUCERS = {"max": MAX_REDUCE, "sum": SUM_REDUCE}


@dataclass
class _Token:
    kind: str  # "number" | "name" | "op"
    text: str


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize at: {remainder[:20]!r}")
        pos = match.end()
        for kind in ("number", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        self.pos += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r} in {self.text!r}"
            )
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- grammar -------------------------------------------------------------

    def parse_statement(self) -> Tuple[TensorRef, Expr, dict]:
        output = self.parse_tensor_ref()
        self.expect("=")
        expr = self.parse_expr()
        reductions = {}
        if self.accept("::"):
            reductions = self.parse_reductions()
        if not self.at_end():
            raise ParseError(
                f"trailing input {self.peek().text!r} in {self.text!r}"
            )
        return output, expr, reductions

    def parse_reductions(self) -> dict:
        reductions = {}
        while True:
            name = self.next()
            if name.kind != "name" or name.text not in _REDUCERS:
                raise ParseError(
                    f"unknown reduce action {name.text!r}; "
                    f"have {sorted(_REDUCERS)}"
                )
            self.expect("(")
            var = self.next()
            self.expect(")")
            reductions[var.text] = _REDUCERS[name.text]
            if not self.accept(","):
                break
        return reductions

    # expression: additive over multiplicative over atoms
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while True:
            if self.accept("+"):
                left = Map(ADD, left, self.parse_term())
            elif self.accept("-"):
                left = Map(SUB, left, self.parse_term())
            else:
                return left

    def parse_term(self) -> Expr:
        left = self.parse_atom()
        while True:
            if self.accept("*"):
                left = Map(MUL, left, self.parse_atom())
            elif self.accept("/"):
                left = Map(DIV, left, self.parse_atom())
            else:
                return left

    def parse_atom(self) -> Expr:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of expression in {self.text!r}")
        if token.text == "-":
            # Unary minus: only numeric literals may be negated.
            self.next()
            number = self.next()
            if number.kind != "number":
                raise ParseError(
                    f"unary minus requires a literal in {self.text!r}"
                )
            return Literal(-self._number(number.text))
        if token.text == "(":
            self.next()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if token.kind == "number":
            self.next()
            return Literal(self._number(token.text))
        if token.kind == "name":
            nxt = self.peek(1)
            if token.text == "max" and nxt is not None and nxt.text == "(":
                self.next()
                self.expect("(")
                a = self.parse_expr()
                self.expect(",")
                b = self.parse_expr()
                self.expect(")")
                return Map(MAX, a, b)
            if token.text in _FUNCTIONS and nxt is not None and nxt.text == "(":
                self.next()
                self.expect("(")
                inner = self.parse_expr()
                self.expect(")")
                if token.text == "exp" and _is_subtraction(inner):
                    return Map(SUB_THEN_EXP, inner.lhs, inner.rhs)
                return Unary(_FUNCTIONS[token.text], inner)
            return Leaf(self.parse_tensor_ref())
        raise ParseError(f"unexpected token {token.text!r} in {self.text!r}")

    @staticmethod
    def _number(text: str) -> float:
        if text == "inf":
            return math.inf
        if text == "-inf":
            return -math.inf
        return float(text)

    # -- tensor references -----------------------------------------------------

    def parse_tensor_ref(self) -> TensorRef:
        name = self.next()
        if name.kind != "name":
            raise ParseError(f"expected tensor name, found {name.text!r}")
        if not self.accept("["):
            return TensorRef(name.text, ())
        indices: List[IndexExpr] = []
        filters: List[Filter] = []
        while True:
            indices.append(self.parse_index())
            if self.accept(":"):
                filters.append(self.parse_filter())
            if self.accept(","):
                continue
            self.expect("]")
            break
        return TensorRef(name.text, tuple(indices), tuple(filters))

    def parse_index(self) -> IndexExpr:
        """One index position: fixed, variable, shifted, or affine."""
        terms: List[Tuple[str, Union[int, str]]] = []
        offset: Union[int, str] = 0
        sign = 1
        while True:
            token = self.next()
            if token.kind == "number":
                value = sign * int(float(token.text))
                offset = value if offset == 0 else _add_offsets(offset, value)
            elif token.kind == "name":
                if token.text[0].isupper() and not terms and sign == 1:
                    # A bare uppercase symbol is a fixed symbolic coordinate
                    # unless it is a coefficient (handled under '*').
                    follower = self.peek()
                    if follower is None or follower.text in ("]", ",", ":"):
                        if offset == 0 and not terms:
                            return Fixed(token.text)
                if self.accept("*"):
                    coeff_token = self.next()
                    coeff: Union[int, str]
                    if coeff_token.kind == "number":
                        coeff = sign * int(float(coeff_token.text))
                    else:
                        coeff = coeff_token.text
                    terms.append((token.text, coeff))
                else:
                    terms.append((token.text, sign))
            else:
                raise ParseError(
                    f"unexpected {token.text!r} in index of {self.text!r}"
                )
            if self.accept("+"):
                sign = 1
                continue
            if self.accept("-"):
                sign = -1
                continue
            break
        return _build_index(terms, offset)

    def parse_filter(self) -> Filter:
        var = self.next()
        op = self.next()
        if op.text not in ("<", "<=", "==", ">=", ">"):
            raise ParseError(f"bad filter operator {op.text!r}")
        bound = self.parse_index()
        return Filter(var.text, op.text, bound)


def _add_offsets(a: Union[int, str], b: int) -> Union[int, str]:
    if isinstance(a, int):
        return a + b
    raise ParseError("cannot combine symbolic and numeric offsets")


def _build_index(
    terms: Sequence[Tuple[str, Union[int, str]]], offset: Union[int, str]
) -> IndexExpr:
    if not terms:
        return Fixed(offset)
    if len(terms) == 1 and terms[0][1] == 1:
        name = terms[0][0]
        if offset == 0:
            return Var(name)
        if isinstance(offset, int):
            return Shifted(name, offset)
    return Affine(tuple(terms), offset)


def _is_subtraction(expr: Expr) -> bool:
    return isinstance(expr, Map) and expr.op is SUB


def parse_einsum(
    text: str,
    name: str = "",
    init: bool = False,
    view: bool = False,
) -> Einsum:
    """Parse one Einsum statement.

    Args:
        text: The statement, e.g. ``"Z[m, n] = A[k, m] * B[k, n]"``.
        name: Optional label (defaults to the output tensor's name).
        init: Mark as an EDGE Initialization statement.
        view: Mark as a pure re-indexing (no compute).
    """
    output, expr, reductions = _Parser(text).parse_statement()
    return Einsum(
        output=output,
        expr=expr,
        reductions=reductions,
        name=name,
        is_initialization=init,
        is_view=view,
    )
