"""Map, reduce, and unary actions for Extended Einsums.

EDGE (Odemuyiwa et al.) separates an Einsum's computation into *actions*:

- **map** — a pair-wise operation between two tensors, made of a *merge*
  operator (which points of the iteration space to touch) and a *compute*
  operator (what to do with the surviving data values);
- **reduce** — the operation used to collapse a rank of the iteration space;
- **populate** — placement of the result on the left-hand side (always the
  default populate ``=`` in this paper).

This module defines the concrete operators the FuseMax cascades need:
multiply, add, max, divide, and the fused ``sub-then-exp``, plus the
``exp``/``sigmoid``/``reciprocal`` unary functions and the ``+``/``max``
reductions.  Each operator carries a numpy implementation (used by the
functional interpreter) and a *cost class* (used by the op-counting
analysis to attribute hardware cost: a MACC, a divide, an exponentiation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Cost classes recognised by :mod:`repro.analysis.opcount`.
COST_CLASSES = ("macc", "add", "mul", "max", "divide", "exp", "other")


@dataclass(frozen=True)
class MapOp:
    """A pair-wise map action: merge operator + compute operator."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    merge: str  # "intersection", "union", "pass-through", "right-nonzero"
    cost_class: str = "other"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(a, b)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ReduceOp:
    """A reduce action collapsing one rank of the iteration space."""

    name: str
    fn: Callable[..., np.ndarray]  # numpy reduction taking (array, axis=...)
    identity: float
    cost_class: str = "other"

    def reduce(self, array: np.ndarray, axis: int) -> np.ndarray:
        return self.fn(array, axis=axis)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp:
    """A user-defined unary operation applied point-wise to a tensor."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    cost_class: str = "other"

    def __call__(self, a: np.ndarray) -> np.ndarray:
        return self.fn(a)

    def __str__(self) -> str:
        return self.name


def _sub_then_exp(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.exp(a - b)


def _safe_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """EDGE ``÷(←)``: only points with a non-zero divisor are touched.

    Culled points (divisor exactly zero) keep the populate default of zero,
    which is what makes iterative cascades like Cascade 3 well defined at
    their zero-initialised first step.
    """
    a, b = np.broadcast_arrays(np.asarray(a, dtype=float), np.asarray(b))
    out = np.zeros(a.shape, dtype=float)
    np.divide(a, b, out=out, where=(b != 0))
    return out


def _sigmoid(a: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-a))


# --- map actions -----------------------------------------------------------

#: ``x(∩)`` — multiply values surviving intersection.
MUL = MapOp("mul", np.multiply, merge="intersection", cost_class="macc")

#: ``+(∪)`` — add values surviving union.
ADD = MapOp("add", np.add, merge="union", cost_class="add")

#: ``-(∪)`` — subtract (used when building correction terms explicitly).
SUB = MapOp("sub", np.subtract, merge="union", cost_class="add")

#: ``max(∪)`` — the running/local maximum combine of the paper (Sec. II-C1).
MAX = MapOp("max", np.maximum, merge="union", cost_class="max")

#: ``÷(←)`` — divide; the merge only touches points non-zero in the divisor.
DIV = MapOp("div", _safe_divide, merge="right-nonzero", cost_class="divide")

#: ``sub-then-exp(1)`` — ``e^(A - B)`` with the pass-through merge.
SUB_THEN_EXP = MapOp(
    "sub-then-exp", _sub_then_exp, merge="pass-through", cost_class="exp"
)

# --- reduce actions --------------------------------------------------------

#: The default ``∨ +(∪)`` reduction (dropped in shorthand notation).
SUM_REDUCE = ReduceOp("sum", np.sum, identity=0.0, cost_class="add")

#: ``∨ max(∪)`` — reduction by maximum, e.g. Einsum 29 (``GM_p``).
MAX_REDUCE = ReduceOp("max", np.max, identity=-np.inf, cost_class="max")

# --- unary operations ------------------------------------------------------

#: Point-wise exponential (naive softmax numerator, Einsum 26).
EXP = UnaryOp("exp", np.exp, cost_class="exp")

#: Point-wise sigmoid (EDGE's example of a user-defined unary op).
SIGMOID = UnaryOp("sigmoid", _sigmoid, cost_class="exp")

#: Point-wise negation.
NEG = UnaryOp("neg", np.negative, cost_class="add")

_MAP_OPS = {op.name: op for op in (MUL, ADD, SUB, MAX, DIV, SUB_THEN_EXP)}
_REDUCE_OPS = {op.name: op for op in (SUM_REDUCE, MAX_REDUCE)}
_UNARY_OPS = {op.name: op for op in (EXP, SIGMOID, NEG)}


def map_op(name: str) -> MapOp:
    """Look up a map action by name."""
    try:
        return _MAP_OPS[name]
    except KeyError:
        raise KeyError(f"unknown map op {name!r}; have {sorted(_MAP_OPS)}") from None


def reduce_op(name: str) -> ReduceOp:
    """Look up a reduce action by name."""
    try:
        return _REDUCE_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown reduce op {name!r}; have {sorted(_REDUCE_OPS)}"
        ) from None


def unary_op(name: str) -> UnaryOp:
    """Look up a unary operation by name."""
    try:
        return _UNARY_OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown unary op {name!r}; have {sorted(_UNARY_OPS)}"
        ) from None
