"""Tensor references and expression trees for Extended Einsums.

A :class:`TensorRef` names a tensor and gives one index expression per rank
(``A[k, m]``), optionally restricted by filters (``A[k: k<=i]``).  An
:class:`Expr` tree combines tensor references, scalars, map actions, and
unary operations into the right-hand side of an Einsum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from .index import Filter, Fixed, IndexExpr, Var
from .ops import MapOp, UnaryOp


def _coerce_index(index: Union[str, IndexExpr]) -> IndexExpr:
    """Allow bare strings as shorthand for plain rank variables."""
    if isinstance(index, str):
        return Var(index)
    return index


@dataclass(frozen=True)
class TensorRef:
    """A reference to (a slice of) a named tensor inside an Einsum.

    ``indices`` holds one :class:`IndexExpr` per rank of the tensor, in rank
    order.  ``filters`` optionally restrict which points are touched.
    """

    tensor: str
    indices: Tuple[IndexExpr, ...]
    filters: Tuple[Filter, ...] = ()

    @staticmethod
    def of(tensor: str, *indices: Union[str, IndexExpr], filters=()) -> "TensorRef":
        """Convenience constructor accepting bare variable names."""
        return TensorRef(
            tensor, tuple(_coerce_index(ix) for ix in indices), tuple(filters)
        )

    def vars(self) -> Tuple[str, ...]:
        """Rank variables mentioned by indices and filters, deduplicated."""
        seen = []
        for ix in self.indices:
            for name in ix.vars():
                if name not in seen:
                    seen.append(name)
        for flt in self.filters:
            for name in flt.vars():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def rank_count(self) -> int:
        return len(self.indices)

    def carries(self, var: str) -> bool:
        """Whether this reference traverses rank variable ``var``."""
        return any(var in ix.vars() for ix in self.indices)

    def iterative_offset(self, var: str) -> int:
        """The shift applied to ``var`` (e.g. +1 for ``RM[m1 + 1, p]``)."""
        for ix in self.indices:
            if var in ix.vars():
                return ix.shifted_by()
        return 0

    def is_fixed_coordinate(self, rank_position: int) -> bool:
        """Whether the given rank is pinned to a single coordinate."""
        return isinstance(self.indices[rank_position], Fixed)

    def __str__(self) -> str:
        inner = ", ".join(str(ix) for ix in self.indices)
        for flt in self.filters:
            inner += f": {flt}"
        return f"{self.tensor}[{inner}]"


class Expr:
    """Base class for right-hand-side expression trees."""

    def refs(self) -> Iterator[TensorRef]:
        """Yield every tensor reference in the tree, left to right."""
        raise NotImplementedError

    def vars(self) -> Tuple[str, ...]:
        """Rank variables mentioned anywhere in the tree, deduplicated."""
        seen = []
        for ref in self.refs():
            for name in ref.vars():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)


@dataclass(frozen=True)
class Leaf(Expr):
    """A tensor reference appearing as an operand."""

    ref: TensorRef

    def refs(self) -> Iterator[TensorRef]:
        yield self.ref

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class Literal(Expr):
    """A scalar constant operand (e.g. ``1/sqrt(E)`` or ``-inf``)."""

    value: float

    def refs(self) -> Iterator[TensorRef]:
        return iter(())

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Map(Expr):
    """A map action between two sub-expressions (infix shorthand in EDGE)."""

    op: MapOp
    lhs: Expr
    rhs: Expr

    def refs(self) -> Iterator[TensorRef]:
        yield from self.lhs.refs()
        yield from self.rhs.refs()

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.name} {self.rhs})"


@dataclass(frozen=True)
class Unary(Expr):
    """A user-defined unary operation applied to a sub-expression."""

    op: UnaryOp
    child: Expr

    def refs(self) -> Iterator[TensorRef]:
        yield from self.child.refs()

    def __str__(self) -> str:
        return f"{self.op.name}({self.child})"


def ref(tensor: str, *indices: Union[str, IndexExpr], filters=()) -> Leaf:
    """Build a :class:`Leaf` around a tensor reference (main authoring API)."""
    return Leaf(TensorRef.of(tensor, *indices, filters=filters))
