"""Cascades of Einsums.

A cascade (TeAAL, Nayak et al.) is a sequence of dependent Einsums forming a
directed acyclic graph: later Einsums may read tensors produced by earlier
ones.  Cascades may additionally declare *iterative ranks* (EDGE's
generative ranks): the extended Einsums of the cascade are then evaluated
once per coordinate of the iterative rank, with shifted output indices
(``RM[m1 + 1, p]``) expressing the recurrence and a stopping condition
(``⋄ : m1 ≥ M1``) bounding the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from .einsum import Einsum
from .index import ShapeEnv, SymInt, resolve_symint


class CascadeError(ValueError):
    """Raised when a cascade is structurally invalid."""


@dataclass(frozen=True)
class IterativeRank:
    """An iterative rank declaration: variable name and stopping extent.

    ``var`` iterates from 0 while ``var < extent`` (the paper's stopping
    condition ``⋄ : var ≥ extent``).  Tensors indexed by ``var + 1`` thus
    carry ``extent + 1`` coordinates along that rank.
    """

    var: str
    extent: SymInt

    def resolved_extent(self, shapes: ShapeEnv) -> int:
        return resolve_symint(self.extent, shapes)


@dataclass(frozen=True)
class Cascade:
    """An ordered DAG of Einsums with optional iterative ranks.

    Attributes:
        name: Identifier used in reports (e.g. ``"attention-1pass"``).
        einsums: The statements in program order.  Initialization statements
            (``is_initialization=True``) run once; the rest are the extended
            Einsums, re-evaluated per iterative-rank coordinate when
            ``iterative`` is non-empty.
        inputs: Names of tensors supplied from outside the cascade.
        rank_shapes: Extent symbol (or literal) per rank variable, e.g.
            ``{"m0": "M0", "p": "P"}``.
        iterative: Iterative rank declarations, outermost first.
        outputs: Names of the tensors that constitute the cascade's result
            (defaults to tensors never read by a later Einsum).
    """

    name: str
    einsums: Tuple[Einsum, ...]
    inputs: Tuple[str, ...]
    rank_shapes: Mapping[str, SymInt]
    iterative: Tuple[IterativeRank, ...] = ()
    outputs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self._validate()

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def build(
        name: str,
        einsums: Sequence[Einsum],
        inputs: Iterable[str],
        rank_shapes: Mapping[str, SymInt],
        iterative: Sequence[IterativeRank] = (),
        outputs: Iterable[str] = (),
    ) -> "Cascade":
        return Cascade(
            name=name,
            einsums=tuple(einsums),
            inputs=tuple(inputs),
            rank_shapes=dict(rank_shapes),
            iterative=tuple(iterative),
            outputs=tuple(outputs),
        )

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        input_set = set(self.inputs)
        defined = set(self.inputs)
        for einsum in self.einsums:
            written = einsum.writes_tensor()
            if written in input_set:
                raise CascadeError(
                    f"{self.name}: Einsum {einsum.label!r} writes input "
                    f"tensor {written!r}"
                )
            for ref_ in einsum.reads():
                if ref_.tensor not in defined and ref_.tensor != written:
                    raise CascadeError(
                        f"{self.name}: Einsum {einsum.label!r} reads "
                        f"undefined tensor {ref_.tensor!r}"
                    )
            defined.add(written)
            for var in einsum.iteration_vars():
                if var not in self.rank_shapes:
                    raise CascadeError(
                        f"{self.name}: rank variable {var!r} in Einsum "
                        f"{einsum.label!r} has no declared shape"
                    )

    # -- structural queries ---------------------------------------------------

    @property
    def iterative_vars(self) -> Tuple[str, ...]:
        return tuple(it.var for it in self.iterative)

    def is_iterative(self) -> bool:
        return bool(self.iterative)

    def initialization(self) -> Tuple[Einsum, ...]:
        return tuple(e for e in self.einsums if e.is_initialization)

    def extended(self) -> Tuple[Einsum, ...]:
        return tuple(e for e in self.einsums if not e.is_initialization)

    def tensors(self) -> Tuple[str, ...]:
        """All tensor names, inputs first, then in order of definition."""
        names: List[str] = list(self.inputs)
        for einsum in self.einsums:
            if einsum.writes_tensor() not in names:
                names.append(einsum.writes_tensor())
        return tuple(names)

    def intermediates(self) -> Tuple[str, ...]:
        """Tensors produced by the cascade that are not declared outputs."""
        outs = set(self.result_tensors())
        return tuple(
            t for t in self.tensors() if t not in self.inputs and t not in outs
        )

    def result_tensors(self) -> Tuple[str, ...]:
        """Declared outputs, or tensors never consumed downstream."""
        if self.outputs:
            return self.outputs
        consumed = set()
        for einsum in self.einsums:
            consumed.update(einsum.read_tensors())
        produced = [e.writes_tensor() for e in self.einsums]
        return tuple(dict.fromkeys(t for t in produced if t not in consumed))

    def producers(self, tensor: str) -> Tuple[Einsum, ...]:
        """Einsums writing ``tensor`` (several for iterative tensors)."""
        return tuple(e for e in self.einsums if e.writes_tensor() == tensor)

    def producer(self, tensor: str) -> Optional[Einsum]:
        """The non-initialization producer of ``tensor``, if any."""
        candidates = [
            e for e in self.producers(tensor) if not e.is_initialization
        ]
        if not candidates:
            candidates = list(self.producers(tensor))
        return candidates[0] if candidates else None

    def consumers(self, tensor: str) -> Tuple[Einsum, ...]:
        return tuple(e for e in self.einsums if tensor in e.read_tensors())

    def find(self, label: str) -> Einsum:
        """Look up an Einsum by its label."""
        for einsum in self.einsums:
            if einsum.label == label:
                return einsum
        raise KeyError(f"{self.name}: no Einsum labelled {label!r}")

    def rank_extent(self, var: str, shapes: ShapeEnv) -> int:
        """Concrete extent of a rank variable under a shape environment."""
        return resolve_symint(self.rank_shapes[var], shapes)

    def __str__(self) -> str:
        lines = [f"Cascade {self.name}:"]
        init = self.initialization()
        if init:
            lines.append("  Initialization:")
            lines.extend(f"    {e}" for e in init)
            lines.append("  Extended Einsums:")
        for einsum in self.extended():
            lines.append(f"    {einsum}")
        for it in self.iterative:
            lines.append(f"  ⋄ : {it.var} >= {it.extent}")
        return "\n".join(lines)
