"""Extended Einsum intermediate representation (EDGE subset).

The public authoring API:

>>> from repro.einsum import ref, Einsum, Cascade, Map, MUL
>>> gemm = Einsum(
...     output=ref("Z", "m", "n").ref,
...     expr=Map(MUL, ref("A", "k", "m"), ref("B", "k", "n")),
...     name="Z",
... )
"""

from .cascade import Cascade, CascadeError, IterativeRank
from .einsum import Einsum
from .index import Affine, Filter, Fixed, IndexExpr, Shifted, Var, resolve_symint
from .ops import (
    ADD,
    DIV,
    EXP,
    MAX,
    MAX_REDUCE,
    MUL,
    MapOp,
    NEG,
    ReduceOp,
    SIGMOID,
    SUB,
    SUB_THEN_EXP,
    SUM_REDUCE,
    UnaryOp,
    map_op,
    reduce_op,
    unary_op,
)
from .parser import ParseError, parse_einsum
from .tensor import Expr, Leaf, Literal, Map, TensorRef, Unary, ref

__all__ = [
    "Affine",
    "ADD",
    "Cascade",
    "CascadeError",
    "DIV",
    "Einsum",
    "EXP",
    "Expr",
    "Filter",
    "Fixed",
    "IndexExpr",
    "IterativeRank",
    "Leaf",
    "Literal",
    "Map",
    "MapOp",
    "MAX",
    "MAX_REDUCE",
    "MUL",
    "NEG",
    "ParseError",
    "ReduceOp",
    "SIGMOID",
    "Shifted",
    "SUB",
    "SUB_THEN_EXP",
    "SUM_REDUCE",
    "TensorRef",
    "Unary",
    "UnaryOp",
    "Var",
    "map_op",
    "parse_einsum",
    "reduce_op",
    "ref",
    "resolve_symint",
    "unary_op",
]
