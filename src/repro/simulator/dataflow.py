"""PE-level simulation of one output-stationary systolic tile (Fig. 5).

Simulates the 2D array computing a ``BQK`` tile value by value: operand
``BK`` streams in from the west edge (one row per array row, skewed one
cycle per row), operand ``Q`` from the north edge (skewed per column),
each PE multiply-accumulates into its stationary output register, and the
finished tile drains south toward the 1D array — applying the spatial
``max`` reduction on the way out to produce the local maxima ``LM``
(which is how FuseMax gets LM "for free" on the inter-PE network).

This is the numerical ground truth under the coarse
:class:`~repro.simulator.systolic.TileTiming` model: the simulated cycle
counts must match ``fill + compute + drain`` arithmetic, and the simulated
values must match numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TileResult:
    """Outcome of simulating one tile."""

    output: np.ndarray  # (rows, cols) stationary results
    local_max: np.ndarray  # (cols,) max over rows, from the drain network
    compute_cycles: int  # cycles until the last PE finishes accumulating
    drain_cycles: int  # cycles to shift/reduce the tile out

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.drain_cycles


def simulate_tile(a: np.ndarray, b: np.ndarray) -> TileResult:
    """Simulate ``Z[r, c] = Σ_e a[e, r] · b[e, c]`` on an R×C array.

    ``a`` (shape E×R) streams from the west into rows; ``b`` (shape E×C)
    from the north into columns.  Row r's stream is delayed r cycles and
    column c's stream c cycles — the standard skew that makes operand
    pairs meet at PE (r, c) exactly aligned.
    """
    e_depth, rows = a.shape
    e_check, cols = b.shape
    if e_depth != e_check:
        raise ValueError(f"reduction depths differ: {e_depth} vs {e_check}")

    acc = np.zeros((rows, cols))
    # a_reg[r][c] holds the A value PE (r, c) forwards east next cycle.
    a_reg: list = [[None] * cols for _ in range(rows)]
    b_reg: list = [[None] * cols for _ in range(rows)]
    remaining = np.full((rows, cols), e_depth, dtype=int)
    cycle = 0
    # Upper bound on the pipeline depth; the loop exits as soon as done.
    horizon = e_depth + rows + cols + 2
    while remaining.any():
        if cycle > horizon:
            raise RuntimeError("systolic simulation failed to converge")
        new_a: list = [[None] * cols for _ in range(rows)]
        new_b: list = [[None] * cols for _ in range(rows)]
        for r in range(rows):
            for c in range(cols):
                # Operand arriving from the west (or the row input port).
                if c == 0:
                    step = cycle - r
                    a_in = a[step, r] if 0 <= step < e_depth else None
                else:
                    a_in = a_reg[r][c - 1]
                # Operand arriving from the north (or the column port).
                if r == 0:
                    step = cycle - c
                    b_in = b[step, c] if 0 <= step < e_depth else None
                else:
                    b_in = b_reg[r - 1][c]
                if a_in is not None and b_in is not None:
                    acc[r, c] += a_in * b_in
                    remaining[r, c] -= 1
                new_a[r][c] = a_in
                new_b[r][c] = b_in
        a_reg, b_reg = new_a, new_b
        cycle += 1
    compute_cycles = cycle

    # Drain south with an in-network max: one row of results leaves per
    # cycle; each edge crossing folds into the running column maximum.
    running = np.full(cols, -np.inf)
    for r in range(rows - 1, -1, -1):
        running = np.maximum(running, acc[r])
    drain_cycles = rows
    return TileResult(
        output=acc,
        local_max=running,
        compute_cycles=compute_cycles,
        drain_cycles=drain_cycles,
    )


def expected_compute_cycles(e_depth: int, rows: int, cols: int) -> int:
    """The closed form the simulation must reproduce.

    The last PE (rows-1, cols-1) receives its first aligned operand pair
    at cycle ``(rows - 1) + (cols - 1)`` and needs ``e_depth`` accumulation
    cycles, so it finishes at ``e_depth + rows + cols - 2``.
    """
    return e_depth + rows + cols - 2
