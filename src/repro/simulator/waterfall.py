"""ASCII waterfall (Gantt) rendering of binding simulations — Fig. 4 as text.

Turns a :class:`~repro.simulator.engine.SimResult` into a per-resource
timeline where each character cell covers a fixed number of cycles, so the
software-pipelined epochs of the interleaved binding are visible directly:

    2d |BBBBBBSLLLLLBBBBBB...
    1d |....mM.ppddnnnn....

Intended for notebooks/terminals; the examples use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .engine import SimResult, Task


@dataclass(frozen=True)
class Lane:
    """One resource's rendered timeline."""

    resource: str
    text: str


def _start_estimate(task: Task, finish: Mapping[str, int]) -> int:
    """Approximate start = finish - duration (exact for serial mode,
    a visual lower bound when interleaved)."""
    return max(0, finish[task.name] - task.duration)


def render_waterfall(
    tasks: Sequence[Task],
    result: SimResult,
    width: int = 72,
    label_of=None,
) -> List[Lane]:
    """Render one character lane per resource.

    ``label_of`` maps a task name to its single-character glyph (default:
    first letter).  Later tasks overwrite earlier ones in a cell, which
    reads naturally for pipelines.
    """
    if label_of is None:
        def label_of(name):
            return name[0]
    makespan = max(result.makespan, 1)
    scale = max(1, -(-makespan // width))  # cycles per character cell
    lanes: Dict[str, List[str]] = {}
    for task in tasks:
        lane = lanes.setdefault(task.resource, ["."] * (-(-makespan // scale)))
        start = _start_estimate(task, result.finish_times)
        end = result.finish_times[task.name]
        for cell in range(start // scale, max(start // scale + 1, -(-end // scale))):
            if cell < len(lane):
                lane[cell] = label_of(task.name)
    return [Lane(resource, "".join(cells)) for resource, cells in sorted(lanes.items())]


def waterfall_text(
    tasks: Sequence[Task], result: SimResult, width: int = 72
) -> str:
    """The full waterfall as one printable string."""
    lanes = render_waterfall(tasks, result, width)
    name_width = max(len(lane.resource) for lane in lanes)
    lines = [
        f"{lane.resource:>{name_width}} |{lane.text}" for lane in lanes
    ]
    cycles_per_cell = max(1, -(-max(result.makespan, 1) // width))
    lines.append(f"{'':>{name_width}}  ({cycles_per_cell} cycles per cell, "
                 f"makespan {result.makespan})")
    return "\n".join(lines)


def binding_waterfall(config, binding: str, width: int = 72,
                      engine: str = "event") -> str:
    """Simulate one binding and render its waterfall in one call."""
    from .pipeline import binding_sim

    tasks, result = binding_sim(config, binding, engine=engine)
    return waterfall_text(tasks, result, width)
