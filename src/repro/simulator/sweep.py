"""Binding sweeps over the sequence-length axis (the long-M1 regime).

The paper's pipelining argument is about *steady state*: the interleaved
binding amortizes fill/drain over an ever-longer stream of M1 chunks,
while tile-serial pays it per tile.  With the event-driven scheduler one
simulation costs O(tasks), so the chunk axis opens up to the hundreds of
thousands of tokens the paper targets (chunks ∈ {16 … 8192} at M0 = 256
columns is M up to ~2M).  This module defines the sweep's grid points
and result rows; the parallel/cached execution lives in
:func:`repro.runtime.executor.sweep_bindings`, and
``repro simulate --sweep`` drives it from the CLI.

Each point is pure and cheap to describe — (binding, chunks, array dim,
1D lanes, embedding) — so it flows through the PR-1 runtime unchanged:
points fan out over processes, results content-address into the cache,
and a rerun of a grown grid only computes the new points.  The 2D array
dimension, the 1D lane count, and the embedding depth sweep as
*independent* axes: ``pe_1d`` decouples the vector array from the
paper's matched floorplan, and ``embedding`` scans the arithmetic
intensity of each tile.

Scenario evaluations (:class:`~repro.workloads.scenario.Scenario`
merged multi-instance schedules) produce :class:`ScenarioResult` rows
through the same machinery under task kind ``"scenario"``.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from time import perf_counter

from ..workloads.scenario import Scenario
from .pipeline import (
    BINDINGS,
    PipelineConfig,
    binding_sim,
    build_scenario_tasks,
    scenario_sim,
    scenario_spill_bytes,
    schedule_scenario_tasks,
)

#: Chunk counts (M1) of the default sweep: 16 → 8192 in powers of two,
#: i.e. sequence lengths 4K → 2M at the default 256-column array.
DEFAULT_SWEEP_CHUNKS: Tuple[int, ...] = (
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)

#: PE-array dimensions of the default sweep.
DEFAULT_SWEEP_ARRAY_DIMS: Tuple[int, ...] = (128, 256)

#: Keys of one binding sweep result, in CSV column order.
SWEEP_FIELDS: Tuple[str, ...] = (
    "binding",
    "chunks",
    "array_dim",
    "pe_1d",
    "embedding",
    "seq_len",
    "makespan",
    "busy_2d",
    "busy_1d",
    "util_2d",
    "util_1d",
)


@dataclass(frozen=True)
class BindingPoint:
    """One grid point of a binding sweep (pickles cleanly to workers).

    The 1D array is sized to the 2D array's edge (``pe_1d = array_dim``)
    unless overridden, matching the paper's FuseMax floorplan.
    """

    binding: str
    chunks: int
    array_dim: int = 256
    embedding: int = 64
    pe_1d: Optional[int] = None

    def __post_init__(self) -> None:
        if self.binding not in BINDINGS:
            raise ValueError(f"unknown binding {self.binding!r}")
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")

    @property
    def name(self) -> str:
        """Short display label."""
        return f"{self.binding}@{self.array_dim}"

    @property
    def resolved_pe_1d(self) -> int:
        return self.pe_1d if self.pe_1d is not None else self.array_dim

    def describe(self) -> str:
        """Full config label for run-registry grid summaries: every
        swept axis except the chunk count (recorded as seq_lens), so
        points differing in lanes or embedding stay attributable."""
        return (
            f"{self.binding}@{self.array_dim}+{self.resolved_pe_1d}"
            f"-E{self.embedding}"
        )

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            chunks=self.chunks,
            embedding=self.embedding,
            array_dim=self.array_dim,
            pe_1d=self.resolved_pe_1d,
        )


@dataclass(frozen=True)
class BindingResult:
    """Utilization-vs-length row measured by one binding simulation."""

    binding: str
    chunks: int
    array_dim: int
    pe_1d: int
    embedding: int
    seq_len: int
    makespan: int
    busy_2d: int
    busy_1d: int
    util_2d: float
    util_1d: float

    def row(self) -> Tuple:
        """The result as a tuple in :data:`SWEEP_FIELDS` order."""
        return tuple(getattr(self, field) for field in SWEEP_FIELDS)


assert SWEEP_FIELDS == tuple(f.name for f in fields(BindingResult))


def evaluate_binding_point(
    point: BindingPoint, engine: str = "event"
) -> BindingResult:
    """Simulate one grid point (event-driven core unless a differential
    run explicitly asks for the cycle oracle)."""
    config = point.config()
    _, result = binding_sim(config, point.binding, engine=engine)
    makespan = result.makespan
    return BindingResult(
        binding=point.binding,
        chunks=point.chunks,
        array_dim=point.array_dim,
        pe_1d=point.resolved_pe_1d,
        embedding=point.embedding,
        seq_len=config.seq_len,
        makespan=makespan,
        busy_2d=result.busy_cycles.get("2d", 0),
        busy_1d=result.busy_cycles.get("1d", 0),
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
    )


# --------------------------------------------------------------------------
# Scenario evaluation: one merged multi-instance schedule per point.
# --------------------------------------------------------------------------

#: Keys of one scenario result, in CSV column order.  Every axis a
#: scenario can vary on (array dims, lanes, embedding, slots) is a
#: column, so rows from same-named scenarios stay attributable.
SCENARIO_FIELDS: Tuple[str, ...] = (
    "scenario",
    "binding",
    "instances",
    "array_dim",
    "pe_1d",
    "embedding",
    "slots",
    "seq_len",
    "n_tasks",
    "makespan",
    "busy_2d",
    "busy_1d",
    "busy_io",
    "util_2d",
    "util_1d",
)

#: Bandwidth columns appended to :data:`SCENARIO_FIELDS` when any row's
#: scenario set a finite ``dram_bw``; results without one keep the
#: historical column set byte-for-byte.
SCENARIO_BW_FIELDS: Tuple[str, ...] = ("dram_bw", "busy_dram", "util_dram")

#: Capacity/QoS columns appended after the bandwidth columns when any
#: row's scenario models the on-chip buffer or a non-uniform QoS
#: discipline; plain rows keep the historical column set byte-for-byte
#: (the same gating contract as :data:`SCENARIO_BW_FIELDS`).
SCENARIO_CAP_FIELDS: Tuple[str, ...] = ("buffer_bytes", "qos", "spill_bytes")


@dataclass(frozen=True)
class ScenarioResult:
    """Measured schedule of one scenario's merged multi-instance graph.

    ``busy_io`` counts fill/drain cycles on the array-edge resource
    (tile-serial graphs only; 0 under the interleaved binding, which
    hides them behind compute).  ``busy_dram`` counts cycles the shared
    memory link was held (0 unless the scenario set ``dram_bw``, in
    which case ``n_tasks`` also counts the lowered transfer tasks).
    ``spill_bytes`` is the refill traffic the scenario's finite
    ``buffer_bytes`` forced over the baseline (0 when the buffer is
    unmodeled or ample).
    """

    scenario: str
    binding: str
    instances: int
    array_dim: int
    pe_1d: int
    embedding: int
    slots: int
    seq_len: int
    n_tasks: int
    makespan: int
    busy_2d: int
    busy_1d: int
    busy_io: int
    util_2d: float
    util_1d: float
    dram_bw: Optional[float] = None
    busy_dram: int = 0
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"
    spill_bytes: int = 0

    @property
    def util_io(self) -> float:
        return self.busy_io / self.makespan if self.makespan else 0.0

    @property
    def util_dram(self) -> float:
        return self.busy_dram / self.makespan if self.makespan else 0.0

    def utilization(self, resource: str) -> float:
        busy = {"2d": self.busy_2d, "1d": self.busy_1d, "io": self.busy_io,
                "dram": self.busy_dram}
        return busy[resource] / self.makespan if self.makespan else 0.0

    def row(self, fields_: Sequence[str] = SCENARIO_FIELDS) -> Tuple:
        """The result as a tuple in ``fields_`` order (default: the
        historical :data:`SCENARIO_FIELDS` columns)."""
        return tuple(getattr(self, field) for field in fields_)


assert SCENARIO_FIELDS + ("dram_bw", "busy_dram") + SCENARIO_CAP_FIELDS == tuple(
    f.name for f in fields(ScenarioResult)
)


def scenario_fields_for(results: Sequence[ScenarioResult]) -> Tuple[str, ...]:
    """The column set of one scenario result batch: the historical
    columns, plus the bandwidth columns when any row models DRAM, plus
    the capacity/QoS columns when any row models the buffer or a
    non-uniform discipline."""
    fields_ = SCENARIO_FIELDS
    if any(r.dram_bw is not None for r in results):
        fields_ = fields_ + SCENARIO_BW_FIELDS
    if any(
        r.buffer_bytes is not None or r.qos != "uniform" for r in results
    ):
        fields_ = fields_ + SCENARIO_CAP_FIELDS
    return fields_


def _scenario_row(scenario: Scenario, n_tasks: int, result) -> ScenarioResult:
    """Fold one schedule into the :class:`ScenarioResult` row shape."""
    return ScenarioResult(
        scenario=scenario.name,
        binding=scenario.binding,
        instances=scenario.instances,
        array_dim=scenario.array_dim,
        pe_1d=scenario.resolved_pe_1d,
        embedding=scenario.embedding,
        slots=scenario.slots,
        seq_len=scenario.seq_len,
        n_tasks=n_tasks,
        makespan=result.makespan,
        busy_2d=result.busy_cycles.get("2d", 0),
        busy_1d=result.busy_cycles.get("1d", 0),
        busy_io=result.busy_cycles.get("io", 0),
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
        dram_bw=scenario.dram_bw,
        busy_dram=result.busy_cycles.get("dram", 0),
        buffer_bytes=scenario.buffer_bytes,
        qos=scenario.qos,
        spill_bytes=scenario_spill_bytes(scenario),
    )


def evaluate_scenario_point(
    scenario: Scenario, engine: str = "event"
) -> ScenarioResult:
    """Schedule one scenario's merged graph and measure utilizations."""
    tasks, result = scenario_sim(scenario, engine=engine)
    return _scenario_row(scenario, len(tasks), result)


@dataclass(frozen=True)
class ScenarioProfile:
    """Wall-time breakdown of one scenario evaluation (``--profile``):
    graph construction vs scheduling, so an engine regression is
    attributable from CI artifacts rather than inferred from totals."""

    scenario: str
    engine: str
    n_tasks: int
    build_s: float
    schedule_s: float

    def describe(self) -> str:
        return (
            f"profile {self.scenario}: engine={self.engine} tasks={self.n_tasks}"
            f" build={self.build_s:.3f}s schedule={self.schedule_s:.3f}s"
        )


def profile_scenario_point(
    scenario: Scenario, engine: str = "event"
) -> Tuple[ScenarioResult, ScenarioProfile]:
    """Evaluate one scenario with per-stage wall timing.

    Same result as :func:`evaluate_scenario_point` — the stages are the
    same calls, separately clocked — plus the breakdown."""
    t0 = perf_counter()
    tasks = build_scenario_tasks(scenario)
    t1 = perf_counter()
    result = schedule_scenario_tasks(scenario, tasks, engine=engine)
    t2 = perf_counter()
    profile = ScenarioProfile(
        scenario=scenario.name,
        engine=engine,
        n_tasks=len(tasks),
        build_s=t1 - t0,
        schedule_s=t2 - t1,
    )
    return _scenario_row(scenario, len(tasks), result), profile


# --------------------------------------------------------------------------
# Scenario grids: (model, batch, heads, decode) cells over the runtime.
# --------------------------------------------------------------------------

#: Grid coordinates identifying one cell, in CSV column order.  ``model``
#: is the workload-model axis (None for heterogeneous extra cells that
#: carry their identity in the scenario name); ``heads`` is None when a
#: cell uses the model's own head count.
GRID_COORD_FIELDS: Tuple[str, ...] = ("model", "batch", "heads", "decode")

#: Analytical columns joined onto every cell (the closed-form estimate of
#: :func:`repro.model.scenario.analytical_scenario`), so a grid doubles
#: as a crosscheck-at-scale.
GRID_ESTIMATE_FIELDS: Tuple[str, ...] = ("estimate", "est_util_2d", "est_util_1d")

#: Columns of one scenario-grid row: coordinates, then the full measured
#: scenario row, then the analytical estimate.
SCENARIO_GRID_FIELDS: Tuple[str, ...] = (
    GRID_COORD_FIELDS + SCENARIO_FIELDS + GRID_ESTIMATE_FIELDS
)


@dataclass(frozen=True)
class ScenarioGridCell:
    """One cell of a scenario grid: a scenario plus its grid coordinates.

    The coordinates ride alongside the scenario (rather than being
    re-derived from it) so heterogeneous cells — explicit scenarios with
    per-instance unequal chunk counts — key and render exactly like the
    model-derived ones.  The whole cell is the runtime cache identity
    (task kind ``"scenario_grid"``).
    """

    scenario: Scenario
    model: Optional[str] = None
    batch: Optional[int] = None
    heads: Optional[int] = None
    decode: int = 0

    def describe(self) -> str:
        """Full cell label for run-registry grid summaries."""
        coords = ",".join(
            f"{name}={getattr(self, name)}" for name in GRID_COORD_FIELDS
        )
        return f"[{coords}] {self.scenario.describe()}"


@dataclass(frozen=True)
class ScenarioGridResult:
    """One evaluated grid cell: the measured schedule joined with the
    closed-form analytical estimate of the same scenario."""

    model: Optional[str]
    batch: Optional[int]
    heads: Optional[int]
    decode: int
    sim: ScenarioResult
    estimate: str
    est_util_2d: float
    est_util_1d: float

    def row(self, scenario_fields: Sequence[str] = SCENARIO_FIELDS) -> Tuple:
        """The cell as a tuple in :data:`SCENARIO_GRID_FIELDS` order
        (``scenario_fields`` widens the embedded scenario columns when a
        grid models DRAM bandwidth)."""
        coords = tuple(getattr(self, name) for name in GRID_COORD_FIELDS)
        tail = tuple(getattr(self, name) for name in GRID_ESTIMATE_FIELDS)
        return coords + self.sim.row(scenario_fields) + tail

    def as_dict(self, scenario_fields: Sequence[str] = SCENARIO_FIELDS) -> Dict:
        """JSON-ready row object (flat, in column order)."""
        fields_ = (
            GRID_COORD_FIELDS + tuple(scenario_fields) + GRID_ESTIMATE_FIELDS
        )
        return dict(zip(fields_, self.row(scenario_fields)))


# --------------------------------------------------------------------------
# Emitters: sweep/scenario rows as CSV / JSON / aligned text.
# --------------------------------------------------------------------------

SweepResults = Mapping[Tuple, BindingResult]
ScenarioResults = Mapping[Tuple, ScenarioResult]


def _rows_csv(fields_: Sequence[str], rows: Sequence[Tuple]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(fields_)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def _rows_table(fields_: Sequence[str], rows: Sequence[Tuple]) -> str:
    text_rows: List[Tuple[str, ...]] = [tuple(fields_)] + [
        tuple(
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        )
        for row in rows
    ]
    widths = [max(len(row[i]) for row in text_rows) for i in range(len(fields_))]
    return "\n".join(
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in text_rows
    )


def sweep_csv(results: SweepResults) -> str:
    """The sweep as CSV with a :data:`SWEEP_FIELDS` header row."""
    return _rows_csv(SWEEP_FIELDS, [r.row() for r in results.values()])


def sweep_json(results: SweepResults) -> str:
    """The sweep as a JSON array of row objects."""
    return json.dumps([asdict(r) for r in results.values()], indent=2)


def sweep_table(results: SweepResults) -> str:
    """The sweep as an aligned text table (the CLI's default view)."""
    return _rows_table(SWEEP_FIELDS, [r.row() for r in results.values()])


def _bw_blanked_row(result: ScenarioResult, fields_: Sequence[str]) -> Tuple:
    """A result row for text emitters: when this row does not model
    DRAM (or the buffer) but the batch's widened columns include the
    bandwidth (capacity) fields, render them as ``-`` (matching the
    grid emitters' absent-value convention) instead of a literal
    ``None`` and a misleading 0."""
    return tuple(
        "-" if (
            (result.dram_bw is None and name in SCENARIO_BW_FIELDS)
            or (result.buffer_bytes is None and name == "buffer_bytes")
        )
        else value
        for name, value in zip(fields_, result.row(fields_))
    )


def scenario_csv(results: ScenarioResults) -> str:
    """Scenario results as CSV (header widens with the bandwidth
    columns only when a row models DRAM)."""
    fields_ = scenario_fields_for(list(results.values()))
    return _rows_csv(
        fields_, [_bw_blanked_row(r, fields_) for r in results.values()]
    )


def scenario_json(results: ScenarioResults) -> str:
    """Scenario results as a JSON array of row objects (``dram_bw`` is
    null on rows that do not model DRAM)."""
    fields_ = scenario_fields_for(list(results.values()))
    return json.dumps(
        [dict(zip(fields_, r.row(fields_))) for r in results.values()],
        indent=2,
    )


def scenario_table(results: ScenarioResults) -> str:
    """Scenario results as an aligned text table."""
    fields_ = scenario_fields_for(list(results.values()))
    return _rows_table(
        fields_, [_bw_blanked_row(r, fields_) for r in results.values()]
    )


GridResults = Sequence[ScenarioGridResult]


def _grid_scenario_fields(results: GridResults) -> Tuple[str, ...]:
    return scenario_fields_for([r.sim for r in results])


def _grid_rows(
    results: GridResults, scenario_fields: Sequence[str]
) -> List[Tuple]:
    """Grid rows with absent coordinates — and the bandwidth columns of
    cells that do not model DRAM — rendered as ``-`` (the JSON emitter
    keeps them as nulls via :meth:`ScenarioGridResult.as_dict`)."""
    rows = []
    for r in results:
        coords = tuple(getattr(r, name) for name in GRID_COORD_FIELDS)
        tail = tuple(getattr(r, name) for name in GRID_ESTIMATE_FIELDS)
        flat = coords + _bw_blanked_row(r.sim, scenario_fields) + tail
        rows.append(tuple("-" if value is None else value for value in flat))
    return rows


def grid_csv(results: GridResults) -> str:
    """The grid as CSV with a :data:`SCENARIO_GRID_FIELDS` header row."""
    fields_ = _grid_scenario_fields(results)
    return _rows_csv(
        GRID_COORD_FIELDS + fields_ + GRID_ESTIMATE_FIELDS,
        _grid_rows(results, fields_),
    )


def grid_json(results: GridResults) -> str:
    """The grid as a JSON array of row objects."""
    fields_ = _grid_scenario_fields(results)
    return json.dumps([r.as_dict(fields_) for r in results], indent=2)


def grid_table(results: GridResults) -> str:
    """The grid as an aligned text table (the CLI's default view)."""
    fields_ = _grid_scenario_fields(results)
    return _rows_table(
        GRID_COORD_FIELDS + fields_ + GRID_ESTIMATE_FIELDS,
        _grid_rows(results, fields_),
    )


def encode_binding_result(result: BindingResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {"__type__": "BindingResult", **asdict(result)}


def decode_binding_result(payload: Mapping) -> BindingResult:
    """Inverse of :func:`encode_binding_result`."""
    return BindingResult(
        **{field: payload[field] for field in SWEEP_FIELDS}
    )


def encode_scenario_result(result: ScenarioResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {"__type__": "ScenarioResult", **asdict(result)}


def decode_scenario_result(payload: Mapping) -> ScenarioResult:
    """Inverse of :func:`encode_scenario_result`.  The capacity/QoS
    fields default when absent, so cache entries written before the
    buffer model decode unchanged."""
    data = {
        field: payload[field]
        for field in SCENARIO_FIELDS + ("dram_bw", "busy_dram")
    }
    data["buffer_bytes"] = payload.get("buffer_bytes")
    data["qos"] = payload.get("qos", "uniform")
    data["spill_bytes"] = payload.get("spill_bytes", 0)
    return ScenarioResult(**data)


def encode_scenario_grid_result(result: ScenarioGridResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {
        "__type__": "ScenarioGridResult",
        "model": result.model,
        "batch": result.batch,
        "heads": result.heads,
        "decode": result.decode,
        "sim": encode_scenario_result(result.sim),
        "estimate": result.estimate,
        "est_util_2d": result.est_util_2d,
        "est_util_1d": result.est_util_1d,
    }


def decode_scenario_grid_result(payload: Mapping) -> ScenarioGridResult:
    """Inverse of :func:`encode_scenario_grid_result`."""
    return ScenarioGridResult(
        model=payload["model"],
        batch=payload["batch"],
        heads=payload["heads"],
        decode=payload["decode"],
        sim=decode_scenario_result(payload["sim"]),
        estimate=payload["estimate"],
        est_util_2d=payload["est_util_2d"],
        est_util_1d=payload["est_util_1d"],
    )
