"""Binding sweeps over the sequence-length axis (the long-M1 regime).

The paper's pipelining argument is about *steady state*: the interleaved
binding amortizes fill/drain over an ever-longer stream of M1 chunks,
while tile-serial pays it per tile.  With the event-driven scheduler one
simulation costs O(tasks), so the chunk axis opens up to the hundreds of
thousands of tokens the paper targets (chunks ∈ {16 … 8192} at M0 = 256
columns is M up to ~2M).  This module defines the sweep's grid points
and result rows; the parallel/cached execution lives in
:func:`repro.runtime.executor.sweep_bindings`, and
``repro simulate --sweep`` drives it from the CLI.

Each point is pure and cheap to describe — (binding, chunks, array dim,
embedding) — so it flows through the PR-1 runtime unchanged: points fan
out over processes, results content-address into the cache, and a rerun
of a grown grid only computes the new points.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Mapping, Optional, Tuple

from .pipeline import BINDINGS, PipelineConfig, binding_sim

#: Chunk counts (M1) of the default sweep: 16 → 8192 in powers of two,
#: i.e. sequence lengths 4K → 2M at the default 256-column array.
DEFAULT_SWEEP_CHUNKS: Tuple[int, ...] = (
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)

#: PE-array dimensions of the default sweep.
DEFAULT_SWEEP_ARRAY_DIMS: Tuple[int, ...] = (128, 256)

#: Keys of one binding sweep result, in CSV column order.
SWEEP_FIELDS: Tuple[str, ...] = (
    "binding",
    "chunks",
    "array_dim",
    "seq_len",
    "makespan",
    "busy_2d",
    "busy_1d",
    "util_2d",
    "util_1d",
)


@dataclass(frozen=True)
class BindingPoint:
    """One grid point of a binding sweep (pickles cleanly to workers).

    The 1D array is sized to the 2D array's edge (``pe_1d = array_dim``)
    unless overridden, matching the paper's FuseMax floorplan.
    """

    binding: str
    chunks: int
    array_dim: int = 256
    embedding: int = 64
    pe_1d: Optional[int] = None

    def __post_init__(self) -> None:
        if self.binding not in BINDINGS:
            raise ValueError(f"unknown binding {self.binding!r}")
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")

    @property
    def name(self) -> str:
        """Display label (used by run-registry grid summaries)."""
        return f"{self.binding}@{self.array_dim}"

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            chunks=self.chunks,
            embedding=self.embedding,
            array_dim=self.array_dim,
            pe_1d=self.pe_1d if self.pe_1d is not None else self.array_dim,
        )


@dataclass(frozen=True)
class BindingResult:
    """Utilization-vs-length row measured by one binding simulation."""

    binding: str
    chunks: int
    array_dim: int
    seq_len: int
    makespan: int
    busy_2d: int
    busy_1d: int
    util_2d: float
    util_1d: float

    def row(self) -> Tuple:
        """The result as a tuple in :data:`SWEEP_FIELDS` order."""
        return tuple(getattr(self, field) for field in SWEEP_FIELDS)


assert SWEEP_FIELDS == tuple(f.name for f in fields(BindingResult))


def evaluate_binding_point(point: BindingPoint) -> BindingResult:
    """Simulate one grid point on the event-driven core."""
    config = point.config()
    _, result = binding_sim(config, point.binding)
    makespan = result.makespan
    return BindingResult(
        binding=point.binding,
        chunks=point.chunks,
        array_dim=point.array_dim,
        seq_len=config.seq_len,
        makespan=makespan,
        busy_2d=result.busy_cycles.get("2d", 0),
        busy_1d=result.busy_cycles.get("1d", 0),
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
    )


# --------------------------------------------------------------------------
# Emitters: the sweep as CSV / JSON / aligned text.
# --------------------------------------------------------------------------

SweepResults = Mapping[Tuple[str, int, int], BindingResult]


def sweep_csv(results: SweepResults) -> str:
    """The sweep as CSV with a :data:`SWEEP_FIELDS` header row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(SWEEP_FIELDS)
    for result in results.values():
        writer.writerow(result.row())
    return buffer.getvalue()


def sweep_json(results: SweepResults) -> str:
    """The sweep as a JSON array of row objects."""
    return json.dumps([asdict(r) for r in results.values()], indent=2)


def sweep_table(results: SweepResults) -> str:
    """The sweep as an aligned text table (the CLI's default view)."""
    rows = [SWEEP_FIELDS] + [
        tuple(
            f"{v:.3f}" if isinstance(v, float) else str(v)
            for v in result.row()
        )
        for result in results.values()
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(len(SWEEP_FIELDS))]
    return "\n".join(
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    )


def encode_binding_result(result: BindingResult) -> Dict:
    """JSON-ready payload for the runtime's result cache."""
    return {"__type__": "BindingResult", **asdict(result)}


def decode_binding_result(payload: Mapping) -> BindingResult:
    """Inverse of :func:`encode_binding_result`."""
    return BindingResult(
        **{field: payload[field] for field in SWEEP_FIELDS}
    )
