"""Vectorized event core with symmetry folding.

Third engine (``engine="vector"``), bit-identical to the cycle oracle
like :mod:`.events` is, built from two composing attacks:

**Vectorization** (:func:`run_vectorized`) — the ``Task`` list is
lowered once into numpy arrays (int task ids, durations, resource ids,
a CSR dependency-adjacency built with ``argsort``/``bincount``/
``cumsum``) so the per-event bookkeeping runs on machine integers
instead of str-keyed dicts: pending heaps hold plain ints (program
order *is* the task id), dependency fan-out walks CSR slices, and the
closed-form round-robin from :mod:`.events` is evaluated over the whole
active set at once — as numpy array ops when the set is wide
(``>= _WIDE``), as an int loop below that, where array-call overhead
would dominate.

**Symmetry folding** (:func:`fold_templates` / :func:`run_folded`) —
``build_scenario_tasks`` emits N identical per-instance graphs whose
schedules coincide until shared-resource (array slots, ``dram``)
arbitration breaks the tie.  Instances collapse into counted
equivalence classes (one per scenario phase) at lowering time; the
engine simulates concretely but materializes instances *lazily* —
an instance's tasks enter the pending heaps only when some resource's
refill would pop one of them — so the live state stays O(window), not
O(N).  At each materialization event it snapshots the schedule state
*relative to the oldest live instance*; when the same relative state
recurs, every future window is an exact shift of the recorded one
(uniform per-class instance shift ``dA``, uniform time shift ``dt``),
so the engine replays the window arithmetically ``m`` times instead of
simulating it, then resumes concretely for the drain — exactly where
arbitration order makes classes diverge.

Why the replay is exact
-----------------------

The event engine is deterministic, and every scheduling decision it
makes reduces to comparisons of ``(class, instance, template-task)``
triples: classes occupy disjoint program-order ranges (so cross-class
comparisons never flip), and within a class, order shifts uniformly
with the instance index.  The snapshot captures everything the
transition function reads — active sets, pending-heap contents,
outstanding dependency counts, per-class materialization cursors (all
instance-relative), rotation counters mod ``lcm(1..slots)``, and
completion/sync times relative to *now*.  Two equal snapshots therefore
evolve identically up to the (``dA``, ``dt``) shift, for as many
repeats as keep every advancing class's cursor in range; ``m`` is
clamped to that, and the drain tail is simulated concretely.  Exhausted
classes cannot carry stragglers through a match: a draining live set
that is also a shift of itself must be empty.

Busy cycles need no simulation at all: every issued cycle serves
exactly one task-cycle and every task completes, so a resource's busy
count is the plain sum of its tasks' durations — which is also exactly
what the cycle engine accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from math import lcm
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .engine import SimResult, Task

#: Error text shared with both other engines so callers can match any.
_DEADLOCK = "simulation exceeded max_cycles (deadlock?)"

#: Active sets at least this wide evaluate the closed-form round-robin
#: as numpy array ops; below it, scalar ints win on call overhead.
_WIDE = 32

#: Unmatched relative-state snapshots kept before giving up on folding
#: for the run.  Detection failure costs speed, never correctness.
_SNAP_CAP = 512

#: Live-instance windows wider than this skip snapshotting: a window
#: that keeps growing (an uncontended bottleneck backlog) never recurs,
#: and hashing its state would cost more than it could save.
_LIVE_CAP = 128


def _served_counts(k: int, base: int, quotient: int, extra: int) -> np.ndarray:
    """Cycles served to each of ``k`` active positions over one window."""
    served = np.full(k, quotient, dtype=np.int64)
    served[(np.arange(k) - base) % k < extra] += 1
    return served


def run_vectorized(tasks: Sequence[Task], slots: int, max_cycles: int) -> SimResult:
    """Event-driven schedule over an int-lowered graph; bit-identical to
    both other engines on every task graph (same makespan, busy cycles,
    finish times — same deadlock behaviour too)."""
    n = len(tasks)
    names = [t.name for t in tasks]
    index = {name: i for i, name in enumerate(names)}
    duration = np.fromiter((t.duration for t in tasks), dtype=np.int64, count=n)
    resources = sorted({t.resource for t in tasks})
    res_index = {r: i for i, r in enumerate(resources)}
    res_of = np.fromiter((res_index[t.resource] for t in tasks), dtype=np.int64, count=n)

    # Readiness semantics mirror _dependency_frontier verbatim on ids:
    # zero-duration tasks are done at t=0; outstanding counts *unique*
    # not-yet-done deps; unknown dep names block forever (deadlock).
    outstanding = [0] * n
    edges_src: List[int] = []
    edges_dst: List[int] = []
    for i, task in enumerate(tasks):
        if duration[i] == 0:
            continue
        waiting = {d for d in task.deps if d not in index or duration[index[d]] != 0}
        outstanding[i] = len(waiting)
        for dep in waiting:
            j = index.get(dep)
            if j is not None:
                edges_src.append(j)
                edges_dst.append(i)
    src = np.asarray(edges_src, dtype=np.int64)
    dst = np.asarray(edges_dst, dtype=np.int64)
    csr_indices = dst[np.argsort(src, kind="stable")]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])

    # The hot loop runs on plain ints: numpy scalar indexing would cost
    # more per event than it saves.
    dur = duration.tolist()
    res = res_of.tolist()
    indptr_l = indptr.tolist()
    indices_l = csr_indices.tolist()
    total_nonzero = n - int(np.count_nonzero(duration == 0))

    n_res = len(resources)
    active: List[List[List[int]]] = [[] for _ in range(n_res)]
    pending: List[List[int]] = [[] for _ in range(n_res)]
    # Ascending appends form a valid min-heap: program order is the id.
    for i in np.flatnonzero(duration > 0).tolist():
        if outstanding[i] == 0:
            pending[res[i]].append(i)
    rr = [0] * n_res
    sync = [0] * n_res
    next_done: List[Optional[int]] = [None] * n_res
    busy = [0] * n_res
    ft = np.zeros(n, dtype=np.int64)

    def advance(resource: int, now: int) -> int:
        """Apply ``now - sync`` round-robin cycles; return completed id
        or -1.  The closed form is applied to the whole active set at
        once — with numpy once the set is wide enough to amortize it."""
        acts = active[resource]
        delta = now - sync[resource]
        sync[resource] = now
        if not acts or delta == 0:
            return -1
        rr[resource] += delta
        busy[resource] += delta
        k = len(acts)
        if k == 1:  # fast path: serial mode / lone active task
            entry = acts[0]
            entry[1] -= delta
            if entry[1] == 0:
                return acts.pop()[0]
            return -1
        quotient, extra = divmod(delta, k)
        base = rr[resource] - delta
        completed = -1
        if k >= _WIDE:
            rem = np.fromiter((e[1] for e in acts), dtype=np.int64, count=k)
            rem -= _served_counts(k, base, quotient, extra)
            done = np.flatnonzero(rem == 0)
            rem_l = rem.tolist()
            for j, entry in enumerate(acts):
                entry[1] = rem_l[j]
            if done.size:
                completed = int(done[0])
        else:
            for j, entry in enumerate(acts):
                served = quotient + (1 if (j - base) % k < extra else 0)
                if served:
                    entry[1] -= served
                    if entry[1] == 0:
                        completed = j
        if completed < 0:
            return -1
        return acts.pop(completed)[0]

    def refill(resource: int) -> None:
        heap = pending[resource]
        acts = active[resource]
        while len(acts) < slots and heap:
            tid = heappop(heap)
            acts.append([tid, dur[tid]])

    def completion_time(resource: int) -> Optional[int]:
        acts = active[resource]
        if not acts:
            return None
        k = len(acts)
        start = sync[resource]
        if k == 1:
            return start + acts[0][1]
        base = rr[resource]
        if k >= _WIDE:
            rem = np.fromiter((e[1] for e in acts), dtype=np.int64, count=k)
            when = start + (np.arange(k) - base) % k + (rem - 1) * k + 1
            return int(when.min())
        best: Optional[int] = None
        for j, (_, remaining) in enumerate(acts):
            when = start + (j - base) % k + (remaining - 1) * k + 1
            if best is None or when < best:
                best = when
        return best

    for resource in range(n_res):
        refill(resource)
        next_done[resource] = completion_time(resource)

    now = 0
    completed_count = 0
    while completed_count < total_nonzero:
        now = -1
        for when in next_done:
            if when is not None and (now < 0 or when < now):
                now = when
        if now < 0 or now > max_cycles:
            raise RuntimeError(_DEADLOCK)
        touched = {r for r in range(n_res) if next_done[r] == now}
        finished: List[int] = []
        for resource in touched:
            tid = advance(resource, now)
            if tid < 0:  # pragma: no cover - violated scheduling math
                raise RuntimeError(f"lost completion on {resources[resource]} at {now}")
            ft[tid] = now
            finished.append(tid)
        completed_count += len(finished)
        for tid in finished:
            for j in range(indptr_l[tid], indptr_l[tid + 1]):
                dependent = indices_l[j]
                outstanding[dependent] -= 1
                if outstanding[dependent] == 0:
                    resource = res[dependent]
                    heappush(pending[resource], dependent)
                    touched.add(resource)
        for resource in touched:
            leak = advance(resource, now)
            if leak >= 0:  # pragma: no cover - violated math
                raise RuntimeError(f"lost completion on {resources[resource]} at {now}")
            refill(resource)
            next_done[resource] = completion_time(resource)

    busy_map = {resources[r]: busy[r] for r in range(n_res) if busy[r] > 0}
    return SimResult(
        makespan=now,
        busy_cycles=busy_map,
        finish_times=dict(zip(names, ft.tolist())),
    )


@dataclass
class FoldedClass:
    """One equivalence class: ``count`` identical instance graphs."""

    count: int
    ginst_base: int  #: global instance index of the class's first instance
    order_base: int  #: global program order of instance 0's first task
    size: int  #: template length (tasks per instance, post-lowering)
    names: Tuple[str, ...]  #: template task names (unprefixed)
    durations: List[int]
    res: List[int]  #: template resource ids into FoldedScenario.resources
    indptr: List[int]  #: template-local dependents CSR
    indices: List[int]
    outstanding0: List[int]  #: initial unique positive-duration dep counts
    ready0: List[int]  #: ascending tids ready at t=0 (positive duration)
    nonzero: int  #: positive-duration templates per instance
    min_ready: List[int] = field(default_factory=list)  #: per resource: min ready0 tid or -1


@dataclass
class FoldedScenario:
    """A scenario lowered to counted instance classes."""

    classes: List[FoldedClass]
    resources: List[str]
    n_tasks: int
    n_instances: int
    total_duration: int  #: Σ durations — the engines' makespan bound
    busy_totals: List[int]  #: per resource id: Σ durations (exact busy)


def fold_templates(templates: Sequence[Tuple[Sequence[Task], int]]) -> FoldedScenario:
    """Lower ``(template_tasks, instance_count)`` pairs — one per
    scenario phase, in program order, already dram-lowered — into a
    :class:`FoldedScenario`.  Template deps must stay inside the
    template (instance prefixing guarantees this for scenario graphs)."""
    resources = sorted({t.resource for tasks, _ in templates for t in tasks})
    res_index = {r: i for i, r in enumerate(resources)}
    n_res = len(resources)
    classes: List[FoldedClass] = []
    order_base = 0
    ginst_base = 0
    n_tasks = 0
    total_duration = 0
    busy_totals = [0] * n_res
    for tasks, count in templates:
        size = len(tasks)
        index = {t.name: i for i, t in enumerate(tasks)}
        durations = [t.duration for t in tasks]
        res = [res_index[t.resource] for t in tasks]
        outstanding0 = [0] * size
        edges: List[List[int]] = [[] for _ in range(size)]
        for i, task in enumerate(tasks):
            if durations[i] == 0:
                continue
            waiting = set()
            for dep in task.deps:
                j = index.get(dep)
                if j is None:
                    raise ValueError(f"template task {task.name}: dep {dep!r} leaves the instance")
                if durations[j] != 0:
                    waiting.add(j)
            outstanding0[i] = len(waiting)
            for j in waiting:
                edges[j].append(i)
        indptr = [0] * (size + 1)
        indices: List[int] = []
        for i, outs in enumerate(edges):
            indices.extend(outs)
            indptr[i + 1] = len(indices)
        ready0 = [i for i in range(size) if durations[i] > 0 and outstanding0[i] == 0]
        min_ready = [-1] * n_res
        for tid in reversed(ready0):  # ascending scan reversed: min wins
            min_ready[res[tid]] = tid
        for i in range(size):
            busy_totals[res[i]] += durations[i] * count
        per_instance = sum(durations)
        classes.append(
            FoldedClass(
                count=count,
                ginst_base=ginst_base,
                order_base=order_base,
                size=size,
                names=tuple(t.name for t in tasks),
                durations=durations,
                res=res,
                indptr=indptr,
                indices=indices,
                outstanding0=outstanding0,
                ready0=ready0,
                nonzero=sum(1 for d in durations if d > 0),
                min_ready=min_ready,
            )
        )
        order_base += count * size
        ginst_base += count
        n_tasks += count * size
        total_duration += per_instance * count
    return FoldedScenario(
        classes=classes,
        resources=resources,
        n_tasks=n_tasks,
        n_instances=ginst_base,
        total_duration=total_duration,
        busy_totals=busy_totals,
    )


def run_folded(
    folded: FoldedScenario,
    slots: int,
    max_cycles: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> SimResult:
    """Schedule a folded scenario; bit-identical to running the fully
    materialized graph through any engine.  ``max_cycles`` defaults to
    the graph's makespan bound (total duration + 1) — the same budget
    :func:`~repro.simulator.pipeline.scenario_sim` derives from the task
    list.  ``stats``, when given, receives ``events`` (concrete events
    simulated), ``replayed`` (completions expanded arithmetically) and
    ``jumps`` counters — the fold's effectiveness, for tests and the
    ``--profile`` breakdown."""
    if max_cycles is None:
        max_cycles = folded.total_duration + 1
    classes = folded.classes
    n_classes = len(classes)
    resources = folded.resources
    n_res = len(resources)
    counts = [c.count for c in classes]
    sizes = [c.size for c in classes]
    order_bases = [c.order_base for c in classes]
    ginst_bases = [c.ginst_base for c in classes]
    #: per resource: (class id, min ready tid, that tid's resource-local
    #: head order offset) for classes with any t=0-ready work there.
    classes_on: List[List[Tuple[int, int]]] = [[] for _ in range(n_res)]
    for c, cls in enumerate(classes):
        for r in range(n_res):
            if cls.min_ready[r] >= 0:
                classes_on[r].append((c, cls.min_ready[r]))

    active: List[List[List[int]]] = [[] for _ in range(n_res)]
    pending: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_res)]
    rr = [0] * n_res
    sync = [0] * n_res
    next_done: List[Optional[int]] = [None] * n_res
    cursor = [0] * n_classes
    #: live instance -> [class id, outstanding counts, unfinished count]
    live: Dict[int, List] = {}
    inst_log: List[int] = []
    tid_log: List[int] = []
    t_log: List[int] = []
    #: (log start, log end, repeats, instance shift, time shift)
    blocks: List[Tuple[int, int, int, int, int]] = []
    materialized = 0
    rr_mod = lcm(*range(1, slots + 1))

    def materialize(c: int) -> None:
        nonlocal materialized
        cls = classes[c]
        local = cursor[c]
        cursor[c] = local + 1
        gi = cls.ginst_base + local
        ob = cls.order_base + local * cls.size
        live[gi] = [c, cls.outstanding0.copy(), cls.nonzero]
        for tid in cls.ready0:
            heappush(pending[cls.res[tid]], (ob + tid, gi, tid))
        materialized += 1

    def refill(resource: int) -> None:
        """Engine refill, plus lazy materialization: an unmaterialized
        instance's earliest ready task on this resource competes with
        the heap top by program order, exactly as if it had been pending
        since t=0 (pending membership has no side effects; only pops
        matter, and instance order keys ascend within a class)."""
        acts = active[resource]
        heap = pending[resource]
        while len(acts) < slots:
            vmin = -1
            vcls = -1
            for c, head_tid in classes_on[resource]:
                cur = cursor[c]
                if cur < counts[c]:
                    order = order_bases[c] + cur * sizes[c] + head_tid
                    if vmin < 0 or order < vmin:
                        vmin = order
                        vcls = c
            if vmin >= 0 and (not heap or vmin < heap[0][0]):
                materialize(vcls)
                continue
            if not heap:
                break
            _, gi, tid = heappop(heap)
            acts.append([gi, tid, classes[live[gi][0]].durations[tid]])

    def advance(resource: int, now: int) -> Optional[Tuple[int, int]]:
        acts = active[resource]
        delta = now - sync[resource]
        sync[resource] = now
        if not acts or delta == 0:
            return None
        rr[resource] += delta
        k = len(acts)
        if k == 1:
            entry = acts[0]
            entry[2] -= delta
            if entry[2] == 0:
                acts.pop()
                return (entry[0], entry[1])
            return None
        quotient, extra = divmod(delta, k)
        base = rr[resource] - delta
        completed = -1
        for j, entry in enumerate(acts):
            served = quotient + (1 if (j - base) % k < extra else 0)
            if served:
                entry[2] -= served
                if entry[2] == 0:
                    completed = j
        if completed < 0:
            return None
        entry = acts.pop(completed)
        return (entry[0], entry[1])

    def completion_time(resource: int) -> Optional[int]:
        acts = active[resource]
        if not acts:
            return None
        k = len(acts)
        start = sync[resource]
        if k == 1:
            return start + acts[0][2]
        base = rr[resource]
        best: Optional[int] = None
        for j, entry in enumerate(acts):
            when = start + (j - base) % k + (entry[2] - 1) * k + 1
            if best is None or when < best:
                best = when
        return best

    def state_key(anchor: int, now: int):
        """Everything the transition function reads, instance-relative."""
        res_state = []
        for r in range(n_res):
            acts = tuple((e[0] - anchor, live[e[0]][0], e[1], e[2]) for e in active[r])
            heap = tuple(sorted((gi - anchor, live[gi][0], tid) for _, gi, tid in pending[r]))
            nd = next_done[r]
            res_state.append(
                (acts, heap, rr[r] % rr_mod, sync[r] - now, -1 if nd is None else nd - now)
            )
        inst_state = tuple(
            sorted((gi - anchor, st[0], tuple(st[1]), st[2]) for gi, st in live.items())
        )
        # A class that has not admitted any instance yet snapshots as a
        # plain sentinel, not a relative position: classes start strictly
        # in program order (an earlier unexhausted class's virtual head
        # order is always below a later class's order base), so an
        # unstarted class can never win refill arbitration during a
        # replayed window and its distance from the anchor is inert.
        cursors = tuple(
            "unstarted"
            if cursor[c] == 0
            else (ginst_bases[c] + cursor[c] - anchor) if cursor[c] < counts[c] else "done"
            for c in range(n_classes)
        )
        return (tuple(res_state), inst_state, cursors)

    total_nonzero = sum(counts[c] * classes[c].nonzero for c in range(n_classes))
    for resource in range(n_res):
        refill(resource)
        next_done[resource] = completion_time(resource)

    now = 0
    completed_count = 0
    events = 0
    replayed = 0
    jumps = 0
    snapshots: Dict = {}
    folding = True
    while completed_count < total_nonzero:
        now = -1
        for when in next_done:
            if when is not None and (now < 0 or when < now):
                now = when
        if now < 0 or now > max_cycles:
            raise RuntimeError(_DEADLOCK)
        events += 1
        touched = {r for r in range(n_res) if next_done[r] == now}
        finished: List[Tuple[int, int]] = []
        for resource in touched:
            done = advance(resource, now)
            if done is None:  # pragma: no cover - violated scheduling math
                raise RuntimeError(f"lost completion on {resources[resource]} at {now}")
            gi, tid = done
            inst_log.append(gi)
            tid_log.append(tid)
            t_log.append(now)
            finished.append(done)
        completed_count += len(finished)
        for gi, tid in finished:
            st = live[gi]
            cls = classes[st[0]]
            outstanding = st[1]
            ob = cls.order_base + (gi - cls.ginst_base) * cls.size
            for j in range(cls.indptr[tid], cls.indptr[tid + 1]):
                dependent = cls.indices[j]
                outstanding[dependent] -= 1
                if outstanding[dependent] == 0:
                    resource2 = cls.res[dependent]
                    heappush(pending[resource2], (ob + dependent, gi, dependent))
                    touched.add(resource2)
            st[2] -= 1
            if st[2] == 0:
                del live[gi]
        grew = materialized
        for resource in touched:
            leak = advance(resource, now)
            if leak is not None:  # pragma: no cover - violated math
                raise RuntimeError(f"lost completion on {resources[resource]} at {now}")
            refill(resource)
            next_done[resource] = completion_time(resource)
        if not folding or materialized == grew or not live or len(live) > _LIVE_CAP:
            continue
        # A materialization event ended: snapshot the relative state and
        # jump if it recurs (see the module docstring for the argument).
        anchor = min(live)
        key = state_key(anchor, now)
        prev = snapshots.get(key)
        if prev is None:
            if len(snapshots) >= _SNAP_CAP:
                folding = False
                snapshots.clear()
            else:
                snapshots[key] = (anchor, now, len(t_log), completed_count)
            continue
        prev_anchor, prev_now, prev_log, prev_completed = prev
        d_inst = anchor - prev_anchor
        d_time = now - prev_now
        if d_inst <= 0 or d_time <= 0:
            continue
        # Matching snapshots mean every *started, unexhausted* class
        # advanced exactly d_inst instances over the window (their cursor
        # positions are anchor-relative in the key); only those consume
        # instances per repeat, so only they bound the repeat count.
        repeats: Optional[int] = None
        for c in range(n_classes):
            if 0 < cursor[c] < counts[c]:
                fit = (counts[c] - 1 - cursor[c]) // d_inst
                if repeats is None or fit < repeats:
                    repeats = fit
        if not repeats or repeats <= 0:
            continue
        # Apply the jump: record the window for arithmetic expansion,
        # then shift every absolute time and instance index in place.
        blocks.append((prev_log, len(t_log), repeats, d_inst, d_time))
        window_completions = completed_count - prev_completed
        completed_count += repeats * window_completions
        replayed += repeats * window_completions
        jumps += 1
        shift_t = repeats * d_time
        shift_i = repeats * d_inst
        for r in range(n_res):
            sync[r] += shift_t
            if next_done[r] is not None:
                next_done[r] += shift_t
            for entry in active[r]:
                entry[0] += shift_i
            if pending[r]:
                # Order keys shift by the *class's* stride, so re-heapify
                # rather than assume the list shape survives.
                pending[r] = [
                    (order + shift_i * sizes[live[gi][0]], gi + shift_i, tid)
                    for order, gi, tid in pending[r]
                ]
                heapify(pending[r])
        live = {gi + shift_i: st for gi, st in live.items()}
        for c in range(n_classes):
            if 0 < cursor[c] < counts[c]:
                cursor[c] += shift_i
        # Windows spanning a jump cannot be replayed from the log.
        snapshots.clear()

    if stats is not None:
        stats["events"] = events
        stats["replayed"] = replayed
        stats["jumps"] = jumps

    # Expansion: global program order is a dense 0..n_tasks-1 index, so
    # finish times land in one flat array — concrete completions first,
    # then each recorded window shifted arithmetically per repeat.
    ft = np.zeros(folded.n_tasks, dtype=np.int64)
    if inst_log:
        inst_a = np.asarray(inst_log, dtype=np.int64)
        tid_a = np.asarray(tid_log, dtype=np.int64)
        t_a = np.asarray(t_log, dtype=np.int64)
        starts = np.asarray(ginst_bases, dtype=np.int64)
        cls_a = np.searchsorted(starts, inst_a, side="right") - 1
        sizes_a = np.asarray(sizes, dtype=np.int64)
        orders = (
            np.asarray(order_bases, dtype=np.int64)[cls_a]
            + (inst_a - starts[cls_a]) * sizes_a[cls_a]
            + tid_a
        )
        ft[orders] = t_a
        for log_start, log_end, repeats, d_inst, d_time in blocks:
            seg_orders = orders[log_start:log_end]
            seg_shift = d_inst * sizes_a[cls_a[log_start:log_end]]
            seg_t = t_a[log_start:log_end]
            for repeat in range(1, repeats + 1):
                ft[seg_orders + repeat * seg_shift] = seg_t + repeat * d_time

    finish_names: List[str] = []
    for cls in classes:
        template = cls.names
        for local in range(cls.count):
            prefix = f"i{cls.ginst_base + local}:"
            finish_names.extend([prefix + name for name in template])
    busy_map = {
        resources[r]: folded.busy_totals[r] for r in range(n_res) if folded.busy_totals[r] > 0
    }
    return SimResult(
        makespan=int(ft.max()) if folded.n_tasks else 0,
        busy_cycles=busy_map,
        finish_times=dict(zip(finish_names, ft.tolist())),
    )
