"""Epoch-pipeline simulation of the FuseMax binding (Fig. 4 / Fig. 5).

Builds the tile-granular task graph of the 1-pass attention cascade — one
set of tasks per M1 chunk — and simulates it under the two bindings:

- ``tile-serial`` (+Architecture): each chunk's tasks finish before the
  next chunk starts, and the 2D array pays non-overlapped fill/drain;
- ``interleaved`` (+Binding): the 2D array cycle-interleaves BQK of a
  later chunk with SLNV of an earlier one while the 1D array interleaves
  the running-state updates, exactly the ``A|B`` pipelining of Fig. 5.

Task durations are the cycles each tile occupies its array (per the
analytical model), so the simulator independently validates the claim that
the interleaved binding drives both arrays to ~100% utilization while the
tile-serial binding stalls both.

Beyond the single-instance graphs, :func:`build_scenario_tasks` merges
the graphs of every instance of a :class:`~repro.workloads.scenario
.Scenario` — N ``(batch, head)`` prefill instances plus optional decode
steps, possibly spanning different models' embedding widths — into one
schedule in which all instances contend for the shared 2D/1D arrays
through the binding's issue slots.  The per-chunk work totals the graphs
are built from are exposed as :func:`chunk_work` so the analytical
models (:mod:`repro.model.scenario`) derive their bounds from exactly
the durations the simulator schedules.

Every task additionally carries its DRAM traffic (``bytes_moved``,
summarized by :func:`chunk_traffic`): the Q/output tiles and the
once-per-instance K/V stream of a prefill instance, and the KV-cache
chunks that dominate a decode step.  When the scenario sets ``dram_bw``,
:func:`build_scenario_tasks` lowers that traffic onto a shared ``dram``
resource (:func:`repro.simulator.engine.lower_dram`), so N decode
instances slow each other down exactly as the roofline model predicts —
the bandwidth wall the array-only contention model could not see.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil
from typing import Dict, List, Optional, Tuple

from ..arch.spec import EXP_AS_MACCS
from ..workloads.scenario import BINDINGS, Phase, Scenario
from .engine import SimResult, Simulator, Task, lower_dram, transfer_cycles
from .systolic import bqk_tile_timing
from .vector import FoldedScenario, fold_templates, run_folded

__all__ = [
    "BINDINGS",
    "ChunkResidency",
    "ChunkTraffic",
    "ChunkWork",
    "PipelineConfig",
    "PipelineReport",
    "WORD_BYTES",
    "apply_buffer_spills",
    "binding_sim",
    "build_decode_tasks",
    "build_scenario_tasks",
    "build_tasks",
    "chunk_residency",
    "chunk_traffic",
    "chunk_work",
    "compare_bindings",
    "fold_scenario",
    "instance_spill_bytes",
    "scenario_dram_cycles",
    "scenario_sim",
    "scenario_spill_bytes",
    "schedule_scenario_tasks",
    "simulate_binding",
    "spill_bytes_per_chunk",
]

#: Cycles per exponentiation implemented as sequential MACCs.
_EXP_MACCS = EXP_AS_MACCS

#: Datapath word size in bytes (fp16/bf16-style, matching the default
#: :class:`repro.arch.spec.Architecture`); the traffic annotations below
#: price every streamed word at this width.
WORD_BYTES = 2


@dataclass(frozen=True)
class PipelineConfig:
    """Shape of the simulated attention instance.

    The defaults mirror one (batch, head) slice on the cloud machine:
    E = F = 64, P0 = array rows, M0 = array columns; ``chunks`` is M1.
    """

    chunks: int = 16
    embedding: int = 64  # E (and F)
    array_dim: int = 256
    pe_1d: int = 256

    @property
    def p0(self) -> int:
        return self.array_dim

    @property
    def seq_len(self) -> int:
        """The simulated sequence length M = M1 · M0 (chunks × columns)."""
        return self.chunks * self.array_dim

    def one_d_cycles(self, ops_per_element: float) -> int:
        """1D-array cycles for a per-chunk vector op over P0 elements."""
        return max(1, round(ops_per_element * self.p0 / self.pe_1d))


def build_tasks(
    config: PipelineConfig, serial: bool, prefix: str = ""
) -> List[Task]:
    """The tile-granular task graph for ``config.chunks`` M1 chunks.

    ``prefix`` namespaces task names so several instances' graphs can be
    merged into one schedule (:func:`build_scenario_tasks`).

    DRAM traffic rides on the tasks that consume or produce it: each
    chunk's BQK streams its Q tile in and RNV streams its output rows
    out, while the K and V tiles — fetched once per instance in the
    1-pass cascade — are charged to chunk 0's BQK and SLNV.
    """
    e = config.embedding
    tasks: List[Task] = []
    timing = bqk_tile_timing(config.array_dim, e)
    tile_bytes = config.array_dim * e * WORD_BYTES
    for i in range(config.chunks):
        prev = i - 1

        def dep(name: str, chunk: int = prev) -> Tuple[str, ...]:
            return (f"{prefix}{name}[{chunk}]",) if chunk >= 0 else ()

        bqk_deps: Tuple[str, ...] = ()
        if serial:
            # Tile-serial: the array is filled for each tile (operands
            # cross the array edge, no overlap with compute), and the next
            # tile waits for the previous chunk's state to be consumed.
            fill_deps: Tuple[str, ...] = ()
            if prev >= 0:
                fill_deps = (f"{prefix}RNV[{prev}]", f"{prefix}RD[{prev}]")
            tasks.append(Task(f"{prefix}FILL[{i}]", "io", timing.fill, fill_deps))
            bqk_deps = (f"{prefix}FILL[{i}]",)
        tasks.append(
            Task(
                f"{prefix}BQK[{i}]", "2d", e, bqk_deps,
                bytes_moved=tile_bytes * (2 if i == 0 else 1),
            )
        )
        lm_dep: Tuple[str, ...] = (f"{prefix}BQK[{i}]",)
        if serial:
            # Non-overlapped drain of the finished tile before the 1D
            # array sees the local maxima.
            tasks.append(Task(f"{prefix}DRAIN[{i}]", "io", timing.drain, lm_dep))
            lm_dep = (f"{prefix}DRAIN[{i}]",)
        # LM: spatial max over the drain network, charged to the 1D array.
        tasks.append(Task(f"{prefix}LM[{i}]", "1d", config.one_d_cycles(1), lm_dep))
        tasks.append(
            Task(
                f"{prefix}RM[{i}]",
                "1d",
                config.one_d_cycles(1),
                (f"{prefix}LM[{i}]",) + dep("RM"),
            )
        )
        tasks.append(
            Task(
                f"{prefix}SLN[{i}]",
                "2d",
                _EXP_MACCS,
                (f"{prefix}BQK[{i}]", f"{prefix}RM[{i}]"),
            )
        )
        tasks.append(
            Task(f"{prefix}SLD[{i}]", "1d", config.one_d_cycles(1),
                 (f"{prefix}SLN[{i}]",))
        )
        tasks.append(
            Task(
                f"{prefix}SLNV[{i}]", "2d", e, (f"{prefix}SLN[{i}]",),
                bytes_moved=tile_bytes if i == 0 else 0,
            )
        )
        tasks.append(
            Task(
                f"{prefix}PRM[{i}]",
                "1d",
                config.one_d_cycles(_EXP_MACCS),
                dep("RM", i - 1) + (f"{prefix}RM[{i}]",),
            )
        )
        tasks.append(
            Task(
                f"{prefix}RD[{i}]",
                "1d",
                config.one_d_cycles(2),
                (f"{prefix}SLD[{i}]", f"{prefix}PRM[{i}]") + dep("RD"),
            )
        )
        # SPNV + RNV: 2 ops (multiply by PRM, add SLNV) per value element.
        tasks.append(
            Task(
                f"{prefix}RNV[{i}]",
                "1d",
                config.one_d_cycles(2 * e),
                (f"{prefix}SLNV[{i}]", f"{prefix}PRM[{i}]") + dep("RNV"),
                bytes_moved=tile_bytes,
            )
        )
    return tasks


def build_decode_tasks(config: PipelineConfig, prefix: str = "") -> List[Task]:
    """The task graph of one decode step over a ``config.chunks``-chunk
    KV cache (paper footnote 1; :mod:`repro.model.decode`).

    One query (P = 1) attends M0 keys per chunk: a QK tile and an AV
    tile on the 2D array bracket the running-softmax update on the 1D
    array.  The KV cache streams from DRAM — each chunk's K tile rides
    on DQK and its V tile on DAV (plus the one query row in and one
    output row out), so under a finite ``dram_bw`` a decode stream
    contends for memory bandwidth, the bottleneck footnote 1 names.
    """
    e = config.embedding
    tasks: List[Task] = []
    kv_bytes = config.array_dim * e * WORD_BYTES
    row_bytes = e * WORD_BYTES
    for i in range(config.chunks):
        prev_state = (f"{prefix}DSM[{i - 1}]",) if i else ()
        prev_acc = (f"{prefix}DAC[{i - 1}]",) if i else ()
        tasks.append(
            Task(
                f"{prefix}DQK[{i}]", "2d", e,
                bytes_moved=kv_bytes + (row_bytes if i == 0 else 0),
            )
        )
        # Running softmax state (max + normalizer) over the chunk's scores.
        tasks.append(
            Task(
                f"{prefix}DSM[{i}]",
                "1d",
                config.one_d_cycles(1),
                (f"{prefix}DQK[{i}]",) + prev_state,
            )
        )
        tasks.append(
            Task(
                f"{prefix}DAV[{i}]", "2d", e, (f"{prefix}DSM[{i}]",),
                bytes_moved=kv_bytes,
            )
        )
        # Rescale-and-accumulate of the running output (2 ops/element).
        tasks.append(
            Task(
                f"{prefix}DAC[{i}]",
                "1d",
                config.one_d_cycles(2),
                (f"{prefix}DAV[{i}]",) + prev_acc,
                bytes_moved=row_bytes if i == config.chunks - 1 else 0,
            )
        )
    return tasks


@dataclass(frozen=True)
class ChunkWork:
    """Per-chunk busy cycles by resource — the durations one chunk's
    tasks contribute to the schedule, summed per array.

    This is the single source the analytical scenario models integrate
    over (:mod:`repro.model.scenario`): graph builders above and bounds
    below can never disagree about the work.
    """

    cycles_2d: int
    cycles_1d: int
    cycles_io: int


def chunk_work(config: PipelineConfig, serial: bool, kind: str = "prefill") -> ChunkWork:
    """Summed task durations of one chunk of a ``kind`` instance."""
    e = config.embedding
    if kind == "decode":
        return ChunkWork(
            cycles_2d=2 * e,
            cycles_1d=config.one_d_cycles(1) + config.one_d_cycles(2),
            cycles_io=0,
        )
    if kind != "prefill":
        raise ValueError(f"unknown instance kind {kind!r}")
    timing = bqk_tile_timing(config.array_dim, e)
    return ChunkWork(
        cycles_2d=2 * e + _EXP_MACCS,
        cycles_1d=(
            3 * config.one_d_cycles(1)
            + config.one_d_cycles(_EXP_MACCS)
            + config.one_d_cycles(2)
            + config.one_d_cycles(2 * e)
        ),
        cycles_io=(timing.fill + timing.drain) if serial else 0,
    )


@dataclass(frozen=True)
class ChunkTraffic:
    """Per-chunk DRAM bytes by stream — the ``bytes_moved`` totals one
    instance's tasks carry, split into the steady per-chunk stream and
    the once-per-instance remainder.

    Unlike :class:`ChunkWork` (which the analytical models integrate
    directly), this is an *independent* closed-form re-derivation of the
    builders' byte assignments, kept for the test layer:
    ``tests/test_scenario_bandwidth.py`` asserts ``chunks ×
    bytes_per_chunk + bytes_once`` equals the traffic the built graph
    actually moves, so a traffic edit in the builders that forgets this
    summary (or vice versa) fails loudly.  The analytical models
    themselves (:func:`scenario_dram_cycles`) walk the built tasks, so
    they can never drift from the schedule.
    """

    bytes_per_chunk: int
    bytes_once: int

    def instance_bytes(self, chunks: int) -> int:
        """Total DRAM bytes one ``chunks``-chunk instance streams."""
        return chunks * self.bytes_per_chunk + self.bytes_once


def chunk_traffic(config: PipelineConfig, kind: str = "prefill") -> ChunkTraffic:
    """Summed ``bytes_moved`` of one chunk of a ``kind`` instance (the
    test layer's cross-check; see :class:`ChunkTraffic`)."""
    tile_bytes = config.array_dim * config.embedding * WORD_BYTES
    row_bytes = config.embedding * WORD_BYTES
    if kind == "decode":
        # Steady: one K and one V cache chunk; once: query in, output out.
        return ChunkTraffic(
            bytes_per_chunk=2 * tile_bytes, bytes_once=2 * row_bytes
        )
    if kind != "prefill":
        raise ValueError(f"unknown instance kind {kind!r}")
    # Steady: Q tile in, output tile out; once: the K and V streams.
    return ChunkTraffic(
        bytes_per_chunk=2 * tile_bytes, bytes_once=2 * tile_bytes
    )


@dataclass(frozen=True)
class ChunkResidency:
    """Per-chunk on-chip working set of one instance, in bytes.

    ``resident_bytes`` is the stream an instance holds across chunks —
    tiles fetched once and reused by every chunk (the fusion payoff the
    paper trades buffer space for).  ``transient_bytes`` is the
    per-chunk stream that passes through the buffer once.  Together they
    are the peak demand one chunk places on a ``Scenario.buffer_bytes``
    capacity; demand beyond it forces the resident stream to spill and
    refill (:func:`spill_bytes_per_chunk`).
    """

    resident_bytes: int
    transient_bytes: int

    @property
    def demand_bytes(self) -> int:
        """Peak buffer bytes one chunk needs to run spill-free."""
        return self.resident_bytes + self.transient_bytes


def chunk_residency(
    config: PipelineConfig, kind: str = "prefill"
) -> ChunkResidency:
    """The closed-form working set of one ``kind`` chunk.

    Prefill holds the once-fetched K and V tiles resident across all
    chunks (the 1-pass cascade's reuse) while each chunk's Q tile and
    output tile stream through; a decode step holds only its query row
    and running output row while the KV-cache chunks stream through.
    The byte totals re-derive the builders' ``bytes_moved`` splits
    (:func:`chunk_traffic`): resident == ``bytes_once`` reuse for
    prefill, transient == ``bytes_per_chunk``.
    """
    tile_bytes = config.array_dim * config.embedding * WORD_BYTES
    row_bytes = config.embedding * WORD_BYTES
    if kind == "decode":
        return ChunkResidency(
            resident_bytes=2 * row_bytes, transient_bytes=2 * tile_bytes
        )
    if kind != "prefill":
        raise ValueError(f"unknown instance kind {kind!r}")
    return ChunkResidency(
        resident_bytes=2 * tile_bytes, transient_bytes=2 * tile_bytes
    )


def spill_bytes_per_chunk(
    config: PipelineConfig,
    kind: str,
    buffer_bytes: Optional[float],
) -> int:
    """Bytes one chunk re-fetches when the working set overflows the
    buffer: the overflow, clamped to the resident stream (only resident
    tiles *can* spill — the transient stream passes through regardless).

    0 when the buffer is unmodeled (None), infinite, or large enough —
    so spill volume is monotonically non-increasing in ``buffer_bytes``
    and the None/inf degeneracies are exact.
    """
    if buffer_bytes is None or buffer_bytes == float("inf"):
        return 0
    residency = chunk_residency(config, kind)
    overflow = residency.demand_bytes - buffer_bytes
    if overflow <= 0:
        return 0
    return min(residency.resident_bytes, ceil(overflow))


def instance_spill_bytes(
    config: PipelineConfig,
    kind: str,
    buffer_bytes: Optional[float],
) -> int:
    """Total spill/refill traffic of one ``config.chunks``-chunk
    instance: chunk 0 fetches the resident stream fresh (already
    charged as ``bytes_once``), each later chunk re-fetches what
    spilled."""
    return (config.chunks - 1) * spill_bytes_per_chunk(
        config, kind, buffer_bytes
    )


def apply_buffer_spills(
    tasks: List[Task],
    config: PipelineConfig,
    kind: str,
    buffer_bytes: Optional[float],
    prefix: str = "",
) -> List[Task]:
    """Inflate one instance graph's traffic with its capacity spills.

    Each chunk past the first re-fetches the spilled slice of the
    resident stream; the bytes ride on the chunk's leading 2D task
    (``BQK``/``DQK`` — the tile that consumes the refetched operands),
    so the inflated traffic flows through :func:`lower_dram` and all
    three engines identically, and total ``bytes_moved`` is exactly
    baseline + :func:`instance_spill_bytes` by construction.  A
    spill-free buffer returns the tasks untouched (the None/inf
    byte-identity contract).
    """
    spill = spill_bytes_per_chunk(config, kind, buffer_bytes)
    if not spill:
        return tasks
    lead = "DQK" if kind == "decode" else "BQK"
    refetch = {f"{prefix}{lead}[{i}]" for i in range(1, config.chunks)}
    return [
        replace(task, bytes_moved=task.bytes_moved + spill)
        if task.name in refetch
        else task
        for task in tasks
    ]


def scenario_spill_bytes(scenario: Scenario) -> int:
    """Total spill/refill bytes ``scenario``'s merged graph moves over
    its baseline traffic — the capacity term the analytical roofline
    adds (:mod:`repro.model.scenario`), closed-form from working sets."""
    total = 0
    for phase in scenario.phases:
        config = instance_config(scenario, phase)
        total += phase.instances * instance_spill_bytes(
            config, phase.kind, scenario.buffer_bytes
        )
    return total


def instance_config(scenario: Scenario, phase: Phase) -> PipelineConfig:
    """The :class:`PipelineConfig` of one of ``phase``'s instances —
    the point where a phase's embedding override (mixed-model
    scenarios) takes effect."""
    return PipelineConfig(
        chunks=phase.chunks,
        embedding=scenario.embedding_for(phase),
        array_dim=scenario.array_dim,
        pe_1d=scenario.resolved_pe_1d,
    )


def _instance_tasks(
    scenario: Scenario, phase: Phase, prefix: str = ""
) -> List[Task]:
    """One instance's task graph within ``scenario`` (phase-resolved
    config, binding-resolved structure, capacity-resolved traffic).

    With a finite ``scenario.buffer_bytes``, each chunk past the first
    re-fetches the spilled slice of the resident stream: the spill
    bytes ride on the chunk's leading 2D task (``BQK``/``DQK`` — the
    tile that consumes the refetched operands), so the inflated traffic
    flows through :func:`lower_dram`, :func:`scenario_dram_cycles`, and
    all three engines identically, and total ``bytes_moved`` is exactly
    baseline + :func:`instance_spill_bytes` by construction.
    """
    config = instance_config(scenario, phase)
    if phase.kind == "decode":
        tasks = build_decode_tasks(config, prefix)
    else:
        serial = scenario.binding == "tile-serial"
        tasks = build_tasks(config, serial=serial, prefix=prefix)
    return apply_buffer_spills(
        tasks, config, phase.kind, scenario.buffer_bytes, prefix
    )


def build_scenario_tasks(scenario: Scenario) -> List[Task]:
    """The merged task graph of every instance of ``scenario``.

    Each instance's graph is namespaced ``i<n>:`` and carries no
    cross-instance dependencies — contention is purely through the
    shared ``2d``/``1d`` (and, tile-serial, ``io``) resources and the
    binding's issue slots.  Instances are emitted in phase order, so the
    engines' program-order tie-break admits earlier instances first when
    several are ready at once.

    With a finite ``scenario.dram_bw``, the merged graph is additionally
    lowered so every task's ``bytes_moved`` occupies the shared ``dram``
    resource (:func:`repro.simulator.engine.lower_dram`): instances then
    contend for memory bandwidth exactly as they do for array slots.
    ``dram_bw=None`` graphs are bit-identical to pre-bandwidth ones.

    A phase's instances are identical up to the ``i<n>:`` namespace, so
    each phase's template graph is built (and dram-lowered) exactly once
    and replicated per instance with a plain prefix concat — the per-task
    builder arithmetic, f-string assembly and lowering stay out of the
    inner loop.  Lowering commutes with prefixing: a transfer's name is
    ``<task>@dram`` either way, and both orders emit it immediately
    before its compute task.

    Phases are emitted in ``scenario.emission_phases`` order —
    descending effective DRAM priority, stably — so a prioritized phase
    (``qos="decode-first"`` or explicit ``dram_priority``) wins every
    ready-at-once tie at the shared resources through the engines'
    ordinary program-order arbitration.  Uniform priorities reduce to
    declaration order: byte-identical to historical schedules.  A
    finite ``scenario.buffer_bytes`` additionally bounds each
    instance's dependency-free prefetch depth in the lowering.
    """
    tasks: List[Task] = []
    index = 0
    for phase in scenario.emission_phases:
        template = [
            (t.name, t.resource, t.duration, t.deps, t.bytes_moved)
            for t in lower_dram(
                _instance_tasks(scenario, phase),
                scenario.dram_bw,
                scenario.buffer_bytes,
            )
        ]
        for _ in range(phase.instances):
            prefix = f"i{index}:"
            tasks.extend(
                Task(prefix + name, resource, duration,
                     tuple(prefix + dep for dep in deps), bytes_moved)
                for name, resource, duration, deps, bytes_moved in template
            )
            index += 1
    return tasks


def fold_scenario(scenario: Scenario) -> FoldedScenario:
    """Collapse ``scenario``'s instances into counted equivalence
    classes — one per phase, since a phase's instances are identical up
    to the namespace prefix (exactly the replication
    :func:`build_scenario_tasks` performs).  The folded form is what
    ``engine="vector"`` schedules via
    :func:`~repro.simulator.vector.run_folded`; expanding it
    reproduces the merged graph's schedule bit for bit.
    """
    return fold_templates(
        [
            (
                lower_dram(
                    _instance_tasks(scenario, phase),
                    scenario.dram_bw,
                    scenario.buffer_bytes,
                ),
                phase.instances,
            )
            for phase in scenario.emission_phases
        ]
    )


def scenario_dram_cycles(scenario: Scenario) -> int:
    """Total ``dram``-resource busy cycles of ``scenario``'s merged
    graph: the exact sum of the lowered transfer durations, 0 when
    ``dram_bw`` is None.

    Walks one instance per phase through the same builders and ceiling
    arithmetic :func:`build_scenario_tasks` lowers with, so the
    analytical models (:mod:`repro.model.scenario`) can never disagree
    with the schedule about how long the memory link is held.
    """
    if scenario.dram_bw is None:
        return 0
    total = 0
    for phase in scenario.phases:
        per_instance = sum(
            transfer_cycles(task.bytes_moved, scenario.dram_bw)
            for task in _instance_tasks(scenario, phase)
        )
        total += phase.instances * per_instance
    return total


@dataclass(frozen=True)
class PipelineReport:
    """Utilizations measured by the binding simulation."""

    binding: str
    makespan: int
    util_2d: float
    util_1d: float


def _run(tasks: List[Task], scenario_like_serial: bool, slots: int,
         engine: str) -> SimResult:
    """Schedule ``tasks`` under the binding's issue discipline."""
    sim = Simulator(
        tasks,
        mode="serial" if scenario_like_serial else "interleaved",
        slots=slots,
        engine=engine,
    )
    # The cycle budget is ``sum of durations + 1``: some resource issues
    # every cycle of a valid schedule, so the makespan can never exceed
    # the total work — a deterministic bound that scales with the graph.
    budget = sum(task.duration for task in tasks) + 1
    return sim.run(max_cycles=budget)


def binding_sim(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> Tuple[List[Task], SimResult]:
    """Build and run one binding's task graph; returns (tasks, result)."""
    if binding not in BINDINGS:
        raise ValueError(f"unknown binding {binding!r}")
    serial = binding == "tile-serial"
    tasks = build_tasks(config, serial=serial)
    return tasks, _run(tasks, serial, slots=2, engine=engine)


def schedule_scenario_tasks(
    scenario: Scenario, tasks: List[Task], engine: str = "event"
) -> SimResult:
    """Schedule an already-built merged graph of ``scenario``.

    ``engine="vector"`` takes the folded path: the instance classes are
    re-derived from the scenario (cheap — one template per phase) and
    scheduled by :func:`~repro.simulator.vector.run_folded`, whose
    default cycle budget is the same total-duration bound
    :func:`_run` computes from the task list.  The other engines
    schedule ``tasks`` directly.
    """
    serial = scenario.binding == "tile-serial"
    if engine == "vector":
        return run_folded(fold_scenario(scenario), slots=1 if serial else scenario.slots)
    return _run(tasks, serial, slots=scenario.slots, engine=engine)


def scenario_sim(
    scenario: Scenario, engine: str = "event"
) -> Tuple[List[Task], SimResult]:
    """Build and run ``scenario``'s merged graph; returns (tasks, result)."""
    tasks = build_scenario_tasks(scenario)
    return tasks, schedule_scenario_tasks(scenario, tasks, engine=engine)


def simulate_binding(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> PipelineReport:
    """Simulate one binding (``"tile-serial"`` or ``"interleaved"``)."""
    _, result = binding_sim(config, binding, engine=engine)
    return PipelineReport(
        binding=binding,
        makespan=result.makespan,
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
    )


def compare_bindings(
    config: PipelineConfig = PipelineConfig(), engine: str = "event"
) -> Dict[str, PipelineReport]:
    """Fig. 4/5's claim in one call: serial stalls, interleaving saturates."""
    return {
        binding: simulate_binding(config, binding, engine=engine)
        for binding in BINDINGS
    }
