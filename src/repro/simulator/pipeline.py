"""Epoch-pipeline simulation of the FuseMax binding (Fig. 4 / Fig. 5).

Builds the tile-granular task graph of the 1-pass attention cascade — one
set of tasks per M1 chunk — and simulates it under the two bindings:

- ``tile-serial`` (+Architecture): each chunk's tasks finish before the
  next chunk starts, and the 2D array pays non-overlapped fill/drain;
- ``interleaved`` (+Binding): the 2D array cycle-interleaves BQK of a
  later chunk with SLNV of an earlier one while the 1D array interleaves
  the running-state updates, exactly the ``A|B`` pipelining of Fig. 5.

Task durations are the cycles each tile occupies its array (per the
analytical model), so the simulator independently validates the claim that
the interleaved binding drives both arrays to ~100% utilization while the
tile-serial binding stalls both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .engine import SimResult, Simulator, Task
from .systolic import bqk_tile_timing

#: The two bindings of Fig. 4/5, in presentation order.
BINDINGS: Tuple[str, ...] = ("tile-serial", "interleaved")

#: Cycles per exponentiation implemented as sequential MACCs.
_EXP_MACCS = 6


@dataclass(frozen=True)
class PipelineConfig:
    """Shape of the simulated attention instance.

    The defaults mirror one (batch, head) slice on the cloud machine:
    E = F = 64, P0 = array rows, M0 = array columns; ``chunks`` is M1.
    """

    chunks: int = 16
    embedding: int = 64  # E (and F)
    array_dim: int = 256
    pe_1d: int = 256

    @property
    def p0(self) -> int:
        return self.array_dim

    @property
    def seq_len(self) -> int:
        """The simulated sequence length M = M1 · M0 (chunks × columns)."""
        return self.chunks * self.array_dim

    def one_d_cycles(self, ops_per_element: float) -> int:
        """1D-array cycles for a per-chunk vector op over P0 elements."""
        return max(1, round(ops_per_element * self.p0 / self.pe_1d))


def build_tasks(config: PipelineConfig, serial: bool) -> List[Task]:
    """The tile-granular task graph for ``config.chunks`` M1 chunks."""
    e = config.embedding
    tasks: List[Task] = []
    timing = bqk_tile_timing(config.array_dim, e)
    for i in range(config.chunks):
        prev = i - 1

        def dep(name: str, chunk: int = prev) -> Tuple[str, ...]:
            return (f"{name}[{chunk}]",) if chunk >= 0 else ()

        bqk_deps: Tuple[str, ...] = ()
        if serial:
            # Tile-serial: the array is filled for each tile (operands
            # cross the array edge, no overlap with compute), and the next
            # tile waits for the previous chunk's state to be consumed.
            fill_deps: Tuple[str, ...] = ()
            if prev >= 0:
                fill_deps = (f"RNV[{prev}]", f"RD[{prev}]")
            tasks.append(Task(f"FILL[{i}]", "io", timing.fill, fill_deps))
            bqk_deps = (f"FILL[{i}]",)
        tasks.append(Task(f"BQK[{i}]", "2d", e, bqk_deps))
        lm_dep: Tuple[str, ...] = (f"BQK[{i}]",)
        if serial:
            # Non-overlapped drain of the finished tile before the 1D
            # array sees the local maxima.
            tasks.append(Task(f"DRAIN[{i}]", "io", timing.drain, lm_dep))
            lm_dep = (f"DRAIN[{i}]",)
        # LM: spatial max over the drain network, charged to the 1D array.
        tasks.append(Task(f"LM[{i}]", "1d", config.one_d_cycles(1), lm_dep))
        tasks.append(
            Task(
                f"RM[{i}]",
                "1d",
                config.one_d_cycles(1),
                (f"LM[{i}]",) + dep("RM"),
            )
        )
        tasks.append(
            Task(f"SLN[{i}]", "2d", _EXP_MACCS, (f"BQK[{i}]", f"RM[{i}]"))
        )
        tasks.append(Task(f"SLD[{i}]", "1d", config.one_d_cycles(1), (f"SLN[{i}]",)))
        tasks.append(Task(f"SLNV[{i}]", "2d", e, (f"SLN[{i}]",)))
        tasks.append(
            Task(f"PRM[{i}]", "1d", config.one_d_cycles(_EXP_MACCS), dep("RM", i - 1) + (f"RM[{i}]",))
        )
        tasks.append(
            Task(
                f"RD[{i}]",
                "1d",
                config.one_d_cycles(2),
                (f"SLD[{i}]", f"PRM[{i}]") + dep("RD"),
            )
        )
        # SPNV + RNV: 2 ops (multiply by PRM, add SLNV) per value element.
        tasks.append(
            Task(
                f"RNV[{i}]",
                "1d",
                config.one_d_cycles(2 * e),
                (f"SLNV[{i}]", f"PRM[{i}]") + dep("RNV"),
            )
        )
    return tasks


@dataclass(frozen=True)
class PipelineReport:
    """Utilizations measured by the binding simulation."""

    binding: str
    makespan: int
    util_2d: float
    util_1d: float


def binding_sim(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> Tuple[List[Task], SimResult]:
    """Build and run one binding's task graph; returns (tasks, result).

    The cycle budget is ``sum of durations + 1``: some resource issues
    every cycle of a valid schedule, so the makespan can never exceed the
    total work — a deterministic bound that scales with the graph instead
    of a fixed ceiling that long-sequence sweeps would trip over.
    """
    if binding not in BINDINGS:
        raise ValueError(f"unknown binding {binding!r}")
    serial = binding == "tile-serial"
    tasks = build_tasks(config, serial=serial)
    sim = Simulator(
        tasks,
        mode="serial" if serial else "interleaved",
        slots=2,
        engine=engine,
    )
    budget = sum(task.duration for task in tasks) + 1
    return tasks, sim.run(max_cycles=budget)


def simulate_binding(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> PipelineReport:
    """Simulate one binding (``"tile-serial"`` or ``"interleaved"``)."""
    _, result = binding_sim(config, binding, engine=engine)
    return PipelineReport(
        binding=binding,
        makespan=result.makespan,
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
    )


def compare_bindings(
    config: PipelineConfig = PipelineConfig(), engine: str = "event"
) -> Dict[str, PipelineReport]:
    """Fig. 4/5's claim in one call: serial stalls, interleaving saturates."""
    return {
        binding: simulate_binding(config, binding, engine=engine)
        for binding in BINDINGS
    }
