"""Epoch-pipeline simulation of the FuseMax binding (Fig. 4 / Fig. 5).

Builds the tile-granular task graph of the 1-pass attention cascade — one
set of tasks per M1 chunk — and simulates it under the two bindings:

- ``tile-serial`` (+Architecture): each chunk's tasks finish before the
  next chunk starts, and the 2D array pays non-overlapped fill/drain;
- ``interleaved`` (+Binding): the 2D array cycle-interleaves BQK of a
  later chunk with SLNV of an earlier one while the 1D array interleaves
  the running-state updates, exactly the ``A|B`` pipelining of Fig. 5.

Task durations are the cycles each tile occupies its array (per the
analytical model), so the simulator independently validates the claim that
the interleaved binding drives both arrays to ~100% utilization while the
tile-serial binding stalls both.

Beyond the single-instance graphs, :func:`build_scenario_tasks` merges
the graphs of every instance of a :class:`~repro.workloads.scenario
.Scenario` — N ``(batch, head)`` prefill instances plus optional decode
steps — into one schedule in which all instances contend for the shared
2D/1D arrays through the binding's issue slots.  The per-chunk work
totals the graphs are built from are exposed as :func:`chunk_work` so
the analytical models (:mod:`repro.model.scenario`) derive their bounds
from exactly the durations the simulator schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..arch.spec import EXP_AS_MACCS
from ..workloads.scenario import BINDINGS, Scenario
from .engine import SimResult, Simulator, Task
from .systolic import bqk_tile_timing

__all__ = [
    "BINDINGS",
    "ChunkWork",
    "PipelineConfig",
    "PipelineReport",
    "binding_sim",
    "build_decode_tasks",
    "build_scenario_tasks",
    "build_tasks",
    "chunk_work",
    "compare_bindings",
    "scenario_sim",
    "simulate_binding",
]

#: Cycles per exponentiation implemented as sequential MACCs.
_EXP_MACCS = EXP_AS_MACCS


@dataclass(frozen=True)
class PipelineConfig:
    """Shape of the simulated attention instance.

    The defaults mirror one (batch, head) slice on the cloud machine:
    E = F = 64, P0 = array rows, M0 = array columns; ``chunks`` is M1.
    """

    chunks: int = 16
    embedding: int = 64  # E (and F)
    array_dim: int = 256
    pe_1d: int = 256

    @property
    def p0(self) -> int:
        return self.array_dim

    @property
    def seq_len(self) -> int:
        """The simulated sequence length M = M1 · M0 (chunks × columns)."""
        return self.chunks * self.array_dim

    def one_d_cycles(self, ops_per_element: float) -> int:
        """1D-array cycles for a per-chunk vector op over P0 elements."""
        return max(1, round(ops_per_element * self.p0 / self.pe_1d))


def build_tasks(
    config: PipelineConfig, serial: bool, prefix: str = ""
) -> List[Task]:
    """The tile-granular task graph for ``config.chunks`` M1 chunks.

    ``prefix`` namespaces task names so several instances' graphs can be
    merged into one schedule (:func:`build_scenario_tasks`).
    """
    e = config.embedding
    tasks: List[Task] = []
    timing = bqk_tile_timing(config.array_dim, e)
    for i in range(config.chunks):
        prev = i - 1

        def dep(name: str, chunk: int = prev) -> Tuple[str, ...]:
            return (f"{prefix}{name}[{chunk}]",) if chunk >= 0 else ()

        bqk_deps: Tuple[str, ...] = ()
        if serial:
            # Tile-serial: the array is filled for each tile (operands
            # cross the array edge, no overlap with compute), and the next
            # tile waits for the previous chunk's state to be consumed.
            fill_deps: Tuple[str, ...] = ()
            if prev >= 0:
                fill_deps = (f"{prefix}RNV[{prev}]", f"{prefix}RD[{prev}]")
            tasks.append(Task(f"{prefix}FILL[{i}]", "io", timing.fill, fill_deps))
            bqk_deps = (f"{prefix}FILL[{i}]",)
        tasks.append(Task(f"{prefix}BQK[{i}]", "2d", e, bqk_deps))
        lm_dep: Tuple[str, ...] = (f"{prefix}BQK[{i}]",)
        if serial:
            # Non-overlapped drain of the finished tile before the 1D
            # array sees the local maxima.
            tasks.append(Task(f"{prefix}DRAIN[{i}]", "io", timing.drain, lm_dep))
            lm_dep = (f"{prefix}DRAIN[{i}]",)
        # LM: spatial max over the drain network, charged to the 1D array.
        tasks.append(Task(f"{prefix}LM[{i}]", "1d", config.one_d_cycles(1), lm_dep))
        tasks.append(
            Task(
                f"{prefix}RM[{i}]",
                "1d",
                config.one_d_cycles(1),
                (f"{prefix}LM[{i}]",) + dep("RM"),
            )
        )
        tasks.append(
            Task(
                f"{prefix}SLN[{i}]",
                "2d",
                _EXP_MACCS,
                (f"{prefix}BQK[{i}]", f"{prefix}RM[{i}]"),
            )
        )
        tasks.append(
            Task(f"{prefix}SLD[{i}]", "1d", config.one_d_cycles(1),
                 (f"{prefix}SLN[{i}]",))
        )
        tasks.append(Task(f"{prefix}SLNV[{i}]", "2d", e, (f"{prefix}SLN[{i}]",)))
        tasks.append(
            Task(
                f"{prefix}PRM[{i}]",
                "1d",
                config.one_d_cycles(_EXP_MACCS),
                dep("RM", i - 1) + (f"{prefix}RM[{i}]",),
            )
        )
        tasks.append(
            Task(
                f"{prefix}RD[{i}]",
                "1d",
                config.one_d_cycles(2),
                (f"{prefix}SLD[{i}]", f"{prefix}PRM[{i}]") + dep("RD"),
            )
        )
        # SPNV + RNV: 2 ops (multiply by PRM, add SLNV) per value element.
        tasks.append(
            Task(
                f"{prefix}RNV[{i}]",
                "1d",
                config.one_d_cycles(2 * e),
                (f"{prefix}SLNV[{i}]", f"{prefix}PRM[{i}]") + dep("RNV"),
            )
        )
    return tasks


def build_decode_tasks(config: PipelineConfig, prefix: str = "") -> List[Task]:
    """The task graph of one decode step over a ``config.chunks``-chunk
    KV cache (paper footnote 1; :mod:`repro.model.decode`).

    One query (P = 1) attends M0 keys per chunk: a QK tile and an AV
    tile on the 2D array bracket the running-softmax update on the 1D
    array.  KV-cache DRAM traffic — the real decode bottleneck — is not
    a compute resource here; decode instances model the *array-side*
    contention a decode stream adds to a shared schedule.
    """
    e = config.embedding
    tasks: List[Task] = []
    for i in range(config.chunks):
        prev_state = (f"{prefix}DSM[{i - 1}]",) if i else ()
        prev_acc = (f"{prefix}DAC[{i - 1}]",) if i else ()
        tasks.append(Task(f"{prefix}DQK[{i}]", "2d", e))
        # Running softmax state (max + normalizer) over the chunk's scores.
        tasks.append(
            Task(
                f"{prefix}DSM[{i}]",
                "1d",
                config.one_d_cycles(1),
                (f"{prefix}DQK[{i}]",) + prev_state,
            )
        )
        tasks.append(
            Task(f"{prefix}DAV[{i}]", "2d", e, (f"{prefix}DSM[{i}]",))
        )
        # Rescale-and-accumulate of the running output (2 ops/element).
        tasks.append(
            Task(
                f"{prefix}DAC[{i}]",
                "1d",
                config.one_d_cycles(2),
                (f"{prefix}DAV[{i}]",) + prev_acc,
            )
        )
    return tasks


@dataclass(frozen=True)
class ChunkWork:
    """Per-chunk busy cycles by resource — the durations one chunk's
    tasks contribute to the schedule, summed per array.

    This is the single source the analytical scenario models integrate
    over (:mod:`repro.model.scenario`): graph builders above and bounds
    below can never disagree about the work.
    """

    cycles_2d: int
    cycles_1d: int
    cycles_io: int


def chunk_work(config: PipelineConfig, serial: bool, kind: str = "prefill") -> ChunkWork:
    """Summed task durations of one chunk of a ``kind`` instance."""
    e = config.embedding
    if kind == "decode":
        return ChunkWork(
            cycles_2d=2 * e,
            cycles_1d=config.one_d_cycles(1) + config.one_d_cycles(2),
            cycles_io=0,
        )
    if kind != "prefill":
        raise ValueError(f"unknown instance kind {kind!r}")
    timing = bqk_tile_timing(config.array_dim, e)
    return ChunkWork(
        cycles_2d=2 * e + _EXP_MACCS,
        cycles_1d=(
            3 * config.one_d_cycles(1)
            + config.one_d_cycles(_EXP_MACCS)
            + config.one_d_cycles(2)
            + config.one_d_cycles(2 * e)
        ),
        cycles_io=(timing.fill + timing.drain) if serial else 0,
    )


def instance_config(scenario: Scenario, chunks: int) -> PipelineConfig:
    """The :class:`PipelineConfig` of one instance of ``scenario``."""
    return PipelineConfig(
        chunks=chunks,
        embedding=scenario.embedding,
        array_dim=scenario.array_dim,
        pe_1d=scenario.resolved_pe_1d,
    )


def build_scenario_tasks(scenario: Scenario) -> List[Task]:
    """The merged task graph of every instance of ``scenario``.

    Each instance's graph is namespaced ``i<n>:`` and carries no
    cross-instance dependencies — contention is purely through the
    shared ``2d``/``1d`` (and, tile-serial, ``io``) resources and the
    binding's issue slots.  Instances are emitted in phase order, so the
    engines' program-order tie-break admits earlier instances first when
    several are ready at once.
    """
    serial = scenario.binding == "tile-serial"
    tasks: List[Task] = []
    index = 0
    for phase in scenario.phases:
        config = instance_config(scenario, phase.chunks)
        for _ in range(phase.instances):
            prefix = f"i{index}:"
            if phase.kind == "decode":
                tasks.extend(build_decode_tasks(config, prefix))
            else:
                tasks.extend(build_tasks(config, serial=serial, prefix=prefix))
            index += 1
    return tasks


@dataclass(frozen=True)
class PipelineReport:
    """Utilizations measured by the binding simulation."""

    binding: str
    makespan: int
    util_2d: float
    util_1d: float


def _run(tasks: List[Task], scenario_like_serial: bool, slots: int,
         engine: str) -> SimResult:
    """Schedule ``tasks`` under the binding's issue discipline."""
    sim = Simulator(
        tasks,
        mode="serial" if scenario_like_serial else "interleaved",
        slots=slots,
        engine=engine,
    )
    # The cycle budget is ``sum of durations + 1``: some resource issues
    # every cycle of a valid schedule, so the makespan can never exceed
    # the total work — a deterministic bound that scales with the graph.
    budget = sum(task.duration for task in tasks) + 1
    return sim.run(max_cycles=budget)


def binding_sim(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> Tuple[List[Task], SimResult]:
    """Build and run one binding's task graph; returns (tasks, result)."""
    if binding not in BINDINGS:
        raise ValueError(f"unknown binding {binding!r}")
    serial = binding == "tile-serial"
    tasks = build_tasks(config, serial=serial)
    return tasks, _run(tasks, serial, slots=2, engine=engine)


def scenario_sim(
    scenario: Scenario, engine: str = "event"
) -> Tuple[List[Task], SimResult]:
    """Build and run ``scenario``'s merged graph; returns (tasks, result)."""
    tasks = build_scenario_tasks(scenario)
    serial = scenario.binding == "tile-serial"
    return tasks, _run(tasks, serial, slots=scenario.slots, engine=engine)


def simulate_binding(
    config: PipelineConfig, binding: str, engine: str = "event"
) -> PipelineReport:
    """Simulate one binding (``"tile-serial"`` or ``"interleaved"``)."""
    _, result = binding_sim(config, binding, engine=engine)
    return PipelineReport(
        binding=binding,
        makespan=result.makespan,
        util_2d=result.utilization("2d"),
        util_1d=result.utilization("1d"),
    )


def compare_bindings(
    config: PipelineConfig = PipelineConfig(), engine: str = "event"
) -> Dict[str, PipelineReport]:
    """Fig. 4/5's claim in one call: serial stalls, interleaving saturates."""
    return {
        binding: simulate_binding(config, binding, engine=engine)
        for binding in BINDINGS
    }
