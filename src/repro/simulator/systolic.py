"""Fill/compute/drain timing of one systolic tile (Sec. V, "Binding").

The paper's motivating arithmetic: evaluating an ``M0 × P0`` tile of
``BQK`` with an output-stationary dataflow takes ``E`` multiply-accumulate
cycles per PE, but filling operands into and draining results out of a
``dim × dim`` array costs on the order of the array dimension each —
"while each PE performs 64 MACCs, it takes ∼256 cycles to both fill and
drain the spatial array".  Without interleaving this caps utilization at
roughly ``E / (E + fill + drain)``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileTiming:
    """Cycle budget for one tile on the 2D array."""

    fill: int
    compute: int
    drain: int

    @property
    def serial_cycles(self) -> int:
        """Latency when fill, compute, and drain do not overlap."""
        return self.fill + self.compute + self.drain

    @property
    def serial_utilization(self) -> float:
        """PE utilization of the tile-serial binding."""
        return self.compute / self.serial_cycles

    @property
    def pipelined_interval(self) -> int:
        """Initiation interval once consecutive tiles are interleaved:
        fills and drains of neighbouring tiles overlap with compute."""
        return max(self.compute, 1)


def bqk_tile_timing(array_dim: int, embedding: int) -> TileTiming:
    """Timing of one output-stationary ``BQK`` tile.

    ``embedding`` is E (the reduction depth): each PE performs E MACCs.
    Operand skew across the array costs ~``array_dim`` cycles on the way
    in and the spatial reduction/drain ~``array_dim`` on the way out.
    """
    return TileTiming(fill=array_dim, compute=embedding, drain=array_dim)


def exp_tile_timing(array_dim: int, exp_maccs: int = 6) -> TileTiming:
    """Timing of an in-place exponentiation tile (``SLN``): no refill —
    operands are already output-stationary in the PE register files."""
    return TileTiming(fill=0, compute=exp_maccs, drain=array_dim)
