"""A small cycle-granular task simulator for spatial-array bindings.

Models an accelerator as a set of *resources* (the 2D array, the 1D array)
executing *tasks* (tile-granular Einsum evaluations) with dependencies.
Two issue disciplines are supported, matching the paper's two bindings:

- ``serial`` — a resource runs one task at a time, to completion.  This is
  the +Architecture binding: one tile fully produced and consumed before
  the next begins.
- ``interleaved`` — a resource round-robins cycle-by-cycle among up to
  ``slots`` ready tasks (the paper's ``A|B`` notation: each cycle a PE
  computes a value for either A or B, alternating).  Combined with
  dependency-driven issue this reproduces the software-pipelined epochs of
  Fig. 4.

The simulator is deliberately tile-granular (a task's duration is the
cycles its Einsum occupies the array), which is the granularity at which
the paper's waterfall (Fig. 4) reasons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple


@dataclass
class Task:
    """One tile-granular unit of work bound to a resource."""

    name: str
    resource: str
    duration: int
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: negative duration")


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation."""

    makespan: int
    busy_cycles: Mapping[str, int]
    finish_times: Mapping[str, int]

    def utilization(self, resource: str) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy_cycles.get(resource, 0) / self.makespan


class Simulator:
    """Executes a task graph cycle by cycle."""

    def __init__(
        self,
        tasks: Sequence[Task],
        mode: str = "interleaved",
        slots: int = 2,
    ) -> None:
        if mode not in ("serial", "interleaved"):
            raise ValueError(f"unknown issue mode {mode!r}")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names")
        by_name = {t.name: t for t in tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise ValueError(f"task {task.name}: unknown dep {dep!r}")
        self.tasks = list(tasks)
        self.mode = mode
        self.slots = slots if mode == "interleaved" else 1

    def run(self, max_cycles: int = 10_000_000) -> SimResult:
        """Simulate to completion; returns makespan and busy counts."""
        remaining: Dict[str, int] = {t.name: t.duration for t in self.tasks}
        done: Set[str] = {t.name for t in self.tasks if t.duration == 0}
        finish: Dict[str, int] = {name: 0 for name in done}
        busy: Dict[str, int] = {}
        resources = sorted({t.resource for t in self.tasks})
        # Tasks listed per resource in program order (issue priority).
        per_resource: Dict[str, List[Task]] = {r: [] for r in resources}
        for task in self.tasks:
            per_resource[task.resource].append(task)

        active: Dict[str, List[str]] = {r: [] for r in resources}
        rr_offset: Dict[str, int] = {r: 0 for r in resources}
        cycle = 0
        while len(done) < len(self.tasks):
            if cycle >= max_cycles:
                raise RuntimeError("simulation exceeded max_cycles (deadlock?)")
            completed_this_cycle: List[str] = []
            for resource in resources:
                # Refill the active set with ready tasks, in program order.
                slots_free = self.slots - len(active[resource])
                if slots_free > 0:
                    for task in per_resource[resource]:
                        if slots_free == 0:
                            break
                        if (
                            task.name not in done
                            and task.name not in active[resource]
                            and all(d in done for d in task.deps)
                        ):
                            active[resource].append(task.name)
                            slots_free -= 1
                if not active[resource]:
                    continue
                # Round-robin one issue slot per cycle among active tasks.
                index = rr_offset[resource] % len(active[resource])
                name = active[resource][index]
                rr_offset[resource] += 1
                remaining[name] -= 1
                busy[resource] = busy.get(resource, 0) + 1
                if remaining[name] == 0:
                    active[resource].remove(name)
                    completed_this_cycle.append(name)
                    finish[name] = cycle + 1
            # Completions become visible to dependents on the next cycle:
            # no same-cycle forwarding across resources.
            done.update(completed_this_cycle)
            cycle += 1
        return SimResult(makespan=cycle, busy_cycles=busy, finish_times=finish)
