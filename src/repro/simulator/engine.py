"""A small cycle-granular task simulator for spatial-array bindings.

Models an accelerator as a set of *resources* (the 2D array, the 1D array)
executing *tasks* (tile-granular Einsum evaluations) with dependencies.
Two issue disciplines are supported, matching the paper's two bindings:

- ``serial`` — a resource runs one task at a time, to completion.  This is
  the +Architecture binding: one tile fully produced and consumed before
  the next begins.
- ``interleaved`` — a resource round-robins cycle-by-cycle among up to
  ``slots`` ready tasks (the paper's ``A|B`` notation: each cycle a PE
  computes a value for either A or B, alternating).  Combined with
  dependency-driven issue this reproduces the software-pipelined epochs of
  Fig. 4.

The simulator is deliberately tile-granular (a task's duration is the
cycles its Einsum occupies the array), which is the granularity at which
the paper's waterfall (Fig. 4) reasons.

Beyond its compute cycles, a task may carry a ``bytes_moved`` cost — the
DRAM traffic its tile streams (operand fetch or result write-back).
With a finite ``dram_bw`` (bytes per cycle), :func:`lower_dram` turns
each such cost into an explicit transfer task on a shared ``dram``
resource that gates the compute task; both scheduling cores then
arbitrate memory bandwidth with exactly the same issue discipline as the
PE arrays, so concurrent instances slow each other down once their
aggregate traffic exceeds the link.  ``dram_bw=None`` leaves the graph
untouched (bit-identical to pre-bandwidth schedules), and ``math.inf``
lowers every transfer to zero cycles — also the untouched graph.

Three interchangeable cores execute the schedule:

- ``engine="event"`` (default) — the event-driven scheduler in
  :mod:`.events`, which jumps straight from completion to completion in
  O(tasks) steps; this is what makes long-sequence sweeps tractable.
- ``engine="vector"`` — the int-lowered event core in :mod:`.vector`;
  through :func:`~repro.simulator.pipeline.scenario_sim` it adds
  symmetry folding, which replays recurring windows of a merged
  scenario's schedule arithmetically instead of simulating them.
- ``engine="cycle"`` — the original cycle-by-cycle loop below, kept as
  the differential oracle: all cores produce bit-identical
  :class:`SimResult` values on every task graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from heapq import heappop, heappush
from math import ceil
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

#: Resource name of the shared memory link :func:`lower_dram` introduces.
DRAM_RESOURCE = "dram"

#: Name suffix of the transfer task that gates a traffic-carrying task.
_DRAM_SUFFIX = "@dram"


@dataclass
class Task:
    """One tile-granular unit of work bound to a resource.

    ``bytes_moved`` is the DRAM traffic the task's tile streams; it is
    inert until :func:`lower_dram` (or ``Simulator(dram_bw=...)``) turns
    it into occupancy on the shared ``dram`` resource.
    """

    name: str
    resource: str
    duration: int
    deps: Tuple[str, ...] = ()
    bytes_moved: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: negative duration")
        if self.bytes_moved < 0:
            raise ValueError(f"task {self.name}: negative bytes_moved")


def transfer_cycles(bytes_moved: int, dram_bw: float) -> int:
    """Cycles ``bytes_moved`` occupies a ``dram_bw`` bytes/cycle link.

    The ceiling of the exact quotient: a transfer holds the link for
    whole cycles, so any positive traffic costs at least one cycle —
    except at ``dram_bw=math.inf``, where every transfer is free and the
    lowered graph degenerates to the unlowered one.
    """
    if bytes_moved <= 0 or dram_bw == float("inf"):
        return 0
    return ceil(bytes_moved / dram_bw)


def lower_dram(
    tasks: Sequence[Task],
    dram_bw: Optional[float],
    buffer_bytes: Optional[float] = None,
) -> List[Task]:
    """Make each task's ``bytes_moved`` explicit on a shared ``dram``
    resource.

    Every task whose traffic costs at least one cycle at ``dram_bw``
    gains a transfer task (``<name>@dram``) emitted immediately before
    it, and the task itself waits on its transfer.  By default transfers
    carry no deps — the memory system streams ahead freely — so
    contention is purely bandwidth: the ``dram`` resource round-robins
    pending transfers through the same issue slots as the PE arrays, and
    program order decides ties exactly as it does everywhere else.

    A finite ``buffer_bytes`` bounds that prefetch depth to an on-chip
    buffer capacity: fetched tiles hold their bytes from transfer until
    their consumer completes (last use), tracked as a FIFO window of
    ``(consumer, bytes)`` residents.  A transfer that would overflow the
    window gains dependencies on the *oldest* residents' consumers — it
    cannot start until their buffer space frees — and evicts them from
    the window.  The bound is thus ordinary graph structure: every dep
    points backward in program order (acyclic, deadlock-free) and all
    three engines schedule it with zero changes.  ``buffer_bytes=None``
    and ``math.inf`` leave every transfer dependency-free, reproducing
    the unbounded lowering exactly.

    ``dram_bw=None`` returns the tasks unchanged; so does any bandwidth
    at which no task's transfer costs a cycle (``math.inf``).  The input
    must not already be lowered (duplicate transfer names are rejected
    by the :class:`Simulator` constructor).
    """
    if dram_bw is None:
        return list(tasks)
    if not dram_bw > 0:
        raise ValueError(f"dram_bw must be > 0, got {dram_bw}")
    if buffer_bytes is not None and not buffer_bytes > 0:
        raise ValueError(f"buffer_bytes must be > 0, got {buffer_bytes}")
    bounded = buffer_bytes is not None and buffer_bytes != float("inf")
    window: List[Tuple[str, int]] = []  # FIFO of (consumer, bytes) residents
    held = 0
    lowered: List[Task] = []
    for task in tasks:
        cycles = transfer_cycles(task.bytes_moved, dram_bw)
        if cycles == 0:
            lowered.append(task)
            continue
        transfer = f"{task.name}{_DRAM_SUFFIX}"
        evicted: Tuple[str, ...] = ()
        if bounded:
            while window and held + task.bytes_moved > buffer_bytes:
                consumer, freed = window.pop(0)
                held -= freed
                evicted += (consumer,)
            window.append((task.name, task.bytes_moved))
            held += task.bytes_moved
        lowered.append(Task(transfer, DRAM_RESOURCE, cycles, evicted))
        lowered.append(replace(task, deps=task.deps + (transfer,)))
    return lowered


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation."""

    makespan: int
    busy_cycles: Mapping[str, int]
    finish_times: Mapping[str, int]

    def utilization(self, resource: str) -> float:
        if self.makespan == 0:
            return 0.0
        return self.busy_cycles.get(resource, 0) / self.makespan


def _dependency_frontier(tasks: Sequence[Task], resources: Sequence[str]):
    """The readiness state both scheduling cores start from.

    Both engines' bit-identical guarantee rests on these semantics, so
    they are built in exactly one place: zero-duration tasks are done at
    t=0 unconditionally (finish 0); every positive-duration task gets an
    outstanding count of its *unique* not-yet-done deps plus a seat in
    the dependents fan-out of each, and — when already ready — a seat in
    its resource's ready heap, keyed by program order (the original
    full-list rescan's priority).

    Returns ``(done, finish, order, dependents, outstanding, ready)``.
    """
    done: Set[str] = {t.name for t in tasks if t.duration == 0}
    finish: Dict[str, int] = {name: 0 for name in done}
    order: Dict[str, int] = {t.name: i for i, t in enumerate(tasks)}
    dependents: Dict[str, List[str]] = {}
    outstanding: Dict[str, int] = {}
    ready: Dict[str, List[Tuple[int, str]]] = {r: [] for r in resources}
    for task in tasks:
        if task.duration == 0:
            continue
        waiting = {d for d in task.deps if d not in done}
        outstanding[task.name] = len(waiting)
        for dep in waiting:
            dependents.setdefault(dep, []).append(task.name)
        if not waiting:
            heappush(ready[task.resource], (order[task.name], task.name))
    return done, finish, order, dependents, outstanding, ready


class Simulator:
    """Executes a task graph on one of the two interchangeable cores."""

    def __init__(
        self,
        tasks: Sequence[Task],
        mode: str = "interleaved",
        slots: int = 2,
        engine: str = "event",
        dram_bw: Optional[float] = None,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        if mode not in ("serial", "interleaved"):
            raise ValueError(f"unknown issue mode {mode!r}")
        if engine not in ("event", "cycle", "vector"):
            raise ValueError(f"unknown engine {engine!r}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        # A finite dram_bw makes each task's bytes_moved occupy the
        # shared "dram" resource; both cores then arbitrate it exactly
        # like the PE arrays (the lowering happens before either runs).
        # A finite buffer_bytes additionally bounds prefetch depth.
        tasks = lower_dram(tasks, dram_bw, buffer_bytes)
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names")
        by_name = {t.name: t for t in tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise ValueError(f"task {task.name}: unknown dep {dep!r}")
        self.tasks = list(tasks)
        self.mode = mode
        self.slots = slots if mode == "interleaved" else 1
        self.engine = engine
        self.dram_bw = dram_bw
        self.buffer_bytes = buffer_bytes

    def run(self, max_cycles: int = 10_000_000) -> SimResult:
        """Simulate to completion; returns makespan and busy counts."""
        if self.engine == "event":
            from .events import run_event_driven

            return run_event_driven(self.tasks, self.slots, max_cycles)
        if self.engine == "vector":
            from .vector import run_vectorized

            return run_vectorized(self.tasks, self.slots, max_cycles)
        return self._run_cycles(max_cycles)

    def _run_cycles(self, max_cycles: int) -> SimResult:
        """The cycle-accurate oracle: one Python iteration per cycle.

        Slot refill is driven by a per-resource ready frontier (a heap of
        tasks whose outstanding dependency count hit zero, keyed by
        program order — the original full-list rescan's priority), so one
        run costs O(makespan + tasks·log tasks) rather than
        O(tasks·cycles).  Scheduling decisions are unchanged.
        """
        remaining: Dict[str, int] = {t.name: t.duration for t in self.tasks}
        busy: Dict[str, int] = {}
        resources = sorted({t.resource for t in self.tasks})
        resource_of = {t.name: t.resource for t in self.tasks}
        # Tasks enter their resource's ready heap exactly once, when
        # their last outstanding dep completes.
        done, finish, order, dependents, outstanding, ready = (
            _dependency_frontier(self.tasks, resources)
        )

        active: Dict[str, List[str]] = {r: [] for r in resources}
        rr_offset: Dict[str, int] = {r: 0 for r in resources}
        cycle = 0
        while len(done) < len(self.tasks):
            if cycle >= max_cycles:
                raise RuntimeError("simulation exceeded max_cycles (deadlock?)")
            completed_this_cycle: List[str] = []
            progressed = False
            for resource in resources:
                # Refill the active set with ready tasks, in program order.
                acts = active[resource]
                heap = ready[resource]
                while len(acts) < self.slots and heap:
                    acts.append(heappop(heap)[1])
                if not acts:
                    continue
                progressed = True
                # Round-robin one issue slot per cycle among active tasks.
                index = rr_offset[resource] % len(acts)
                name = acts[index]
                rr_offset[resource] += 1
                remaining[name] -= 1
                busy[resource] = busy.get(resource, 0) + 1
                if remaining[name] == 0:
                    acts.pop(index)
                    completed_this_cycle.append(name)
                    finish[name] = cycle + 1
            if not progressed:
                # Nothing active and nothing ready anywhere: unfinished
                # tasks wait on deps that can never complete.
                raise RuntimeError("simulation exceeded max_cycles (deadlock?)")
            # Completions become visible to dependents on the next cycle:
            # no same-cycle forwarding across resources.
            for name in completed_this_cycle:
                done.add(name)
                for dependent in dependents.get(name, ()):
                    outstanding[dependent] -= 1
                    if outstanding[dependent] == 0:
                        heappush(
                            ready[resource_of[dependent]],
                            (order[dependent], dependent),
                        )
            cycle += 1
        return SimResult(makespan=cycle, busy_cycles=busy, finish_times=finish)
