"""Cycle-granular simulation of spatial-array bindings."""

from .dataflow import TileResult, expected_compute_cycles, simulate_tile
from .engine import SimResult, Simulator, Task
from .pipeline import (
    PipelineConfig,
    PipelineReport,
    build_tasks,
    compare_bindings,
    simulate_binding,
)
from .systolic import TileTiming, bqk_tile_timing, exp_tile_timing

__all__ = [
    "PipelineConfig",
    "PipelineReport",
    "SimResult",
    "Simulator",
    "Task",
    "TileResult",
    "TileTiming",
    "bqk_tile_timing",
    "build_tasks",
    "compare_bindings",
    "exp_tile_timing",
    "expected_compute_cycles",
    "simulate_binding",
    "simulate_tile",
]
