"""Cycle-granular simulation of spatial-array bindings.

Two interchangeable scheduling cores back every simulation: the
event-driven scheduler (:mod:`.events`, the default) and the
cycle-accurate oracle it is differentially tested against
(``Simulator(..., engine="cycle")``).  On top sit the Fig. 4/5 binding
pipeline (:mod:`.pipeline`) and long-sequence binding sweeps
(:mod:`.sweep`).
"""

from .dataflow import TileResult, expected_compute_cycles, simulate_tile
from .engine import SimResult, Simulator, Task
from .events import run_event_driven
from .pipeline import (
    BINDINGS,
    ChunkWork,
    PipelineConfig,
    PipelineReport,
    binding_sim,
    build_decode_tasks,
    build_scenario_tasks,
    build_tasks,
    chunk_work,
    compare_bindings,
    scenario_sim,
    simulate_binding,
)
from .sweep import (
    DEFAULT_SWEEP_ARRAY_DIMS,
    DEFAULT_SWEEP_CHUNKS,
    SCENARIO_FIELDS,
    SCENARIO_GRID_FIELDS,
    SWEEP_FIELDS,
    BindingPoint,
    BindingResult,
    ScenarioGridCell,
    ScenarioGridResult,
    ScenarioResult,
    evaluate_binding_point,
    evaluate_scenario_point,
    grid_csv,
    grid_json,
    grid_table,
    scenario_csv,
    scenario_json,
    scenario_table,
    sweep_csv,
    sweep_json,
    sweep_table,
)
from .systolic import TileTiming, bqk_tile_timing, exp_tile_timing
from .waterfall import binding_waterfall, waterfall_text

__all__ = [
    "BINDINGS",
    "BindingPoint",
    "BindingResult",
    "ChunkWork",
    "DEFAULT_SWEEP_ARRAY_DIMS",
    "DEFAULT_SWEEP_CHUNKS",
    "PipelineConfig",
    "PipelineReport",
    "SCENARIO_FIELDS",
    "SCENARIO_GRID_FIELDS",
    "SWEEP_FIELDS",
    "ScenarioGridCell",
    "ScenarioGridResult",
    "ScenarioResult",
    "SimResult",
    "Simulator",
    "Task",
    "TileResult",
    "TileTiming",
    "binding_sim",
    "binding_waterfall",
    "bqk_tile_timing",
    "build_decode_tasks",
    "build_scenario_tasks",
    "build_tasks",
    "chunk_work",
    "compare_bindings",
    "evaluate_binding_point",
    "evaluate_scenario_point",
    "exp_tile_timing",
    "grid_csv",
    "grid_json",
    "grid_table",
    "expected_compute_cycles",
    "run_event_driven",
    "scenario_csv",
    "scenario_json",
    "scenario_sim",
    "scenario_table",
    "simulate_binding",
    "simulate_tile",
    "sweep_csv",
    "sweep_json",
    "sweep_table",
    "waterfall_text",
]
