"""Event-driven scheduler: the cycle engine's results without the cycles.

The cycle-accurate engine (:mod:`.engine`) costs O(makespan) Python
iterations per run — fine for the default 32-chunk Fig. 4/5 graph,
hopeless for long-sequence regimes where M1 reaches the thousands and
makespans the millions.  This module computes the *same schedule* in
O(tasks) events by advancing time directly to the next task completion.

Why a closed form exists
------------------------

Between task completions, nothing about a resource changes: completions
are the only way a slot frees, and dependency satisfaction (which admits
new tasks) happens only when a task completes.  So each resource's
active set is constant between events, and the engine's deterministic
round-robin can be integrated over the whole gap at once.  With ``k``
co-active tasks, a rotation counter ``rr`` (total issue cycles so far on
the resource), and an elapsed window of ``delta`` cycles, the task at
list position ``j`` is served exactly

    ``delta // k  +  (1 if (j - rr) % k < delta % k else 0)``

cycles — the ceil/floor split of the engine's per-cycle rotation — and a
task needing ``R`` more cycles completes at absolute time

    ``sync + (j - rr) % k + (R - 1) * k + 1``

where ``sync`` is the window's start.  The minimum of that expression
over all active tasks on all resources is the next event.  Because a
resource issues at most one task-cycle per cycle, exactly one task
completes per resource per event time, which keeps list positions and
the rotation counter exactly in step with the cycle engine.

Completions at time ``T`` become visible to dependents at ``T`` (the
engine's "next cycle after the finishing cycle"), so ready tasks join
their resource's pending heap and are activated — in program order, the
engine's refill scan order — before the next event is computed.

The result is **bit-identical** to ``Simulator(..., engine="cycle")`` on
every task graph: same makespan, same per-resource busy cycles, same
per-task finish times.

The shared ``dram`` resource that bandwidth-lowered graphs carry
(:func:`repro.simulator.engine.lower_dram`) needs no special handling
here: transfer tasks are ordinary tasks on one more resource, so the
closed-form rotation integrates memory contention exactly as it does
array contention — which is what keeps bandwidth-limited schedules
inside the bit-identical guarantee rather than beside it.  Note the
dependency-free transfers make the ``dram`` pending heap large at t=0
(every instance's stream is admissible immediately); the heap is shared
with the cycle engine's refill scan, so order stays in lockstep.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence

from .engine import SimResult, Task, _dependency_frontier

#: Error text shared with the cycle engine so callers can match either.
_DEADLOCK = "simulation exceeded max_cycles (deadlock?)"


def run_event_driven(tasks: Sequence[Task], slots: int, max_cycles: int) -> SimResult:
    """Schedule ``tasks`` event by event; see the module docstring.

    ``slots`` is the effective issue width (1 for the serial discipline).
    Raises :class:`RuntimeError` exactly when the cycle engine would:
    on dependency deadlock, or when the makespan exceeds ``max_cycles``.
    """
    resource_of: Dict[str, str] = {t.name: t.resource for t in tasks}
    duration: Dict[str, int] = {t.name: t.duration for t in tasks}
    resources = sorted({t.resource for t in tasks})
    # Readiness semantics are shared with the cycle engine verbatim —
    # the bit-identical guarantee starts here.
    done, finish, order, dependents, outstanding, pending = _dependency_frontier(tasks, resources)
    total_nonzero = len(tasks) - len(done)

    # Per-resource schedule state.  ``active`` holds [name, remaining]
    # pairs in the engine's list order; ``rr`` is the engine's rotation
    # counter; ``sync`` the time up to which progress has been applied.
    active: Dict[str, List[List]] = {r: [] for r in resources}
    rr: Dict[str, int] = {r: 0 for r in resources}
    sync: Dict[str, int] = {r: 0 for r in resources}
    next_done: Dict[str, Optional[int]] = {r: None for r in resources}
    busy: Dict[str, int] = {}

    def advance(resource: str, now: int) -> Optional[str]:
        """Apply ``now - sync`` round-robin cycles; return any completion."""
        acts = active[resource]
        delta = now - sync[resource]
        sync[resource] = now
        if not acts or delta == 0:
            return None
        rr[resource] += delta
        busy[resource] = busy.get(resource, 0) + delta
        k = len(acts)
        if k == 1:  # fast path: serial mode / lone active task
            entry = acts[0]
            entry[1] -= delta
            if entry[1] == 0:
                return acts.pop()[0]
            return None
        quotient, extra = divmod(delta, k)
        base = rr[resource] - delta
        completed: Optional[int] = None
        for j, entry in enumerate(acts):
            served = quotient + (1 if (j - base) % k < extra else 0)
            if served:
                entry[1] -= served
                if entry[1] == 0:
                    completed = j
        if completed is None:
            return None
        return acts.pop(completed)[0]

    def refill(resource: str) -> None:
        """Engine's refill scan: ready tasks join in program order."""
        heap = pending[resource]
        acts = active[resource]
        while len(acts) < slots and heap:
            _, name = heappop(heap)
            acts.append([name, duration[name]])

    def completion_time(resource: str) -> Optional[int]:
        acts = active[resource]
        if not acts:
            return None
        k = len(acts)
        start = sync[resource]
        if k == 1:  # fast path: next completion is simply the remainder
            return start + acts[0][1]
        base = rr[resource]
        best: Optional[int] = None
        for j, (_, remaining) in enumerate(acts):
            when = start + (j - base) % k + (remaining - 1) * k + 1
            if best is None or when < best:
                best = when
        return best

    for resource in resources:
        refill(resource)
        next_done[resource] = completion_time(resource)

    now = 0
    completed_count = 0
    while completed_count < total_nonzero:
        # One scan finds both the next event time and who completes at
        # it; the handful of resources makes a heap counterproductive.
        now = -1
        for when in next_done.values():
            if when is not None and (now < 0 or when < now):
                now = when
        if now < 0 or now > max_cycles:
            raise RuntimeError(_DEADLOCK)
        touched = {r for r in resources if next_done[r] == now}
        finished: List[str] = []
        for resource in touched:
            name = advance(resource, now)
            if name is None:  # pragma: no cover - violated scheduling math
                raise RuntimeError(f"lost completion on {resource} at {now}")
            finish[name] = now
            finished.append(name)
        completed_count += len(finished)
        # All same-time completions become visible together, then newly
        # ready tasks enter their resource's pending heap (engine: the
        # end-of-cycle done.update followed by next cycle's refill).
        for name in finished:
            for dependent in dependents.get(name, ()):
                outstanding[dependent] -= 1
                if outstanding[dependent] == 0:
                    resource = resource_of[dependent]
                    heappush(pending[resource], (order[dependent], dependent))
                    touched.add(resource)
        for resource in touched:
            leak = advance(resource, now)  # arrival-only resources catch up
            if leak is not None:  # pragma: no cover - violated math
                raise RuntimeError(f"lost completion on {resource} at {now}")
            refill(resource)
            next_done[resource] = completion_time(resource)

    return SimResult(makespan=now, busy_cycles=busy, finish_times=finish)
