"""A generic fused-cascade evaluator: cascade + binding + buffer → roofline.

The per-configuration models in this package encode each design's traffic
behaviour explicitly (FLAT's spill strategies, the unfused baseline's
phase structure).  This module provides the *generic* engine those models
are instances of:

1. op counts per Einsum from :mod:`repro.analysis.opcount`;
2. busy cycles per array from a :class:`repro.mapping.Binding`;
3. DRAM traffic from the cascade's algorithmic floor
   (:mod:`repro.analysis.traffic`) under the architecture's buffer;
4. roofline latency = max(2D busy, 1D busy, traffic / bandwidth).

It is useful for evaluating *new* cascades (e.g. the extension variants)
on the modeled architectures without writing a bespoke model, and it
cross-checks the bespoke models where they overlap (FuseMax's +Binding is
exactly this engine on Cascade 5 with the fused binding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..analysis.opcount import count_ops
from ..analysis.passes import PassAnalysis, RankFamily, count_passes
from ..analysis.traffic import traffic_lower_bound
from ..arch.spec import Architecture
from ..einsum import Cascade
from ..mapping.binding import Binding, validate_binding
from .perf import array_cycles


@dataclass(frozen=True)
class GenericEvaluation:
    """Roofline evaluation of one fused cascade instance."""

    cascade_name: str
    latency_cycles: float
    busy_2d_cycles: float
    busy_1d_cycles: float
    dram_words: float
    buffered: bool

    @property
    def util_2d(self) -> float:
        return min(1.0, self.busy_2d_cycles / self.latency_cycles)

    @property
    def util_1d(self) -> float:
        return min(1.0, self.busy_1d_cycles / self.latency_cycles)


def evaluate_cascade(
    cascade: Cascade,
    binding: Binding,
    rank_family: RankFamily,
    arch: Architecture,
    shapes: Mapping[str, int],
    analysis: Optional[PassAnalysis] = None,
) -> GenericEvaluation:
    """Evaluate one instance of ``cascade`` bound by ``binding``.

    Fully pipelined (the +Binding discipline): latency is the maximum of
    the two arrays' busy time and the streaming time of the cascade's
    DRAM-traffic floor under the architecture's global buffer.
    """
    validate_binding(binding, cascade, arch)
    per_einsum = count_ops(cascade, shapes)
    work_2d = array_cycles(per_einsum, binding.on_array("2d"), arch.pe_2d,
                           exp_cycles=6)
    work_1d = array_cycles(per_einsum, binding.on_array("1d"), arch.pe_1d,
                           exp_cycles=arch.exp_cycles_1d())
    if analysis is None:
        analysis = count_passes(cascade, rank_family)
    traffic = traffic_lower_bound(
        analysis, shapes, arch.global_buffer_bytes, arch.word_bytes
    )
    traffic_cycles = (
        traffic.total_words() * arch.word_bytes / arch.dram_bytes_per_cycle
    )
    latency = max(work_2d.busy_cycles, work_1d.busy_cycles, traffic_cycles)
    return GenericEvaluation(
        cascade_name=cascade.name,
        latency_cycles=latency,
        busy_2d_cycles=work_2d.busy_cycles,
        busy_1d_cycles=work_1d.busy_cycles,
        dram_words=traffic.total_words(),
        buffered=traffic.buffered,
    )
