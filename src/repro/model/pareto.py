"""Design-space sweep for Fig. 12: area vs attention latency.

Varies the PE-array dimension between 16×16 and 512×512 (global and per-PE
buffers scaled with the pipelined/interleaved binding, per Sec. VI-D) and
reports the area/latency frontier of the FuseMax design at sequence length
256K for each model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arch.area import area_of
from ..arch.spec import fusemax_arch
from ..workloads.models import BATCH_SIZE, ModelConfig
from .fusemax import fusemax

#: The array dimensions swept by the paper.
ARRAY_DIMS: Tuple[int, ...] = (16, 32, 64, 128, 256, 512)

#: The sequence length of Fig. 12.
PARETO_SEQ_LEN = 262144


@dataclass(frozen=True)
class DesignPoint:
    """One accelerator design point of the Fig. 12 sweep."""

    model: str
    array_dim: int
    area_cm2: float
    latency_seconds: float


def _scaled_arch(dim: int):
    """A FuseMax architecture scaled to ``dim`` × ``dim`` PEs.

    The global buffer scales with the array edge (it holds the pipelined
    binding's in-flight tiles, whose footprint is O(dim²) elements but
    measured against a 256-baseline 16 MB).
    """
    base = fusemax_arch()
    glb = int(base.global_buffer_bytes * (dim / base.array_dim) ** 2)
    glb = max(glb, 2**20)  # at least 1 MB of staging
    return fusemax_arch(array_dim=dim, global_buffer_bytes=glb).__class__(
        name=f"fusemax-{dim}x{dim}",
        array_dim=dim,
        global_buffer_bytes=glb,
        exp_unit_1d=False,
        fused_2d_softmax=True,
        rf_entries_2d=10,
    )


def design_point(
    model: ModelConfig,
    dim: int,
    seq_len: int = PARETO_SEQ_LEN,
    batch: int = BATCH_SIZE,
) -> DesignPoint:
    """Evaluate one ``dim`` × ``dim`` FuseMax design for one model."""
    arch = _scaled_arch(dim)
    result = fusemax(arch=arch).evaluate(model, seq_len, batch)
    return DesignPoint(
        model=model.name,
        array_dim=dim,
        area_cm2=area_of(arch).total_cm2,
        latency_seconds=arch.seconds(result.latency_cycles),
    )


def sweep(
    model: ModelConfig,
    seq_len: int = PARETO_SEQ_LEN,
    dims: Sequence[int] = ARRAY_DIMS,
    batch: int = BATCH_SIZE,
) -> List[DesignPoint]:
    """Evaluate the FuseMax design across PE-array sizes for one model."""
    return [design_point(model, dim, seq_len, batch) for dim in dims]


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated (area, latency) subset, sorted by area."""
    ordered = sorted(points, key=lambda pt: (pt.area_cm2, pt.latency_seconds))
    frontier: List[DesignPoint] = []
    best_latency = float("inf")
    for point in ordered:
        if point.latency_seconds < best_latency:
            frontier.append(point)
            best_latency = point.latency_seconds
    return frontier
