"""The FLAT baseline model (Kao et al., corrected per the paper's Sec. VI-A).

FLAT fuses QK → softmax → AV on the spatial architecture: the 2D array
computes the tensor products while the 1D array (256 PEs, with a dedicated
exponentiation unit per the original FLAT model) executes the 3-pass
softmax.  Because the cascade is 3-pass, the softmax input's algorithmic
minimum live footprint is a full M fiber per query (Sec. III-B / IV-E1):

- While ``M × P_t`` scores fit on chip (softmax applied in place), FLAT
  only re-streams K and V once per P-tile.
- When the sequence grows, FLAT either shrinks the P-tile (multiplying the
  K/V re-streaming traffic) or spills the QK and softmax-numerator tensors
  to DRAM.  A spilled fiber costs 5 accesses per score: QK is written once
  and re-read by the max pass and the exponentiation pass (the 1D softmax
  unit is decoupled from QK's production), and the numerator is written and
  re-read by the division pass.  The model picks whichever strategy is
  cheaper, which flips the kernel to memory-bound at L ≥ 256K — the
  utilization collapse of Fig. 6a.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.energy import DEFAULT_ENERGY, EnergyTable
from ..arch.spec import Architecture, flat_arch
from ..cascades import attention_3pass
from ..workloads.models import BATCH_SIZE, ModelConfig
from .metrics import AttentionResult
from .perf import (
    array_cycles,
    assemble_energy,
    make_workload,
    scaled_per_einsum,
)

_LABELS_2D = ("QK", "AV")
_LABELS_1D = ("GM", "SN", "SD", "A")

#: Fraction of the global buffer usable for the score fibers (the rest is
#: double-buffering and input staging).
_GLB_USABLE_FRACTION = 0.5


@dataclass(frozen=True)
class SpillDecision:
    """How FLAT handles score fibers that exceed on-chip capacity."""

    extra_dram_words: float
    strategy: str  # "resident", "retile", or "spill"


def spill_decision(
    arch: Architecture, e: int, f: int, m: int, p: int
) -> SpillDecision:
    """Choose FLAT's cheapest traffic strategy for one (batch, head)."""
    word = arch.word_bytes
    usable = arch.global_buffer_bytes * _GLB_USABLE_FRACTION
    if m * p * word <= usable:
        return SpillDecision(0.0, "resident")
    p_tile = int(usable // (m * word))
    retile_words = math.inf
    if p_tile >= 1:
        n_tiles = math.ceil(p / p_tile)
        retile_words = (n_tiles - 1) * (e * m + f * m)  # K, V re-streams
    # QK: write + 2 reads (max pass, exp pass); numerator: write + read.
    spill_words = 5.0 * m * p
    if retile_words <= spill_words:
        return SpillDecision(retile_words, "retile")
    return SpillDecision(spill_words, "spill")


class FLATModel:
    """Fused 3-pass attention with the softmax on the 1D array."""

    name = "FLAT"

    def __init__(
        self,
        arch: Architecture = None,
        energy_table: EnergyTable = DEFAULT_ENERGY,
    ) -> None:
        self.arch = arch if arch is not None else flat_arch()
        self.energy_table = energy_table

    def evaluate(
        self, model: ModelConfig, seq_len: int, batch: int = BATCH_SIZE
    ) -> AttentionResult:
        arch = self.arch
        workload = make_workload(model, seq_len, attention_3pass, block=256,
                                 batch=batch)
        shapes = workload.shapes
        e, f = shapes["E"], shapes["F"]
        m, p = shapes["M"], shapes["P"]
        word, bw = arch.word_bytes, arch.dram_bytes_per_cycle

        work_2d = array_cycles(workload.per_einsum, _LABELS_2D, arch.pe_2d,
                               exp_cycles=1)
        work_1d = array_cycles(workload.per_einsum, _LABELS_1D, arch.pe_1d,
                               exp_cycles=arch.exp_cycles_1d())

        decision = spill_decision(arch, e, f, m, p)
        dram_words = workload.io_words() + decision.extra_dram_words
        instance_latency = max(
            work_2d.busy_cycles,
            work_1d.busy_cycles,
            dram_words * word / bw,
        )

        scale = workload.heads_total
        glb_words = 2 * workload.io_words() + 4 * m * p  # score round trips
        energy = assemble_energy(
            arch, self.energy_table, dram_words, glb_words, work_2d, work_1d,
            scale,
        )
        return AttentionResult(
            config=self.name,
            model=model.name,
            seq_len=seq_len,
            latency_cycles=instance_latency * scale,
            busy_2d_cycles=work_2d.busy_cycles * scale,
            busy_1d_cycles=work_1d.busy_cycles * scale,
            dram_bytes=dram_words * word * scale,
            glb_words=glb_words * scale,
            energy=energy,
            per_einsum_2d_cycles=scaled_per_einsum(work_2d, scale),
        )
