"""End-to-end transformer encoder inference (Sec. VI-C, Figs. 10-11).

Adds the linear layers (Q/K/V projections, deprojection, FFN) to the
attention kernel.  Following the paper, the linear-layer mappings are
identical for every accelerator configuration (Timeloop-found GEMM
mappings on the shared 2D array); only the attention model differs.
One encoder layer is modeled — layer count scales both numerator and
denominator of every ratio identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..arch.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyTable
from ..arch.spec import Architecture
from ..cascades.transformer import LinearLayer, linear_layers
from ..workloads.models import BATCH_SIZE, ModelConfig
from .metrics import AttentionResult, InferenceResult


@dataclass(frozen=True)
class LinearPhase:
    """Modeled execution of one encoder layer's GEMMs."""

    latency_cycles: float
    busy_2d_cycles: float
    dram_bytes: float
    energy: EnergyBreakdown


def _layer_activation_words(
    layer: LinearLayer, model: ModelConfig, seq_len: int, batch: int
) -> float:
    """Input + output activation words for one GEMM over the batch."""
    per_token = layer.macs_per_token
    # in/out widths recovered from the MAC count and the weight shape:
    # macs_per_token = d_in * d_out and weight_elems = d_in * d_out, so we
    # bound activations by (d_in + d_out) <= weight_elems / min_dim + ...
    # Rather than reverse-engineer, use the model dimensions directly.
    del per_token
    d_io = {
        "proj_q": model.d_model + model.d_attn,
        "proj_k": model.d_model + model.d_attn,
        "proj_v": model.d_model + model.d_attn,
        "deproj": model.d_attn + model.d_model,
        "ffn_1": model.d_model + model.d_ff,
        "ffn_2": model.d_ff + model.d_model,
    }[layer.name]
    return batch * seq_len * d_io


def evaluate_linear(
    arch: Architecture,
    model: ModelConfig,
    seq_len: int,
    batch: int = BATCH_SIZE,
    energy_table: EnergyTable = DEFAULT_ENERGY,
) -> LinearPhase:
    """Model the six GEMMs of one encoder layer on the 2D array."""
    word, bw = arch.word_bytes, arch.dram_bytes_per_cycle
    layers: Tuple[LinearLayer, ...] = linear_layers(
        model.d_model, model.n_heads, model.d_head, model.d_ff
    )
    latency = 0.0
    busy = 0.0
    dram_words = 0.0
    macs = 0.0
    for layer in layers:
        layer_macs = batch * seq_len * layer.macs_per_token
        compute = layer_macs / arch.pe_2d
        words = layer.weight_elems + _layer_activation_words(
            layer, model, seq_len, batch
        )
        latency += max(compute, words * word / bw)
        busy += compute
        dram_words += words
        macs += layer_macs
    energy = EnergyBreakdown()
    energy.add("dram", dram_words * energy_table.dram_word)
    energy.add("global_buffer", 2 * dram_words * energy_table.glb_word)
    energy.add("compute_2d", macs * energy_table.macc)
    return LinearPhase(
        latency_cycles=latency,
        busy_2d_cycles=busy,
        dram_bytes=dram_words * word,
        energy=energy,
    )


def evaluate_inference(
    attention_model,
    model: ModelConfig,
    seq_len: int,
    batch: int = BATCH_SIZE,
    energy_table: EnergyTable = DEFAULT_ENERGY,
) -> InferenceResult:
    """Attention (per ``attention_model``) plus the linear layers."""
    attention: AttentionResult = attention_model.evaluate(model, seq_len, batch)
    linear = evaluate_linear(
        attention_model.arch, model, seq_len, batch, energy_table
    )
    return InferenceResult(
        config=attention.config,
        model=model.name,
        seq_len=seq_len,
        attention=attention,
        linear_latency_cycles=linear.latency_cycles,
        linear_energy=linear.energy,
    )
