"""Analytical performance/energy models of the evaluated accelerators."""

from .cluster import (
    CLUSTER_ARRAYS,
    ClusterEstimate,
    analytical_cluster,
    cluster_work,
)
from .decode import DecodeStep, decode_attention, machine_balance
from .flat import FLATModel, SpillDecision, spill_decision
from .fusemax import (
    STAGE_FOR_BINDING,
    FuseMaxModel,
    fusemax,
    plus_architecture,
    plus_cascade,
    scenario_model_for,
)
from .generic import GenericEvaluation, evaluate_cascade
from .inference import LinearPhase, evaluate_inference, evaluate_linear
from .metrics import AttentionResult, InferenceResult
from .pareto import ARRAY_DIMS, DesignPoint, PARETO_SEQ_LEN, pareto_frontier, sweep
from .scenario import (
    ScenarioEstimate,
    analytical_scenario,
    evaluate_grid_cell,
    scenario_work,
)
from .unfused import UnfusedModel


def all_attention_models():
    """The five configurations of Figs. 6-11, in presentation order."""
    return (
        UnfusedModel(),
        FLATModel(),
        plus_cascade(),
        plus_architecture(),
        fusemax(),
    )


__all__ = [
    "ARRAY_DIMS",
    "CLUSTER_ARRAYS",
    "AttentionResult",
    "ClusterEstimate",
    "DecodeStep",
    "DesignPoint",
    "FLATModel",
    "GenericEvaluation",
    "FuseMaxModel",
    "InferenceResult",
    "LinearPhase",
    "PARETO_SEQ_LEN",
    "STAGE_FOR_BINDING",
    "ScenarioEstimate",
    "SpillDecision",
    "UnfusedModel",
    "all_attention_models",
    "analytical_cluster",
    "analytical_scenario",
    "cluster_work",
    "decode_attention",
    "evaluate_cascade",
    "evaluate_grid_cell",
    "evaluate_inference",
    "machine_balance",
    "evaluate_linear",
    "fusemax",
    "pareto_frontier",
    "plus_architecture",
    "plus_cascade",
    "scenario_model_for",
    "scenario_work",
    "spill_decision",
    "sweep",
]
