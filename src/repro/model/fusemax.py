"""The FuseMax models: +Cascade, +Architecture, +Binding (Sec. V / VI-A).

The three configurations isolate the sources of FuseMax's improvement:

- **+Cascade** — the 1-pass cascade (Cascade 5) on the FLAT architecture.
  The softmax (and the running-max corrections) still run entirely on the
  1D array, so the extra compute of the 1-pass cascade makes it *slower*
  than FLAT at short sequences; the benefit is that on-chip footprint and
  DRAM traffic become independent of sequence length.
- **+Architecture** — adds the FuseMax hardware (Fig. 3c): 2D PEs gain
  ``max`` and a register file so the exponentials and the partial
  reductions move onto the 2D array (6-MACC exps, drain-time reductions).
  The binding, however, fully produces and consumes one M0 × P0 tile of
  BQK before starting the next, so fills/drains and the 2D↔1D handoff
  serialize and both arrays stall.
- **+Binding** — adds the two-level interleaved binding of Fig. 4/5
  (software-pipelined epochs; BQK|SLNV interleaved cycle-by-cycle on the
  2D array, SPNV|RNV on the 1D array), hiding all fills and drains.  This
  is the full FuseMax design: latency is the maximum of the two arrays'
  busy time and the (input-only) DRAM streaming time.
"""

from __future__ import annotations

from ..arch.energy import DEFAULT_ENERGY, EnergyTable
from ..arch.spec import EXP_AS_MACCS, Architecture, flat_arch, fusemax_arch
from ..cascades import attention_1pass
from ..workloads.models import BATCH_SIZE, MODELS_BY_NAME, ModelConfig
from ..workloads.scenario import Scenario
from .metrics import AttentionResult
from .perf import (
    array_cycles,
    assemble_energy,
    make_workload,
    scaled_per_einsum,
)

#: Fusion tile (M0) used when running the 1-pass cascade on the FLAT
#: architecture, matching FLAT's row-granular dataflow.
FLAT_ARCH_BLOCK = 64

#: Per-tile fill/drain overhead (in units of the array dimension) for the
#: tile-serial +Architecture binding: one array fill plus the BQK and SLNV
#: drains, none of them overlapped with compute.
_SERIAL_OVERHEAD_DIMS = 3

#: Einsum → array binding when softmax work shares the 2D array.
_FUSED_2D = ("BQK", "LM", "SLN", "SLD", "SLNV")
_FUSED_1D = ("RM", "PRM", "SPD", "RD", "SPNV", "RNV", "AV")

#: Einsum → array binding on the FLAT architecture (2D: tensor products
#: only; everything else on the 1D array).
_FLATARCH_2D = ("BQK", "SLNV")
_FLATARCH_1D = ("LM", "RM", "SLN", "SLD", "PRM", "SPD", "RD", "SPNV", "RNV", "AV")


class FuseMaxModel:
    """One of the three staged FuseMax configurations."""

    def __init__(
        self,
        stage: str,
        arch: Architecture = None,
        energy_table: EnergyTable = DEFAULT_ENERGY,
    ) -> None:
        if stage not in ("cascade", "architecture", "binding"):
            raise ValueError(f"unknown FuseMax stage {stage!r}")
        self.stage = stage
        if arch is None:
            arch = flat_arch() if stage == "cascade" else fusemax_arch()
        self.arch = arch
        self.energy_table = energy_table

    @property
    def name(self) -> str:
        return {
            "cascade": "+Cascade",
            "architecture": "+Architecture",
            "binding": "+Binding",
        }[self.stage]

    def _block(self, arch: Architecture = None) -> int:
        if self.stage == "cascade":
            return FLAT_ARCH_BLOCK
        return (arch or self.arch).array_dim

    def _instance_parts(
        self,
        model: ModelConfig,
        seq_len: int,
        batch: int,
        arch: Architecture = None,
        pe_1d: int = None,
    ):
        """Per-(batch, head)-instance work: (workload, 2D, 1D, DRAM words,
        traffic cycles).  Shared by the ``B × H``-scaled :meth:`evaluate`
        path and the scenario overlap-bound path."""
        arch = arch or self.arch
        workload = make_workload(
            model, seq_len, attention_1pass, block=self._block(arch), batch=batch
        )
        if self.stage == "cascade":
            labels_2d, labels_1d = _FLATARCH_2D, _FLATARCH_1D
        else:
            labels_2d, labels_1d = _FUSED_2D, _FUSED_1D
        # The 2D array never has a dedicated exp unit: 6 sequential MACCs.
        work_2d = array_cycles(workload.per_einsum, labels_2d, arch.pe_2d,
                               exp_cycles=EXP_AS_MACCS)
        work_1d = array_cycles(
            workload.per_einsum, labels_1d,
            arch.pe_1d if pe_1d is None else pe_1d,
            exp_cycles=arch.exp_cycles_1d(),
        )
        # The 1-pass cascade streams K/V once: DRAM traffic is inputs +
        # output only, independent of sequence length (no spills, ever).
        dram_words = workload.io_words()
        traffic_cycles = dram_words * arch.word_bytes / arch.dram_bytes_per_cycle
        return workload, work_2d, work_1d, dram_words, traffic_cycles

    def evaluate(
        self, model: ModelConfig, seq_len: int, batch: int = BATCH_SIZE
    ) -> AttentionResult:
        arch = self.arch
        workload, work_2d, work_1d, dram_words, traffic_cycles = (
            self._instance_parts(model, seq_len, batch)
        )
        shapes = workload.shapes
        m, p = shapes["M"], shapes["P"]

        if self.stage == "binding":
            fill = 4 * arch.array_dim  # pipeline warm-up, amortized once
            instance_latency = max(
                work_2d.busy_cycles, work_1d.busy_cycles, traffic_cycles
            ) + fill
        elif self.stage == "architecture":
            n_tiles = (m // self._block()) * max(1, p // arch.array_dim)
            per_tile_2d = work_2d.busy_cycles / n_tiles
            per_tile_1d = work_1d.busy_cycles / n_tiles
            overhead = _SERIAL_OVERHEAD_DIMS * arch.array_dim
            instance_latency = max(
                n_tiles * (per_tile_2d + per_tile_1d + overhead),
                traffic_cycles,
            )
        else:  # cascade (on the FLAT architecture, fused roofline)
            instance_latency = max(
                work_2d.busy_cycles, work_1d.busy_cycles, traffic_cycles
            )

        scale = workload.heads_total
        if self.stage == "cascade":
            # Tiles shuttle between the arrays through the global buffer.
            glb_words = 2 * workload.io_words() + 4 * m * p
        else:
            # Direct 2D→1D links and per-PE register files: only the
            # input/output streams touch the global buffer.
            glb_words = 2 * workload.io_words()
        energy = assemble_energy(
            arch, self.energy_table, dram_words, glb_words, work_2d, work_1d,
            scale,
        )
        return AttentionResult(
            config=self.name,
            model=model.name,
            seq_len=seq_len,
            latency_cycles=instance_latency * scale,
            busy_2d_cycles=work_2d.busy_cycles * scale,
            busy_1d_cycles=work_1d.busy_cycles * scale,
            dram_bytes=dram_words * arch.word_bytes * scale,
            glb_words=glb_words * scale,
            energy=energy,
            per_einsum_2d_cycles=scaled_per_einsum(work_2d, scale),
        )

    def evaluate_scenario(self, scenario: Scenario) -> AttentionResult:
        """Evaluate a multi-instance :class:`Scenario` on this stage.

        Unlike :meth:`evaluate` — which prices one ``(batch, head)``
        instance and multiplies the latency by ``B × H`` — the scenario
        path reasons about the shared arrays explicitly: N instances'
        busy cycles accumulate per array and the latency is the
        perfect-overlap bound ``max`` over the arrays' totals (plus one
        amortized pipeline warm-up), or the per-tile serialization chain
        when a lone tile-serial instance leaves nothing to overlap.
        The reported per-array utilizations are what ``repro
        crosscheck`` compares against the simulated merged schedule.
        """
        stage = STAGE_FOR_BINDING[scenario.binding]
        if self.stage != stage:
            raise ValueError(
                f"scenario binding {scenario.binding!r} maps to the "
                f"{stage!r} stage, not {self.stage!r}"
            )
        if any(phase.kind != "prefill" for phase in scenario.phases):
            raise ValueError(
                "Einsum-level scenario evaluation covers prefill phases "
                "only; use repro.model.scenario.analytical_scenario for "
                "mixed prefill/decode scenarios"
            )
        if len({phase.chunks for phase in scenario.phases}) > 1:
            raise ValueError(
                "Einsum-level scenario evaluation needs one prefill "
                "length; use repro.model.scenario.analytical_scenario "
                "for heterogeneous chunk mixes"
            )
        if scenario.mixed_embedding:
            raise ValueError(
                "Einsum-level scenario evaluation needs one embedding "
                "width; use repro.model.scenario.analytical_scenario "
                "for mixed-model scenarios"
            )
        seq_len = scenario.seq_len
        model = _scenario_model(scenario)
        arch = self.arch
        if arch.array_dim != scenario.array_dim:
            arch = arch.with_array_dim(scenario.array_dim)
        workload, work_2d, work_1d, dram_words, traffic_cycles = (
            self._instance_parts(
                model, seq_len, batch=1, arch=arch,
                pe_1d=scenario.resolved_pe_1d,
            )
        )
        n = scenario.instances
        total_2d = work_2d.busy_cycles * n
        total_1d = work_1d.busy_cycles * n
        total_traffic = traffic_cycles * n
        if self.stage == "architecture":
            m, p = workload.shapes["M"], workload.shapes["P"]
            n_tiles = (m // self._block(arch)) * max(1, p // arch.array_dim)
            overhead = _SERIAL_OVERHEAD_DIMS * arch.array_dim
            if n == 1:
                # Nothing shares the arrays: every tile serializes.
                latency = max(
                    n_tiles * (work_2d.busy_cycles / n_tiles
                               + work_1d.busy_cycles / n_tiles + overhead),
                    traffic_cycles,
                )
            else:
                # Other instances' tiles hide the stalls until the
                # serialized array edge (fills/drains) saturates.
                latency = max(
                    total_2d, total_1d, n * n_tiles * overhead, total_traffic
                )
        else:  # binding (interleaved): perfect overlap + one warm-up
            latency = max(total_2d, total_1d, total_traffic)
            latency += 4 * arch.array_dim  # pipeline warm-up, paid once
        glb_words = 2 * workload.io_words()
        energy = assemble_energy(
            arch, self.energy_table, dram_words, glb_words, work_2d, work_1d,
            n,
        )
        return AttentionResult(
            config=self.name,
            model=scenario.name,
            seq_len=seq_len,
            latency_cycles=latency,
            busy_2d_cycles=total_2d,
            busy_1d_cycles=total_1d,
            dram_bytes=dram_words * arch.word_bytes * n,
            glb_words=glb_words * n,
            energy=energy,
            per_einsum_2d_cycles=scaled_per_einsum(work_2d, n),
        )


#: Scenario binding → the FuseMax stage whose analytical model it matches.
STAGE_FOR_BINDING = {"interleaved": "binding", "tile-serial": "architecture"}


def _scenario_model(scenario: Scenario) -> ModelConfig:
    """The workload model a scenario was derived from, or a synthetic
    single-head stand-in with the scenario's embedding depth."""
    if scenario.model is not None:
        try:
            model = MODELS_BY_NAME[scenario.model]
        except KeyError:
            raise ValueError(
                f"scenario names unknown model {scenario.model!r}; "
                f"have {sorted(MODELS_BY_NAME)}"
            ) from None
        if model.d_head != scenario.embedding:
            raise ValueError(
                f"scenario embedding {scenario.embedding} != "
                f"{model.name}'s d_head {model.d_head}"
            )
        return model
    e = scenario.embedding
    return ModelConfig(
        name=f"scenario-E{e}", d_model=e, n_heads=1, d_head=e,
        d_ff=4 * e, n_layers=1,
    )


def scenario_model_for(binding: str, **kwargs) -> FuseMaxModel:
    """The analytical model matching one scenario binding."""
    return FuseMaxModel(STAGE_FOR_BINDING[binding], **kwargs)


def plus_cascade(**kwargs) -> FuseMaxModel:
    """The 1-pass cascade on the FLAT architecture."""
    return FuseMaxModel("cascade", **kwargs)


def plus_architecture(**kwargs) -> FuseMaxModel:
    """+Cascade plus the FuseMax hardware, with the tile-serial binding."""
    return FuseMaxModel("architecture", **kwargs)


def fusemax(**kwargs) -> FuseMaxModel:
    """The full FuseMax design (+Cascade, +Architecture, +Binding)."""
    return FuseMaxModel("binding", **kwargs)
