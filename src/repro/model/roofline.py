"""Roofline characterization of the attention kernel per configuration.

Places each evaluated design on the machine's roofline: operations per
DRAM byte against the compute/bandwidth balance point.  This is the
one-number explanation of Fig. 6 — FLAT's spills push it left of the
balance point at long sequences while FuseMax's intensity *grows* with
sequence length (quadratic compute over linear traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import Architecture
from .metrics import AttentionResult


@dataclass(frozen=True)
class RooflinePoint:
    """One design at one workload point on the roofline."""

    config: str
    model: str
    seq_len: int
    ops_per_byte: float
    balance_ops_per_byte: float

    @property
    def compute_bound(self) -> bool:
        return self.ops_per_byte >= self.balance_ops_per_byte

    @property
    def headroom(self) -> float:
        """Intensity relative to the balance point (>1 = compute bound)."""
        return self.ops_per_byte / self.balance_ops_per_byte


def machine_balance_point(arch: Architecture) -> float:
    """Operations per DRAM byte at which the 2D array saturates."""
    return arch.pe_2d / arch.dram_bytes_per_cycle


def roofline_point(
    result: AttentionResult, arch: Architecture
) -> RooflinePoint:
    """Characterize one modeled attention result.

    Operations are taken as 2D-array busy work (cycles × PEs), the
    quantity the roofline's compute ceiling bounds.
    """
    ops = result.busy_2d_cycles * arch.pe_2d
    return RooflinePoint(
        config=result.config,
        model=result.model,
        seq_len=result.seq_len,
        ops_per_byte=ops / result.dram_bytes,
        balance_ops_per_byte=machine_balance_point(arch),
    )
