"""The unfused baseline accelerator model (Sec. VI-A).

Three sequential phases — QK, the 3-pass softmax, AV — each scheduled
independently with outputs written to memory between phases:

- QK and AV run on the 2D array with Timeloop-style efficient mappings;
  both are memory-bound at these shapes (64-128 MACCs per 2-byte output
  word is far below the machine's compute:bandwidth balance point).
- The softmax runs on the 1D array, loading M fibers of its input on chip
  one by one (a fiber always fits the global buffer at the evaluated
  lengths, so the three softmax passes stay on chip, but the phase still
  reads QK from and writes A to DRAM).
"""

from __future__ import annotations

from ..arch.energy import DEFAULT_ENERGY, EnergyTable
from ..arch.spec import Architecture, unfused_arch
from ..cascades import attention_3pass
from ..workloads.models import BATCH_SIZE, ModelConfig
from .metrics import AttentionResult
from .perf import (
    array_cycles,
    assemble_energy,
    make_workload,
    scaled_per_einsum,
)

_LABELS_2D = ("QK", "AV")
_LABELS_1D = ("GM", "SN", "SD", "A")


class UnfusedModel:
    """Phase-serial attention on a FLAT-style architecture."""

    name = "Unfused"

    def __init__(
        self,
        arch: Architecture = None,
        energy_table: EnergyTable = DEFAULT_ENERGY,
    ) -> None:
        self.arch = arch if arch is not None else unfused_arch()
        self.energy_table = energy_table

    def evaluate(
        self, model: ModelConfig, seq_len: int, batch: int = BATCH_SIZE
    ) -> AttentionResult:
        arch = self.arch
        workload = make_workload(model, seq_len, attention_3pass, block=256,
                                 batch=batch)
        shapes = workload.shapes
        e, f = shapes["E"], shapes["F"]
        m, p = shapes["M"], shapes["P"]
        word, bw = arch.word_bytes, arch.dram_bytes_per_cycle

        work_2d = array_cycles(workload.per_einsum, _LABELS_2D, arch.pe_2d,
                               exp_cycles=arch.exp_cycles_1d())
        work_1d = array_cycles(workload.per_einsum, _LABELS_1D, arch.pe_1d,
                               exp_cycles=arch.exp_cycles_1d())

        # Phase traffic (bytes, per (batch, head) instance): each phase
        # reads its operands from and writes its result to DRAM.
        phase_qk_bytes = (e * m + e * p + m * p) * word
        phase_sm_bytes = (2 * m * p) * word
        phase_av_bytes = (m * p + f * m + f * p) * word
        phase_qk = max(work_2d.per_einsum_cycles["QK"], phase_qk_bytes / bw)
        phase_sm = max(work_1d.busy_cycles, phase_sm_bytes / bw)
        phase_av = max(work_2d.per_einsum_cycles["AV"], phase_av_bytes / bw)
        instance_latency = phase_qk + phase_sm + phase_av

        scale = workload.heads_total
        io_words = workload.io_words()
        dram_words = io_words + 4 * m * p  # + QK write/read, A write/read
        glb_words = 2 * io_words + 6 * m * p  # QK, SN (in place), A round trips
        energy = assemble_energy(
            arch, self.energy_table, dram_words, glb_words, work_2d, work_1d,
            scale,
        )
        return AttentionResult(
            config=self.name,
            model=model.name,
            seq_len=seq_len,
            latency_cycles=instance_latency * scale,
            busy_2d_cycles=work_2d.busy_cycles * scale,
            busy_1d_cycles=work_1d.busy_cycles * scale,
            dram_bytes=dram_words * word * scale,
            glb_words=glb_words * scale,
            energy=energy,
            per_einsum_2d_cycles=scaled_per_einsum(work_2d, scale),
        )
