"""Result types for the performance/energy models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..arch.energy import EnergyBreakdown


@dataclass(frozen=True)
class AttentionResult:
    """Modeled execution of the attention kernel for one configuration.

    All cycle counts cover the whole batched multi-head kernel
    (``B × H`` heads).  Utilizations follow the paper's definition: the
    fraction of the kernel's total latency during which an array performs
    useful work at full occupancy.
    """

    config: str
    model: str
    seq_len: int
    latency_cycles: float
    busy_2d_cycles: float
    busy_1d_cycles: float
    dram_bytes: float
    glb_words: float
    energy: EnergyBreakdown
    per_einsum_2d_cycles: Mapping[str, float] = field(default_factory=dict)

    @property
    def util_2d(self) -> float:
        return min(1.0, self.busy_2d_cycles / self.latency_cycles)

    @property
    def util_1d(self) -> float:
        return min(1.0, self.busy_1d_cycles / self.latency_cycles)

    @property
    def energy_pj(self) -> float:
        return self.energy.total

    def einsum_share_of_latency(self) -> Dict[str, float]:
        """Fraction of total latency each Einsum keeps the 2D array busy
        (Fig. 7's 'proportion active')."""
        return {
            label: cycles / self.latency_cycles
            for label, cycles in self.per_einsum_2d_cycles.items()
        }


@dataclass(frozen=True)
class InferenceResult:
    """Modeled end-to-end encoder inference (attention + linear layers)."""

    config: str
    model: str
    seq_len: int
    attention: AttentionResult
    linear_latency_cycles: float
    linear_energy: EnergyBreakdown

    @property
    def latency_cycles(self) -> float:
        return self.attention.latency_cycles + self.linear_latency_cycles

    @property
    def energy_pj(self) -> float:
        return self.attention.energy_pj + self.linear_energy.total
