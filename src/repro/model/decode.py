"""Decode-phase attention: why the paper scopes to encoders (footnote 1).

"During the decoder phase, inference is severely bottlenecked on the
memory traffic required to read the KV cache, and therefore the on-chip
accelerator design has less impact on performance."

This module quantifies that claim on the modeled architecture: decode
attends one query (P = 1) against an M-long KV cache, so the kernel's
arithmetic intensity is a couple of MACCs per cache byte — orders of
magnitude below the machine's compute/bandwidth balance point — and every
design is equally DRAM-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import Architecture, fusemax_arch
from ..workloads.models import ModelConfig


@dataclass(frozen=True)
class DecodeStep:
    """One autoregressive decode step of batched multi-head attention."""

    model: str
    context_len: int
    batch: int
    macs: float
    kv_cache_bytes: float
    compute_cycles: float
    traffic_cycles: float

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per DRAM byte (dominated by the KV-cache read)."""
        return self.macs / self.kv_cache_bytes

    @property
    def memory_bound(self) -> bool:
        return self.traffic_cycles > self.compute_cycles

    @property
    def latency_cycles(self) -> float:
        return max(self.compute_cycles, self.traffic_cycles)


def decode_attention(
    model: ModelConfig,
    context_len: int,
    batch: int = 1,
    arch: Architecture = None,
) -> DecodeStep:
    """Model one decode step: QK (E·M), softmax (M), AV (F·M) per head,
    with the full KV cache streamed from DRAM."""
    if arch is None:
        arch = fusemax_arch()
    heads = batch * model.n_heads
    e = f = model.d_head
    m = context_len
    macs = heads * (e * m + f * m)
    kv_bytes = heads * (e * m + f * m) * arch.word_bytes
    compute = macs / arch.pe_2d
    traffic = kv_bytes / arch.dram_bytes_per_cycle
    return DecodeStep(
        model=model.name,
        context_len=context_len,
        batch=batch,
        macs=macs,
        kv_cache_bytes=kv_bytes,
        compute_cycles=compute,
        traffic_cycles=traffic,
    )


def machine_balance(arch: Architecture = None) -> float:
    """MACs per DRAM byte at which the machine is balanced."""
    if arch is None:
        arch = fusemax_arch()
    return arch.pe_2d / arch.dram_bytes_per_cycle
