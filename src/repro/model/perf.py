"""Shared machinery for the per-configuration performance models.

Every accelerator model in this package follows the same recipe, mirroring
how the paper drives Timeloop (Sec. VI-A):

1. take an attention cascade and count its operations per Einsum
   (:mod:`repro.analysis.opcount`) for one ``(batch, head)`` instance;
2. *bind* each Einsum to the 2D or 1D PE array and convert operation
   counts into busy cycles (exponentials become 6 MACCs unless the array
   has a dedicated unit);
3. model DRAM traffic from the cascade's pass structure and the
   architecture's buffer capacity;
4. combine busy cycles and traffic into latency according to the
   configuration's binding (sequential phases, fused roofline, tile-serial,
   or fully pipelined), and scale by ``B × H``;
5. price energy with the Accelergy-style table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from ..analysis.opcount import OpCounts, count_ops
from ..arch.energy import EnergyBreakdown, EnergyTable
from ..arch.spec import Architecture
from ..einsum import Cascade
from ..workloads.models import BATCH_SIZE, ModelConfig

#: Cost classes whose operations a 2D PE executes in one cycle.
_SINGLE_CYCLE = ("macc", "mul", "add", "max", "divide")


@dataclass(frozen=True)
class ArrayWork:
    """Busy-cycle totals for one PE array, with per-Einsum attribution."""

    busy_cycles: float
    per_einsum_cycles: Mapping[str, float]
    op_counts: Mapping[str, int]


def array_cycles(
    per_einsum: Mapping[str, OpCounts],
    labels: Iterable[str],
    n_pes: int,
    exp_cycles: int,
) -> ArrayWork:
    """Busy cycles to execute the given Einsums on an array of ``n_pes``.

    Assumes full spatial occupancy (the binding's job is to achieve it);
    configuration models add stall/serialization effects on top.
    """
    per_label: Dict[str, float] = {}
    totals: Dict[str, int] = {}
    for label in labels:
        counts = per_einsum[label]
        ops = 0.0
        for cls, count in counts.counts.items():
            weight = exp_cycles if cls == "exp" else 1
            ops += count * weight
            totals[cls] = totals.get(cls, 0) + count
        per_label[label] = ops / n_pes
    return ArrayWork(
        busy_cycles=sum(per_label.values()),
        per_einsum_cycles=per_label,
        op_counts=totals,
    )


@dataclass(frozen=True)
class AttentionWorkload:
    """One attention kernel instance plus its per-Einsum op counts."""

    model: ModelConfig
    seq_len: int
    batch: int
    cascade: Cascade
    shapes: Mapping[str, int]
    per_einsum: Mapping[str, OpCounts]

    @property
    def heads_total(self) -> int:
        """Number of independent (batch, head) attention instances."""
        return self.batch * self.model.n_heads

    def io_words(self) -> float:
        """DRAM words for inputs + output of one (batch, head) instance:
        Q (E·P), K (E·M), V (F·M) in; AV (F·P) out."""
        e = self.shapes["E"]
        f = self.shapes["F"]
        m = self.shapes["M"]
        p = self.shapes["P"]
        return e * p + e * m + f * m + f * p


def make_workload(
    model: ModelConfig,
    seq_len: int,
    cascade_builder,
    block: int,
    batch: int = BATCH_SIZE,
) -> AttentionWorkload:
    """Build an :class:`AttentionWorkload` for one model / length / cascade."""
    shapes = model.attention_shapes(seq_len, block=block)
    cascade = cascade_builder()
    return AttentionWorkload(
        model=model,
        seq_len=seq_len,
        batch=batch,
        cascade=cascade,
        shapes=shapes,
        per_einsum=count_ops(cascade, shapes),
    )


def compute_energy_2d(
    work: ArrayWork, table: EnergyTable
) -> float:
    """Energy (pJ) of the 2D array's operations (exp = 6 MACCs)."""
    return table.compute_energy(work.op_counts, dedicated_exp=False)


def compute_energy_1d(
    work: ArrayWork, arch: Architecture, table: EnergyTable
) -> float:
    """Energy (pJ) of the 1D array's operations."""
    return table.compute_energy(work.op_counts, dedicated_exp=arch.exp_unit_1d)


def assemble_energy(
    arch: Architecture,
    table: EnergyTable,
    dram_words: float,
    glb_words: float,
    work_2d: ArrayWork,
    work_1d: ArrayWork,
    scale: float,
) -> EnergyBreakdown:
    """Total energy for ``scale`` identical kernel instances."""
    energy = EnergyBreakdown()
    energy.add("dram", scale * dram_words * table.dram_word)
    energy.add("global_buffer", scale * glb_words * table.glb_word)
    energy.add("compute_2d", scale * compute_energy_2d(work_2d, table))
    energy.add("compute_1d", scale * compute_energy_1d(work_1d, arch, table))
    return energy


def scaled_per_einsum(
    work: ArrayWork, scale: float
) -> Dict[str, float]:
    """Per-Einsum 2D busy cycles scaled to the full batched kernel."""
    return {k: v * scale for k, v in work.per_einsum_cycles.items()}
