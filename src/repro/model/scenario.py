"""Analytical scenario models: per-array utilization without simulating.

The simulator schedules a :class:`~repro.workloads.scenario.Scenario`'s
merged multi-instance task graph; this module predicts the same
schedule's shape *analytically*, integrating the per-chunk work totals
the graphs are built from (:func:`repro.simulator.pipeline.chunk_work`)
instead of replaying them.  Because both layers read one work function,
any divergence between a simulated and an analytical utilization is a
modeling statement, not an accounting bug — exactly what the
cross-check report (:mod:`repro.experiments.crosscheck`) tabulates.

Three estimate kinds cover the binding/bandwidth space:

- ``overlap-bound`` — the perfect-overlap bound: the makespan of any
  valid schedule is at least the busiest resource's total work, so per
  -array utilization is at most ``work_r / max_r(work)``.  The
  interleaved binding approaches this bound from below (warm-up only);
  a *multi-instance* tile-serial schedule approaches it too, because
  independent instances fill each other's stalls until the serialized
  array-edge (``io``) resource saturates.
- ``bandwidth-bound`` — the same bound when the busiest resource is the
  shared DRAM link a finite ``dram_bw`` introduces: total transfer
  cycles (integrated task-by-task with the simulator's own ceiling
  arithmetic) exceed every array's work, so the schedule rides the
  memory wall the roofline model predicts for decode-heavy mixes.
  With a finite ``Scenario.buffer_bytes`` the traffic is additionally
  inflated by the closed-form spill volume
  (:func:`repro.simulator.pipeline.scenario_spill_bytes`): working-set
  demand beyond the buffer re-fetches the resident stream every chunk,
  shifting the roofline's traffic term exactly as the built graph's
  ``bytes_moved`` shifts — the estimate is reported as
  ``capacity-bound`` when that spill traffic is what pins the link.
- ``serial-chain`` — the closed-form steady-state chunk interval of a
  *single* tile-serial instance, where the per-chunk dependency chain
  (fill → BQK → drain → max/renorm chain) is exposed and both arrays
  stall.  This is the analytical form of the paper's Fig. 4 argument.
  (With ``dram_bw`` set, the chain still holds unless total transfer
  cycles exceed it — transfers are dependency-free and stream ahead —
  so the estimate takes the maximum of the two.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..arch.spec import EXP_AS_MACCS
from ..simulator.pipeline import (
    chunk_work,
    instance_config,
    scenario_dram_cycles,
    scenario_spill_bytes,
)
from ..workloads.scenario import Scenario

#: Resources of a scenario schedule, in reporting order (``dram`` only
#: accrues work when the scenario sets a finite ``dram_bw``).
ARRAYS: Tuple[str, ...] = ("2d", "1d", "io", "dram")


@dataclass(frozen=True)
class ScenarioEstimate:
    """Analytical latency + per-array utilization of one scenario."""

    scenario: str
    binding: str
    instances: int
    kind: str  # "overlap-bound" | "serial-chain"
    latency_cycles: int
    busy: Mapping[str, int]

    def utilization(self, resource: str) -> float:
        if not self.latency_cycles:
            return 0.0
        return self.busy.get(resource, 0) / self.latency_cycles

    @property
    def util_2d(self) -> float:
        return self.utilization("2d")

    @property
    def util_1d(self) -> float:
        return self.utilization("1d")

    @property
    def util_dram(self) -> float:
        return self.utilization("dram")


def scenario_work(scenario: Scenario) -> Mapping[str, int]:
    """Total busy cycles per resource across every instance — the exact
    sums the merged task graph's durations add up to (including the
    lowered ``dram`` transfers when the scenario sets ``dram_bw``)."""
    serial = scenario.binding == "tile-serial"
    busy = {resource: 0 for resource in ARRAYS}
    for phase in scenario.phases:
        config = instance_config(scenario, phase)
        work = chunk_work(config, serial=serial, kind=phase.kind)
        cycles = phase.instances * phase.chunks
        busy["2d"] += cycles * work.cycles_2d
        busy["1d"] += cycles * work.cycles_1d
        busy["io"] += cycles * work.cycles_io
    busy["dram"] = scenario_dram_cycles(scenario)
    return busy


def serial_chunk_interval(scenario: Scenario) -> int:
    """Steady-state cycles between consecutive chunks of one tile-serial
    prefill instance running alone.

    Derived by walking the per-chunk dependency chain of
    :func:`repro.simulator.pipeline.build_tasks` (serial mode, one issue
    slot per resource): fill and BQK and drain serialize, the 1D max
    chain (LM, RM) follows the drain, then the exponentiation path
    (SLN → SLNV → RNV) races the denominator path (SLD/PRM → RD) and
    the longer one gates the next chunk's fill.
    """
    config = instance_config(
        scenario,
        max(
            (p for p in scenario.phases if p.kind == "prefill"),
            key=lambda p: p.chunks,
        ),
    )
    e = config.embedding
    c1 = config.one_d_cycles(1)
    c6 = config.one_d_cycles(EXP_AS_MACCS)
    c2 = config.one_d_cycles(2)
    cv = config.one_d_cycles(2 * e)
    fill = drain = config.array_dim
    numerator_path = EXP_AS_MACCS + e  # SLN then SLNV on the 2D array
    denominator_path = max(EXP_AS_MACCS, c6) + c1 + c2  # SLN|PRM, SLD, RD
    return (
        fill + e + drain + 2 * c1
        + max(numerator_path, denominator_path) + cv
    )


def analytical_scenario(scenario: Scenario) -> ScenarioEstimate:
    """The analytical counterpart of one simulated scenario.

    Replaces the models' bare ``B × H`` latency scale factor: instead of
    multiplying a single-instance latency by the instance count, the
    estimate reasons about the *shared* arrays directly — total work per
    resource, bounded below by the busiest one (``overlap-bound``, or
    ``bandwidth-bound`` when that resource is the finite-``dram_bw``
    memory link), or the explicit per-chunk serialization chain when a
    lone tile-serial instance leaves nothing to overlap with
    (``serial-chain``).
    """
    busy = scenario_work(scenario)
    lone_serial = (
        scenario.binding == "tile-serial"
        and scenario.instances == 1
        and all(p.kind == "prefill" for p in scenario.phases)
    )
    if lone_serial:
        chunks = sum(p.chunks for p in scenario.phases)
        # Transfers are dependency-free, so they stream ahead of the
        # chain and only bind when the link itself runs out of cycles.
        latency = max(chunks * serial_chunk_interval(scenario), busy["dram"])
        kind = "serial-chain"
    else:
        latency = max(busy.values())
        if scenario.dram_bw is not None and busy["dram"] == latency:
            # The link binds; attribute it to capacity spills when the
            # buffer model is what inflated the traffic past the arrays.
            kind = (
                "capacity-bound"
                if scenario_spill_bytes(scenario) > 0
                else "bandwidth-bound"
            )
        else:
            kind = "overlap-bound"
    return ScenarioEstimate(
        scenario=scenario.name,
        binding=scenario.binding,
        instances=scenario.instances,
        kind=kind,
        latency_cycles=latency,
        busy=busy,
    )


def evaluate_grid_cell(cell: "ScenarioGridCell", engine: str = "event") -> "ScenarioGridResult":
    """Evaluate one scenario-grid cell: simulate the merged schedule and
    join the closed-form analytical estimate of the same scenario.

    This is the worker function behind the runtime's ``"scenario_grid"``
    task kind — it lives here (not in the simulator) because it is the
    one place both accounts of a scenario meet, so every grid doubles as
    a crosscheck-at-scale.  Pure and picklable: everything it needs rides
    in the frozen ``cell``.
    """
    from ..simulator.sweep import ScenarioGridResult, evaluate_scenario_point

    sim = evaluate_scenario_point(cell.scenario, engine=engine)
    estimate = analytical_scenario(cell.scenario)
    return ScenarioGridResult(
        model=cell.model,
        batch=cell.batch,
        heads=cell.heads,
        decode=cell.decode,
        sim=sim,
        estimate=estimate.kind,
        est_util_2d=estimate.util_2d,
        est_util_1d=estimate.util_1d,
    )
