"""Analytical cluster models: compute-, DRAM-, and link-bound terms.

The cluster counterpart of :mod:`repro.model.scenario`: predicts the
shape of a sharded schedule without simulating it, by integrating the
same per-chunk work function the graphs are built from
(:func:`repro.simulator.pipeline.chunk_work`) over each chip's shard,
and pricing the collectives with the same byte and ceiling arithmetic
the builder lowers with (:func:`repro.cluster.cluster_link_cycles`).
Because every term reads the builder's own helpers, a divergence
between a simulated and an analytical link utilization is a modeling
statement about *overlap*, not an accounting bug — exactly what
``repro crosscheck --cluster`` gates.

The bound: any valid schedule is at least as long as the busiest
resource's total work, where the candidate resources are now each
chip's private arrays and DRAM stack (their own work only) and the one
shared link (everyone's collectives).  The estimate kind names which
term binds:

- ``overlap-bound`` — the busiest chip's busiest array.
- ``bandwidth-bound`` — the busiest chip's DRAM stack.
- ``link-bound`` — the shared interconnect: aggregate collective
  traffic exceeds every per-chip term, the regime where adding chips
  stops helping (the strong-scaling knee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from ..cluster.build import (
    chip_instance_counts,
    cluster_link_cycles,
    shard_config,
    template_dram_cycles,
)
from ..cluster.spec import ClusterSpec
from ..simulator.pipeline import chunk_work
from ..workloads.scenario import Scenario

#: Resources of a cluster schedule, in reporting order (``dram`` and
#: ``link`` only accrue work when their bandwidths are modeled).
CLUSTER_ARRAYS: Tuple[str, ...] = ("2d", "1d", "io", "dram", "link")

#: The per-chip resources (everything but the shared link).
_CHIP_ARRAYS: Tuple[str, ...] = ("2d", "1d", "io", "dram")


@dataclass(frozen=True)
class ClusterEstimate:
    """Analytical latency + utilization of one sharded cluster point.

    ``busy`` holds cluster totals (per-chip resources summed over
    chips; the link as-is); ``chip_busy`` holds the busiest chip's
    cycles per resource — the per-chip binding terms the latency bound
    maximizes over.  Utilization follows the simulator's convention:
    per-chip resources normalize by ``latency × n_chips``, the shared
    link by the latency alone.
    """

    scenario: str
    binding: str
    sharding: str
    n_chips: int
    kind: str  # "overlap-bound" | "bandwidth-bound" | "link-bound"
    latency_cycles: int
    busy: Mapping[str, int]
    chip_busy: Mapping[str, int]

    def utilization(self, resource: str) -> float:
        if not self.latency_cycles:
            return 0.0
        if resource == "link":
            return self.busy.get("link", 0) / self.latency_cycles
        return self.busy.get(resource, 0) / (self.latency_cycles * self.n_chips)

    @property
    def util_2d(self) -> float:
        return self.utilization("2d")

    @property
    def util_1d(self) -> float:
        return self.utilization("1d")

    @property
    def util_dram(self) -> float:
        return self.utilization("dram")

    @property
    def util_link(self) -> float:
        return self.utilization("link")


def cluster_work(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> Tuple[List[Mapping[str, int]], int]:
    """Busy cycles per chip per resource, plus the shared link total —
    the exact sums the sharded merged graph's durations add up to.

    Walks each (phase, chip) shard through the same
    :func:`~repro.simulator.pipeline.chunk_work` integration the
    scenario model uses, at the shard's own config (tensor-sharded
    prefill integrates at the sliced embedding), weighted by the chip's
    instance count."""
    serial = scenario.binding == "tile-serial"
    chips: List[Mapping[str, int]] = [
        {resource: 0 for resource in _CHIP_ARRAYS}
        for _ in range(spec.n_chips)
    ]
    for phase in scenario.phases:
        config = shard_config(scenario, phase, sharding, spec.n_chips)
        work = chunk_work(config, serial=serial, kind=phase.kind)
        dram = template_dram_cycles(
            config, phase.kind, serial, scenario.dram_bw
        )
        counts = chip_instance_counts(phase, sharding, spec.n_chips)
        for chip, count in enumerate(counts):
            cycles = count * phase.chunks
            chips[chip]["2d"] += cycles * work.cycles_2d
            chips[chip]["1d"] += cycles * work.cycles_1d
            chips[chip]["io"] += cycles * work.cycles_io
            chips[chip]["dram"] += count * dram
    return chips, cluster_link_cycles(scenario, spec, sharding)


def analytical_cluster(
    scenario: Scenario, spec: ClusterSpec, sharding: str = "head"
) -> ClusterEstimate:
    """The analytical counterpart of one simulated cluster point.

    The latency bound maximizes over every chip's every private
    resource and the shared link; the kind records which term won, so a
    chip-count sweep reads off the strong-scaling knee (the chip count
    where ``kind`` flips to ``link-bound``) without simulating."""
    chips, link = cluster_work(scenario, spec, sharding)
    chip_busy = {
        resource: max(chip[resource] for chip in chips)
        for resource in _CHIP_ARRAYS
    }
    busy = {
        resource: sum(chip[resource] for chip in chips)
        for resource in _CHIP_ARRAYS
    }
    busy["link"] = link
    latency = max(max(chip_busy.values()), link)
    if link and link == latency:
        kind = "link-bound"
    elif scenario.dram_bw is not None and chip_busy["dram"] == latency:
        kind = "bandwidth-bound"
    else:
        kind = "overlap-bound"
    return ClusterEstimate(
        scenario=scenario.name,
        binding=scenario.binding,
        sharding=sharding,
        n_chips=spec.n_chips,
        kind=kind,
        latency_cycles=latency,
        busy=busy,
        chip_busy=chip_busy,
    )
