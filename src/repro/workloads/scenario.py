"""Scenario IR: multi-(batch, head) attention workloads over one machine.

The analytical models evaluate a single ``(batch, head)`` attention
instance and scale by ``B × H``; the binding simulator schedules a single
instance's task graph.  Neither answers the paper's real question — how
``B × H`` instances *contend* for the shared 2D/1D arrays — and without a
common description the two layers cannot check each other.

A :class:`Scenario` is that common description: a declarative spec of N
``(batch, head)`` attention instances (grouped into prefill and optional
decode :class:`Phase` entries, each phase optionally pinned to its own
model's embedding width) bound to one PE-array configuration under one
binding, optionally behind one shared DRAM link (``dram_bw`` bytes per
cycle).  Every layer consumes it:

- the simulator replicates the per-instance binding graph N ways with
  shared-slot contention (:func:`repro.simulator.pipeline
  .build_scenario_tasks`) and schedules the merged graph;
- the analytical models derive per-array utilization bounds from the
  same per-chunk work totals (:mod:`repro.model.scenario`), replacing
  the bare ``B × H`` latency scale with an explicit overlap bound;
- the runtime caches scenario evaluations content-addressed on every
  field (task kind ``"scenario"``), and ``repro simulate --scenario`` /
  ``repro crosscheck`` drive both layers and diff them.

This module is deliberately dependency-light (workloads only): the
simulator and model layers import it, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from .models import BATCH_SIZE, MODELS_BY_NAME, ModelConfig

#: The two bindings of Fig. 4/5, in presentation order.  Defined here —
#: the bottom of the layer stack — so the workload, simulator, model,
#: and runtime layers all validate against one tuple.
BINDINGS: Tuple[str, ...] = ("tile-serial", "interleaved")

#: Phase kinds a scenario may mix.
PHASE_KINDS: Tuple[str, ...] = ("prefill", "decode")

#: DRAM quality-of-service disciplines a scenario may request.
#: ``"uniform"`` keeps the historical program-order arbitration;
#: ``"decode-first"`` grants every decode phase one extra priority
#: level, so latency-critical decode streams win ties at the shared
#: resources over bulk prefill traffic.
QOS_MODES: Tuple[str, ...] = ("uniform", "decode-first")


@dataclass(frozen=True)
class Phase:
    """One homogeneous group of attention instances.

    ``instances`` counts independent ``(batch, head)`` slices.  For a
    ``prefill`` phase ``chunks`` is the per-instance M1 chunk count (the
    sequence length in units of the array dimension); for a ``decode``
    phase it is the KV-cache context length in the same units.

    ``embedding`` overrides the scenario's embedding depth for this
    phase only — the mechanism by which one merged schedule spans
    *different models* (e.g. BERT heads at E=64 next to XLM heads at
    E=128).  ``model`` optionally names the workload model the phase was
    derived from; when set, the phase's embedding is pinned to that
    model's ``d_head`` and any explicit mismatch is rejected here —
    before any task graph is built.

    ``dram_priority`` is the phase's arbitration priority at the shared
    resources (higher wins ties; 0 for all phases reproduces the
    historical program-order schedule exactly).  The scenario-level
    ``qos="decode-first"`` discipline adds one level to every decode
    phase on top of this explicit offset.
    """

    kind: str
    instances: int
    chunks: int
    embedding: Optional[int] = None
    model: Optional[str] = None
    dram_priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"unknown phase kind {self.kind!r}; have {PHASE_KINDS}"
            )
        if self.instances < 1:
            raise ValueError(f"phase instances must be >= 1, got {self.instances}")
        if self.chunks < 1:
            raise ValueError(f"phase chunks must be >= 1, got {self.chunks}")
        if self.embedding is not None and self.embedding < 1:
            raise ValueError(
                f"phase embedding must be >= 1, got {self.embedding}"
            )
        if self.model is not None:
            if self.model not in MODELS_BY_NAME:
                raise ValueError(
                    f"unknown phase model {self.model!r}; "
                    f"have {sorted(MODELS_BY_NAME)}"
                )
            d_head = MODELS_BY_NAME[self.model].d_head
            if self.embedding is None:
                object.__setattr__(self, "embedding", d_head)
            elif self.embedding != d_head:
                raise ValueError(
                    f"inconsistent embedding width: phase model "
                    f"{self.model!r} has d_head {d_head} but the phase "
                    f"declares embedding {self.embedding}"
                )


@dataclass(frozen=True)
class Scenario:
    """N (batch, head) attention instances over one array configuration.

    The spec is declarative and complete: two scenarios with equal
    fields describe the same schedule, and any field difference must
    change the runtime cache key (tested in ``tests/test_runtime.py``).

    Attributes:
        name: Identifier used in reports and run-registry summaries.
        phases: Instance groups; at least one.
        binding: ``"tile-serial"`` or ``"interleaved"`` (Fig. 4/5).
        embedding: E (= F), the per-head embedding dimension.
        array_dim: 2D PE-array dimension (also M0 and P0).
        pe_1d: 1D-array lanes; defaults to ``array_dim`` (the paper's
            floorplan) when None.
        slots: issue slots per resource under the interleaved binding
            (the ``A|B`` round-robin width instances contend for).
            Tile-serial schedules issue one task per resource, so the
            field is normalized to 1 under that binding — two
            tile-serial specs differing only in requested slots are the
            same scenario (same schedule, same cache key).
        model: optional name of the workload model this scenario was
            derived from (set by :func:`scenario_from_model`).
        dram_bw: shared DRAM bandwidth in bytes per cycle, or None to
            leave memory traffic unmodeled (the historical behaviour —
            ``None`` schedules are byte-identical to pre-bandwidth
            results).  When set, every instance's DRAM transfers occupy
            a shared ``dram`` resource that all instances contend for
            (:func:`repro.simulator.pipeline.build_scenario_tasks`);
            ``math.inf`` models infinite bandwidth and reproduces the
            ``None`` schedule exactly.
        buffer_bytes: per-instance on-chip buffer capacity in bytes, or
            None to leave the buffer unmodeled (the historical
            behaviour).  When finite, each instance's working set is
            held on chip between uses: demand beyond the capacity
            spills, re-inflating ``bytes_moved`` with the refill
            traffic, and the dram lowering bounds dependency-free
            prefetch depth to the capacity
            (:func:`repro.simulator.engine.lower_dram`).
            ``math.inf`` models an infinite buffer and reproduces the
            ``None`` schedule exactly, mirroring the ``dram_bw``
            contract.
        qos: DRAM arbitration discipline, one of :data:`QOS_MODES`.
            ``"uniform"`` (default) keeps program-order arbitration;
            ``"decode-first"`` raises every decode phase one priority
            level so decode transfers win ties over prefill bulk
            traffic at the shared resources.
    """

    name: str
    phases: Tuple[Phase, ...]
    binding: str = "interleaved"
    embedding: int = 64
    array_dim: int = 256
    pe_1d: Optional[int] = None
    slots: int = 2
    model: Optional[str] = field(default=None)
    dram_bw: Optional[float] = None
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("scenario needs at least one phase")
        if self.binding not in BINDINGS:
            raise ValueError(f"unknown binding {self.binding!r}; have {BINDINGS}")
        if self.embedding < 1:
            raise ValueError(f"embedding must be >= 1, got {self.embedding}")
        if self.array_dim < 1:
            raise ValueError(f"array_dim must be >= 1, got {self.array_dim}")
        if self.pe_1d is not None and self.pe_1d < 1:
            raise ValueError(f"pe_1d must be >= 1, got {self.pe_1d}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.dram_bw is not None and not self.dram_bw > 0:
            raise ValueError(f"dram_bw must be > 0, got {self.dram_bw}")
        if self.buffer_bytes is not None and not self.buffer_bytes > 0:
            raise ValueError(
                f"buffer_bytes must be > 0, got {self.buffer_bytes}"
            )
        if self.qos not in QOS_MODES:
            raise ValueError(f"unknown qos {self.qos!r}; have {QOS_MODES}")
        if self.model is not None and self.model in MODELS_BY_NAME:
            d_head = MODELS_BY_NAME[self.model].d_head
            if d_head != self.embedding:
                raise ValueError(
                    f"inconsistent embedding width: model {self.model!r} "
                    f"has d_head {d_head} but the scenario declares "
                    f"embedding {self.embedding}"
                )
        if self.binding == "tile-serial":
            # One task issues per resource under the serial discipline;
            # normalizing keeps equality and cache keys truthful.
            object.__setattr__(self, "slots", 1)

    @property
    def instances(self) -> int:
        """Total (batch, head) instances across all phases."""
        return sum(phase.instances for phase in self.phases)

    @property
    def resolved_pe_1d(self) -> int:
        return self.pe_1d if self.pe_1d is not None else self.array_dim

    def embedding_for(self, phase: Phase) -> int:
        """The embedding depth one phase's instances compute at (the
        phase override, or the scenario-wide default)."""
        return self.embedding if phase.embedding is None else phase.embedding

    @property
    def mixed_embedding(self) -> bool:
        """True when the phases span more than one embedding width (a
        mixed-*model* scenario)."""
        return len({self.embedding_for(p) for p in self.phases}) > 1

    @property
    def seq_len(self) -> int:
        """Per-instance sequence length of the longest prefill phase
        (0 for decode-only scenarios); used for grid summaries."""
        chunks = [p.chunks for p in self.phases if p.kind == "prefill"]
        return max(chunks, default=0) * self.array_dim

    def with_binding(self, binding: str) -> "Scenario":
        """The same workload under the other binding."""
        return replace(self, binding=binding)

    def effective_priority(self, phase: Phase) -> int:
        """The arbitration priority one phase's transfers carry: its
        explicit ``dram_priority`` plus the QoS discipline's decode
        boost."""
        boost = 1 if self.qos == "decode-first" and phase.kind == "decode" else 0
        return phase.dram_priority + boost

    @property
    def emission_phases(self) -> Tuple[Phase, ...]:
        """Phases in schedule-emission order: descending effective
        priority, ties broken by declaration order (a stable sort).

        Program order is the engines' only arbitration key, so priority
        is *encoded as emission order* — higher-priority phases' tasks
        precede lower-priority ones in the merged list and therefore win
        every ready-at-once tie at the shared resources, with zero
        engine changes.  Uniform priorities make the sort the identity,
        so historical schedules are reproduced byte for byte.
        """
        return tuple(
            sorted(self.phases, key=lambda p: -self.effective_priority(p))
        )

    @property
    def prioritized(self) -> bool:
        """True when any phase outranks another (the schedule deviates
        from plain declaration order)."""
        ranks = {self.effective_priority(p) for p in self.phases}
        return len(ranks) > 1

    def _phase_label(self, phase: Phase) -> str:
        label = f"{phase.instances}x{phase.kind}[{phase.chunks} chunks"
        if phase.model is not None:
            label += f", {phase.model}"
        elif phase.embedding is not None:
            label += f", E{phase.embedding}"
        return label + "]"

    def describe(self) -> str:
        """One-line summary for CLI output."""
        parts = ", ".join(self._phase_label(p) for p in self.phases)
        tail = f"E={self.embedding}"
        if self.dram_bw is not None:
            tail += f", bw={self.dram_bw:g}"
        if self.buffer_bytes is not None:
            tail += f", buf={self.buffer_bytes:g}"
        if self.qos != "uniform":
            tail += f", qos={self.qos}"
        return (
            f"{self.name}: {parts} on {self.array_dim}x{self.array_dim}+"
            f"{self.resolved_pe_1d} ({self.binding}, {tail})"
        )


def _bw_suffix(name: str, dram_bw: Optional[float]) -> str:
    """Suffix an auto-generated scenario name with its bandwidth, so
    same-shaped scenarios at different ``dram_bw`` stay distinguishable
    in crosscheck/CSV rows keyed by name."""
    return name if dram_bw is None else f"{name}@bw{dram_bw:g}"


def _cap_suffix(
    name: str, buffer_bytes: Optional[float], qos: str
) -> str:
    """Suffix an auto-generated scenario name with its buffer capacity
    and QoS discipline (same contract as :func:`_bw_suffix`: defaults
    leave the name untouched, so historical names are stable)."""
    if buffer_bytes is not None:
        name += f"@buf{buffer_bytes:g}"
    if qos != "uniform":
        name += f"@{qos}"
    return name


def _append_decode(
    phases: list,
    name: str,
    decode_instances: int,
    decode_chunks: Optional[int],
    default_chunks: int,
) -> str:
    """Append the optional decode phase both builders share; returns the
    (possibly suffixed) scenario name so phase mix and label stay in
    sync between constructors."""
    if decode_instances:
        phases.append(
            Phase(
                "decode",
                decode_instances,
                default_chunks if decode_chunks is None else decode_chunks,
            )
        )
        name += f"+dec{decode_instances}"
    return name


def attention_scenario(
    instances: int,
    chunks: int,
    *,
    binding: str = "interleaved",
    embedding: int = 64,
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    dram_bw: Optional[float] = None,
    buffer_bytes: Optional[float] = None,
    qos: str = "uniform",
    name: Optional[str] = None,
) -> Scenario:
    """A scenario of ``instances`` identical prefill attention instances,
    optionally sharing the arrays with ``decode_instances`` decode steps."""
    phases = [Phase("prefill", instances, chunks)]
    auto_name = _append_decode(
        phases, f"attn-{instances}x{chunks}", decode_instances, decode_chunks,
        chunks,
    )
    auto_name = _cap_suffix(_bw_suffix(auto_name, dram_bw), buffer_bytes, qos)
    return Scenario(
        name=auto_name if name is None else name,
        phases=tuple(phases),
        binding=binding,
        embedding=embedding,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
        dram_bw=dram_bw,
        buffer_bytes=buffer_bytes,
        qos=qos,
    )


def _resolve_models(names: Sequence[str]) -> Tuple[ModelConfig, ...]:
    """Workload models by name, rejecting unknown names up front."""
    missing = [name for name in names if name not in MODELS_BY_NAME]
    if missing:
        raise ValueError(
            f"unknown model(s) {missing}; have {sorted(MODELS_BY_NAME)}"
        )
    return tuple(MODELS_BY_NAME[name] for name in names)


def heterogeneous_scenario(
    chunk_counts: Sequence[int],
    *,
    models: Optional[Sequence[str]] = None,
    binding: str = "interleaved",
    embedding: Optional[int] = None,
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    dram_bw: Optional[float] = None,
    buffer_bytes: Optional[float] = None,
    qos: str = "uniform",
    name: Optional[str] = None,
) -> Scenario:
    """A scenario of prefill instances with *unequal* chunk counts.

    ``chunk_counts`` lists one entry per instance (e.g. ``(16, 16, 64)``
    is two 16-chunk requests sharing the arrays with one 64-chunk
    request).  Instances with equal counts are grouped into one
    :class:`Phase`, in order of first appearance, so equal mixes produce
    equal scenarios regardless of listing order only when the counts
    first appear in the same order — the phase tuple is the identity.

    ``models`` optionally names one workload model per instance, making
    the mix span *different models*: each instance computes at its
    model's ``d_head`` and instances with equal (count, model) pairs
    group into one phase.  Inconsistent inputs — a model list whose
    length does not match ``chunk_counts``, an unknown model name, or an
    explicit ``embedding`` that contradicts a named model's head width —
    are rejected here, before any task graph is built.
    """
    if not chunk_counts:
        raise ValueError("heterogeneous scenario needs at least one instance")
    if models is None:
        resolved_embedding = 64 if embedding is None else embedding
        groups: dict = {}
        for count in chunk_counts:
            groups[count] = groups.get(count, 0) + 1
        phases = [Phase("prefill", n, count) for count, n in groups.items()]
        auto_name = "het-" + "+".join(f"{n}x{c}" for c, n in groups.items())
        default_decode_chunks = max(groups)
    else:
        if len(models) != len(chunk_counts):
            raise ValueError(
                f"models lists {len(models)} entries for "
                f"{len(chunk_counts)} instances (need one model per "
                "instance)"
            )
        configs = _resolve_models(models)
        clashing = sorted({
            m.name for m in configs
            if embedding is not None and m.d_head != embedding
        })
        if clashing:
            raise ValueError(
                f"inconsistent embedding widths: explicit embedding "
                f"{embedding} contradicts d_head of {clashing}"
            )
        model_groups: dict = {}
        for count, model in zip(chunk_counts, models):
            model_groups[(count, model)] = model_groups.get((count, model), 0) + 1
        phases = [
            Phase("prefill", n, count, model=model)
            for (count, model), n in model_groups.items()
        ]
        auto_name = "het-" + "+".join(
            f"{n}x{model}:{count}" for (count, model), n in model_groups.items()
        )
        resolved_embedding = configs[0].d_head
        default_decode_chunks = max(chunk_counts)
    auto_name = _append_decode(
        phases, auto_name, decode_instances, decode_chunks,
        default_decode_chunks,
    )
    auto_name = _cap_suffix(_bw_suffix(auto_name, dram_bw), buffer_bytes, qos)
    return Scenario(
        name=auto_name if name is None else name,
        phases=tuple(phases),
        binding=binding,
        embedding=resolved_embedding,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
        dram_bw=dram_bw,
        buffer_bytes=buffer_bytes,
        qos=qos,
    )


def mixed_model_scenario(
    models: Sequence[str],
    chunks: int,
    *,
    batch: int = 1,
    heads: Optional[int] = None,
    binding: str = "interleaved",
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    dram_bw: Optional[float] = None,
    buffer_bytes: Optional[float] = None,
    qos: str = "uniform",
    name: Optional[str] = None,
) -> Scenario:
    """One merged schedule spanning *different models*' attention heads.

    Each named model contributes a prefill phase of ``batch × heads``
    instances (``heads=None`` uses each model's own head count) computing
    at that model's ``d_head`` — e.g. ``("BERT", "XLM")`` mixes E=64 and
    E=128 tiles in one schedule, contending for the same arrays (and,
    with ``dram_bw``, the same memory bandwidth).  The optional decode
    phase rides at the first model's embedding width.
    """
    if not models:
        raise ValueError("mixed-model scenario needs at least one model")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if heads is not None and heads < 1:
        raise ValueError(f"heads must be >= 1, got {heads}")
    configs = _resolve_models(models)
    phases = [
        Phase(
            "prefill",
            batch * (model.n_heads if heads is None else heads),
            chunks,
            model=model.name,
        )
        for model in configs
    ]
    auto_name = (
        f"mix-{'+'.join(m.name for m in configs)}-B{batch}"
        + (f"xH{heads}" if heads is not None else "")
        + f"-L{chunks * array_dim}"
    )
    auto_name = _append_decode(
        phases, auto_name, decode_instances, decode_chunks, chunks,
    )
    auto_name = _cap_suffix(_bw_suffix(auto_name, dram_bw), buffer_bytes, qos)
    return Scenario(
        name=auto_name if name is None else name,
        phases=tuple(phases),
        binding=binding,
        embedding=configs[0].d_head,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
        dram_bw=dram_bw,
        buffer_bytes=buffer_bytes,
        qos=qos,
    )


def scenario_from_model(
    model: ModelConfig,
    seq_len: int,
    batch: int = BATCH_SIZE,
    *,
    heads: Optional[int] = None,
    binding: str = "interleaved",
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    dram_bw: Optional[float] = None,
    buffer_bytes: Optional[float] = None,
    qos: str = "uniform",
) -> Scenario:
    """The ``B × H`` scenario of one workload model at ``seq_len``.

    ``heads`` overrides the model's head count (e.g. to study array
    pressure at other multiprogramming levels); the embedding dimension
    always follows the model's ``d_head``.
    """
    if seq_len % array_dim:
        raise ValueError(
            f"sequence length {seq_len} not divisible by array dim {array_dim}"
        )
    n_heads = model.n_heads if heads is None else heads
    if batch < 1 or n_heads < 1:
        raise ValueError(f"batch and heads must be >= 1, got {batch}x{n_heads}")
    chunks = seq_len // array_dim
    phases = [Phase("prefill", batch * n_heads, chunks)]
    name = _append_decode(
        phases, f"{model.name}-B{batch}xH{n_heads}-L{seq_len}",
        decode_instances, decode_chunks, chunks,
    )
    return Scenario(
        name=_cap_suffix(_bw_suffix(name, dram_bw), buffer_bytes, qos),
        phases=tuple(phases),
        binding=binding,
        embedding=model.d_head,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
        model=model.name,
        dram_bw=dram_bw,
        buffer_bytes=buffer_bytes,
        qos=qos,
    )
