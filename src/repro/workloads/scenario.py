"""Scenario IR: multi-(batch, head) attention workloads over one machine.

The analytical models evaluate a single ``(batch, head)`` attention
instance and scale by ``B × H``; the binding simulator schedules a single
instance's task graph.  Neither answers the paper's real question — how
``B × H`` instances *contend* for the shared 2D/1D arrays — and without a
common description the two layers cannot check each other.

A :class:`Scenario` is that common description: a declarative spec of N
``(batch, head)`` attention instances (grouped into prefill and optional
decode :class:`Phase` entries) bound to one PE-array configuration under
one binding.  Every layer consumes it:

- the simulator replicates the per-instance binding graph N ways with
  shared-slot contention (:func:`repro.simulator.pipeline
  .build_scenario_tasks`) and schedules the merged graph;
- the analytical models derive per-array utilization bounds from the
  same per-chunk work totals (:mod:`repro.model.scenario`), replacing
  the bare ``B × H`` latency scale with an explicit overlap bound;
- the runtime caches scenario evaluations content-addressed on every
  field (task kind ``"scenario"``), and ``repro simulate --scenario`` /
  ``repro crosscheck`` drive both layers and diff them.

This module is deliberately dependency-light (workloads only): the
simulator and model layers import it, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from .models import BATCH_SIZE, ModelConfig

#: The two bindings of Fig. 4/5, in presentation order.  Defined here —
#: the bottom of the layer stack — so the workload, simulator, model,
#: and runtime layers all validate against one tuple.
BINDINGS: Tuple[str, ...] = ("tile-serial", "interleaved")

#: Phase kinds a scenario may mix.
PHASE_KINDS: Tuple[str, ...] = ("prefill", "decode")


@dataclass(frozen=True)
class Phase:
    """One homogeneous group of attention instances.

    ``instances`` counts independent ``(batch, head)`` slices.  For a
    ``prefill`` phase ``chunks`` is the per-instance M1 chunk count (the
    sequence length in units of the array dimension); for a ``decode``
    phase it is the KV-cache context length in the same units.
    """

    kind: str
    instances: int
    chunks: int

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"unknown phase kind {self.kind!r}; have {PHASE_KINDS}"
            )
        if self.instances < 1:
            raise ValueError(f"phase instances must be >= 1, got {self.instances}")
        if self.chunks < 1:
            raise ValueError(f"phase chunks must be >= 1, got {self.chunks}")


@dataclass(frozen=True)
class Scenario:
    """N (batch, head) attention instances over one array configuration.

    The spec is declarative and complete: two scenarios with equal
    fields describe the same schedule, and any field difference must
    change the runtime cache key (tested in ``tests/test_runtime.py``).

    Attributes:
        name: Identifier used in reports and run-registry summaries.
        phases: Instance groups; at least one.
        binding: ``"tile-serial"`` or ``"interleaved"`` (Fig. 4/5).
        embedding: E (= F), the per-head embedding dimension.
        array_dim: 2D PE-array dimension (also M0 and P0).
        pe_1d: 1D-array lanes; defaults to ``array_dim`` (the paper's
            floorplan) when None.
        slots: issue slots per resource under the interleaved binding
            (the ``A|B`` round-robin width instances contend for).
            Tile-serial schedules issue one task per resource, so the
            field is normalized to 1 under that binding — two
            tile-serial specs differing only in requested slots are the
            same scenario (same schedule, same cache key).
        model: optional name of the workload model this scenario was
            derived from (set by :func:`scenario_from_model`).
    """

    name: str
    phases: Tuple[Phase, ...]
    binding: str = "interleaved"
    embedding: int = 64
    array_dim: int = 256
    pe_1d: Optional[int] = None
    slots: int = 2
    model: Optional[str] = field(default=None)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("scenario needs at least one phase")
        if self.binding not in BINDINGS:
            raise ValueError(f"unknown binding {self.binding!r}; have {BINDINGS}")
        if self.embedding < 1:
            raise ValueError(f"embedding must be >= 1, got {self.embedding}")
        if self.array_dim < 1:
            raise ValueError(f"array_dim must be >= 1, got {self.array_dim}")
        if self.pe_1d is not None and self.pe_1d < 1:
            raise ValueError(f"pe_1d must be >= 1, got {self.pe_1d}")
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.binding == "tile-serial":
            # One task issues per resource under the serial discipline;
            # normalizing keeps equality and cache keys truthful.
            object.__setattr__(self, "slots", 1)

    @property
    def instances(self) -> int:
        """Total (batch, head) instances across all phases."""
        return sum(phase.instances for phase in self.phases)

    @property
    def resolved_pe_1d(self) -> int:
        return self.pe_1d if self.pe_1d is not None else self.array_dim

    @property
    def seq_len(self) -> int:
        """Per-instance sequence length of the longest prefill phase
        (0 for decode-only scenarios); used for grid summaries."""
        chunks = [p.chunks for p in self.phases if p.kind == "prefill"]
        return max(chunks, default=0) * self.array_dim

    def with_binding(self, binding: str) -> "Scenario":
        """The same workload under the other binding."""
        return replace(self, binding=binding)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        parts = ", ".join(
            f"{p.instances}x{p.kind}[{p.chunks} chunks]" for p in self.phases
        )
        return (
            f"{self.name}: {parts} on {self.array_dim}x{self.array_dim}+"
            f"{self.resolved_pe_1d} ({self.binding}, E={self.embedding})"
        )


def _append_decode(
    phases: list,
    name: str,
    decode_instances: int,
    decode_chunks: Optional[int],
    default_chunks: int,
) -> str:
    """Append the optional decode phase both builders share; returns the
    (possibly suffixed) scenario name so phase mix and label stay in
    sync between constructors."""
    if decode_instances:
        phases.append(
            Phase(
                "decode",
                decode_instances,
                default_chunks if decode_chunks is None else decode_chunks,
            )
        )
        name += f"+dec{decode_instances}"
    return name


def attention_scenario(
    instances: int,
    chunks: int,
    *,
    binding: str = "interleaved",
    embedding: int = 64,
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    name: Optional[str] = None,
) -> Scenario:
    """A scenario of ``instances`` identical prefill attention instances,
    optionally sharing the arrays with ``decode_instances`` decode steps."""
    phases = [Phase("prefill", instances, chunks)]
    auto_name = _append_decode(
        phases, f"attn-{instances}x{chunks}", decode_instances, decode_chunks,
        chunks,
    )
    return Scenario(
        name=auto_name if name is None else name,
        phases=tuple(phases),
        binding=binding,
        embedding=embedding,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
    )


def heterogeneous_scenario(
    chunk_counts: Sequence[int],
    *,
    binding: str = "interleaved",
    embedding: int = 64,
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
    name: Optional[str] = None,
) -> Scenario:
    """A scenario of prefill instances with *unequal* chunk counts.

    ``chunk_counts`` lists one entry per instance (e.g. ``(16, 16, 64)``
    is two 16-chunk requests sharing the arrays with one 64-chunk
    request).  Instances with equal counts are grouped into one
    :class:`Phase`, in order of first appearance, so equal mixes produce
    equal scenarios regardless of listing order only when the counts
    first appear in the same order — the phase tuple is the identity.
    """
    if not chunk_counts:
        raise ValueError("heterogeneous scenario needs at least one instance")
    groups: dict = {}
    for count in chunk_counts:
        groups[count] = groups.get(count, 0) + 1
    phases = [Phase("prefill", n, count) for count, n in groups.items()]
    auto_name = "het-" + "+".join(f"{n}x{c}" for c, n in groups.items())
    auto_name = _append_decode(
        phases, auto_name, decode_instances, decode_chunks, max(groups),
    )
    return Scenario(
        name=auto_name if name is None else name,
        phases=tuple(phases),
        binding=binding,
        embedding=embedding,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
    )


def scenario_from_model(
    model: ModelConfig,
    seq_len: int,
    batch: int = BATCH_SIZE,
    *,
    heads: Optional[int] = None,
    binding: str = "interleaved",
    array_dim: int = 256,
    pe_1d: Optional[int] = None,
    slots: int = 2,
    decode_instances: int = 0,
    decode_chunks: Optional[int] = None,
) -> Scenario:
    """The ``B × H`` scenario of one workload model at ``seq_len``.

    ``heads`` overrides the model's head count (e.g. to study array
    pressure at other multiprogramming levels); the embedding dimension
    always follows the model's ``d_head``.
    """
    if seq_len % array_dim:
        raise ValueError(
            f"sequence length {seq_len} not divisible by array dim {array_dim}"
        )
    n_heads = model.n_heads if heads is None else heads
    if batch < 1 or n_heads < 1:
        raise ValueError(f"batch and heads must be >= 1, got {batch}x{n_heads}")
    chunks = seq_len // array_dim
    phases = [Phase("prefill", batch * n_heads, chunks)]
    name = _append_decode(
        phases, f"{model.name}-B{batch}xH{n_heads}-L{seq_len}",
        decode_instances, decode_chunks, chunks,
    )
    return Scenario(
        name=name,
        phases=tuple(phases),
        binding=binding,
        embedding=model.d_head,
        array_dim=array_dim,
        pe_1d=pe_1d,
        slots=slots,
        model=model.name,
    )
