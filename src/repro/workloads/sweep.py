"""Workload sweep utilities: the evaluation grid in one place.

The paper's evaluation grid is 4 models × 6 sequence lengths at batch 64.
These helpers enumerate it, build shape environments, and summarize total
work — used by the experiment drivers and available to downstream users
scoping their own studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from .compute import attention_ops, linear_ops
from .models import BATCH_SIZE, MODELS, ModelConfig, SEQUENCE_LENGTHS


@dataclass(frozen=True)
class WorkloadPoint:
    """One (model, sequence length) point of the evaluation grid."""

    model: ModelConfig
    seq_len: int
    batch: int = BATCH_SIZE

    def attention_shapes(self, block: int = 256) -> Dict[str, int]:
        return self.model.attention_shapes(self.seq_len, block=block)

    @property
    def attention_instances(self) -> int:
        """Independent (batch, head) attention kernels at this point."""
        return self.batch * self.model.n_heads

    def total_attention_ops(self) -> float:
        return self.batch * attention_ops(self.model, self.seq_len)

    def total_linear_ops(self) -> float:
        return self.batch * linear_ops(self.model, self.seq_len)


def evaluation_grid(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    batch: int = BATCH_SIZE,
) -> Iterator[WorkloadPoint]:
    """The paper's grid, row-major over (model, length)."""
    for model in models:
        for seq_len in seq_lens:
            yield WorkloadPoint(model=model, seq_len=seq_len, batch=batch)


def work_summary(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Total attention / linear operations per grid point."""
    summary = {}
    for point in evaluation_grid(models, seq_lens):
        summary[(point.model.name, point.seq_len)] = {
            "attention_ops": point.total_attention_ops(),
            "linear_ops": point.total_linear_ops(),
            "instances": float(point.attention_instances),
        }
    return summary
