"""Transformer workloads evaluated by the paper (Sec. VI-A).

The same four encoder models FLAT uses: BERT-Base, TrXL-wt103, T5-small,
and XLM, with batch size 64 and sequence lengths from 1K to 1M tokens.
FlauBERT is omitted because it shares TrXL's hyperparameters (per the
paper); T5 is evaluated encoder-only.

In the paper's rank naming, per head: ``E = F = d_head`` are the Q/K and V
embedding dimensions, and ``M = P = L`` (self-attention, key and query
sequence lengths equal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of one transformer encoder."""

    name: str
    d_model: int
    n_heads: int
    d_head: int
    d_ff: int
    n_layers: int

    @property
    def d_attn(self) -> int:
        """Total attention width (heads × head dimension)."""
        return self.n_heads * self.d_head

    def attention_shapes(self, seq_len: int, block: int = 256) -> Dict[str, int]:
        """Shape environment for the attention cascades at ``seq_len``."""
        if seq_len % block:
            raise ValueError(f"sequence length {seq_len} not divisible by {block}")
        return {
            "E": self.d_head,
            "F": self.d_head,
            "M": seq_len,
            "P": seq_len,
            "M0": block,
            "M1": seq_len // block,
        }


BERT = ModelConfig("BERT", d_model=768, n_heads=12, d_head=64, d_ff=3072, n_layers=12)
TRXL = ModelConfig("TrXL", d_model=1024, n_heads=16, d_head=64, d_ff=4096, n_layers=18)
T5 = ModelConfig("T5", d_model=512, n_heads=8, d_head=64, d_ff=2048, n_layers=6)
XLM = ModelConfig("XLM", d_model=2048, n_heads=16, d_head=128, d_ff=8192, n_layers=12)

#: Evaluation order used by every figure.
MODELS: Tuple[ModelConfig, ...] = (BERT, TRXL, T5, XLM)

MODELS_BY_NAME: Mapping[str, ModelConfig] = {m.name: m for m in MODELS}

#: Batch size used for all evaluations (following FLAT).
BATCH_SIZE = 64

#: The sequence-length sweep of every figure (1K ... 1M).
SEQUENCE_LENGTHS: Tuple[int, ...] = (1024, 4096, 16384, 65536, 262144, 1048576)


def seq_label(seq_len: int) -> str:
    """Human-readable sequence-length label (1K, 4K, ..., 1M)."""
    if seq_len >= 2**20 and seq_len % 2**20 == 0:
        return f"{seq_len // 2**20}M"
    return f"{seq_len // 1024}K"
