"""Compute inventories for transformer inference (Fig. 1b, Sec. IV-A).

Breaks one encoder layer's work into the paper's three categories:

- **Attn** — the attention kernel: QK, softmax, AV (per head);
- **Linear** — the weight-times-activation GEMMs: Q/K/V projections,
  deprojection, and the two FFN layers;
- **Other** — the non-linearities: layer norms, the FFN ReLU, residual
  adds.  The paper observes these are negligible at every length.

Counts are in scalar operations (a MACC counts as one operation; the
relative proportions are insensitive to that convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cascades.transformer import linear_layers
from .models import ModelConfig


@dataclass(frozen=True)
class ComputeBreakdown:
    """Per-category operation counts for one encoder layer at one length."""

    attention: float
    linear: float
    other: float

    @property
    def total(self) -> float:
        return self.attention + self.linear + self.other

    def proportions(self) -> Dict[str, float]:
        total = self.total
        return {
            "Attn": self.attention / total,
            "Linear": self.linear / total,
            "Other": self.other / total,
        }


def attention_ops(model: ModelConfig, seq_len: int) -> float:
    """Attention operations per sequence for one encoder layer.

    Per head: QK (E·M·P MACCs), softmax (max + exp + sum + divide per
    score ≈ 4 ops per element), AV (F·M·P MACCs).
    """
    m = p = seq_len
    per_head = (model.d_head * m * p) * 2 + 4 * m * p
    return model.n_heads * per_head


def linear_ops(model: ModelConfig, seq_len: int) -> float:
    """Linear-layer (GEMM) operations per sequence for one encoder layer."""
    per_token = sum(layer.macs_per_token for layer in linear_layers(
        model.d_model, model.n_heads, model.d_head, model.d_ff
    ))
    return per_token * seq_len


def other_ops(model: ModelConfig, seq_len: int) -> float:
    """Normalization / activation / residual operations per sequence.

    Two layer norms (≈8 ops per element), one ReLU over the FFN hidden
    dimension, two residual adds.
    """
    d, g = model.d_model, model.d_ff
    per_token = 2 * 8 * d + g + 2 * d
    return per_token * seq_len


def compute_breakdown(model: ModelConfig, seq_len: int) -> ComputeBreakdown:
    """Fig. 1b's data point for one model and sequence length."""
    return ComputeBreakdown(
        attention=attention_ops(model, seq_len),
        linear=linear_ops(model, seq_len),
        other=other_ops(model, seq_len),
    )


def attention_crossover_length(model: ModelConfig) -> float:
    """The sequence length where attention equals linear compute.

    Setting ``H·2E·L² = per_token_linear·L`` gives the crossover the paper
    highlights: beyond a few thousand tokens, attention dominates.
    """
    per_token = sum(layer.macs_per_token for layer in linear_layers(
        model.d_model, model.n_heads, model.d_head, model.d_ff
    ))
    return per_token / (2 * model.n_heads * model.d_head + 4 * model.n_heads)
