"""Transformer workload definitions and compute inventories."""

from .compute import (
    ComputeBreakdown,
    attention_crossover_length,
    attention_ops,
    compute_breakdown,
    linear_ops,
    other_ops,
)
from .scenario import (
    BINDINGS,
    PHASE_KINDS,
    Phase,
    Scenario,
    attention_scenario,
    heterogeneous_scenario,
    mixed_model_scenario,
    scenario_from_model,
)
from .sweep import WorkloadPoint, evaluation_grid, work_summary
from .models import (
    BATCH_SIZE,
    BERT,
    MODELS,
    MODELS_BY_NAME,
    ModelConfig,
    SEQUENCE_LENGTHS,
    T5,
    TRXL,
    XLM,
    seq_label,
)

__all__ = [
    "BATCH_SIZE",
    "BERT",
    "BINDINGS",
    "ComputeBreakdown",
    "MODELS",
    "MODELS_BY_NAME",
    "ModelConfig",
    "PHASE_KINDS",
    "Phase",
    "SEQUENCE_LENGTHS",
    "Scenario",
    "T5",
    "TRXL",
    "WorkloadPoint",
    "XLM",
    "attention_scenario",
    "heterogeneous_scenario",
    "mixed_model_scenario",
    "scenario_from_model",
    "attention_crossover_length",
    "attention_ops",
    "compute_breakdown",
    "evaluation_grid",
    "linear_ops",
    "other_ops",
    "seq_label",
    "work_summary",
]
