"""Accelergy-style per-action energy model at a 45 nm node.

The paper evaluates energy with Accelergy at 45 nm (Sec. VI-A).  We use
per-action energies assembled from the standard architecture-literature
sources for that node (Horowitz ISSCC'14 "computing's energy problem";
Accelergy's bundled 45 nm tables; Xia et al. for the floating-point
divider, scaled to 45 nm per the paper).  Only *relative* magnitudes
matter for the paper's conclusions — DRAM ≫ global buffer ≫ scratchpad ≫
MACC — and those orderings are robust across reasonable table choices.

All values are picojoules per action on a 16-bit word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass(frozen=True)
class EnergyTable:
    """Per-action energies (pJ) for a 45 nm implementation.

    Attributes:
        dram_word: One 16-bit word of DRAM traffic (~25 pJ/bit incl. PHY).
        glb_word: One 16-bit access to the 16 MB global buffer SRAM.
        spad_word: One access to a PE-local scratchpad / register file.
        macc: One 16-bit multiply-accumulate (incl. local operand movement).
        add: One 16-bit add.
        max: One 16-bit compare-select.
        divide: One floating-point division (Xia et al., scaled to 45 nm).
        exp_unit: One exponentiation on a dedicated unit (FLAT-style 1D PE).
    """

    dram_word: float = 200.0
    glb_word: float = 10.0
    spad_word: float = 1.0
    macc: float = 4.5
    add: float = 0.6
    max: float = 0.6
    divide: float = 10.0
    exp_unit: float = 12.0

    def op_energy(self, cost_class: str, exp_as_maccs: int = 6) -> float:
        """Energy of one operation of the given cost class.

        ``exp`` costs either one dedicated-unit activation or
        ``exp_as_maccs`` MACCs — callers pass ``exp_as_maccs=1`` along with
        treating exp via :attr:`exp_unit` when modeling FLAT's 1D array.
        """
        if cost_class == "macc":
            return self.macc
        if cost_class == "mul":
            return self.macc
        if cost_class == "add":
            return self.add
        if cost_class == "max":
            return self.max
        if cost_class == "divide":
            return self.divide
        if cost_class == "exp":
            return self.macc * exp_as_maccs
        return self.macc

    def compute_energy(
        self, counts: Mapping[str, int], dedicated_exp: bool = False
    ) -> float:
        """Total pJ for a bag of operation counts keyed by cost class."""
        total = 0.0
        for cls, count in counts.items():
            if cls == "exp" and dedicated_exp:
                total += count * self.exp_unit
            else:
                total += count * self.op_energy(cls)
        return total


#: Default table used throughout the evaluation.
DEFAULT_ENERGY = EnergyTable()


@dataclass
class EnergyBreakdown:
    """Accumulates energy by category; reports totals and fractions."""

    pj: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, value: float) -> None:
        self.pj[category] = self.pj.get(category, 0.0) + value

    @property
    def total(self) -> float:
        return sum(self.pj.values())

    def fraction(self, category: str) -> float:
        total = self.total
        return self.pj.get(category, 0.0) / total if total else 0.0

    def merged(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged = EnergyBreakdown(dict(self.pj))
        for category, value in other.pj.items():
            merged.add(category, value)
        return merged
