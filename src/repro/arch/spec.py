"""Spatial-architecture specification (paper Fig. 2 and Sec. VI-A).

The modeled machine is a TPUv2/v3-style spatial accelerator: off-chip DRAM
feeding a large on-chip global buffer, which feeds a 2D PE array (tensor
products) and a 1D PE array (vector operations).  The paper's *cloud*
configuration: 256×256 2D PEs, 256 1D PEs, 16 MB global buffer, 400 GB/s
DRAM bandwidth, 940 MHz clock.

Two PE-capability details distinguish the designs being compared:

- the FLAT-style architecture keeps a dedicated single-cycle exponentiation
  unit in its 1D 'softmax' PEs (as in the original FLAT model) and
  plain multiply-accumulate 2D PEs;
- the FuseMax architecture extends the 2D PEs with ``max`` support and a
  10-entry register file (Fig. 3c) so exponentials run on the 2D array as
  6 sequential MACCs, and drops the dedicated exp unit everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Cycles per exponentiation when implemented as sequential MACCs
#: (Taylor-series evaluation; Nilsson et al., paper Sec. V).
EXP_AS_MACCS = 6


@dataclass(frozen=True)
class Architecture:
    """One spatial accelerator configuration.

    Attributes:
        name: Identifier used in reports.
        array_dim: Side length of the square 2D PE array (also the number
            of 1D PEs, matching the TPU-style design where the 1D array
            spans one edge of the 2D array).
        global_buffer_bytes: On-chip shared buffer capacity.
        dram_gbps: Off-chip bandwidth in GB/s.
        frequency_ghz: Clock frequency.
        word_bytes: Datapath word size (2 = fp16/bf16-style).
        exp_unit_1d: True when the 1D PEs have a dedicated single-cycle
            exponentiation unit (FLAT-style); otherwise exponentiation
            costs :data:`EXP_AS_MACCS` cycles.
        fused_2d_softmax: True when the 2D PEs support ``max`` and hold a
            register file, allowing softmax work to run on the 2D array
            (the FuseMax PE of Fig. 3c).
        rf_entries_2d: Register-file entries per 2D PE (FuseMax PE: 10).
    """

    name: str
    array_dim: int = 256
    global_buffer_bytes: int = 16 * 2**20
    dram_gbps: float = 400.0
    frequency_ghz: float = 0.94
    word_bytes: int = 2
    exp_unit_1d: bool = False
    fused_2d_softmax: bool = False
    rf_entries_2d: int = 0

    @property
    def pe_2d(self) -> int:
        """Number of PEs in the 2D array."""
        return self.array_dim * self.array_dim

    @property
    def pe_1d(self) -> int:
        """Number of PEs in the 1D array."""
        return self.array_dim

    @property
    def dram_bytes_per_cycle(self) -> float:
        """DRAM bandwidth expressed in bytes per core cycle."""
        return self.dram_gbps / self.frequency_ghz

    def exp_cycles_1d(self) -> int:
        """Cycles one 1D PE spends per exponentiation."""
        return 1 if self.exp_unit_1d else EXP_AS_MACCS

    def with_array_dim(self, dim: int) -> "Architecture":
        """A copy scaled to a different PE-array dimension (Fig. 12)."""
        return replace(self, name=f"{self.name}-{dim}x{dim}", array_dim=dim)

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this clock."""
        return cycles / (self.frequency_ghz * 1e9)


def flat_arch(**overrides) -> Architecture:
    """The FLAT baseline architecture (cloud configuration).

    Plain multiply-accumulate 2D PEs; 1D PEs with (+, ×, max, ÷) and a
    dedicated exponentiation unit, per the original FLAT model.
    """
    return Architecture(
        name="flat-cloud", exp_unit_1d=True, fused_2d_softmax=False, **overrides
    )


def fusemax_arch(**overrides) -> Architecture:
    """The FuseMax architecture (paper Fig. 2 / Fig. 3c).

    2D PEs gain ``max`` and a 10-entry register file; exponentiation is
    6 sequential MACCs on either array (no dedicated unit anywhere).
    """
    return Architecture(
        name="fusemax-cloud",
        exp_unit_1d=False,
        fused_2d_softmax=True,
        rf_entries_2d=10,
        **overrides,
    )


def unfused_arch(**overrides) -> Architecture:
    """The unfused baseline: the same substrate as FLAT's architecture."""
    return Architecture(
        name="unfused-cloud", exp_unit_1d=True, fused_2d_softmax=False, **overrides
    )


def fusemax_edge_arch(**overrides) -> Architecture:
    """An edge-scale FuseMax configuration (extension, not in the paper).

    FLAT also evaluates an edge accelerator; the paper scopes to the
    cloud configuration.  This preset scales the FuseMax design to an
    edge budget — 128×128 PEs, 2 MB buffer, 64 GB/s LPDDR-class
    bandwidth — so users can study the same trade-offs at the small end.
    """
    defaults = dict(
        name="fusemax-edge",
        array_dim=128,
        global_buffer_bytes=2 * 2**20,
        dram_gbps=64.0,
        frequency_ghz=0.7,
        exp_unit_1d=False,
        fused_2d_softmax=True,
        rf_entries_2d=10,
    )
    defaults.update(overrides)
    return Architecture(**defaults)
