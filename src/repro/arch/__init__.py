"""Architecture specifications, energy, and area models."""

from .area import AreaBreakdown, area_of
from .energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyTable
from .spec import (
    Architecture,
    EXP_AS_MACCS,
    flat_arch,
    fusemax_arch,
    fusemax_edge_arch,
    unfused_arch,
)

__all__ = [
    "Architecture",
    "AreaBreakdown",
    "DEFAULT_ENERGY",
    "EXP_AS_MACCS",
    "EnergyBreakdown",
    "EnergyTable",
    "area_of",
    "flat_arch",
    "fusemax_arch",
    "fusemax_edge_arch",
    "unfused_arch",
]
