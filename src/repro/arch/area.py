"""Area model at 45 nm (used for the iso-area claim and Fig. 12).

Per-component areas assembled from 45 nm synthesis literature (the same
sources Accelergy bundles).  As with energy, only relative magnitudes
matter: the 2D PE array and the global buffer dominate, so sweeping the
array dimension (Fig. 12) trades compute area against latency.

All values in mm².
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import Architecture

#: One 16-bit MACC PE incl. pipeline registers (45 nm).
PE_MACC_MM2 = 0.0025

#: Extra area for the FuseMax 2D PE: comparator (max) + 10-entry RF.
PE_FUSEMAX_EXTRA_MM2 = 0.00012

#: One 1D PE: MACC + comparator + FP divider (Xia et al. @45 nm).
PE_1D_MM2 = 0.012

#: Dedicated exponentiation unit in a FLAT-style 1D PE.
PE_EXP_UNIT_MM2 = 0.004

#: SRAM density for the global buffer (45 nm, incl. periphery).
SRAM_MM2_PER_MB = 1.5

#: NoC, controllers, I/O pads and other fixed overheads.
FIXED_OVERHEAD_MM2 = 8.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of one accelerator configuration (mm²)."""

    pe_2d: float
    pe_1d: float
    global_buffer: float
    fixed: float

    @property
    def total(self) -> float:
        return self.pe_2d + self.pe_1d + self.global_buffer + self.fixed

    @property
    def total_cm2(self) -> float:
        return self.total / 100.0


def area_of(arch: Architecture) -> AreaBreakdown:
    """Area model for an :class:`Architecture`."""
    pe_2d_unit = PE_MACC_MM2
    if arch.fused_2d_softmax:
        pe_2d_unit += PE_FUSEMAX_EXTRA_MM2
    pe_1d_unit = PE_1D_MM2
    if arch.exp_unit_1d:
        pe_1d_unit += PE_EXP_UNIT_MM2
    return AreaBreakdown(
        pe_2d=arch.pe_2d * pe_2d_unit,
        pe_1d=arch.pe_1d * pe_1d_unit,
        global_buffer=arch.global_buffer_bytes / 2**20 * SRAM_MM2_PER_MB,
        fixed=FIXED_OVERHEAD_MM2,
    )
