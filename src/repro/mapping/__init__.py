"""Mappings (loop nests, tilings) and bindings (Einsum → array)."""

from .binding import (
    Binding,
    BindingError,
    flat_binding,
    fusemax_binding,
    plus_cascade_binding,
    validate_binding,
    validated_bindings,
)
from .loopnest import Loop, LoopNest, fusemax_mapping
from .mapper import GemmMapping, GemmShape, gemm_latency_cycles, search_gemm_mapping
from .tiling import (
    BufferRequirement,
    FusionGroups,
    buffer_requirement,
    fusion_groups,
)

__all__ = [
    "Binding",
    "BindingError",
    "BufferRequirement",
    "FusionGroups",
    "GemmMapping",
    "GemmShape",
    "Loop",
    "LoopNest",
    "buffer_requirement",
    "flat_binding",
    "fusemax_binding",
    "fusemax_mapping",
    "fusion_groups",
    "gemm_latency_cycles",
    "plus_cascade_binding",
    "search_gemm_mapping",
    "validate_binding",
    "validated_bindings",
]
