"""Fusion-tiling legality derived from the pass analysis (Sec. III-B).

"Einsums within a pass can be fused at will, producing and consuming a
tile of the intermediate at a time.  Einsums in different passes cannot be
fused."  This module turns a :class:`~repro.analysis.passes.PassAnalysis`
into concrete fusion groups and checks whether a fused schedule's live
tensors fit a buffer — the machinery behind FLAT's spill threshold and
FuseMax's sequence-length independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..analysis.footprint import live_footprints
from ..analysis.passes import PassAnalysis


@dataclass(frozen=True)
class FusionGroups:
    """Einsums grouped by the pass they execute in."""

    groups: Mapping[int, Tuple[str, ...]]

    def group_of(self, label: str) -> int:
        for pass_number, labels in self.groups.items():
            if label in labels:
                return pass_number
        raise KeyError(label)

    def can_fuse(self, a: str, b: str) -> bool:
        """Two Einsums may be fused on the analysed rank iff they share a
        pass."""
        return self.group_of(a) == self.group_of(b)


def fusion_groups(analysis: PassAnalysis) -> FusionGroups:
    """Partition the participating Einsums by pass number."""
    groups: Dict[int, List[str]] = {}
    for label, info in analysis.info.items():
        if info.pass_number is not None:
            groups.setdefault(info.pass_number, []).append(label)
    return FusionGroups({k: tuple(v) for k, v in sorted(groups.items())})


@dataclass(frozen=True)
class BufferRequirement:
    """On-chip bytes a maximally fused schedule must provision."""

    cascade_name: str
    crossing_bytes: int
    fits: bool
    capacity_bytes: int


def buffer_requirement(
    analysis: PassAnalysis,
    shapes: Mapping[str, int],
    capacity_bytes: int,
    word_bytes: int = 2,
) -> BufferRequirement:
    """Bytes needed to keep every pass-crossing tensor resident.

    If this exceeds the capacity, the schedule must spill — incurring
    memory traffic proportional to the crossing tensors (what happens to
    FLAT at 256K).
    """
    report = live_footprints(analysis, shapes)
    needed = report.buffered_bytes(word_bytes)
    return BufferRequirement(
        cascade_name=analysis.cascade.name,
        crossing_bytes=needed,
        fits=needed <= capacity_bytes,
        capacity_bytes=capacity_bytes,
    )
