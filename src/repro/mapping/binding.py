"""Bindings: assigning Einsums to PE arrays (Sec. II-D, Sec. V).

A binding maps each Einsum of a cascade to the compute unit that executes
it and declares which pairs are cycle-interleaved (the ``A|B`` notation of
Fig. 4).  :func:`validate_binding` checks the assignment against the
architecture's PE capabilities: division only runs on the 1D array, and
softmax operations (max / exp) run on the 2D array only when the PEs have
the FuseMax extensions (Fig. 3c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Tuple

from ..arch.spec import Architecture
from ..cascades import attention_1pass, attention_3pass
from ..einsum import Cascade


class BindingError(ValueError):
    """Raised when a binding violates architecture capabilities."""


@dataclass(frozen=True)
class Binding:
    """Einsum-to-array assignment plus interleaving declarations."""

    name: str
    assignment: Mapping[str, str]  # Einsum label -> "2d" | "1d"
    interleaved: Tuple[Tuple[str, str], ...] = ()

    def on_array(self, array: str) -> Tuple[str, ...]:
        return tuple(
            label for label, arr in self.assignment.items() if arr == array
        )

    def array_of(self, label: str) -> str:
        try:
            return self.assignment[label]
        except KeyError:
            raise BindingError(f"{self.name}: Einsum {label!r} unbound") from None


#: Operation classes each array supports, keyed by PE flavour.
_2D_BASE = frozenset({"macc", "mul", "add"})
_2D_FUSEMAX = _2D_BASE | {"max", "exp"}  # exp via 6 sequential MACCs
_1D_OPS = frozenset({"macc", "mul", "add", "max", "divide", "exp"})


def _einsum_op_classes(cascade: Cascade, label: str) -> FrozenSet[str]:
    """Cost classes an Einsum's compute requires."""
    from ..analysis.opcount import count_einsum_ops

    einsum = cascade.find(label)
    # Shapes of 2 are enough to expose which classes appear.
    shapes = {str(sym): 2 for sym in cascade.rank_shapes.values()}
    counts = count_einsum_ops(einsum, cascade, shapes)
    return frozenset(counts.counts)


def validate_binding(
    binding: Binding, cascade: Cascade, arch: Architecture
) -> None:
    """Check the binding covers the cascade and respects PE capabilities."""
    computable = {
        e.label
        for e in cascade.einsums
        if not e.is_view and not e.is_initialization
    }
    bound = set(binding.assignment)
    missing = computable - bound
    if missing:
        raise BindingError(f"{binding.name}: unbound Einsums {sorted(missing)}")
    caps_2d = _2D_FUSEMAX if arch.fused_2d_softmax else _2D_BASE
    for label, array in binding.assignment.items():
        if array not in ("2d", "1d"):
            raise BindingError(f"{binding.name}: unknown array {array!r}")
        required = _einsum_op_classes(cascade, label)
        allowed = caps_2d if array == "2d" else _1D_OPS
        unsupported = required - allowed
        if unsupported:
            raise BindingError(
                f"{binding.name}: Einsum {label!r} needs {sorted(unsupported)} "
                f"which the {array} array lacks"
            )
    for a, b in binding.interleaved:
        if binding.array_of(a) != binding.array_of(b):
            raise BindingError(
                f"{binding.name}: interleaved pair ({a}, {b}) spans arrays"
            )


def flat_binding() -> Binding:
    """FLAT: tensor products on the 2D array, softmax on the 1D array."""
    return Binding(
        name="flat",
        assignment={
            "QK": "2d",
            "AV": "2d",
            "GM": "1d",
            "SN": "1d",
            "SD": "1d",
            "A": "1d",
        },
    )


def plus_cascade_binding() -> Binding:
    """The 1-pass cascade on the FLAT architecture: softmax still on 1D."""
    return Binding(
        name="+cascade",
        assignment={
            "BQK": "2d",
            "SLNV": "2d",
            "LM": "1d",
            "RM": "1d",
            "SLN": "1d",
            "SLD": "1d",
            "PRM": "1d",
            "SPD": "1d",
            "RD": "1d",
            "SPNV": "1d",
            "RNV": "1d",
            "AV": "1d",
        },
    )


def fusemax_binding() -> Binding:
    """FuseMax: softmax work shared onto the 2D array, with the Fig. 4
    intra-epoch interleaves (SLNV|BQK on 2D, SPNV/RNV against the running
    state on 1D)."""
    return Binding(
        name="fusemax",
        assignment={
            "BQK": "2d",
            "LM": "2d",
            "SLN": "2d",
            "SLD": "2d",
            "SLNV": "2d",
            "RM": "1d",
            "PRM": "1d",
            "SPD": "1d",
            "RD": "1d",
            "SPNV": "1d",
            "RNV": "1d",
            "AV": "1d",
        },
        interleaved=(("SLNV", "BQK"), ("SPNV", "RNV")),
    )


def rf_working_set(binding: Binding) -> int:
    """Register-file entries one 2D PE needs under an interleaved binding.

    Counts, per PE (the Fig. 3c / Fig. 5 working set):

    - one stationary accumulator per Einsum in the largest 2D interleave
      group (BQK of the next tile alongside SLNV of the current one);
    - two input latches per interleaved stream (the paper latches inputs
      so moving data appears on output wires);
    - one in-place temporary for the exponentiation (SLN overwrites BQK
      through a scratch register);
    - one entry per drain-time reduction the PE forwards (LM, SLD).

    FuseMax's 10-entry register file must cover this.
    """
    groups_2d = [
        pair for pair in binding.interleaved
        if binding.array_of(pair[0]) == "2d"
    ]
    interleave_width = max((len(pair) for pair in groups_2d), default=1)
    accumulators = interleave_width
    input_latches = 2 * interleave_width
    exp_temp = 1 if "SLN" in binding.on_array("2d") else 0
    drain_forwards = sum(
        1 for label in ("LM", "SLD") if label in binding.on_array("2d")
    )
    return accumulators + input_latches + exp_temp + drain_forwards


def validated_bindings(arch_flat: Architecture, arch_fusemax: Architecture):
    """All three bindings, validated against their architectures."""
    flat = flat_binding()
    validate_binding(flat, attention_3pass(), arch_flat)
    cascade = plus_cascade_binding()
    validate_binding(cascade, attention_1pass(), arch_flat)
    fused = fusemax_binding()
    validate_binding(fused, attention_1pass(), arch_fusemax)
    return flat, cascade, fused
