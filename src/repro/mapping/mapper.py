"""A small Timeloop-style mapper for GEMM tiling.

The paper "uses Timeloop to search for efficient mappings to perform QK
and AV" (Sec. VI-A) and for the linear layers (Sec. VI-C).  This module
implements the corresponding search for a two-operand GEMM
``Z[m, n] = A[k, m] × B[k, n]`` on the modeled memory hierarchy: pick tile
sizes ``(Tm, Tn, Tk)`` that fit the global buffer and minimize DRAM
traffic under the classic tiled-GEMM traffic formulas.

Traffic model for tiles resident in the global buffer (output-stationary
at the tile level):

- A is read ``ceil(N / Tn)`` times in full,
- B is read ``ceil(M / Tm)`` times in full,
- Z is written once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..arch.spec import Architecture


@dataclass(frozen=True)
class GemmShape:
    """Problem shape for ``Z[m, n] = A[k, m] × B[k, n]``."""

    m: int
    n: int
    k: int

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


@dataclass(frozen=True)
class GemmMapping:
    """One tiling choice and its modeled cost."""

    tile_m: int
    tile_n: int
    tile_k: int
    dram_words: float
    buffer_words: int

    def traffic_per_mac(self, shape: GemmShape) -> float:
        return self.dram_words / shape.macs


def _tile_candidates(extent: int) -> List[int]:
    """Powers of two up to the extent, plus the extent itself."""
    sizes = []
    size = 1
    while size < extent:
        sizes.append(size)
        size *= 2
    sizes.append(extent)
    return sizes


def _traffic(shape: GemmShape, tm: int, tn: int, tk: int) -> float:
    reads_a = math.ceil(shape.n / tn) * shape.k * shape.m
    reads_b = math.ceil(shape.m / tm) * shape.k * shape.n
    writes_z = shape.m * shape.n
    return float(reads_a + reads_b + writes_z)


def _buffer_need(tm: int, tn: int, tk: int) -> int:
    # Double-buffered A/B tiles plus the output tile.
    return 2 * (tk * tm + tk * tn) + tm * tn


def search_gemm_mapping(
    shape: GemmShape,
    arch: Architecture,
    buffer_fraction: float = 1.0,
) -> GemmMapping:
    """Exhaustively search power-of-two tilings minimizing DRAM traffic.

    Ties break toward larger tiles (more on-chip reuse headroom).  Raises
    if no tiling fits, which cannot happen for ``tile = 1``-capable
    buffers (a few words).
    """
    capacity_words = int(
        arch.global_buffer_bytes * buffer_fraction / arch.word_bytes
    )
    best: Optional[GemmMapping] = None
    for tm in _tile_candidates(shape.m):
        for tn in _tile_candidates(shape.n):
            for tk in _tile_candidates(shape.k):
                need = _buffer_need(tm, tn, tk)
                if need > capacity_words:
                    continue
                words = _traffic(shape, tm, tn, tk)
                candidate = GemmMapping(tm, tn, tk, words, need)
                if (
                    best is None
                    or words < best.dram_words
                    or (
                        words == best.dram_words
                        and need > best.buffer_words
                    )
                ):
                    best = candidate
    if best is None:
        raise ValueError(
            f"no tiling of {shape} fits {capacity_words} buffer words"
        )
    return best


def gemm_latency_cycles(
    shape: GemmShape, arch: Architecture, mapping: GemmMapping
) -> float:
    """Roofline latency of the mapped GEMM on the 2D array."""
    compute = shape.macs / arch.pe_2d
    traffic = mapping.dram_words * arch.word_bytes / arch.dram_bytes_per_cycle
    return max(compute, traffic)
