"""Loop-nest mapping specifications (Sec. II-D and Mapping 1).

A mapping describes *how* a cascade's iteration space is walked: loop
order, partitioning (tiling), and which loops are parallelized onto the
spatial array.  :func:`fusemax_mapping` reconstructs the paper's Mapping 1:
partition on M and P, fuse every Einsum of the 1-pass cascade under one
nest, and parallelize the innermost M0/P0 loops across the 2D PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping as TMapping, Tuple


@dataclass(frozen=True)
class Loop:
    """One loop level of a mapping.

    ``extent`` may be symbolic (resolved against a shape environment);
    ``parallel`` marks a ``parallel_for`` mapped across PEs.
    """

    rank: str
    extent: object  # int or shape-symbol string
    parallel: bool = False

    def __str__(self) -> str:
        kind = "parallel_for" if self.parallel else "for"
        return f"{kind} {self.rank} in [0, {self.extent})"


@dataclass(frozen=True)
class LoopNest:
    """An ordered loop nest over a fused group of Einsums."""

    name: str
    loops: Tuple[Loop, ...]
    body: Tuple[str, ...]  # Einsum labels evaluated inside the nest

    def parallel_ranks(self) -> Tuple[str, ...]:
        return tuple(loop.rank for loop in self.loops if loop.parallel)

    def sequential_ranks(self) -> Tuple[str, ...]:
        return tuple(loop.rank for loop in self.loops if not loop.parallel)

    def spatial_size(self, shapes: TMapping[str, int]) -> int:
        """PEs required: the product of parallel loop extents."""
        size = 1
        for loop in self.loops:
            if loop.parallel:
                size *= _resolve(loop.extent, shapes)
        return size

    def trip_count(self, shapes: TMapping[str, int]) -> int:
        """Sequential iterations: the product of non-parallel extents."""
        count = 1
        for loop in self.loops:
            if not loop.parallel:
                count *= _resolve(loop.extent, shapes)
        return count

    def render(self) -> str:
        lines = []
        for depth, loop in enumerate(self.loops):
            lines.append("  " * depth + str(loop) + ":")
        body_indent = "  " * len(self.loops)
        for label in self.body:
            lines.append(body_indent + label)
        return "\n".join(lines)


def _resolve(extent, shapes: TMapping[str, int]) -> int:
    if isinstance(extent, str):
        return shapes[extent]
    return int(extent)


def fusemax_mapping() -> Tuple[LoopNest, LoopNest]:
    """The paper's Mapping 1 as two fused loop nests.

    The first nest (``ComputeRNVTile``) evaluates Einsums 44-54 with the
    innermost M0 and P0 loops parallelized across the spatial array; the
    second (``ComputeAVTile``) evaluates Einsum 55, fused with the first
    only on P2.
    """
    rnv_tile = LoopNest(
        name="ComputeRNVTile",
        loops=(
            Loop("p2", "P2"),
            Loop("m1", "M1"),
            Loop("p1", "P1"),
            Loop("p0", "P0", parallel=True),
            Loop("m0", "M0", parallel=True),
        ),
        body=(
            "BQK", "LM", "RM", "SLN", "SLD", "SLNV",
            "PRM", "SPD", "RD", "SPNV", "RNV",
        ),
    )
    av_tile = LoopNest(
        name="ComputeAVTile",
        loops=(
            Loop("p2", "P2"),
            Loop("p1", "P1"),
            Loop("p0", "P0", parallel=True),
        ),
        body=("AV",),
    )
    return rnv_tile, av_tile
