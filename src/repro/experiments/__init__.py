"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run()`` (structured rows), ``render()`` (text table),
and ``main()`` (print).  ``repro.experiments.report.full_report()`` runs
everything.
"""

from . import (
    ablations,
    crosscheck,
    fig1b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    report,
    table1,
)

__all__ = [
    "ablations",
    "crosscheck",
    "fig1b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "report",
    "table1",
]
