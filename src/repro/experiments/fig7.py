"""Figure 7: 2D-array utilization broken down by Einsum (BERT).

For FLAT and the three FuseMax configurations, attributes the 2D array's
busy time to the Einsums that occupy it — QK/BQK, SLN (exponentials),
LM/SLD (drain-time reductions), and SLNV/AV (the value product) — showing
that FuseMax spends most cycles on the tensor products even though it also
absorbed the softmax exponentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..model import FLATModel, fusemax, plus_architecture, plus_cascade
from ..runtime import executor as _runtime
from ..workloads.models import BERT, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table

#: Display groups in the order of the paper's legend.
GROUPS = ("QK", "LM", "SLN", "SLD", "SLNV/AV")

_GROUP_OF = {
    "QK": "QK",
    "BQK": "QK",
    "LM": "LM",
    "SLN": "SLN",
    "SLD": "SLD",
    "SLNV": "SLNV/AV",
    "AV": "SLNV/AV",
}


@dataclass(frozen=True)
class Fig7Row:
    """Per-Einsum share of total latency on the 2D array."""

    config: str
    seq_len: int
    shares: Dict[str, float]

    @property
    def total_active(self) -> float:
        return sum(self.shares.values())


def run(
    model: ModelConfig = BERT,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[Fig7Row]:
    configs = (FLATModel(), plus_cascade(), plus_architecture(), fusemax())
    results = _runtime.sweep_attention(
        (model,), seq_lens, configs, jobs=jobs, cache=cache
    )
    rows = []
    for seq_len in seq_lens:
        for config in configs:
            result = results[(config.name, model.name, seq_len)]
            shares = {group: 0.0 for group in GROUPS}
            for label, fraction in result.einsum_share_of_latency().items():
                group = _GROUP_OF.get(label)
                if group is not None:
                    shares[group] += fraction
            rows.append(Fig7Row(config=result.config, seq_len=seq_len, shares=shares))
    return rows


def render(rows: List[Fig7Row]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append(
            (seq_label(r.seq_len), r.config)
            + tuple(f"{r.shares[g]:.3f}" for g in GROUPS)
            + (f"{r.total_active:.3f}",)
        )
    return format_table(("L", "config") + GROUPS + ("total",), table_rows)


def main(jobs: int = 1, cache: object = True) -> None:
    print("Figure 7 — 2D array utilization by Einsum (BERT)")
    print(render(run(jobs=jobs, cache=cache)))


if __name__ == "__main__":
    main()
