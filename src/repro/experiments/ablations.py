"""Ablation tables for the design choices DESIGN.md calls out.

Not paper figures, but the quantitative backing for individual design
decisions:

- ``division_reduction`` — Sec. IV-D: divisions per cascade, with/without
  the reassociation.
- ``block_size`` — the 1-pass correction overhead vs the M0 fusion tile.
- ``buffer_capacity`` — when FLAT's traffic strategy flips (resident →
  retile → spill) as L grows, per global-buffer size.
- ``interleaving`` — simulated utilization with the binding's
  interleaving on/off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.opcount import total_ops
from ..arch.spec import flat_arch
from ..cascades import attention_1pass, attention_2pass, attention_3pass
from ..model.flat import spill_decision
from ..simulator import PipelineConfig, compare_bindings
from ..workloads.models import SEQUENCE_LENGTHS, seq_label
from .common import format_table

_SHAPES = {"E": 64, "F": 64, "M": 65536, "P": 1024, "M0": 256, "M1": 256}


@dataclass(frozen=True)
class DivisionRow:
    cascade: str
    divisions: int
    exps: int
    macc_equivalents: int


def division_reduction() -> List[DivisionRow]:
    rows = []
    for cascade in (
        attention_3pass(False),
        attention_3pass(True),
        attention_2pass(True),
        attention_1pass(),
    ):
        ops = total_ops(cascade, _SHAPES)
        rows.append(
            DivisionRow(
                cascade=cascade.name,
                divisions=ops.get("divide"),
                exps=ops.get("exp"),
                macc_equivalents=ops.macc_equivalents(),
            )
        )
    return rows


def block_size(blocks: Sequence[int] = (16, 64, 256, 1024)) -> List[Tuple[int, int]]:
    """(M0, MACC-equivalents) for the 1-pass cascade: correction overhead
    amortizes as the fusion tile grows."""
    rows = []
    for m0 in blocks:
        shapes = dict(_SHAPES, M0=m0, M1=_SHAPES["M"] // m0)
        rows.append((m0, total_ops(attention_1pass(), shapes).macc_equivalents()))
    return rows


def buffer_capacity(
    capacities_mb: Sequence[int] = (4, 16, 64),
) -> Dict[int, List[str]]:
    """FLAT's traffic strategy per sequence length, per buffer size."""
    table = {}
    for mb in capacities_mb:
        arch = flat_arch(global_buffer_bytes=mb * 2**20)
        table[mb] = [
            spill_decision(arch, 64, 64, seq, seq).strategy
            for seq in SEQUENCE_LENGTHS
        ]
    return table


def interleaving(
    chunks: int = 32, engine: str = "event"
) -> Dict[str, Tuple[float, float]]:
    """(util_2d, util_1d) per binding from the binding simulator.

    Runs on the event-driven core by default; ``engine="cycle"`` replays
    the same schedule on the cycle-accurate oracle (identical numbers).
    """
    reports = compare_bindings(PipelineConfig(chunks=chunks), engine=engine)
    return {
        name: (report.util_2d, report.util_1d)
        for name, report in reports.items()
    }


def render() -> str:
    sections = ["Ablation: division reduction (M=64K, P=1K)"]
    sections.append(
        format_table(
            ["cascade", "divisions", "exps", "macc-equiv"],
            [
                (r.cascade, f"{r.divisions:,}", f"{r.exps:,}",
                 f"{r.macc_equivalents:,}")
                for r in division_reduction()
            ],
        )
    )
    sections.append("\nAblation: 1-pass correction overhead vs block size")
    sections.append(
        format_table(
            ["M0", "macc-equiv"],
            [(m0, f"{ops:,}") for m0, ops in block_size()],
        )
    )
    sections.append("\nAblation: FLAT traffic strategy vs buffer capacity")
    cap_table = buffer_capacity()
    sections.append(
        format_table(
            ["GLB (MB)"] + [seq_label(s) for s in SEQUENCE_LENGTHS],
            [[mb] + strategies for mb, strategies in cap_table.items()],
        )
    )
    sections.append("\nAblation: binding interleaving (simulated)")
    sections.append(
        format_table(
            ["binding", "util 2D", "util 1D"],
            [
                (name, f"{u2:.2f}", f"{u1:.2f}")
                for name, (u2, u1) in interleaving().items()
            ],
        )
    )
    return "\n".join(sections)


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
