"""Figure 1b: proportion of encoder compute vs sequence length.

Regenerates the Attn / Linear / Other series for the BERT encoder (the
paper's Fig. 1b), showing linear layers dominating at short lengths and
attention dominating beyond a few thousand tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..workloads.compute import compute_breakdown
from ..workloads.models import BERT, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table


@dataclass(frozen=True)
class Fig1bRow:
    """One sequence-length point of the Fig. 1b stack."""

    model: str
    seq_len: int
    attn: float
    linear: float
    other: float


def run(
    model: ModelConfig = BERT, seq_lens: Sequence[int] = SEQUENCE_LENGTHS
) -> List[Fig1bRow]:
    rows = []
    for seq_len in seq_lens:
        props = compute_breakdown(model, seq_len).proportions()
        rows.append(
            Fig1bRow(
                model=model.name,
                seq_len=seq_len,
                attn=props["Attn"],
                linear=props["Linear"],
                other=props["Other"],
            )
        )
    return rows


def render(rows: List[Fig1bRow]) -> str:
    return format_table(
        ["L", "Attn", "Linear", "Other"],
        [
            (seq_label(r.seq_len), f"{r.attn:.3f}", f"{r.linear:.3f}", f"{r.other:.3f}")
            for r in rows
        ],
    )


def main() -> None:
    print("Figure 1b — proportion of required compute (BERT)")
    print(render(run()))


if __name__ == "__main__":
    main()
