"""Figure 6: 1D and 2D PE-array utilization across configurations.

Regenerates both panels — (a) 1D-array and (b) 2D-array utilization — for
the five configurations (Unfused, FLAT, +Cascade, +Architecture, +Binding)
across the four models and six sequence lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..workloads.models import MODELS, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table, sweep_attention


@dataclass(frozen=True)
class UtilizationRow:
    """One (config, model, length) utilization sample."""

    config: str
    model: str
    seq_len: int
    util_1d: float
    util_2d: float


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[UtilizationRow]:
    results = sweep_attention(models, seq_lens, jobs=jobs, cache=cache)
    return [
        UtilizationRow(
            config=r.config,
            model=r.model,
            seq_len=r.seq_len,
            util_1d=r.util_1d,
            util_2d=r.util_2d,
        )
        for r in results.values()
    ]


def series(
    rows: List[UtilizationRow], which: str
) -> Dict[Tuple[str, str], List[float]]:
    """Figure series keyed by (config, model), ordered by length."""
    grouped: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    for row in rows:
        value = row.util_1d if which == "1d" else row.util_2d
        grouped.setdefault((row.config, row.model), []).append((row.seq_len, value))
    return {
        key: [v for _, v in sorted(samples)] for key, samples in grouped.items()
    }


def render(rows: List[UtilizationRow]) -> str:
    ordered = sorted(rows, key=lambda r: (r.model, r.seq_len, r.config))
    return format_table(
        ["model", "L", "config", "util 1D", "util 2D"],
        [
            (r.model, seq_label(r.seq_len), r.config,
             f"{r.util_1d:.2f}", f"{r.util_2d:.2f}")
            for r in ordered
        ],
    )


def main(jobs: int = 1, cache: object = True) -> None:
    print("Figure 6 — PE array utilization")
    print(render(run(jobs=jobs, cache=cache)))


if __name__ == "__main__":
    main()
