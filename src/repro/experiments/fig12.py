"""Figure 12: Pareto-optimal area/latency curves at sequence length 256K.

Sweeps the FuseMax PE array from 16×16 to 512×512 (buffers scaled with the
binding, Sec. VI-D) and reports the attention-latency/area trade-off per
model, plus the Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..model.pareto import ARRAY_DIMS, DesignPoint, PARETO_SEQ_LEN, pareto_frontier
from ..runtime import executor as _runtime
from ..workloads.models import MODELS, ModelConfig
from .common import format_table


@dataclass(frozen=True)
class Fig12Result:
    """The sweep points and frontier for one model."""

    model: str
    points: List[DesignPoint]
    frontier: List[DesignPoint]


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_len: int = PARETO_SEQ_LEN,
    dims: Sequence[int] = ARRAY_DIMS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> Dict[str, Fig12Result]:
    points_by_key = _runtime.sweep_pareto(
        models, seq_len, dims, jobs=jobs, cache=cache
    )
    results = {}
    for model in models:
        points = [points_by_key[(model.name, dim)] for dim in dims]
        results[model.name] = Fig12Result(
            model=model.name,
            points=points,
            frontier=pareto_frontier(points),
        )
    return results


def render(results: Dict[str, Fig12Result]) -> str:
    rows = []
    for result in results.values():
        frontier_dims = {p.array_dim for p in result.frontier}
        for point in result.points:
            rows.append(
                (
                    point.model,
                    f"{point.array_dim}x{point.array_dim}",
                    f"{point.area_cm2:.3f}",
                    f"{point.latency_seconds:.1f}",
                    "*" if point.array_dim in frontier_dims else "",
                )
            )
    return format_table(
        ["model", "array", "area (cm^2)", "latency (s)", "pareto"], rows
    )


def main(jobs: int = 1, cache: object = True) -> None:
    print("Figure 12 — area vs attention latency at L = 256K")
    print(render(run(jobs=jobs, cache=cache)))


if __name__ == "__main__":
    main()
