"""Analytical ↔ simulator cross-validation over scenario schedules.

The repo carries two independent accounts of how ``B × H`` attention
instances share the 2D/1D arrays: the event-driven simulator *schedules*
each scenario's merged task graph, and the analytical scenario models
(:mod:`repro.model.scenario`) *bound* the same schedule in closed form.
Both integrate one per-chunk work function, so they must agree — the
interleaved binding and multi-instance tile-serial schedules to within
warm-up effects, and the lone tile-serial instance exactly (the
serial-chain interval is derived from the same dependency graph).

This report runs every seed scenario through both layers, tabulates
simulated vs. analytical per-array utilization, and flags any row whose
divergence exceeds the tolerance.  A flagged row means one of the
layers' assumptions broke — the cross-check that neither the models nor
the simulator can provide alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from ..cluster import SHARDINGS, ClusterPoint, ClusterSpec
from ..model.cluster import analytical_cluster
from ..model.scenario import analytical_scenario
from ..runtime import executor as _runtime
from ..workloads.models import BERT
from ..workloads.scenario import (
    BINDINGS,
    Scenario,
    attention_scenario,
    mixed_model_scenario,
    scenario_from_model,
)
from .common import format_table

#: Maximum |simulated - analytical| utilization accepted without a flag.
DEFAULT_TOLERANCE = 0.05

#: Arrays compared per scenario (the io resource only exists under the
#: tile-serial binding, so the shared rows are the two PE arrays; the
#: ``dram`` row is appended for scenarios that model a finite
#: bandwidth).
CHECKED_ARRAYS: Tuple[str, ...] = ("2d", "1d")


def seed_scenarios() -> Tuple[Scenario, ...]:
    """The default cross-check grid: both bindings at several
    multiprogramming levels, a prefill+decode mix, and a model-derived
    ``B × H`` scenario."""
    scenarios = []
    for binding in BINDINGS:
        for instances in (1, 4, 16):
            scenarios.append(
                attention_scenario(instances, 64, binding=binding)
            )
        scenarios.append(
            attention_scenario(
                4, 64, binding=binding,
                decode_instances=4, decode_chunks=128,
            )
        )
        scenarios.append(
            scenario_from_model(BERT, 4096, batch=4, binding=binding)
        )
    return tuple(scenarios)


def bandwidth_scenarios() -> Tuple[Scenario, ...]:
    """Bandwidth-limited cross-check grid (``--bandwidth``).

    Scenarios whose schedules ride the shared DRAM link: decode-heavy
    mixes at tight and ample bandwidth, a mixed-model (BERT+XLM)
    schedule, and a tile-serial bandwidth-bound point — the contention
    model the simulator and the analytical ``bandwidth-bound`` term must
    agree on.
    """
    tight, ample = 32.0, 65536.0
    scenarios = []
    for bw in (tight, ample):
        scenarios.append(
            attention_scenario(
                4, 32, decode_instances=8, decode_chunks=128, dram_bw=bw,
            )
        )
    scenarios.append(attention_scenario(8, 64, dram_bw=tight))
    scenarios.append(
        attention_scenario(
            4, 32, binding="tile-serial",
            decode_instances=4, decode_chunks=128, dram_bw=tight,
        )
    )
    scenarios.append(
        mixed_model_scenario(
            ("BERT", "XLM"), 16, batch=1, heads=4,
            decode_instances=4, decode_chunks=64, dram_bw=tight,
        )
    )
    return tuple(scenarios)


def capacity_scenarios() -> Tuple[Scenario, ...]:
    """Buffer-capacity cross-check grid (``--capacity``).

    Decisively bandwidth-bound points (tight DRAM link, transfer cycles
    well past every array's work) whose finite ``buffer_bytes`` forces
    spill/refill traffic — so the simulated schedule and the analytical
    ``capacity-bound`` roofline term must agree that the *inflated*
    byte count is what sets the makespan.  Buffers are chosen around
    the prefill working set (2 tiles resident + 2 transient at the
    default 256×64 geometry = 128 KiB demand): one point spills a
    partial tile, one spills the full resident set, one decode-heavy
    mix whose tighter buffer spills on both phase kinds, plus an
    infinite-buffer control that must stay plain ``bandwidth-bound``.
    """
    tight = 32.0
    return (
        attention_scenario(8, 64, dram_bw=tight, buffer_bytes=98304.0),
        attention_scenario(8, 64, dram_bw=tight, buffer_bytes=49152.0),
        attention_scenario(
            4, 32, decode_instances=8, decode_chunks=128,
            dram_bw=tight, buffer_bytes=49152.0,
        ),
        attention_scenario(
            8, 64, dram_bw=tight, buffer_bytes=float("inf"),
        ),
    )


def cluster_points() -> Tuple[ClusterPoint, ...]:
    """Sharded multi-chip cross-check grid (``--cluster``).

    One compute-dense scenario sharded over 2 and 4 chips under both
    policies, at a tight and an ample link bandwidth — the two regimes
    where the analytical bound is sharp (clearly link-bound, clearly
    compute-bound).  Mid-range bandwidths are deliberately absent: there
    the schedule genuinely overlaps collectives with compute, and the
    bound's divergence is a modeling statement, not a regression.
    """
    tight, ample = 8.0, 65536.0
    scenario = attention_scenario(8, 8, array_dim=64)
    return tuple(
        ClusterPoint(
            scenario=scenario,
            spec=ClusterSpec(n_chips=n_chips, link_bw=bw),
            sharding=sharding,
        )
        for n_chips in (2, 4)
        for sharding in SHARDINGS
        for bw in (tight, ample)
    )


@dataclass(frozen=True)
class CrosscheckRow:
    """One (scenario, array) comparison."""

    scenario: str
    binding: str
    instances: int
    array: str
    sim_util: float
    model_util: float
    model_kind: str
    tolerance: float

    @property
    def delta(self) -> float:
        return self.sim_util - self.model_util

    @property
    def within(self) -> bool:
        return abs(self.delta) <= self.tolerance

    @property
    def status(self) -> str:
        return "ok" if self.within else "DIVERGED"


@dataclass(frozen=True)
class CrosscheckReport:
    """Every comparison of one cross-check run."""

    tolerance: float
    rows: Tuple[CrosscheckRow, ...]

    @property
    def flagged(self) -> Tuple[CrosscheckRow, ...]:
        return tuple(row for row in self.rows if not row.within)

    @property
    def ok(self) -> bool:
        return not self.flagged


def crosscheck(
    scenarios: Optional[Sequence[Scenario]] = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    bandwidth: bool = False,
    capacity: bool = False,
    cluster: bool = False,
    jobs: int = 1,
    cache: Any = True,
    registry: Any = None,
) -> CrosscheckReport:
    """Simulate each scenario through the runtime and diff its per-array
    utilization against the analytical estimate.

    ``bandwidth=True`` appends the bandwidth-limited grid
    (:func:`bandwidth_scenarios`) to the default seed scenarios, adding
    a ``dram`` comparison row for every scenario that models a finite
    ``dram_bw``.  ``capacity=True`` appends the finite-buffer grid
    (:func:`capacity_scenarios`), whose ``dram`` rows pit the spill
    -inflated schedule against the ``capacity-bound`` roofline term.
    ``cluster=True`` appends the sharded multi-chip grid
    (:func:`cluster_points`), whose rows compare the shared ``link``'s
    utilization against the analytical cluster bound.
    """
    points: Tuple[ClusterPoint, ...] = ()
    if scenarios is None:
        scenarios = seed_scenarios()
        if bandwidth:
            scenarios = scenarios + bandwidth_scenarios()
        if capacity:
            scenarios = scenarios + capacity_scenarios()
        if cluster:
            points = cluster_points()
    simulated = _runtime.sweep_scenarios(
        scenarios, jobs=jobs, cache=cache, registry=registry
    )
    rows = []
    for scenario in scenarios:
        sim = simulated[scenario]
        model = analytical_scenario(scenario)
        arrays = CHECKED_ARRAYS
        if scenario.dram_bw is not None:
            arrays = arrays + ("dram",)
        for array in arrays:
            rows.append(
                CrosscheckRow(
                    scenario=scenario.name,
                    binding=scenario.binding,
                    instances=scenario.instances,
                    array=array,
                    sim_util=sim.utilization(array),
                    model_util=model.utilization(array),
                    model_kind=model.kind,
                    tolerance=tolerance,
                )
            )
    if points:
        clustered = _runtime.sweep_cluster(
            points, jobs=jobs, cache=cache, registry=registry
        )
        for point, sim in zip(points, clustered):
            estimate = analytical_cluster(point.scenario, point.spec, point.sharding)
            rows.append(
                CrosscheckRow(
                    scenario=point.name,
                    binding=point.scenario.binding,
                    instances=point.scenario.instances,
                    array="link",
                    sim_util=sim.util_link,
                    model_util=estimate.util_link,
                    model_kind=estimate.kind,
                    tolerance=tolerance,
                )
            )
    return CrosscheckReport(tolerance=tolerance, rows=tuple(rows))


def render(report: CrosscheckReport) -> str:
    """The report as a text table plus a one-line verdict."""
    table = format_table(
        ["scenario", "binding", "N", "array", "sim util", "model util",
         "model", "delta", "status"],
        [
            (row.scenario, row.binding, row.instances, row.array,
             f"{row.sim_util:.4f}", f"{row.model_util:.4f}",
             row.model_kind, f"{row.delta:+.4f}", row.status)
            for row in report.rows
        ],
    )
    verdict = (
        f"all {len(report.rows)} comparisons within ±{report.tolerance:g}"
        if report.ok
        else f"{len(report.flagged)}/{len(report.rows)} comparisons "
             f"diverge beyond ±{report.tolerance:g}"
    )
    return f"{table}\n{verdict}"


def run(**kwargs) -> CrosscheckReport:
    """Structured rows (the experiment-driver convention)."""
    return crosscheck(**kwargs)


def main(jobs: int = 1, cache: Any = True) -> None:
    print("Scenario cross-check: simulated vs analytical utilization")
    print(render(crosscheck(jobs=jobs, cache=cache)))
