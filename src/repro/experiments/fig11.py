"""Figure 11: end-to-end transformer inference energy relative to unfused.

Paper headline: FuseMax uses 82% of the unfused baseline's and 83% of
FLAT's energy for end-to-end inference; the reduction grows with sequence
length as attention's share of the kernel grows.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence

from ..workloads.models import MODELS, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table
from .fig10 import BASELINE, sweep_inference


@dataclass(frozen=True)
class InferenceEnergyRow:
    config: str
    model: str
    seq_len: int
    normalized_energy: float


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[InferenceEnergyRow]:
    results = sweep_inference(models, seq_lens, jobs=jobs, cache=cache)
    rows = []
    for (config, model, seq_len), result in results.items():
        base = results[(BASELINE, model, seq_len)]
        rows.append(
            InferenceEnergyRow(
                config=config,
                model=model,
                seq_len=seq_len,
                normalized_energy=result.energy_pj / base.energy_pj,
            )
        )
    return rows


def fusemax_vs_flat(rows: List[InferenceEnergyRow]) -> float:
    by_key = {(r.config, r.model, r.seq_len): r.normalized_energy for r in rows}
    ratios = [
        by_key[("+Binding", model, seq)] / by_key[("FLAT", model, seq)]
        for (config, model, seq) in by_key
        if config == "+Binding"
    ]
    return statistics.mean(ratios)


def render(rows: List[InferenceEnergyRow]) -> str:
    ordered = sorted(rows, key=lambda r: (r.model, r.seq_len, r.config))
    return format_table(
        ["model", "L", "config", "energy vs unfused"],
        [
            (r.model, seq_label(r.seq_len), r.config, f"{r.normalized_energy:.3f}")
            for r in ordered
        ],
    )


def main(jobs: int = 1, cache: object = True) -> None:
    rows = run(jobs=jobs, cache=cache)
    print("Figure 11 — end-to-end inference energy relative to unfused")
    print(render(rows))
    print(f"FuseMax energy vs FLAT: {fusemax_vs_flat(rows):.2f} (paper: 0.83)")


if __name__ == "__main__":
    main()
