"""Shared helpers for the per-figure experiment drivers."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..model import all_attention_models
from ..model.metrics import AttentionResult
from ..runtime import executor as _runtime
from ..workloads.models import (
    MODELS,
    MODELS_BY_NAME,
    ModelConfig,
    SEQUENCE_LENGTHS,
)


def default_grid(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
):
    """The (configuration, model, length) grid used by Figs. 6-11."""
    configs = all_attention_models()
    for config in configs:
        for model in models:
            for seq_len in seq_lens:
                yield config, model, seq_len


def sweep_attention(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> Dict[Tuple[str, str, int], AttentionResult]:
    """Evaluate every configuration on the grid; keyed by
    ``(config_name, model_name, seq_len)``.

    Runs through the :mod:`repro.api` Session (a typed
    ``ExperimentRequest``): ``jobs`` fans grid points out over
    processes and ``cache`` reuses prior results; both preserve the
    serial path's results and ordering exactly.  Unregistered
    ``ModelConfig`` objects (nothing in-repo) fall back to the runtime
    directly, since requests name models rather than carry them.
    """
    if all(MODELS_BY_NAME.get(m.name) is m for m in models):
        # Imported lazily: the Session dispatches experiment requests
        # back into this package.
        from ..api import ExperimentRequest, Session

        request = ExperimentRequest(
            name="sweep", kind="attention",
            models=tuple(m.name for m in models),
            seq_lens=tuple(seq_lens),
        )
        return Session(jobs=jobs, cache=cache).run(request).payload
    return _runtime.sweep_attention(models, seq_lens, jobs=jobs, cache=cache)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width text table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
