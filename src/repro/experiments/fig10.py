"""Figure 10: end-to-end transformer inference speedup over unfused.

Attention plus the encoder's linear layers (Sec. VI-C).  Paper headline:
FuseMax averages 7.6× over the unfused baseline and 5.3× over FLAT, with
the gap growing with sequence length as attention dominates.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..model.metrics import InferenceResult
from ..runtime import executor as _runtime
from ..workloads.models import MODELS, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table

BASELINE = "Unfused"


@dataclass(frozen=True)
class InferenceSpeedupRow:
    config: str
    model: str
    seq_len: int
    speedup: float


def sweep_inference(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> Dict[Tuple[str, str, int], InferenceResult]:
    return _runtime.sweep_inference(models, seq_lens, jobs=jobs, cache=cache)


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[InferenceSpeedupRow]:
    results = sweep_inference(models, seq_lens, jobs=jobs, cache=cache)
    rows = []
    for (config, model, seq_len), result in results.items():
        base = results[(BASELINE, model, seq_len)]
        rows.append(
            InferenceSpeedupRow(
                config=config,
                model=model,
                seq_len=seq_len,
                speedup=base.latency_cycles / result.latency_cycles,
            )
        )
    return rows


def fusemax_vs_flat(rows: List[InferenceSpeedupRow]) -> float:
    by_key = {(r.config, r.model, r.seq_len): r.speedup for r in rows}
    ratios = [
        by_key[("+Binding", model, seq)] / by_key[("FLAT", model, seq)]
        for (config, model, seq) in by_key
        if config == "+Binding"
    ]
    return statistics.mean(ratios)


def render(rows: List[InferenceSpeedupRow]) -> str:
    ordered = sorted(rows, key=lambda r: (r.model, r.seq_len, r.config))
    return format_table(
        ["model", "L", "config", "speedup"],
        [
            (r.model, seq_label(r.seq_len), r.config, f"{r.speedup:.2f}")
            for r in ordered
        ],
    )


def main(jobs: int = 1, cache: object = True) -> None:
    rows = run(jobs=jobs, cache=cache)
    print("Figure 10 — end-to-end inference speedup over the unfused baseline")
    print(render(rows))
    print(f"FuseMax over FLAT: {fusemax_vs_flat(rows):.2f}x (paper: 5.3x)")


if __name__ == "__main__":
    main()
