"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.report`` regenerates the data behind every
table and figure of the paper's evaluation in one shot, printing the same
rows/series the paper reports plus the headline averages, ready to be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from . import ablations, fig1b, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table1


def full_report(jobs: int = 1, cache: object = True) -> str:
    """All experiment tables concatenated into one report string.

    ``jobs``/``cache`` thread through to the grid-backed figures via
    :mod:`repro.runtime`; the output is byte-identical for every value
    of both.
    """
    sections = []

    sections.append("=" * 72)
    sections.append("Figure 1b — proportion of required compute (BERT)")
    sections.append(fig1b.render(fig1b.run()))

    sections.append("=" * 72)
    sections.append("Table I — attention taxonomy by pass count")
    sections.append(table1.render(table1.run()))

    sections.append("=" * 72)
    sections.append("Figure 6 — PE array utilization")
    sections.append(fig6.render(fig6.run(jobs=jobs, cache=cache)))

    sections.append("=" * 72)
    sections.append("Figure 7 — 2D utilization by Einsum (BERT)")
    sections.append(fig7.render(fig7.run(jobs=jobs, cache=cache)))

    rows8 = fig8.run(jobs=jobs, cache=cache)
    sections.append("=" * 72)
    sections.append("Figure 8 — attention speedup over unfused")
    sections.append(fig8.render(rows8))
    sections.append(
        f"headline: FuseMax over FLAT {fig8.fusemax_vs_flat(rows8):.2f}x "
        "(paper: 6.7x)"
    )

    rows9 = fig9.run(jobs=jobs, cache=cache)
    sections.append("=" * 72)
    sections.append("Figure 9 — attention energy vs unfused")
    sections.append(fig9.render(rows9))
    sections.append(
        f"headline: FuseMax energy vs FLAT {fig9.fusemax_vs_flat(rows9):.2f} "
        "(paper: 0.79)"
    )

    rows10 = fig10.run(jobs=jobs, cache=cache)
    sections.append("=" * 72)
    sections.append("Figure 10 — end-to-end speedup over unfused")
    sections.append(fig10.render(rows10))
    sections.append(
        f"headline: FuseMax over FLAT {fig10.fusemax_vs_flat(rows10):.2f}x "
        "(paper: 5.3x)"
    )

    rows11 = fig11.run(jobs=jobs, cache=cache)
    sections.append("=" * 72)
    sections.append("Figure 11 — end-to-end energy vs unfused")
    sections.append(fig11.render(rows11))
    sections.append(
        f"headline: FuseMax energy vs FLAT {fig11.fusemax_vs_flat(rows11):.2f} "
        "(paper: 0.83)"
    )

    sections.append("=" * 72)
    sections.append("Figure 12 — area vs latency Pareto at 256K")
    sections.append(fig12.render(fig12.run(jobs=jobs, cache=cache)))

    sections.append("=" * 72)
    sections.append("Ablations")
    sections.append(ablations.render())

    return "\n".join(sections)


def main(jobs: int = 1, cache: object = True) -> None:
    print(full_report(jobs=jobs, cache=cache))


if __name__ == "__main__":
    main()
