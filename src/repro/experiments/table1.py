"""Table I: classifying attention algorithms by pass count.

The classification is derived by running the pass analysis on each
implemented cascade (not hard-coded) and attaching the paper's exemplars.
Also reports the division-reduction ablation: applying Sec. IV-D to the
3-pass cascade merges its last two passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.passes import count_passes
from ..analysis.taxonomy import attention_rank_family, build_taxonomy
from ..cascades import attention_2pass, attention_3pass
from .common import format_table


@dataclass(frozen=True)
class Table1Row:
    cascade: str
    passes: int
    exemplars: str


def run() -> List[Table1Row]:
    rows = [
        Table1Row(entry.cascade_name, entry.passes, ", ".join(entry.exemplars))
        for entry in build_taxonomy().values()
    ]
    # Division-reduction ablation (Sec. IV-D applied to the 3- and 2-pass).
    for cascade in (attention_3pass(div_opt=True), attention_2pass(div_opt=True)):
        analysis = count_passes(cascade, attention_rank_family(cascade))
        rows.append(Table1Row(cascade.name, analysis.num_passes, "(ablation)"))
    return rows


def render(rows: List[Table1Row]) -> str:
    return format_table(
        ["cascade", "passes", "prior work (Table I)"],
        [(r.cascade, r.passes, r.exemplars) for r in rows],
    )


def main() -> None:
    print("Table I — attention algorithm taxonomy by pass count")
    print(render(run()))


if __name__ == "__main__":
    main()
