"""Figure 8: attention speedup over the unfused baseline.

Regenerates the speedup bars for FLAT and the three FuseMax configurations
across models and sequence lengths, plus the headline averages (the
paper: FuseMax averages 10× over unfused and 6.7× over FLAT).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..workloads.models import MODELS, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table, sweep_attention

BASELINE = "Unfused"


@dataclass(frozen=True)
class SpeedupRow:
    config: str
    model: str
    seq_len: int
    speedup: float


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[SpeedupRow]:
    results = sweep_attention(models, seq_lens, jobs=jobs, cache=cache)
    rows = []
    for (config, model, seq_len), result in results.items():
        base = results[(BASELINE, model, seq_len)]
        rows.append(
            SpeedupRow(
                config=config,
                model=model,
                seq_len=seq_len,
                speedup=base.latency_cycles / result.latency_cycles,
            )
        )
    return rows


def averages(rows: List[SpeedupRow]) -> Dict[str, float]:
    """Mean speedup per configuration over the whole grid."""
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        grouped.setdefault(row.config, []).append(row.speedup)
    return {config: statistics.mean(vals) for config, vals in grouped.items()}


def fusemax_vs_flat(rows: List[SpeedupRow]) -> float:
    """The paper's headline: mean FuseMax speedup relative to FLAT."""
    by_key = {(r.config, r.model, r.seq_len): r.speedup for r in rows}
    ratios = [
        by_key[("+Binding", model, seq)] / by_key[("FLAT", model, seq)]
        for (config, model, seq) in by_key
        if config == "+Binding"
    ]
    return statistics.mean(ratios)


def render(rows: List[SpeedupRow]) -> str:
    ordered = sorted(rows, key=lambda r: (r.model, r.seq_len, r.config))
    return format_table(
        ["model", "L", "config", "speedup"],
        [
            (r.model, seq_label(r.seq_len), r.config, f"{r.speedup:.2f}")
            for r in ordered
        ],
    )


def main(jobs: int = 1, cache: object = True) -> None:
    rows = run(jobs=jobs, cache=cache)
    print("Figure 8 — attention speedup over the unfused baseline")
    print(render(rows))
    for config, value in averages(rows).items():
        print(f"avg {config}: {value:.2f}x")
    print(f"FuseMax over FLAT: {fusemax_vs_flat(rows):.2f}x (paper: 6.7x)")


if __name__ == "__main__":
    main()
