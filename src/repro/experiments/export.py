"""Export experiment results to CSV files.

``python -m repro.experiments.export [outdir]`` writes one CSV per
table/figure plus a headline summary — the artifact-style output for
downstream plotting.
"""

from __future__ import annotations

import argparse
import csv
import os
from typing import Iterable, List, Sequence

from . import ablations, fig1b, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table1


def _write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all(outdir: str, jobs: int = 1, cache: object = True) -> List[str]:
    """Write every experiment's rows as CSV; returns the file paths."""
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []

    def emit(name, headers, rows):
        path = os.path.join(outdir, name)
        _write_csv(path, headers, rows)
        written.append(path)

    emit(
        "fig1b.csv",
        ["model", "seq_len", "attn", "linear", "other"],
        [(r.model, r.seq_len, r.attn, r.linear, r.other) for r in fig1b.run()],
    )
    emit(
        "table1.csv",
        ["cascade", "passes", "exemplars"],
        [(r.cascade, r.passes, r.exemplars) for r in table1.run()],
    )
    emit(
        "fig6.csv",
        ["config", "model", "seq_len", "util_1d", "util_2d"],
        [
            (r.config, r.model, r.seq_len, r.util_1d, r.util_2d)
            for r in fig6.run(jobs=jobs, cache=cache)
        ],
    )
    emit(
        "fig7.csv",
        ["config", "seq_len"] + list(fig7.GROUPS),
        [
            [r.config, r.seq_len] + [r.shares[g] for g in fig7.GROUPS]
            for r in fig7.run(jobs=jobs, cache=cache)
        ],
    )
    emit(
        "fig8.csv",
        ["config", "model", "seq_len", "speedup"],
        [(r.config, r.model, r.seq_len, r.speedup) for r in fig8.run(jobs=jobs, cache=cache)],
    )
    emit(
        "fig9.csv",
        ["config", "model", "seq_len", "normalized_energy"],
        [
            (r.config, r.model, r.seq_len, r.normalized_energy)
            for r in fig9.run(jobs=jobs, cache=cache)
        ],
    )
    emit(
        "fig10.csv",
        ["config", "model", "seq_len", "speedup"],
        [(r.config, r.model, r.seq_len, r.speedup) for r in fig10.run(jobs=jobs, cache=cache)],
    )
    emit(
        "fig11.csv",
        ["config", "model", "seq_len", "normalized_energy"],
        [
            (r.config, r.model, r.seq_len, r.normalized_energy)
            for r in fig11.run(jobs=jobs, cache=cache)
        ],
    )
    fig12_rows = []
    for result in fig12.run(jobs=jobs, cache=cache).values():
        for point in result.points:
            fig12_rows.append(
                (point.model, point.array_dim, point.area_cm2,
                 point.latency_seconds)
            )
    emit(
        "fig12.csv",
        ["model", "array_dim", "area_cm2", "latency_seconds"],
        fig12_rows,
    )
    emit(
        "ablation_divisions.csv",
        ["cascade", "divisions", "exps", "macc_equivalents"],
        [
            (r.cascade, r.divisions, r.exps, r.macc_equivalents)
            for r in ablations.division_reduction()
        ],
    )
    return written


def main(argv=None) -> int:
    # Imported here: the CLI module imports this package's siblings.
    from ..cli import _add_runtime_args, _make_cache

    parser = argparse.ArgumentParser(
        prog="repro-export", description="export experiment results as CSV"
    )
    parser.add_argument("outdir", nargs="?", default="results")
    _add_runtime_args(parser)
    args = parser.parse_args(argv)
    if args.cache_dir and not args.cache:
        parser.error("--cache-dir cannot be combined with --no-cache")
    paths = export_all(args.outdir, jobs=args.jobs, cache=_make_cache(args))
    for path in paths:
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
