"""Figure 9: attention energy relative to the unfused baseline.

Regenerates normalized energy for FLAT and the FuseMax configurations.
Paper headline: FuseMax uses 77% of the unfused baseline's energy and 79%
of FLAT's on attention.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence

from ..workloads.models import MODELS, ModelConfig, SEQUENCE_LENGTHS, seq_label
from .common import format_table, sweep_attention

BASELINE = "Unfused"


@dataclass(frozen=True)
class EnergyRow:
    config: str
    model: str
    seq_len: int
    normalized_energy: float  # relative to the unfused baseline
    compute_2d_fraction: float


def run(
    models: Sequence[ModelConfig] = MODELS,
    seq_lens: Sequence[int] = SEQUENCE_LENGTHS,
    *,
    jobs: int = 1,
    cache: object = True,
) -> List[EnergyRow]:
    results = sweep_attention(models, seq_lens, jobs=jobs, cache=cache)
    rows = []
    for (config, model, seq_len), result in results.items():
        base = results[(BASELINE, model, seq_len)]
        rows.append(
            EnergyRow(
                config=config,
                model=model,
                seq_len=seq_len,
                normalized_energy=result.energy_pj / base.energy_pj,
                compute_2d_fraction=result.energy.fraction("compute_2d"),
            )
        )
    return rows


def fusemax_vs_flat(rows: List[EnergyRow]) -> float:
    """Mean FuseMax energy relative to FLAT (paper: 0.79)."""
    by_key = {(r.config, r.model, r.seq_len): r.normalized_energy for r in rows}
    ratios = [
        by_key[("+Binding", model, seq)] / by_key[("FLAT", model, seq)]
        for (config, model, seq) in by_key
        if config == "+Binding"
    ]
    return statistics.mean(ratios)


def render(rows: List[EnergyRow]) -> str:
    ordered = sorted(rows, key=lambda r: (r.model, r.seq_len, r.config))
    return format_table(
        ["model", "L", "config", "energy vs unfused", "2D-compute frac"],
        [
            (r.model, seq_label(r.seq_len), r.config,
             f"{r.normalized_energy:.3f}", f"{r.compute_2d_fraction:.3f}")
            for r in ordered
        ],
    )


def main(jobs: int = 1, cache: object = True) -> None:
    rows = run(jobs=jobs, cache=cache)
    print("Figure 9 — attention energy relative to the unfused baseline")
    print(render(rows))
    print(f"FuseMax energy vs FLAT: {fusemax_vs_flat(rows):.2f} (paper: 0.79)")


if __name__ == "__main__":
    main()
