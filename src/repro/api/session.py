"""The Session façade: one executor/cache/registry behind every request.

A :class:`Session` owns the execution policy — worker count, result
cache, run registry — and exposes exactly two ways to evaluate:

- :meth:`Session.run` — one request, one :class:`Result`;
- :meth:`Session.submit` / :meth:`Session.gather` — batch heterogeneous
  requests, pool every lowerable grid point into a *single* pass through
  the parallel runtime, and hand back one ``Result`` per request.

Every ``Result`` wraps its payload in a :class:`Provenance` envelope:
cache hit/miss deltas, the code version that computed it, wall time, and
the registry run id/digest when the session records runs.  Parallelism
and caching never change payloads — the same guarantee the runtime makes
for grid points holds for whole requests.
"""

from __future__ import annotations

import contextlib
import io
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..runtime import (
    ON_ERROR_MODES,
    ExecutionOutcome,
    FaultPlan,
    RetryPolicy,
    RunRegistry,
    execute_tasks,
)
from ..runtime import executor as _runtime
from ..runtime.cache import ResultCache, code_version, resolve_cache
from ..simulator.sweep import (
    evaluate_binding_point,
    evaluate_scenario_point,
    profile_scenario_point,
)
from ..workloads.models import MODELS, MODELS_BY_NAME, SEQUENCE_LENGTHS
from .requests import (
    BindingSweepRequest,
    ClusterRequest,
    CrosscheckRequest,
    ExperimentRequest,
    Request,
    ScenarioGridRequest,
    ScenarioRequest,
    ServeRequest,
)

#: Experiments whose drivers run a grid through the runtime (and so
#: accept ``jobs``/``cache``); the rest are cheap and stay serial.
GRID_EXPERIMENTS = ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12")


@dataclass(frozen=True)
class Provenance:
    """How a payload came to be: enough to audit or reproduce it."""

    kind: str
    code_version: str
    wall_time_s: float
    jobs: int
    cached: bool
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    run_id: Optional[str] = None
    result_digest: Optional[str] = None
    recorded_duration_s: Optional[float] = None
    batched: bool = False
    #: Fault-handling telemetry (None for requests that don't run
    #: through the pooled executor): total task attempts, tasks that
    #: exhausted retries under ``on_error="skip"``, tasks that succeeded
    #: after at least one failed attempt.
    attempts: Optional[int] = None
    failures: Optional[int] = None
    recovered: Optional[int] = None
    #: Per-scenario wall-time breakdowns (``ScenarioRequest.profile``
    #: runs only): build vs schedule seconds for each scenario, in
    #: payload order.  Timing is observability, not part of the payload,
    #: so it rides in provenance like the cache and fault telemetry.
    profiles: Optional[Tuple[Any, ...]] = None


@dataclass(frozen=True)
class Result:
    """Uniform response envelope: the request, its payload, provenance."""

    request: Request
    payload: Any
    provenance: Provenance


def _binding_tasks(request: BindingSweepRequest) -> List[Any]:
    """The runtime tasks of one binding sweep — always derived through
    :func:`repro.runtime.executor.binding_grid` so every path (event,
    cycle oracle, pooled gather) shares one grid order and dedup."""
    return _runtime.binding_grid(
        request.chunks,
        request.bindings,
        request.array_dims,
        request.embeddings,
        request.pe_1d_dims,
        engine=request.engine,
    )


def _point_key(point: Any) -> tuple:
    """The documented result key of :func:`sweep_bindings` rows."""
    return (point.binding, point.chunks, point.array_dim, point.resolved_pe_1d, point.embedding)


def _experiment_modules() -> Dict[str, Any]:
    """Name → experiment driver module (imported lazily: the experiment
    drivers themselves build requests through this package)."""
    from ..experiments import (
        ablations,
        fig1b,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        fig12,
        table1,
    )

    return {
        "ablations": ablations,
        "fig1b": fig1b,
        "fig6": fig6,
        "fig7": fig7,
        "fig8": fig8,
        "fig9": fig9,
        "fig10": fig10,
        "fig11": fig11,
        "fig12": fig12,
        "table1": table1,
    }


class Session:
    """Evaluation façade owning the executor, cache, and registry.

    ``cache`` accepts the runtime vocabulary (``True`` for the shared
    process cache, ``False`` for none, or a
    :class:`~repro.runtime.cache.ResultCache`); ``cache_dir`` persists
    results under a directory (implies caching).  ``registry`` is a
    directory path or :class:`~repro.runtime.registry.RunRegistry`;
    when set, every runtime-backed request leaves a structured run
    record and its id/digest surface in the result's provenance.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Any = True,
        cache_dir: Optional[Union[str, Path]] = None,
        registry: Optional[Union[str, Path, RunRegistry]] = None,
        retry: Optional[RetryPolicy] = None,
        on_error: str = "raise",
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if cache_dir is not None:
            if cache is False or cache is None:
                raise ValueError("cache_dir cannot be combined with cache=False")
            cache = ResultCache(directory=cache_dir)
        if retry is not None:
            retry.validate()
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.jobs = jobs
        self._store = resolve_cache(cache)
        self.registry = (
            registry if isinstance(registry, (RunRegistry, type(None)))
            else RunRegistry(registry)
        )
        self.retry = retry
        self.on_error = on_error
        self.faults = faults
        self._pending: List[Request] = []
        self._last_outcome: Optional[ExecutionOutcome] = None
        self._last_profiles: Optional[Tuple[Any, ...]] = None

    # -- identity ----------------------------------------------------------

    @property
    def version(self) -> str:
        """The package version serving this session (from the installed
        distribution metadata; see ``repro --version``)."""
        return __version__

    @property
    def cache(self) -> Optional[ResultCache]:
        """The session's result cache (None when caching is off)."""
        return self._store

    def _cache_arg(self) -> Any:
        """The session cache in the runtime's argument vocabulary."""
        return self._store if self._store is not None else False

    # -- single-request execution ------------------------------------------

    def run(self, request: Request) -> Result:
        """Validate and evaluate one request."""
        request.validate()
        start = time.perf_counter()
        before = self._store.stats.as_dict() if self._store is not None else None
        record_before = self.registry.last_recorded if self.registry else None
        self._last_outcome = None
        self._last_profiles = None
        payload = self._dispatch(request)
        return Result(
            request=request,
            payload=payload,
            provenance=self._provenance(
                request, start, before, record_before, outcome=self._last_outcome
            ),
        )

    def _provenance(
        self,
        request,
        start,
        before,
        record_before,
        batched: bool = False,
        outcome: Optional[ExecutionOutcome] = None,
    ) -> Provenance:
        hits = misses = None
        if before is not None:
            after = self._store.stats.as_dict()
            hits = (
                after["memory_hits"]
                + after["disk_hits"]
                - before["memory_hits"]
                - before["disk_hits"]
            )
            misses = after["misses"] - before["misses"]
        record = self.registry.last_recorded if self.registry else None
        if record is record_before:
            record = None  # this request recorded nothing new
        return Provenance(
            kind=request.KIND,
            code_version=code_version(),
            wall_time_s=time.perf_counter() - start,
            jobs=self.jobs,
            cached=self._store is not None,
            cache_hits=hits,
            cache_misses=misses,
            run_id=record.run_id if record else None,
            result_digest=record.result_digest if record else None,
            recorded_duration_s=record.duration_s if record else None,
            batched=batched,
            attempts=outcome.attempts if outcome else None,
            failures=len(outcome.failures) if outcome else None,
            recovered=outcome.recovered if outcome else None,
            profiles=self._last_profiles,
        )

    def _execute_recorded(self, kind: str, tasks: List[Any]) -> ExecutionOutcome:
        """One pooled pass under the session's fault policy, recorded to
        the registry (with its health summary) when one is configured."""
        start = time.perf_counter()
        before = self._store.stats.as_dict() if self._store is not None else None
        outcome = execute_tasks(
            tasks,
            jobs=self.jobs,
            cache=self._cache_arg(),
            retry=self.retry,
            on_error=self.on_error,
            faults=self.faults,
        )
        if self.registry is not None:
            delta = None
            if before is not None:
                after = self._store.stats.as_dict()
                delta = {name: after[name] - before[name] for name in after}
            self.registry.record(
                kind=kind,
                tasks=tasks,
                results=outcome.results,
                duration_s=time.perf_counter() - start,
                jobs=self.jobs,
                cache_stats=delta,
                health=outcome.health(),
            )
        self._last_outcome = outcome
        return outcome

    #: Registry record kind for each request type the pooled executor
    #: serves directly (matching the historical sweep_* record kinds).
    _REGISTRY_KINDS = {
        BindingSweepRequest: "binding",
        ScenarioRequest: "scenario",
        ScenarioGridRequest: "scenario_grid",
        ServeRequest: "serve",
        ClusterRequest: "cluster",
    }

    def _dispatch(self, request: Request) -> Any:
        lowered = self._lower(request)
        if lowered is not None:
            tasks, assemble = lowered
            outcome = self._execute_recorded(
                self._REGISTRY_KINDS[type(request)], tasks
            )
            return assemble(outcome.results)
        if isinstance(request, ExperimentRequest):
            return self._run_experiment(request)
        if isinstance(request, BindingSweepRequest):
            return self._run_binding_sweep(request)
        if isinstance(request, ScenarioRequest):
            return self._run_scenario(request)
        if isinstance(request, ClusterRequest):
            # engine="cycle": the differential oracle runs serial and
            # uncached, mirroring the binding/scenario cycle paths.
            from ..cluster import evaluate_cluster_point

            return [
                evaluate_cluster_point(point, engine="cycle")
                for point in request.build_points()
            ]
        if isinstance(request, CrosscheckRequest):
            from ..experiments.crosscheck import crosscheck

            return crosscheck(
                request.scenarios,
                tolerance=request.tolerance,
                bandwidth=request.bandwidth,
                capacity=request.capacity,
                cluster=request.cluster,
                jobs=self.jobs,
                cache=self._cache_arg(),
                registry=self.registry,
            )
        raise TypeError(f"unknown request type {type(request).__name__}")

    def _run_experiment(self, request: ExperimentRequest) -> Any:
        if request.name == "report":
            from ..experiments.report import full_report

            return full_report(jobs=self.jobs, cache=self._cache_arg())
        if request.name == "sweep":
            sweep = {
                "attention": _runtime.sweep_attention,
                "inference": _runtime.sweep_inference,
            }[request.resolved_kind]
            models = (
                MODELS
                if request.models is None
                else tuple(MODELS_BY_NAME[name] for name in request.models)
            )
            seq_lens = SEQUENCE_LENGTHS if request.seq_lens is None else request.seq_lens
            return sweep(
                models,
                seq_lens,
                jobs=self.jobs,
                cache=self._cache_arg(),
                registry=self.registry,
                retry=self.retry,
                on_error=self.on_error,
                faults=self.faults,
            )
        # Figure/table drivers print their tables; the captured text is
        # the payload, so the CLI adapter stays byte-identical to the
        # drivers' historical stdout.
        module = _experiment_modules()[request.name]
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            if request.name in GRID_EXPERIMENTS:
                module.main(jobs=self.jobs, cache=self._cache_arg())
            else:
                module.main()
        return buffer.getvalue()

    def _run_binding_sweep(self, request: BindingSweepRequest) -> Dict:
        if request.engine == "cycle":
            # Differential oracle runs stay serial and uncached, so a
            # cached event result can never masquerade as a cycle run.
            return {
                _point_key(task.config): evaluate_binding_point(task.config, engine="cycle")
                for task in _binding_tasks(request)
            }
        return _runtime.sweep_bindings(
            request.chunks,
            request.bindings,
            request.array_dims,
            embeddings=request.embeddings,
            pe_1d_dims=request.pe_1d_dims,
            jobs=self.jobs,
            cache=self._cache_arg(),
            registry=self.registry,
            engine=request.engine,
        )

    def _run_scenario(self, request: ScenarioRequest) -> Dict:
        scenarios = request.build_scenarios()
        if request.profile:
            # Profiling is a measurement of *this* process doing the
            # work, so it runs inline — no workers, no cache — and the
            # timings ride back in the Result's provenance.
            payload: Dict = {}
            profiles = []
            for scenario in scenarios:
                result, prof = profile_scenario_point(scenario, engine=request.engine)
                payload[scenario] = result
                profiles.append(prof)
            self._last_profiles = tuple(profiles)
            return payload
        if request.engine == "cycle":
            return {s: evaluate_scenario_point(s, engine="cycle") for s in scenarios}
        return _runtime.sweep_scenarios(
            scenarios,
            jobs=self.jobs,
            cache=self._cache_arg(),
            registry=self.registry,
            engine=request.engine,
        )

    # -- batched heterogeneous execution -----------------------------------

    def submit(self, request: Request) -> int:
        """Queue a request for :meth:`gather`; returns its index."""
        request.validate()
        self._pending.append(request)
        return len(self._pending) - 1

    def _lower(self, request: Request) -> Optional[Tuple[List[Any], Callable[[List[Any]], Any]]]:
        """(tasks, assemble) for requests that decompose into runtime
        tasks, or None for the ones that must run whole."""
        if isinstance(request, BindingSweepRequest) and request.engine != "cycle":
            tasks = _binding_tasks(request)
            points = [task.config for task in tasks]

            def assemble_bindings(results: List[Any]) -> Dict:
                return {_point_key(p): r for p, r in zip(points, results)}

            return tasks, assemble_bindings
        if (
            isinstance(request, ScenarioRequest)
            and request.engine != "cycle"
            and not request.profile
        ):
            scenarios = request.build_scenarios()
            tasks = _runtime.scenario_grid(scenarios, engine=request.engine)

            def assemble_scenarios(results: List[Any]) -> Dict:
                return dict(zip(scenarios, results))

            return tasks, assemble_scenarios
        if isinstance(request, ScenarioGridRequest):
            return _runtime.scenario_grid_tasks(request.cells()), list
        if isinstance(request, ClusterRequest) and request.engine != "cycle":
            return _runtime.cluster_grid(
                request.build_points(), engine=request.engine
            ), list
        if isinstance(request, ServeRequest):
            tasks = _runtime.serving_grid([request.build_spec()], engine=request.engine)

            def assemble_serving(results: List[Any]) -> Any:
                return results[0]

            return tasks, assemble_serving
        return None

    def gather(self) -> List[Result]:
        """Evaluate every submitted request and clear the queue.

        All lowerable requests' grid points pool into **one** pass
        through the parallel runtime — a heterogeneous mix of binding
        points, scenario schedules, and grid cells fans out over the
        same workers and shares the cache.  Non-lowerable requests
        (experiments, crosschecks, cycle-oracle runs) evaluate after the
        pooled batch, in submission order.  Batched provenance reports
        the pooled pass's wall time and cache deltas on every pooled
        result.
        """
        pending, self._pending = self._pending, []
        self._last_profiles = None
        lowered = [self._lower(request) for request in pending]
        pooled = [
            (i, tasks, assemble)
            for i, entry in enumerate(lowered)
            if entry is not None
            for tasks, assemble in [entry]
        ]
        results: List[Optional[Result]] = [None] * len(pending)
        if pooled:
            start = time.perf_counter()
            before = self._store.stats.as_dict() if self._store is not None else None
            record_before = self.registry.last_recorded if self.registry else None
            all_tasks = [task for _, tasks, _ in pooled for task in tasks]
            outcome = self._execute_recorded("batch", all_tasks)
            flat = outcome.results
            offset = 0
            for i, tasks, assemble in pooled:
                slice_ = flat[offset : offset + len(tasks)]
                offset += len(tasks)
                results[i] = Result(
                    request=pending[i],
                    payload=assemble(slice_),
                    provenance=self._provenance(
                        pending[i],
                        start,
                        before,
                        record_before,
                        batched=True,
                        outcome=outcome,
                    ),
                )
        for i, request in enumerate(pending):
            if results[i] is None:
                results[i] = self.run(request)
        return list(results)
