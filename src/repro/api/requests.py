"""Typed request specs: what to evaluate, declared as frozen dataclasses.

Each request class describes one evaluation the reproduction can run —
a figure/report regeneration, an evaluation-grid sweep, a long-sequence
binding sweep, a merged multi-instance scenario schedule, a scenario
*grid* over models × batch × heads × decode-instances, a sharded
multi-chip cluster sweep, or the simulated-vs-analytical crosscheck.
Requests are:

- **declarative** — fields name workload axes, never execution knobs
  (``jobs``/``cache``/``registry`` belong to the
  :class:`~repro.api.session.Session` that runs the request);
- **validated** — :meth:`Request.validate` collects every rule
  violation at once (the rules formerly sprawled across the CLI's
  cross-flag checks) and raises :class:`RequestValidationError`;
- **content-addressed** — :meth:`Request.signature` digests every field
  through the runtime's canonical encoding, and a field-walk test
  asserts no field can silently escape it.

The CLI, the experiment drivers, and the examples all build these
requests and hand them to a ``Session``; nothing else reaches the
runtime directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Tuple

from ..cluster import (
    SHARDINGS,
    TOPOLOGIES,
    ClusterPoint,
    ClusterSpec,
    shard_config,
)
from ..serving import Arrival, ServingSpec, check_sorted, poisson_arrivals
from ..simulator.sweep import (
    DEFAULT_SWEEP_ARRAY_DIMS,
    DEFAULT_SWEEP_CHUNKS,
    ScenarioGridCell,
)
from ..workloads.models import BATCH_SIZE, MODELS_BY_NAME
from ..workloads.scenario import (
    BINDINGS,
    QOS_MODES,
    Scenario,
    attention_scenario,
    mixed_model_scenario,
    scenario_from_model,
)

#: Engines a simulation request may name.  ``"cycle"`` selects the
#: cycle-accurate oracle — always serial and uncached, so a cached event
#: result can never masquerade as a differential run.  ``"vector"`` is
#: the vectorized core with symmetry folding, bit-identical to both.
ENGINES: Tuple[str, ...] = ("event", "cycle", "vector")

#: Figure/table experiments a :class:`ExperimentRequest` can name, plus
#: the two composite names: ``report`` (everything) and ``sweep`` (one
#: evaluation grid with explicit axes).
EXPERIMENT_NAMES: Tuple[str, ...] = (
    "report",
    "sweep",
    "ablations",
    "fig1b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
)

#: Evaluation-grid kinds of the ``sweep`` experiment.
GRID_KINDS: Tuple[str, ...] = ("attention", "inference")


class RequestValidationError(ValueError):
    """One or more request fields break the request's rules.

    ``errors`` lists every violation (not just the first), mirroring the
    old CLI behaviour of reporting all misused flags at once.
    """

    def __init__(self, errors: List[str]) -> None:
        self.errors = tuple(errors)
        super().__init__("; ".join(self.errors))


def _positive(errors: List[str], name: str, value: Optional[int]) -> None:
    if value is not None and value < 1:
        errors.append(f"{name} must be >= 1, got {value}")


def _positive_bandwidth(errors: List[str], value: Optional[float]) -> None:
    if value is not None and not value > 0:
        errors.append(f"dram_bw must be > 0, got {value}")


def _buffer_qos(
    errors: List[str],
    buffer_bytes: Optional[float],
    qos: str,
    dram_bw: Optional[float],
) -> None:
    if buffer_bytes is not None and not buffer_bytes > 0:
        errors.append(f"buffer_bytes must be > 0, got {buffer_bytes}")
    if buffer_bytes is not None and dram_bw is None:
        errors.append(
            "buffer_bytes requires dram_bw (spill traffic is priced on "
            "the shared memory link)"
        )
    if qos not in QOS_MODES:
        errors.append(f"unknown qos {qos!r}; have {QOS_MODES}")


def _positive_axis(errors: List[str], name: str, values: Tuple) -> None:
    if not values:
        errors.append(f"{name} must name at least one value")
    elif any(v is not None and v < 1 for v in values):
        errors.append(f"{name} values must be >= 1, got {list(values)}")


def _known_models(errors: List[str], names: Tuple[str, ...]) -> None:
    for name in names:
        if name not in MODELS_BY_NAME:
            errors.append(f"unknown model {name!r}; have {sorted(MODELS_BY_NAME)}")


@dataclass(frozen=True)
class Request:
    """Base request: validation protocol + content signature."""

    #: Request kind tag (mirrors the runtime task-kind vocabulary).
    KIND = "request"

    def rule_violations(self) -> List[str]:
        """Every rule this request breaks (empty when valid)."""
        return []

    def validate(self) -> None:
        """Raise :class:`RequestValidationError` unless the spec is
        coherent; collects *all* violations before raising."""
        errors = self.rule_violations()
        if errors:
            raise RequestValidationError(errors)

    def signature(self) -> str:
        """Stable content address over the request kind and every field.

        This is the request-level analogue of the runtime's task
        fingerprint: equal requests share a signature, and any field
        mutation must change it (enforced by a field-walk test)."""
        from ..runtime.cache import cache_key

        payload = {"__request__": self.KIND}
        for field_ in fields(self):
            payload[field_.name] = getattr(self, field_.name)
        return cache_key(payload, version="request")


@dataclass(frozen=True)
class ExperimentRequest(Request):
    """Regenerate a figure/table, the full report, or one evaluation grid.

    ``name`` selects the experiment (:data:`EXPERIMENT_NAMES`); the grid
    axes (``kind``, ``models``, ``seq_lens``) apply only to
    ``name="sweep"``, where ``None`` means the figure defaults (all four
    models, 1K…1M).
    """

    KIND = "experiment"

    name: str = "report"
    kind: Optional[str] = None
    models: Optional[Tuple[str, ...]] = None
    seq_lens: Optional[Tuple[int, ...]] = None

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        if self.name not in EXPERIMENT_NAMES:
            errors.append(f"unknown experiment {self.name!r}; have {EXPERIMENT_NAMES}")
        if self.kind is not None and self.kind not in GRID_KINDS:
            errors.append(f"unknown sweep kind {self.kind!r}; have {GRID_KINDS}")
        if self.name != "sweep":
            errors.extend(
                f"{field_} applies to the 'sweep' experiment only"
                for field_, given in (
                    ("kind", self.kind is not None),
                    ("models", self.models is not None),
                    ("seq_lens", self.seq_lens is not None),
                )
                if given
            )
        if self.models is not None:
            _known_models(errors, self.models)
        if self.seq_lens is not None:
            _positive_axis(errors, "seq_lens", self.seq_lens)
        return errors

    @property
    def resolved_kind(self) -> str:
        return "attention" if self.kind is None else self.kind


@dataclass(frozen=True)
class BindingSweepRequest(Request):
    """Long-sequence binding simulation over independent axes.

    The grid is chunks × bindings × array dims × 1D lanes × embeddings
    (one :class:`~repro.simulator.sweep.BindingResult` row per distinct
    point); a single-point request with ``engine="cycle"`` is the
    differential one-shot the CLI's ``repro simulate`` comparison runs.
    """

    KIND = "binding"

    chunks: Tuple[int, ...] = DEFAULT_SWEEP_CHUNKS
    bindings: Tuple[str, ...] = BINDINGS
    array_dims: Tuple[int, ...] = DEFAULT_SWEEP_ARRAY_DIMS
    embeddings: Tuple[int, ...] = (64,)
    pe_1d_dims: Tuple[Optional[int], ...] = (None,)
    engine: str = "event"

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        _positive_axis(errors, "chunks", self.chunks)
        _positive_axis(errors, "array_dims", self.array_dims)
        _positive_axis(errors, "embeddings", self.embeddings)
        _positive_axis(errors, "pe_1d_dims", self.pe_1d_dims)
        if not self.bindings:
            errors.append("bindings must name at least one binding")
        errors.extend(
            f"unknown binding {binding!r}; have {BINDINGS}"
            for binding in self.bindings
            if binding not in BINDINGS
        )
        if self.engine not in ENGINES:
            errors.append(f"unknown engine {self.engine!r}; have {ENGINES}")
        return errors


@dataclass(frozen=True)
class ScenarioRequest(Request):
    """Merged multi-(batch, head) schedules, one per requested binding.

    Either ``scenarios`` lists explicit :class:`Scenario` specs, or the
    shape fields derive them: ``model`` (with ``batch``/``heads``) builds
    the ``B × H`` scenario of a workload model, ``mixed_models`` one
    merged schedule spanning several models' embedding widths, and
    ``instances`` an explicit count — mutually exclusive, exactly as the
    CLI flags were.  ``dram_bw`` (bytes/cycle) adds the shared memory
    link every instance's transfers contend for; ``buffer_bytes``
    bounds the on-chip buffer (working-set overflow spills extra DRAM
    traffic) and ``qos`` picks the link's arbitration policy.  ``None``
    fields take the CLI's historical defaults at build time, so the
    request records what was *asked*, not what was defaulted.
    """

    KIND = "scenario"

    model: Optional[str] = None
    batch: Optional[int] = None
    heads: Optional[int] = None
    instances: Optional[int] = None
    mixed_models: Optional[Tuple[str, ...]] = None
    chunks: Optional[int] = None
    array_dim: Optional[int] = None
    pe_1d: Optional[int] = None
    slots: Optional[int] = None
    decode_instances: int = 0
    decode_chunks: Optional[int] = None
    dram_bw: Optional[float] = None
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"
    binding: str = "both"
    engine: str = "event"
    profile: bool = False
    scenarios: Optional[Tuple[Scenario, ...]] = None

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        spec_fields = (
            ("model", self.model is not None),
            ("batch", self.batch is not None),
            ("heads", self.heads is not None),
            ("instances", self.instances is not None),
            ("mixed_models", self.mixed_models is not None),
            ("chunks", self.chunks is not None),
            ("array_dim", self.array_dim is not None),
            ("pe_1d", self.pe_1d is not None),
            ("slots", self.slots is not None),
            ("decode_instances", self.decode_instances != 0),
            ("decode_chunks", self.decode_chunks is not None),
            ("dram_bw", self.dram_bw is not None),
            ("buffer_bytes", self.buffer_bytes is not None),
            ("qos", self.qos != "uniform"),
            ("binding", self.binding != "both"),
        )
        if self.scenarios is not None:
            errors.extend(
                f"scenarios is mutually exclusive with {field_}"
                for field_, given in spec_fields
                if given
            )
            if not self.scenarios:
                errors.append("scenarios must name at least one scenario")
        if self.model is not None and self.instances is not None:
            errors.append(
                "instances and model are mutually exclusive (model "
                "derives the instance count from batch/heads)"
            )
        if self.mixed_models is not None:
            errors.extend(
                f"mixed_models and {field_} are mutually exclusive"
                for field_, given in (("model", self.model is not None),
                                      ("instances", self.instances is not None))
                if given
            )
            if not self.mixed_models:
                errors.append("mixed_models must name at least one model")
            _known_models(errors, self.mixed_models)
        if self.model is None and self.mixed_models is None:
            errors.extend(
                f"{field_} requires model or mixed_models "
                "(use instances for an explicit count)"
                for field_, given in (("batch", self.batch is not None),
                                      ("heads", self.heads is not None))
                if given
            )
        elif self.model is not None and self.model not in MODELS_BY_NAME:
            errors.append(f"unknown model {self.model!r}; have {sorted(MODELS_BY_NAME)}")
        if self.decode_chunks is not None and not self.decode_instances:
            errors.append("decode_chunks requires decode_instances")
        _positive_bandwidth(errors, self.dram_bw)
        _buffer_qos(errors, self.buffer_bytes, self.qos, self.dram_bw)
        if self.binding not in ("both",) + BINDINGS:
            errors.append(f"unknown binding {self.binding!r}; have {('both',) + BINDINGS}")
        if self.binding == "tile-serial" and self.slots is not None:
            # The serial discipline issues one task per resource; slots
            # only parameterize the interleaved round-robin.
            errors.append("slots applies to the interleaved binding only")
        if self.engine not in ENGINES:
            errors.append(f"unknown engine {self.engine!r}; have {ENGINES}")
        for name in (
            "batch",
            "heads",
            "instances",
            "chunks",
            "array_dim",
            "pe_1d",
            "slots",
            "decode_chunks",
        ):
            _positive(errors, name, getattr(self, name))
        if self.decode_instances < 0:
            errors.append(f"decode_instances must be >= 0, got {self.decode_instances}")
        return errors

    def build_scenarios(self) -> Tuple[Scenario, ...]:
        """The scenario list this request describes (one per binding),
        with the CLI's historical defaults filled in."""
        if self.scenarios is not None:
            return self.scenarios
        bindings = BINDINGS if self.binding == "both" else (self.binding,)
        batch = BATCH_SIZE if self.batch is None else self.batch
        slots = 2 if self.slots is None else self.slots
        chunks = 32 if self.chunks is None else self.chunks
        array_dim = 256 if self.array_dim is None else self.array_dim
        built = []
        for binding in bindings:
            if self.mixed_models is not None:
                built.append(
                    mixed_model_scenario(
                        self.mixed_models,
                        chunks,
                        batch=1 if self.batch is None else self.batch,
                        heads=self.heads,
                        binding=binding,
                        array_dim=array_dim,
                        pe_1d=self.pe_1d,
                        slots=slots,
                        decode_instances=self.decode_instances,
                        decode_chunks=self.decode_chunks,
                        dram_bw=self.dram_bw,
                        buffer_bytes=self.buffer_bytes,
                        qos=self.qos,
                    )
                )
            elif self.model is not None:
                built.append(
                    scenario_from_model(
                        MODELS_BY_NAME[self.model],
                        chunks * array_dim,
                        batch=batch,
                        heads=self.heads,
                        binding=binding,
                        array_dim=array_dim,
                        pe_1d=self.pe_1d,
                        slots=slots,
                        decode_instances=self.decode_instances,
                        decode_chunks=self.decode_chunks,
                        dram_bw=self.dram_bw,
                        buffer_bytes=self.buffer_bytes,
                        qos=self.qos,
                    )
                )
            else:
                instances = 4 if self.instances is None else self.instances
                built.append(
                    attention_scenario(
                        instances,
                        chunks,
                        binding=binding,
                        array_dim=array_dim,
                        pe_1d=self.pe_1d,
                        slots=slots,
                        decode_instances=self.decode_instances,
                        decode_chunks=self.decode_chunks,
                        dram_bw=self.dram_bw,
                        buffer_bytes=self.buffer_bytes,
                        qos=self.qos,
                    )
                )
        return tuple(built)


@dataclass(frozen=True)
class ScenarioGridRequest(Request):
    """A first-class sweep over models × batch × heads × decode-instances.

    Every combination of the four axes (× bindings) becomes one cached
    grid cell — a full merged-schedule simulation joined with its
    analytical estimate.  ``heads`` axis entries may be ``None`` (use
    each model's own head count).  ``extra_scenarios`` appends explicit
    heterogeneous cells — e.g.
    :func:`repro.workloads.scenario.heterogeneous_scenario` mixes with
    per-instance unequal chunk counts — that no (model, batch, heads)
    coordinate can express.
    """

    KIND = "scenario_grid"

    models: Tuple[str, ...] = ("BERT",)
    batches: Tuple[int, ...] = (1,)
    heads: Tuple[Optional[int], ...] = (None,)
    decode_instances: Tuple[int, ...] = (0,)
    chunks: int = 32
    decode_chunks: Optional[int] = None
    bindings: Tuple[str, ...] = ("interleaved",)
    array_dim: int = 256
    pe_1d: Optional[int] = None
    slots: Optional[int] = None
    dram_bw: Optional[float] = None
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"
    extra_scenarios: Tuple[Scenario, ...] = ()

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        if not self.models and not self.extra_scenarios:
            errors.append("grid needs at least one model or extra scenario")
        if self.models:
            _known_models(errors, self.models)
            _positive_axis(errors, "batches", self.batches)
            _positive_axis(errors, "heads", self.heads)
            if not self.decode_instances:
                errors.append("decode_instances must name at least one count")
            elif any(d < 0 for d in self.decode_instances):
                errors.append(
                    "decode_instances values must be >= 0, got "
                    f"{list(self.decode_instances)}"
                )
            if not self.bindings:
                errors.append("bindings must name at least one binding")
            errors.extend(
                f"unknown binding {binding!r}; have {BINDINGS}"
                for binding in self.bindings
                if binding not in BINDINGS
            )
        if set(self.bindings) == {"tile-serial"} and self.slots is not None:
            errors.append("slots applies to the interleaved binding only")
        if self.decode_chunks is not None and not any(self.decode_instances):
            errors.append("decode_chunks requires a nonzero decode_instances")
        for name in ("chunks", "array_dim", "pe_1d", "slots", "decode_chunks"):
            _positive(errors, name, getattr(self, name))
        _positive_bandwidth(errors, self.dram_bw)
        _buffer_qos(errors, self.buffer_bytes, self.qos, self.dram_bw)
        return errors

    def cells(self) -> Tuple[ScenarioGridCell, ...]:
        """Every cell of the grid, in axis order (models outermost,
        bindings innermost), then the heterogeneous extras."""
        slots = 2 if self.slots is None else self.slots
        built = []
        for name in self.models:
            model = MODELS_BY_NAME[name]
            for batch in self.batches:
                for heads in self.heads:
                    for decode in self.decode_instances:
                        for binding in self.bindings:
                            scenario = scenario_from_model(
                                model,
                                self.chunks * self.array_dim,
                                batch=batch,
                                heads=heads,
                                binding=binding,
                                array_dim=self.array_dim,
                                pe_1d=self.pe_1d,
                                slots=slots,
                                decode_instances=decode,
                                decode_chunks=self.decode_chunks,
                                dram_bw=self.dram_bw,
                                buffer_bytes=self.buffer_bytes,
                                qos=self.qos,
                            )
                            built.append(
                                ScenarioGridCell(
                                    scenario=scenario,
                                    model=name,
                                    batch=batch,
                                    heads=(model.n_heads if heads is None else heads),
                                    decode=decode,
                                )
                            )
        built.extend(
            ScenarioGridCell(
                scenario=scenario,
                model=scenario.model,
                batch=None,
                heads=None,
                decode=sum(p.instances for p in scenario.phases if p.kind == "decode"),
            )
            for scenario in self.extra_scenarios
        )
        return tuple(built)


@dataclass(frozen=True)
class ServeRequest(Request):
    """One open-loop serving simulation: arrivals against one array.

    Exactly one of ``rate`` (a seeded Poisson process at that many
    requests per kilocycle) and ``trace`` (an explicit replayable
    arrival tuple) supplies the workload.  ``duration``, ``seed``,
    ``chunks``, and ``decode_tokens`` shape the generated process and
    apply to rate-driven serving only — a trace carries its own times
    and shapes.  ``max_inflight`` is the continuous-batching admission
    window and ``deadline`` the SLO (cycles from arrival to last token)
    that goodput is measured against.  ``chips`` spreads requests over a
    cluster of identical arrays (request parallelism, round-robin by
    arrival order), with ``link_bw``/``link_latency`` pricing each
    request's prefill-output gather on the shared interconnect.
    ``buffer_bytes``/``qos`` model the on-chip buffer and the memory
    link's arbitration policy (``"decode-first"`` protects in-flight
    token gaps under a prefill burst), exactly as
    :class:`~repro.serving.ServingSpec` documents.  ``None`` fields
    take the CLI's historical defaults at build time, so the request
    records what was *asked*, not what was defaulted.
    """

    KIND = "serve"

    rate: Optional[float] = None
    duration: Optional[int] = None
    seed: Optional[int] = None
    trace: Optional[Tuple[Arrival, ...]] = None
    chunks: Optional[int] = None
    decode_tokens: Optional[int] = None
    max_inflight: Optional[int] = None
    deadline: Optional[int] = None
    binding: str = "interleaved"
    embedding: Optional[int] = None
    array_dim: Optional[int] = None
    pe_1d: Optional[int] = None
    slots: Optional[int] = None
    dram_bw: Optional[float] = None
    buffer_bytes: Optional[float] = None
    qos: str = "uniform"
    chips: Optional[int] = None
    link_bw: Optional[float] = None
    link_latency: Optional[int] = None
    engine: str = "event"

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        if (self.rate is None) == (self.trace is None):
            errors.append("exactly one of rate and trace must be given")
        if self.engine == "cycle":
            # Serving batches re-simulate per admission window; the
            # serial oracle is a differential tool, not a serving core.
            errors.append("serve supports engines ('event', 'vector')")
        elif self.engine not in ENGINES:
            errors.append(f"unknown engine {self.engine!r}; have {ENGINES}")
        if self.rate is not None and not self.rate > 0:
            errors.append(f"rate must be > 0, got {self.rate}")
        if self.trace is not None:
            errors.extend(
                f"{field_} applies to rate-driven serving only"
                for field_, given in (
                    ("duration", self.duration is not None),
                    ("seed", self.seed is not None),
                    ("chunks", self.chunks is not None),
                    ("decode_tokens", self.decode_tokens is not None),
                )
                if given
            )
            if not self.trace:
                errors.append("trace must name at least one arrival")
            try:
                check_sorted(self.trace)
            except ValueError as exc:
                errors.append(str(exc))
        if self.binding not in BINDINGS:
            errors.append(f"unknown binding {self.binding!r}; have {BINDINGS}")
        if self.binding == "tile-serial" and self.slots is not None:
            errors.append("slots applies to the interleaved binding only")
        if self.seed is not None and self.seed < 0:
            errors.append(f"seed must be >= 0, got {self.seed}")
        if self.decode_tokens is not None and self.decode_tokens < 0:
            errors.append(f"decode_tokens must be >= 0, got {self.decode_tokens}")
        for name in (
            "duration",
            "chunks",
            "max_inflight",
            "deadline",
            "embedding",
            "array_dim",
            "pe_1d",
            "slots",
            "chips",
        ):
            _positive(errors, name, getattr(self, name))
        _positive_bandwidth(errors, self.dram_bw)
        _buffer_qos(errors, self.buffer_bytes, self.qos, self.dram_bw)
        if self.link_bw is not None and not self.link_bw > 0:
            errors.append(f"link_bw must be > 0, got {self.link_bw}")
        if self.link_latency is not None and self.link_latency < 0:
            errors.append(f"link_latency must be >= 0, got {self.link_latency}")
        if self.link_bw is not None and (self.chips is None or self.chips < 2):
            errors.append("link_bw requires chips >= 2 (one chip has no interconnect)")
        return errors

    def build_spec(self) -> ServingSpec:
        """The :class:`~repro.serving.ServingSpec` this request
        describes, with the CLI's historical defaults filled in."""
        if self.trace is not None:
            arrivals = check_sorted(self.trace)
            name, rate = f"trace-{len(arrivals)}req", None
        else:
            seed = 0 if self.seed is None else self.seed
            arrivals = poisson_arrivals(
                self.rate,
                32768 if self.duration is None else self.duration,
                seed=seed,
                chunks=8 if self.chunks is None else self.chunks,
                decode_tokens=4 if self.decode_tokens is None else self.decode_tokens,
            )
            name, rate = f"poisson-r{self.rate:g}-s{seed}", self.rate
        return ServingSpec(
            name=name,
            arrivals=arrivals,
            binding=self.binding,
            embedding=64 if self.embedding is None else self.embedding,
            array_dim=256 if self.array_dim is None else self.array_dim,
            pe_1d=self.pe_1d,
            slots=2 if self.slots is None else self.slots,
            max_inflight=8 if self.max_inflight is None else self.max_inflight,
            deadline=self.deadline,
            dram_bw=self.dram_bw,
            n_chips=1 if self.chips is None else self.chips,
            link_bw=self.link_bw,
            link_latency=0 if self.link_latency is None else self.link_latency,
            rate=rate,
            buffer_bytes=self.buffer_bytes,
            qos=self.qos,
        )


@dataclass(frozen=True)
class ClusterRequest(Request):
    """A multi-chip sweep: one scenario sharded over chips × shardings
    × link bandwidths.

    The scenario shape fields mirror :class:`ScenarioRequest` (minus
    ``mixed_models``/``scenarios``: a cluster shards one homogeneous
    workload); the cluster axes then cross every requested chip count
    with every sharding policy and link bandwidth, one
    :class:`~repro.cluster.ClusterPoint` per combination.  A ``None``
    link bandwidth leaves the interconnect unmodeled — collectives cost
    nothing, the degenerate baseline every sweep should include.
    """

    KIND = "cluster"

    model: Optional[str] = None
    batch: Optional[int] = None
    heads: Optional[int] = None
    instances: Optional[int] = None
    chunks: Optional[int] = None
    array_dim: Optional[int] = None
    pe_1d: Optional[int] = None
    slots: Optional[int] = None
    decode_instances: int = 0
    decode_chunks: Optional[int] = None
    dram_bw: Optional[float] = None
    binding: str = "interleaved"
    chips: Tuple[int, ...] = (1, 2, 4)
    shardings: Tuple[str, ...] = ("head",)
    link_bws: Tuple[Optional[float], ...] = (None,)
    link_latency: int = 0
    topology: str = "all-to-all"
    engine: str = "event"

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        if self.model is not None and self.instances is not None:
            errors.append(
                "instances and model are mutually exclusive (model "
                "derives the instance count from batch/heads)"
            )
        if self.model is None:
            errors.extend(
                f"{field_} requires model (use instances for an explicit count)"
                for field_, given in (("batch", self.batch is not None),
                                      ("heads", self.heads is not None))
                if given
            )
        elif self.model not in MODELS_BY_NAME:
            errors.append(f"unknown model {self.model!r}; have {sorted(MODELS_BY_NAME)}")
        if self.decode_chunks is not None and not self.decode_instances:
            errors.append("decode_chunks requires decode_instances")
        _positive_bandwidth(errors, self.dram_bw)
        if self.binding not in BINDINGS:
            errors.append(f"unknown binding {self.binding!r}; have {BINDINGS}")
        if self.binding == "tile-serial" and self.slots is not None:
            errors.append("slots applies to the interleaved binding only")
        if self.engine not in ENGINES:
            errors.append(f"unknown engine {self.engine!r}; have {ENGINES}")
        _positive_axis(errors, "chips", self.chips)
        if not self.shardings:
            errors.append("shardings must name at least one policy")
        errors.extend(
            f"unknown sharding {sharding!r}; have {SHARDINGS}"
            for sharding in self.shardings
            if sharding not in SHARDINGS
        )
        if not self.link_bws:
            errors.append("link_bws must name at least one bandwidth")
        errors.extend(
            f"link_bws values must be > 0, got {bw}"
            for bw in self.link_bws
            if bw is not None and not bw > 0
        )
        if self.link_latency < 0:
            errors.append(f"link_latency must be >= 0, got {self.link_latency}")
        if self.topology not in TOPOLOGIES:
            errors.append(f"unknown topology {self.topology!r}; have {TOPOLOGIES}")
        for name in (
            "batch",
            "heads",
            "instances",
            "chunks",
            "array_dim",
            "pe_1d",
            "slots",
            "decode_chunks",
        ):
            _positive(errors, name, getattr(self, name))
        if self.decode_instances < 0:
            errors.append(f"decode_instances must be >= 0, got {self.decode_instances}")
        if not errors and "tensor" in self.shardings:
            scenario = self.build_scenario()
            seen: List[str] = []
            for phase in scenario.phases:
                for n_chips in self.chips:
                    try:
                        shard_config(scenario, phase, "tensor", n_chips)
                    except ValueError as error:
                        if str(error) not in seen:
                            seen.append(str(error))
            errors.extend(seen)
        return errors

    def build_scenario(self) -> Scenario:
        """The one scenario every cluster point shards, with the CLI's
        historical defaults filled in (matching ``repro scenario``)."""
        batch = BATCH_SIZE if self.batch is None else self.batch
        slots = 2 if self.slots is None else self.slots
        chunks = 32 if self.chunks is None else self.chunks
        array_dim = 256 if self.array_dim is None else self.array_dim
        if self.model is not None:
            return scenario_from_model(
                MODELS_BY_NAME[self.model],
                chunks * array_dim,
                batch=batch,
                heads=self.heads,
                binding=self.binding,
                array_dim=array_dim,
                pe_1d=self.pe_1d,
                slots=slots,
                decode_instances=self.decode_instances,
                decode_chunks=self.decode_chunks,
                dram_bw=self.dram_bw,
            )
        instances = 4 if self.instances is None else self.instances
        return attention_scenario(
            instances,
            chunks,
            binding=self.binding,
            array_dim=array_dim,
            pe_1d=self.pe_1d,
            slots=slots,
            decode_instances=self.decode_instances,
            decode_chunks=self.decode_chunks,
            dram_bw=self.dram_bw,
        )

    def build_points(self) -> Tuple[ClusterPoint, ...]:
        """Every cluster point of the sweep, chips outermost, then
        shardings, then link bandwidths."""
        scenario = self.build_scenario()
        return tuple(
            ClusterPoint(
                scenario=scenario,
                spec=ClusterSpec(
                    n_chips=n_chips,
                    link_bw=link_bw,
                    link_latency=self.link_latency,
                    topology=self.topology,
                ),
                sharding=sharding,
            )
            for n_chips in self.chips
            for sharding in self.shardings
            for link_bw in self.link_bws
        )


@dataclass(frozen=True)
class CrosscheckRequest(Request):
    """Simulated vs analytical utilization over scenario schedules.

    ``scenarios=None`` runs the seed grid of
    :func:`repro.experiments.crosscheck.seed_scenarios`;
    ``bandwidth=True`` appends the bandwidth-limited grid
    (:func:`repro.experiments.crosscheck.bandwidth_scenarios`), whose
    rows also compare the shared ``dram`` link's utilization;
    ``capacity=True`` appends the finite-buffer grid
    (:func:`repro.experiments.crosscheck.capacity_scenarios`), pitting
    the spill-inflated schedules against the ``capacity-bound``
    roofline term; ``cluster=True`` appends the sharded multi-chip grid
    (:func:`repro.experiments.crosscheck.cluster_points`), whose rows
    compare the shared ``link``'s utilization.
    """

    KIND = "crosscheck"

    tolerance: float = 0.05
    bandwidth: bool = False
    capacity: bool = False
    cluster: bool = False
    scenarios: Optional[Tuple[Scenario, ...]] = None

    def rule_violations(self) -> List[str]:
        errors: List[str] = []
        if self.tolerance < 0:
            errors.append(f"tolerance must be >= 0, got {self.tolerance}")
        if self.scenarios is not None and not self.scenarios:
            errors.append("scenarios must name at least one scenario")
        if self.scenarios is not None and self.bandwidth:
            errors.append(
                "bandwidth applies to the seed grid only (explicit "
                "scenarios carry their own dram_bw)"
            )
        if self.scenarios is not None and self.capacity:
            errors.append(
                "capacity applies to the seed grid only (explicit "
                "scenarios carry their own buffer_bytes)"
            )
        if self.scenarios is not None and self.cluster:
            errors.append(
                "cluster applies to the seed grid only (explicit "
                "scenarios are unsharded)"
            )
        return errors


#: Every request class the Session dispatches, in documentation order.
REQUEST_TYPES: Tuple[type, ...] = (
    ExperimentRequest,
    BindingSweepRequest,
    ScenarioRequest,
    ScenarioGridRequest,
    ServeRequest,
    ClusterRequest,
    CrosscheckRequest,
)
