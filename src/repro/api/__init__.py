"""repro.api — the unified typed evaluation API.

One front door for everything the reproduction can evaluate: build a
frozen request (:class:`ExperimentRequest`, :class:`BindingSweepRequest`,
:class:`ScenarioRequest`, :class:`ScenarioGridRequest`,
:class:`CrosscheckRequest`), hand it to a :class:`Session`, and get a
:class:`Result` whose :class:`Provenance` says how the payload came to
be.  The CLI, the experiment drivers, and the examples are all thin
adapters over this package::

    from repro.api import ScenarioGridRequest, Session

    session = Session(jobs=4, cache_dir="cache")
    result = session.run(ScenarioGridRequest(
        models=("BERT", "T5"), batches=(1, 8), chunks=16,
    ))
    for cell in result.payload:
        print(cell.model, cell.batch, cell.sim.util_2d, cell.est_util_2d)
    print(result.provenance.cache_hits, result.provenance.run_id)

``Session.submit()``/``gather()`` batch heterogeneous requests through a
single pass of the parallel runtime.

Sessions also own the fault policy: ``Session(retry=RetryPolicy(...),
on_error="skip")`` retries failed grid points with deterministic backoff
and degrades exhausted ones to :class:`~repro.runtime.TaskFailure`
records, with attempt/failure/recovery counts on every result's
provenance.
"""

from ..runtime import FaultPlan, RetryPolicy, TaskFailure
from .requests import (
    ENGINES,
    EXPERIMENT_NAMES,
    GRID_KINDS,
    REQUEST_TYPES,
    BindingSweepRequest,
    ClusterRequest,
    CrosscheckRequest,
    ExperimentRequest,
    Request,
    RequestValidationError,
    ScenarioGridRequest,
    ScenarioRequest,
    ServeRequest,
)
from .session import GRID_EXPERIMENTS, Provenance, Result, Session

__all__ = [
    "ENGINES",
    "EXPERIMENT_NAMES",
    "GRID_EXPERIMENTS",
    "GRID_KINDS",
    "REQUEST_TYPES",
    "BindingSweepRequest",
    "ClusterRequest",
    "CrosscheckRequest",
    "ExperimentRequest",
    "FaultPlan",
    "Provenance",
    "Request",
    "RequestValidationError",
    "Result",
    "RetryPolicy",
    "ScenarioGridRequest",
    "ScenarioRequest",
    "ServeRequest",
    "Session",
    "TaskFailure",
]
