"""repro — a reproduction of FuseMax (Nayak et al., MICRO 2024).

FuseMax uses cascades of Extended Einsums to analyze and optimize
attention accelerators.  This package provides:

- :mod:`repro.einsum` — the Extended Einsum IR (EDGE subset) and cascades;
- :mod:`repro.cascades` — the paper's cascades (attention 3/2/1-pass, the
  pedagogical examples, transformer linear layers);
- :mod:`repro.analysis` — mapping-independent pass counting, live-footprint
  lower bounds, op counting, and the Table I taxonomy;
- :mod:`repro.functional` — a numpy interpreter validating every cascade
  numerically;
- :mod:`repro.arch`, :mod:`repro.mapping`, :mod:`repro.model` — the
  Timeloop/Accelergy-style models of the unfused baseline, FLAT, and the
  FuseMax configurations;
- :mod:`repro.simulator` — a cycle-granular simulator of the FuseMax
  binding (Fig. 4/5);
- :mod:`repro.workloads`, :mod:`repro.experiments` — the BERT/TrXL/T5/XLM
  workloads and the drivers regenerating every evaluation figure.
"""

def _package_version() -> str:
    """The installed distribution's version, or — when the package runs
    uninstalled from a source tree (``PYTHONPATH=src``) — the version
    read from the adjacent ``pyproject.toml``, so the pin lives in
    exactly one place."""
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("fusemax-repro")
    except PackageNotFoundError:
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        try:
            match = re.search(
                r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.M
            )
        except OSError:
            match = None
        return match.group(1) if match else "0+unknown"


__version__ = _package_version()

__all__ = [
    "analysis",
    "arch",
    "cascades",
    "einsum",
    "experiments",
    "functional",
    "model",
    "simulator",
    "workloads",
]
