"""repro — a reproduction of FuseMax (Nayak et al., MICRO 2024).

FuseMax uses cascades of Extended Einsums to analyze and optimize
attention accelerators.  This package provides:

- :mod:`repro.einsum` — the Extended Einsum IR (EDGE subset) and cascades;
- :mod:`repro.cascades` — the paper's cascades (attention 3/2/1-pass, the
  pedagogical examples, transformer linear layers);
- :mod:`repro.analysis` — mapping-independent pass counting, live-footprint
  lower bounds, op counting, and the Table I taxonomy;
- :mod:`repro.functional` — a numpy interpreter validating every cascade
  numerically;
- :mod:`repro.arch`, :mod:`repro.mapping`, :mod:`repro.model` — the
  Timeloop/Accelergy-style models of the unfused baseline, FLAT, and the
  FuseMax configurations;
- :mod:`repro.simulator` — a cycle-granular simulator of the FuseMax
  binding (Fig. 4/5);
- :mod:`repro.workloads`, :mod:`repro.experiments` — the BERT/TrXL/T5/XLM
  workloads and the drivers regenerating every evaluation figure.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "arch",
    "cascades",
    "einsum",
    "experiments",
    "functional",
    "model",
    "simulator",
    "workloads",
]
