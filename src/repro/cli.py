"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``report``            — regenerate every table and figure (text).
- ``fig1b`` … ``fig12``, ``table1`` — one experiment.
- ``sweep``             — run one evaluation grid through the runtime.
- ``taxonomy``          — classify the attention cascades (Table I).
- ``passes CASCADE``    — pass analysis of a named cascade
  (``3pass``, ``3pass-divopt``, ``2pass``, ``1pass``, ``causal``,
  ``sigmoid``).
- ``simulate``          — run the binding pipeline simulation
  (``--engine event|cycle``), or ``--sweep`` to scan chunk counts ×
  bindings × array dims and emit utilization vs sequence length
  (``--format table|csv|json``).

Grid-backed commands accept ``--jobs N`` (parallel evaluation over
processes), ``--cache``/``--no-cache`` (content-addressed result reuse;
``--cache`` persists to ``--cache-dir``), and the output is identical
for every combination.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .analysis import count_passes, live_footprints
from .analysis.taxonomy import attention_rank_family, build_taxonomy
from .cascades import (
    attention_1pass,
    attention_2pass,
    attention_3pass,
    causal_attention,
    sigmoid_attention,
)
from .experiments import (
    ablations,
    fig1b,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)
from .experiments.common import format_table
from .experiments.report import full_report
from .runtime import ResultCache, RunRegistry
from .runtime import executor as _runtime
from .simulator import (
    DEFAULT_SWEEP_ARRAY_DIMS,
    DEFAULT_SWEEP_CHUNKS,
    PipelineConfig,
    compare_bindings,
    sweep_csv,
    sweep_json,
    sweep_table,
)
from .workloads.models import MODELS, MODELS_BY_NAME, SEQUENCE_LENGTHS, seq_label

_CASCADES: Dict[str, Callable] = {
    "3pass": attention_3pass,
    "3pass-divopt": lambda: attention_3pass(div_opt=True),
    "2pass": attention_2pass,
    "1pass": attention_1pass,
    "causal": causal_attention,
    "sigmoid": sigmoid_attention,
}

_EXPERIMENTS = {
    "ablations": ablations,
    "fig1b": fig1b,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "table1": table1,
}

#: Experiments whose ``main()`` runs a grid through the runtime (and so
#: accepts ``jobs``/``cache``); the rest are cheap and stay serial.
_GRID_EXPERIMENTS = {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}

_SWEEP_KINDS: Dict[str, Callable] = {
    "attention": _runtime.sweep_attention,
    "inference": _runtime.sweep_inference,
}


def _make_cache(args):
    """The cache object implied by --cache/--no-cache/--cache-dir."""
    if not getattr(args, "cache", False):
        return False
    if getattr(args, "cache_dir", None):
        return ResultCache(directory=args.cache_dir)
    return True


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="evaluate grid points over N worker processes",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse cached grid-point results (default)",
    )
    cache.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="recompute every grid point",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist the result cache under DIR (implies --cache)",
    )


def _cmd_report(args) -> int:
    print(full_report(jobs=args.jobs, cache=_make_cache(args)))
    return 0


def _cmd_experiment(args) -> int:
    module = _EXPERIMENTS[args.command]
    if args.command in _GRID_EXPERIMENTS:
        module.main(jobs=args.jobs, cache=_make_cache(args))
    else:
        module.main()
    return 0


def _cmd_sweep(args) -> int:
    """Run one evaluation grid through the runtime and summarize it."""
    models = MODELS
    if args.models:
        try:
            models = tuple(MODELS_BY_NAME[name] for name in args.models.split(","))
        except KeyError as missing:
            print(f"unknown model {missing}; have {sorted(MODELS_BY_NAME)}",
                  file=sys.stderr)
            return 2
    seq_lens = SEQUENCE_LENGTHS
    if args.seq_lens:
        try:
            seq_lens = tuple(int(s) for s in args.seq_lens.split(","))
        except ValueError:
            print(f"invalid --seq-lens {args.seq_lens!r}: "
                  "expected comma-separated integers", file=sys.stderr)
            return 2
    registry = RunRegistry(args.registry) if args.registry else None
    sweep = _SWEEP_KINDS[args.kind]
    try:
        results = sweep(
            models, seq_lens,
            jobs=args.jobs, cache=_make_cache(args), registry=registry,
        )
    except ValueError as error:
        print(f"sweep failed: {error}", file=sys.stderr)
        return 2
    print(format_table(
        ["config", "model", "L", "latency (cycles)", "energy (pJ)"],
        [
            (config, model, seq_label(seq_len),
             f"{r.latency_cycles:.3e}", f"{r.energy_pj:.3e}")
            for (config, model, seq_len), r in results.items()
        ],
    ))
    print(f"{len(results)} grid points ({args.kind}), jobs={args.jobs}")
    if registry is not None:
        record = registry.last_recorded
        print(f"recorded run {record.run_id} "
              f"(digest {record.result_digest}, {record.duration_s:.3f}s)")
    return 0


def _cmd_taxonomy(_args) -> int:
    for name, entry in build_taxonomy().items():
        exemplars = ", ".join(entry.exemplars)
        print(f"{name}: {entry.category} ({exemplars})")
    return 0


def _cmd_passes(args) -> int:
    try:
        cascade = _CASCADES[args.cascade]()
    except KeyError:
        print(f"unknown cascade {args.cascade!r}; have {sorted(_CASCADES)}",
              file=sys.stderr)
        return 2
    fam = attention_rank_family(cascade)
    analysis = count_passes(cascade, fam)
    print(f"{cascade.name}: {analysis.num_passes}-pass over {fam}")
    for label, info in analysis.info.items():
        where = (
            f"pass {info.pass_number}" if info.pass_number is not None
            else ("view" if info.is_view else f"between passes (t={info.time})")
        )
        print(f"  {label:>6}: {where}")
    shapes = {"E": 64, "F": 64, "M": 65536, "P": 1024, "M0": 256, "M1": 256}
    report = live_footprints(analysis, shapes)
    seq_dep = report.sequence_dependent_tensors()
    print(f"sequence-dependent live tensors: {seq_dep or 'none'}")
    return 0


def _parse_int_list(text: str, flag: str):
    """Comma-separated ints, or None after a one-line stderr message."""
    try:
        return tuple(int(item) for item in text.split(","))
    except ValueError:
        print(f"invalid {flag} {text!r}: expected comma-separated integers",
              file=sys.stderr)
        return None


def _cmd_simulate(args) -> int:
    if args.sweep:
        return _cmd_simulate_sweep(args)
    config = PipelineConfig(
        chunks=args.chunks, array_dim=args.array_dim, pe_1d=args.array_dim
    )
    for name, r in compare_bindings(config, engine=args.engine).items():
        print(f"{name:12s} makespan={r.makespan:7d} "
              f"util2d={r.util_2d:.3f} util1d={r.util_1d:.3f}")
    return 0


def _cmd_simulate_sweep(args) -> int:
    """The long-sequence binding sweep through the parallel runtime."""
    if args.engine != "event":
        print("--sweep always runs the event-driven core (the cycle "
              "oracle cannot reach the long-sequence points); --engine "
              "applies to the one-shot comparison only", file=sys.stderr)
        return 2
    chunks = DEFAULT_SWEEP_CHUNKS
    if args.chunks_list:
        chunks = _parse_int_list(args.chunks_list, "--chunks-list")
        if chunks is None:
            return 2
    array_dims = DEFAULT_SWEEP_ARRAY_DIMS
    if args.arrays:
        array_dims = _parse_int_list(args.arrays, "--arrays")
        if array_dims is None:
            return 2
    registry = RunRegistry(args.registry) if args.registry else None
    results = _runtime.sweep_bindings(
        chunks, array_dims=array_dims,
        jobs=args.jobs, cache=_make_cache(args), registry=registry,
    )
    render = {"table": sweep_table, "csv": sweep_csv, "json": sweep_json}
    payload = render[args.format](results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload)
            if not payload.endswith("\n"):
                handle.write("\n")
        print(f"{len(results)} binding points -> {args.output} "
              f"({args.format}, jobs={args.jobs})")
    else:
        print(payload, end="" if payload.endswith("\n") else "\n")
    if registry is not None:
        record = registry.last_recorded
        print(f"recorded run {record.run_id} "
              f"(digest {record.result_digest}, {record.duration_s:.3f}s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="FuseMax reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="regenerate every table and figure")
    _add_runtime_args(report)
    for name in _EXPERIMENTS:
        experiment = sub.add_parser(name, help=f"regenerate {name}")
        if name in _GRID_EXPERIMENTS:
            _add_runtime_args(experiment)
    sweep = sub.add_parser("sweep", help="run one evaluation grid")
    sweep.add_argument(
        "--kind", choices=sorted(_SWEEP_KINDS), default="attention",
        help="which grid to run (default: attention)",
    )
    sweep.add_argument(
        "--models", metavar="A,B", default=None,
        help="comma-separated model names (default: all four)",
    )
    sweep.add_argument(
        "--seq-lens", metavar="L1,L2", default=None,
        help="comma-separated sequence lengths (default: 1K..1M)",
    )
    sweep.add_argument(
        "--registry", metavar="DIR", default=None,
        help="record the run as JSON under DIR",
    )
    _add_runtime_args(sweep)
    sub.add_parser("taxonomy", help="Table I classification")
    passes = sub.add_parser("passes", help="pass analysis of one cascade")
    passes.add_argument("cascade", help=f"one of {sorted(_CASCADES)}")
    simulate = sub.add_parser(
        "simulate", help="binding pipeline simulation / long-sequence sweep"
    )
    simulate.add_argument("--chunks", type=int, default=32,
                          help="M1 chunk count for the one-shot comparison")
    simulate.add_argument(
        "--array-dim", type=int, default=256, metavar="D",
        help="PE-array dimension (1D array sized to match; default 256)",
    )
    simulate.add_argument(
        "--engine", choices=("event", "cycle"), default="event",
        help="scheduler core for the one-shot comparison: event-driven "
             "(default) or the cycle-accurate oracle — results are "
             "identical (--sweep always uses the event core)",
    )
    simulate.add_argument(
        "--sweep", action="store_true",
        help="scan chunk counts x bindings x array dims through the "
             "parallel runtime and emit a utilization-vs-length table",
    )
    simulate.add_argument(
        "--chunks-list", metavar="N1,N2", default=None,
        help="sweep chunk counts (default: 16..8192 in powers of two)",
    )
    simulate.add_argument(
        "--arrays", metavar="D1,D2", default=None,
        help="sweep PE-array dimensions (default: 128,256)",
    )
    simulate.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="sweep output format (default: table)",
    )
    simulate.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the sweep to FILE instead of stdout",
    )
    simulate.add_argument(
        "--registry", metavar="DIR", default=None,
        help="record the sweep as JSON under DIR",
    )
    _add_runtime_args(simulate)
    args = parser.parse_args(argv)

    if getattr(args, "cache_dir", None) and not getattr(args, "cache", True):
        parser.error("--cache-dir cannot be combined with --no-cache")

    if args.command == "report":
        return _cmd_report(args)
    if args.command in _EXPERIMENTS:
        return _cmd_experiment(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "taxonomy":
        return _cmd_taxonomy(args)
    if args.command == "passes":
        return _cmd_passes(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
